// Table 9: assembly quality comparison (contigs, total bp, max contig, N50)
// with and without METAPREP preprocessing, with and without the KF filter.
//
// Paper shape: "No Preproc" and "No Filter" (LC + Other) give near-identical
// quality — the same largest contig and very similar N50 — because the
// partition keeps genome-coherent reads together; KF<=30 improves total
// assembled bases and N50 for HG/LL but is too aggressive for MM.
#include "assembler/minihit.hpp"

#include "bench_common.hpp"

namespace {

using namespace metaprep;

std::vector<std::string> pick(const std::vector<std::string>& files, bool lc) {
  std::vector<std::string> out;
  for (const auto& f : files) {
    if ((f.find(".lc.") != std::string::npos) == lc) out.push_back(f);
  }
  return out;
}

std::vector<std::string> row_for(const std::string& dataset, const std::string& type,
                                 const assembler::ContigStats& s) {
  return {dataset, type, std::to_string(s.num_contigs),
          util::TablePrinter::fmt(static_cast<double>(s.total_bp) / 1e3, 1),
          std::to_string(s.max_bp), std::to_string(s.n50_bp)};
}

}  // namespace

int main() {
  bench::print_title("Table 9: assembly quality with and without preprocessing");

  assembler::AssemblyOptions aopt;
  aopt.k_list = {21, 27, 31};  // MEGAHIT-style multi-k iteration
  aopt.tip_clip_bases = 2 * 27;    // MEGAHIT-style tip clipping
  aopt.bubble_pop_bases = 2 * 27;  // MEGAHIT-style bubble popping
  aopt.min_kmer_count = 2;

  util::TablePrinter table({"Dataset", "Type", "Contigs", "Total (kbp)", "Max (bp)",
                            "N50 (bp)"});
  for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
    bench::ScratchDir dir("tab9");
    const auto ds = bench::make_dataset(preset, dir.str());

    const auto full = assembler::assemble_fastq(ds.data.files, aopt);
    table.add_row(row_for(ds.index.name, "No Preproc", full.stats));

    for (const auto& [label, filter] :
         std::vector<std::pair<std::string, core::KmerFreqFilter>>{
             {"No Filter", {}}, {"KF<=30", {0, 30}}}) {
      core::MetaprepConfig cfg;
      cfg.k = 27;
      cfg.num_ranks = 1;
      cfg.threads_per_rank = 4;
      cfg.filter = filter;
      cfg.write_output = true;
      cfg.output_dir = dir.str() + "/" + label;
      std::filesystem::create_directories(cfg.output_dir);
      const auto result = core::run_metaprep(ds.index, cfg);

      const auto lc = assembler::assemble_fastq(pick(result.output_files, true), aopt);
      const auto other = assembler::assemble_fastq(pick(result.output_files, false), aopt);
      table.add_row(row_for(ds.index.name, label + " (LC+Other)",
                            assembler::combined_stats(lc.contigs, other.contigs)));
      table.add_row(row_for(ds.index.name, "  " + label + " LC", lc.stats));
      table.add_row(row_for(ds.index.name, "  " + label + " Other", other.stats));
    }
  }
  table.print();
  std::printf("Paper shape: No-Preproc vs No-Filter rows nearly identical (same Max,\n"
              "N50 within ~1%%); the largest contig is recovered inside LC; KF<=30 keeps\n"
              "quality for HG/LL but degrades MM (filter too aggressive there).\n");
  return 0;
}
