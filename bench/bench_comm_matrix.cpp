// Communication analysis: the staged All-to-all traffic pattern (§3.3).
//
// The FASTQPart-derived offsets make the tuple exchange a fixed, balanced
// all-to-all: every (src, dest) pair ships ~tuples/P^2 tuples per pass, and
// the total wire traffic is independent of P (each tuple crosses the wire
// at most once per pass).  The MergeCC tree adds (P-1) * 4R on top.  This
// bench prints the measured byte matrix and per-P totals.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Communication matrix: staged all-to-all + merge traffic (MM, k=27)");

  bench::ScratchDir dir("comm");
  const auto ds = bench::make_dataset(sim::Preset::MM, dir.str());

  // Detailed matrix at P=8.
  {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 8;
    cfg.threads_per_rank = 2;
    cfg.write_output = false;
    const auto r = core::run_metaprep(ds.index, cfg);
    std::printf("P=8 traffic matrix (KB, src row -> dest column):\n");
    std::vector<std::string> headers{"src\\dst"};
    for (int d = 0; d < 8; ++d) headers.push_back(std::to_string(d));
    util::TablePrinter table(headers);
    for (int s = 0; s < 8; ++s) {
      std::vector<std::string> row{std::to_string(s)};
      for (int d = 0; d < 8; ++d) {
        row.push_back(util::TablePrinter::fmt(
            static_cast<double>(r.traffic_matrix[static_cast<std::size_t>(s) * 8 + d]) / 1e3,
            0));
      }
      table.add_row(row);
    }
    table.print();
    std::printf("Total %0.2f MB in %llu messages; MergeCC share %0.2f MB.\n\n",
                static_cast<double>(r.total_traffic_bytes) / 1e6,
                static_cast<unsigned long long>(r.message_count),
                static_cast<double>(r.merge_comm_bytes) / 1e6);
  }

  // Totals across P.
  util::TablePrinter totals({"P", "Exchange+misc (MB)", "MergeCC (MB)", "Messages",
                             "Sim-comm (ms)"});
  for (int p : {2, 4, 8, 16}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = p;
    cfg.threads_per_rank = 2;
    cfg.write_output = false;
    const auto r = core::run_metaprep(ds.index, cfg);
    totals.add_row(
        {std::to_string(p),
         util::TablePrinter::fmt(
             static_cast<double>(r.total_traffic_bytes - r.merge_comm_bytes) / 1e6, 2),
         util::TablePrinter::fmt(static_cast<double>(r.merge_comm_bytes) / 1e6, 2),
         std::to_string(r.message_count),
         util::TablePrinter::fmt(r.sim_comm_seconds * 1e3, 3)});
  }
  totals.print();
  std::printf("Expect: near-uniform off-diagonal matrix (balanced k-mer ranges); the\n"
              "exchange total approaches (P-1)/P of all tuple bytes as P grows, while\n"
              "MergeCC traffic grows linearly in P — the scaling limiter the paper's §5\n"
              "names.\n");
  return 0;
}
