// Ablation: the full Howe et al. preprocessing pipeline — digital
// normalization BEFORE read-graph partitioning.
//
// The paper's introduction describes Howe et al.'s two strategies (digital
// normalization + partitioning); METAPREP implements partitioning.  This
// bench runs both in sequence on the deep-coverage MM preset and reports
// what normalization buys the partitioner: fewer reads, fewer tuples,
// smaller buffers, and a less dominant giant component (redundant
// high-coverage reads are exactly the ones gluing it together).
#include <filesystem>

#include "norm/diginorm.hpp"

#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Ablation: digital normalization -> METAPREP (MM preset, k=27)");

  bench::ScratchDir dir("diginorm");
  const auto raw = sim::make_preset(sim::Preset::MM, bench::bench_scale(), dir.str());

  // Normalize to C=20 (khmer's classic default for assembly workflows).
  norm::DiginormOptions dopt;
  dopt.k = 20;
  dopt.cutoff = 20;
  util::WallTimer norm_timer;
  const auto stats =
      norm::normalize_fastq_pair(raw.files[0], raw.files[1], dir.str() + "/MMnorm", dopt);
  const double norm_seconds = norm_timer.seconds();

  util::TablePrinter table({"Input", "Pairs", "Tuples", "Peak buf (MB)", "LC %",
                            "Components", "Pipeline (ms)"});
  for (const bool normalized : {false, true}) {
    const std::vector<std::string> files =
        normalized ? std::vector<std::string>{dir.str() + "/MMnorm_1.fastq",
                                              dir.str() + "/MMnorm_2.fastq"}
                   : raw.files;
    core::IndexCreateOptions iopt;
    iopt.k = 27;
    iopt.m = 8;
    iopt.target_chunks = 48;
    iopt.threads = 4;
    const auto index =
        core::create_index(normalized ? "MMnorm" : "MM", files, true, iopt);

    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.write_output = false;
    util::WallTimer timer;
    const auto r = core::run_metaprep(index, cfg);
    table.add_row({normalized ? "diginorm C=20" : "raw", std::to_string(index.total_reads),
                   std::to_string(r.total_tuples),
                   util::TablePrinter::fmt(
                       static_cast<double>(r.max_tuple_buffer_bytes) / 1e6, 2),
                   util::TablePrinter::fmt(r.largest_fraction * 100.0, 1),
                   std::to_string(r.num_components),
                   util::TablePrinter::fmt(timer.seconds() * 1e3, 1)});
  }
  table.print();
  std::printf("Diginorm kept %llu / %llu pairs (%.1f%%) in %.1f ms with a %.1f MB sketch.\n",
              static_cast<unsigned long long>(stats.pairs_kept),
              static_cast<unsigned long long>(stats.pairs_in),
              stats.keep_fraction() * 100.0, norm_seconds * 1e3,
              static_cast<double>(norm::CountMinSketch(dopt.sketch_width, dopt.sketch_depth)
                                      .memory_bytes()) /
                  1e6);
  std::printf("Expect: the kept fraction tracks cutoff/coverage (~20/30 for MM), and\n"
              "pairs/tuples/buffers/pipeline-time all shrink proportionally while the\n"
              "component structure is preserved.\n");
  return 0;
}
