// Table 5: index creation time (sequential).
//
// Paper: FASTQPart chunking is cheap (32-180 s) while the merHist histogram
// pass dominates (109 s for HG up to 5160 s for IS), since it enumerates
// every canonical k-mer once.  Chunk counts: 384 for HG/LL/MM, 1536 for IS.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Table 5: IndexCreate times (sequential, k=27, m=8)");

  util::TablePrinter table({"Dataset", "#Chunks", "FASTQPart (ms)", "merHist (ms)",
                            "merHist/FASTQPart"});
  for (const auto preset :
       {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM, sim::Preset::IS}) {
    bench::ScratchDir dir("tab5");
    const auto data = sim::make_preset(preset, bench::bench_scale(), dir.str());
    core::IndexCreateOptions opt;
    opt.k = 27;
    opt.m = 8;
    // Paper chunk counts scaled: 384 for the small three, 1536 for IS.
    opt.target_chunks = preset == sim::Preset::IS ? 192 : 48;
    core::IndexCreateTiming timing;
    const auto index = core::create_index(data.name, data.files, true, opt, &timing);
    table.add_row({index.name, std::to_string(index.part.num_chunks()),
                   util::TablePrinter::fmt(timing.chunking_seconds * 1e3, 1),
                   util::TablePrinter::fmt(timing.histogram_seconds * 1e3, 1),
                   util::TablePrinter::fmt(timing.histogram_seconds /
                                               std::max(timing.chunking_seconds, 1e-9),
                                           1) +
                       "x"});
  }
  table.print();
  std::printf("Paper: HG 32/109 s, LL 32/154 s, MM 33/343 s, IS 180/5160 s — the\n"
              "histogram (k-mer enumeration) pass dominates chunking at every size.\n");
  return 0;
}
