// Ablation for §3.5.1 (LocalCC-Opt): enumerating (k-mer, component-ID)
// tuples instead of (k-mer, read-ID) from the second pass on.
//
// The paper credits this with the LocalCC time drop in Table 3 ("By
// enumerating component identifiers instead of read identifiers during
// k-mer enumeration, cache locality improves considerably during LocalCC
// step") — the Find() random accesses concentrate on the (few) component
// roots instead of ranging over all R reads.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Ablation: LocalCC-Opt (component-ID substitution), MM, P=2, T=2");

  bench::ScratchDir dir("ccopt");
  const auto ds = bench::make_dataset(sim::Preset::MM, dir.str());

  util::TablePrinter table({"Passes", "cc_opt", "KmerGen (ms)", "LocalCC (ms)",
                            "CC iters", "Components"});
  for (int s : {2, 4, 8}) {
    for (const bool opt : {false, true}) {
      core::MetaprepConfig cfg;
      cfg.k = 27;
      cfg.num_ranks = 2;
      cfg.threads_per_rank = 2;
      cfg.num_passes = s;
      cfg.cc_opt = opt;
      cfg.write_output = false;
      const auto r = core::run_metaprep(ds.index, cfg);
      table.add_row({std::to_string(s), opt ? "on" : "off",
                     util::TablePrinter::fmt(r.step_times.get("KmerGen") * 1e3, 1),
                     util::TablePrinter::fmt(r.step_times.get("LocalCC") * 1e3, 1),
                     std::to_string(r.cc_iterations_max),
                     std::to_string(r.num_components)});
    }
  }
  table.print();
  std::printf("Note: at container scale the component array fits in cache, so the\n"
              "locality gain is muted relative to the paper's billion-read runs; the\n"
              "decomposition must be identical either way (tested in test_pipeline).\n");
  return 0;
}
