// Shared infrastructure for the per-table/per-figure bench binaries.
//
// Every bench binary regenerates its input deterministically from a preset
// (Table 2 stand-ins) at a scale controlled by METAPREP_BENCH_SCALE
// (default 1.0), runs the relevant configurations, and prints rows mirroring
// the paper's table or figure.  EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace metaprep::bench {

/// Workload scale multiplier (grows read counts and genome lengths).
inline double bench_scale() { return util::env_double("METAPREP_BENCH_SCALE", 1.0); }

/// RAII scratch directory for a bench run.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() / ("metaprep_bench_" + name);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

struct BenchDataset {
  sim::SimulatedDataset data;
  core::DatasetIndex index;
};

/// Generate a preset and its index (k defaults to the paper's 27).
inline BenchDataset make_dataset(sim::Preset preset, const std::string& dir, int k = 27,
                                 int m = 8, std::uint32_t chunks = 48,
                                 double extra_scale = 1.0) {
  BenchDataset out;
  out.data = sim::make_preset(preset, bench_scale() * extra_scale, dir);
  core::IndexCreateOptions opt;
  opt.k = k;
  opt.m = m;
  opt.target_chunks = chunks;
  out.index = core::create_index(out.data.name, out.data.files, /*paired=*/true, opt);
  return out;
}

/// The paper's step ordering for stacked-time tables.
inline const std::vector<std::string>& step_order() {
  static const std::vector<std::string> steps{
      "KmerGen-I/O", "KmerGen", "KmerGen-Comm", "LocalSort",
      "LocalCC",     "Merge-Comm", "MergeCC",   "CC-I/O"};
  return steps;
}

/// One row of per-step times (ms) plus the total.
inline std::vector<std::string> step_time_cells(const util::StepTimes& t) {
  std::vector<std::string> cells;
  double total = 0.0;
  for (const auto& s : step_order()) {
    const double v = t.get(s);
    total += v;
    cells.push_back(util::TablePrinter::fmt(v * 1e3, 1));
  }
  cells.push_back(util::TablePrinter::fmt(total * 1e3, 1));
  return cells;
}

inline std::vector<std::string> step_headers(std::vector<std::string> prefix) {
  for (const auto& s : step_order()) prefix.push_back(s + " (ms)");
  prefix.push_back("Total (ms)");
  return prefix;
}

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace metaprep::bench
