// Shared infrastructure for the per-table/per-figure bench binaries.
//
// Every bench binary regenerates its input deterministically from a preset
// (Table 2 stand-ins) at a scale controlled by METAPREP_BENCH_SCALE
// (default 1.0), runs the relevant configurations, and prints rows mirroring
// the paper's table or figure.  EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace metaprep::bench {

/// Workload scale multiplier (grows read counts and genome lengths).
inline double bench_scale() { return util::env_double("METAPREP_BENCH_SCALE", 1.0); }

/// RAII scratch directory for a bench run.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() / ("metaprep_bench_" + name);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string str() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

struct BenchDataset {
  sim::SimulatedDataset data;
  core::DatasetIndex index;
};

/// Generate a preset and its index (k defaults to the paper's 27).
inline BenchDataset make_dataset(sim::Preset preset, const std::string& dir, int k = 27,
                                 int m = 8, std::uint32_t chunks = 48,
                                 double extra_scale = 1.0) {
  BenchDataset out;
  out.data = sim::make_preset(preset, bench_scale() * extra_scale, dir);
  core::IndexCreateOptions opt;
  opt.k = k;
  opt.m = m;
  opt.target_chunks = chunks;
  out.index = core::create_index(out.data.name, out.data.files, /*paired=*/true, opt);
  return out;
}

/// The paper's step ordering for stacked-time tables, plus PackedIngest
/// (the --read-store=packed arena build; 0 for text runs).
inline const std::vector<std::string>& step_order() {
  static const std::vector<std::string> steps{
      "PackedIngest", "KmerGen-I/O", "KmerGen", "KmerGen-Comm", "LocalSort",
      "LocalCC",      "Merge-Comm",  "MergeCC", "CC-I/O"};
  return steps;
}

/// One row of per-step times (ms) plus the total.
inline std::vector<std::string> step_time_cells(const util::StepTimes& t) {
  std::vector<std::string> cells;
  double total = 0.0;
  for (const auto& s : step_order()) {
    const double v = t.get(s);
    total += v;
    cells.push_back(util::TablePrinter::fmt(v * 1e3, 1));
  }
  cells.push_back(util::TablePrinter::fmt(total * 1e3, 1));
  return cells;
}

inline std::vector<std::string> step_headers(std::vector<std::string> prefix) {
  for (const auto& s : step_order()) prefix.push_back(s + " (ms)");
  prefix.push_back("Total (ms)");
  return prefix;
}

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// run_metaprep wrapped in a wall timer (the pattern every bench repeats).
struct TimedRun {
  core::PipelineResult result;
  double wall_seconds = 0.0;
};

inline TimedRun timed_run(const core::DatasetIndex& index, const core::MetaprepConfig& cfg) {
  util::WallTimer timer;
  TimedRun out{core::run_metaprep(index, cfg), 0.0};
  out.wall_seconds = timer.seconds();
  return out;
}

/// "label: 1N=1.00x 2N=0.97x ..." speedup line relative to walls[0].
inline void print_relative_speedup(const std::string& label, const std::vector<int>& xs,
                                   const std::vector<double>& walls) {
  std::printf("%s:", label.c_str());
  for (std::size_t i = 0; i < xs.size() && i < walls.size(); ++i) {
    std::printf(" %dN=%.2fx", xs[i], walls[i] > 0.0 ? walls[0] / walls[i] : 0.0);
  }
  std::printf("\n");
}

/// Turn on the obs metrics registry for this bench process when
/// METAPREP_BENCH_METRICS=1, so the JSON summary's embedded snapshot carries
/// real values.  Off by default: the probes cost a relaxed atomic load each,
/// and the perf-regression benches measure the disabled path.
inline void maybe_enable_metrics() {
  if (util::env_double("METAPREP_BENCH_METRICS", 0.0) != 0.0) {
    obs::metrics().set_enabled(true);
  }
}

/// Machine-readable bench summary: one JSON object per bench run with a
/// "rows" array (one entry per measured configuration) and the process-wide
/// obs metrics snapshot embedded under "metrics".  Written to the file named
/// by METAPREP_BENCH_JSON (appended, one object per line) when set, else to
/// stdout.  All benches share this writer so downstream tooling parses one
/// schema instead of per-bench printf formats.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : name_(std::move(bench_name)) {}

  /// One measured configuration; chain num()/str() calls on the reference.
  class Row {
   public:
    Row& num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      return raw(key, buf);
    }
    Row& num(const std::string& key, std::uint64_t value) {
      return raw(key, std::to_string(value));
    }
    Row& num(const std::string& key, int value) { return raw(key, std::to_string(value)); }
    Row& str(const std::string& key, const std::string& value) {
      std::string quoted;
      quoted += '"';
      quoted += escape(value);
      quoted += '"';
      return raw(key, quoted);
    }
    /// Embed pre-serialized JSON (an array or object) verbatim under @p key —
    /// e.g. MetricsRegistry::snapshot_delta()'s per-row metric deltas.
    Row& json(const std::string& key, const std::string& json_value) {
      return raw(key, json_value.empty() ? "null" : json_value);
    }

   private:
    friend class BenchJsonWriter;
    Row& raw(const std::string& key, const std::string& json_value) {
      if (!body_.empty()) body_ += ',';
      body_ += '"';
      body_ += escape(key);
      body_ += "\":";
      body_ += json_value;
      return *this;
    }
    std::string body_;
  };

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Serialize and write the summary (call once, at the end of the bench).
  void emit() const {
    std::string out = "{\"bench\":\"";
    out += escape(name_);
    out += "\",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += "{" + rows_[i].body_ + "}";
    }
    out += "],\"metrics\":[";
    // to_jsonl() emits one JSON object per line; re-join as an array.
    std::istringstream lines(obs::metrics().to_jsonl());
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      if (!first) out += ",";
      first = false;
      out += line;
    }
    out += "]}";
    const char* path = std::getenv("METAPREP_BENCH_JSON");
    if (path != nullptr && *path != '\0') {
      std::FILE* f = std::fopen(path, "ab");
      if (f != nullptr) {
        std::fwrite(out.data(), 1, out.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        return;
      }
      std::fprintf(stderr, "bench: cannot append to METAPREP_BENCH_JSON=%s\n", path);
    }
    std::printf("%s\n", out.c_str());
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace metaprep::bench
