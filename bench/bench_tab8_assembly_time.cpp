// Table 8: MEGAHIT (here: MiniHit) assembly time with and without METAPREP
// preprocessing.
//
// Paper: assembling the largest component (LC) and the rest ("Other")
// separately — possible in parallel on 2 nodes — plus the KF<=30 filter
// shrinking LC yields end-to-end speedups of 1.22x (HG), 1.31x (LL),
// 1.36x (MM); METAPREP preprocessing time is small next to assembly time.
// Speedup = full-assembly time / (METAPREP time + filtered-LC assembly).
#include <algorithm>

#include "assembler/minihit.hpp"

#include "bench_common.hpp"

namespace {

using namespace metaprep;

struct PartitionedFiles {
  std::vector<std::string> lc;
  std::vector<std::string> other;
};

PartitionedFiles split_outputs(const std::vector<std::string>& files) {
  PartitionedFiles out;
  for (const auto& f : files) {
    if (f.find(".lc.") != std::string::npos) {
      out.lc.push_back(f);
    } else {
      out.other.push_back(f);
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::print_title("Table 8: MiniHit assembly time with and without preprocessing");

  assembler::AssemblyOptions aopt;
  aopt.k_list = {21, 27, 31};  // MEGAHIT-style multi-k iteration
  aopt.tip_clip_bases = 2 * 27;    // MEGAHIT-style tip clipping
  aopt.bubble_pop_bases = 2 * 27;  // MEGAHIT-style bubble popping
  aopt.min_kmer_count = 2;

  util::TablePrinter table({"Dataset", "No-preproc (ms)", "LC no-filter (ms)",
                            "Other no-filter (ms)", "LC KF<=30 (ms)", "Other KF<=30 (ms)",
                            "METAPREP (ms)", "Speedup"});
  for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
    bench::ScratchDir dir("tab8");
    const auto ds = bench::make_dataset(preset, dir.str());

    const auto full = assembler::assemble_fastq(ds.data.files, aopt);

    auto run_partition = [&](core::KmerFreqFilter filter, const std::string& tag) {
      core::MetaprepConfig cfg;
      cfg.k = 27;
      cfg.num_ranks = 1;
      cfg.threads_per_rank = 4;
      cfg.filter = filter;
      cfg.write_output = true;
      cfg.output_dir = dir.str() + "/" + tag;
      std::filesystem::create_directories(cfg.output_dir);
      util::WallTimer timer;
      auto result = core::run_metaprep(ds.index, cfg);
      return std::pair{timer.seconds(), split_outputs(result.output_files)};
    };

    const auto [prep_nf_seconds, nf_files] = run_partition({}, "nofilter");
    const auto nf_lc = assembler::assemble_fastq(nf_files.lc, aopt);
    const auto nf_other = assembler::assemble_fastq(nf_files.other, aopt);

    const auto [prep_kf_seconds, kf_files] = run_partition({0, 30}, "kf30");
    const auto kf_lc = assembler::assemble_fastq(kf_files.lc, aopt);
    const auto kf_other = assembler::assemble_fastq(kf_files.other, aopt);

    // The paper's speedup definition: "the time for MEGAHIT assembly on the
    // full data set divided by the sum of METAPREP time and the time to
    // assemble the largest component reads (with filtering)" — Other runs
    // concurrently on a second node and is not on the critical path.
    const double prep = prep_kf_seconds;
    const double critical = prep + kf_lc.seconds;
    table.add_row({ds.index.name, util::TablePrinter::fmt(full.seconds * 1e3, 1),
                   util::TablePrinter::fmt(nf_lc.seconds * 1e3, 1),
                   util::TablePrinter::fmt(nf_other.seconds * 1e3, 1),
                   util::TablePrinter::fmt(kf_lc.seconds * 1e3, 1),
                   util::TablePrinter::fmt(kf_other.seconds * 1e3, 1),
                   util::TablePrinter::fmt(prep * 1e3, 1),
                   util::TablePrinter::fmt(full.seconds / critical, 2) + "x"});
  }
  table.print();
  std::printf("Paper: speedups 1.22x (HG), 1.31x (LL), 1.36x (MM); METAPREP time 39-168 s\n"
              "vs MEGAHIT 1082-2857 s.  Expect: LC assembly below full assembly, biggest\n"
              "gain where the filter shrinks LC most (MM).\n");
  return 0;
}
