// Table 2: description of datasets.
//
// Paper: HG 12.7M reads / 2.29 Gbp, LL 21.3M / 4.26, MM 54.8M / 11.07,
// IS 1132.8M / 223.26.  The presets reproduce the *relative* sizes at
// container scale; this bench prints the generated inventory.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Table 2: datasets (synthetic presets, scale=" +
                     util::TablePrinter::fmt(bench::bench_scale(), 2) + ")");
  util::TablePrinter table({"ID", "Read pairs R (x10^3)", "Size M (Mbp)", "Species",
                            "Genome total (kbp)", "vs HG"});

  bench::ScratchDir dir("tab2");
  double hg_pairs = 0.0;
  for (const auto preset :
       {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM, sim::Preset::IS}) {
    const auto ds = sim::make_preset(preset, bench::bench_scale(), dir.str());
    std::uint64_t genome_total = 0;
    for (auto g : ds.genome_lengths) genome_total += g;
    if (preset == sim::Preset::HG) hg_pairs = static_cast<double>(ds.num_pairs);
    table.add_row({ds.name,
                   util::TablePrinter::fmt(static_cast<double>(ds.num_pairs) / 1e3, 1),
                   util::TablePrinter::fmt(static_cast<double>(ds.total_bases) / 1e6, 2),
                   std::to_string(ds.genome_lengths.size()),
                   util::TablePrinter::fmt(static_cast<double>(genome_total) / 1e3, 0),
                   util::TablePrinter::fmt(static_cast<double>(ds.num_pairs) / hg_pairs, 2)});
  }
  table.print();
  std::printf("Paper read-count ratios: LL/HG=1.68, MM/HG=4.31, IS/HG=89.2 "
              "(IS preset compressed to 20x to stay container-runnable).\n");
  return 0;
}
