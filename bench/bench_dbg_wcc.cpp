// Ablation: Howe-style explicit de Bruijn graph WCC vs METAPREP's implicit
// read-graph CC.
//
// The paper's §1 motivation: "Instead of explicitly constructing the read
// graph or the de Bruijn graph, we use an implicit graph representation."
// The Howe approach must hold the distinct-k-mer table in memory; METAPREP
// holds only (k-mer, read) tuple buffers whose size shrinks with the number
// of passes.  Both produce identical partitions (the §2 equivalence
// theorem, unit-tested in test_baseline).
#include "baseline/howe_dbg.hpp"

#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Ablation: explicit dBG WCC (Howe) vs implicit read-graph CC (METAPREP)");

  util::TablePrinter table({"Dataset", "Method", "Time (ms)", "Peak k-mer/tuple mem (MB)",
                            "Components"});
  for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
    bench::ScratchDir dir("dbgwcc");
    const auto ds = bench::make_dataset(preset, dir.str());

    const auto dbg = baseline::howe_dbg_wcc(ds.index);
    table.add_row({ds.index.name, "Howe dBG WCC",
                   util::TablePrinter::fmt(dbg.seconds * 1e3, 1),
                   util::TablePrinter::fmt(static_cast<double>(dbg.kmer_table_bytes) / 1e6, 2),
                   std::to_string(dbg.num_wcc)});

    for (int s : {1, 4}) {
      core::MetaprepConfig cfg;
      cfg.k = 27;
      cfg.num_ranks = 1;
      cfg.threads_per_rank = 4;
      cfg.num_passes = s;
      cfg.write_output = false;
      util::WallTimer timer;
      const auto r = core::run_metaprep(ds.index, cfg);
      table.add_row({ds.index.name, "METAPREP S=" + std::to_string(s),
                     util::TablePrinter::fmt(timer.seconds() * 1e3, 1),
                     util::TablePrinter::fmt(
                         static_cast<double>(r.max_tuple_buffer_bytes) / 1e6, 2),
                     std::to_string(r.num_components)});
    }
  }
  table.print();
  std::printf("Component counts differ only by reads with no valid k-mers (singletons in\n"
              "the read graph, absent from the dBG).  Expect: METAPREP's tuple buffers\n"
              "shrink with S while the dBG k-mer table is a fixed floor.\n");
  return 0;
}
