// Table 7: largest component size (% of reads) under different k values and
// k-mer frequency filter (KF) settings.
//
// Paper (LC size, % reads):
//   k=27 none       : HG 95.5, LL 76.3, MM 99.5
//   k=63 none       : HG 87.1, LL 58.9, MM 97.8
//   k=27 KF<=30     : HG 73.5, LL 67.6, MM 45.0
//   k=27 10<=KF<=30 : HG 55.2, LL 45.2, MM 40.0
//   k=63 10<=KF<=30 : HG 51.6, LL 30.6, MM 59.0
// Shape to reproduce: larger k shrinks the giant component; the frequency
// filter shrinks it much more; combining both is strongest for HG/LL.
#include "bench_common.hpp"

namespace {

struct FilterSetting {
  std::string label;
  metaprep::core::KmerFreqFilter filter;
};

}  // namespace

int main() {
  using namespace metaprep;
  bench::print_title("Table 7: largest component size (% reads) vs k and KF filter");

  const std::vector<FilterSetting> settings{
      {"none", {}},
      {"KF<=30", {0, 30}},
      {"10<=KF<=30", {10, 30}},
  };
  const std::vector<int> ks{27, 63};

  util::TablePrinter table({"k", "Filter", "HG LC%", "LL LC%", "MM LC%", "HG #comp",
                            "LL #comp", "MM #comp"});

  // Index each dataset once per k.
  for (int k : ks) {
    bench::ScratchDir dir("tab7_k" + std::to_string(k));
    std::vector<bench::BenchDataset> datasets;
    for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
      datasets.push_back(bench::make_dataset(preset, dir.str(), k));
    }
    for (const auto& setting : settings) {
      // The paper reports (27,none), (63,none), (27,KF<=30), (27,10..30),
      // (63,10..30); skip the one combination it omits.
      if (k == 63 && setting.label == "KF<=30") continue;
      std::vector<std::string> row{std::to_string(k), setting.label};
      std::vector<std::string> comps;
      for (const auto& ds : datasets) {
        core::MetaprepConfig cfg;
        cfg.k = k;
        cfg.num_ranks = 2;
        cfg.threads_per_rank = 2;
        cfg.filter = setting.filter;
        cfg.write_output = false;
        const auto result = core::run_metaprep(ds.index, cfg);
        row.push_back(util::TablePrinter::fmt(result.largest_fraction * 100.0, 1));
        comps.push_back(std::to_string(result.num_components));
      }
      row.insert(row.end(), comps.begin(), comps.end());
      table.add_row(row);
    }
  }
  table.print();
  std::printf("Paper: k=27/none HG 95.5 LL 76.3 MM 99.5; k=63/none 87.1/58.9/97.8;\n"
              "k=27/KF<=30 73.5/67.6/45.0; k=27/10..30 55.2/45.2/40.0; k=63/10..30 51.6/30.6/59.0.\n");
  return 0;
}
