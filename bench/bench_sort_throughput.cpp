// §4.2.2: LocalSort performance comparison, plus the digit-width ablation.
//
// Paper: METAPREP's serial 8-bit-digit LSD radix sort reaches 154 M
// tuples/s vs 196 M tuples/s for the NUMA-aware sort of Polychroniou &
// Ross (78%); the NUMA-aware code requires 64-bit key AND payload, which we
// model with the kv64x64 variant.  The paper also reports that 8-bit digits
// beat 16-bit digits ("accessing bucket counts of 256 buckets repeatedly has
// better temporal locality"), which the digit-width sweep reproduces.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "sort/radix.hpp"
#include "util/rng.hpp"

namespace {

using namespace metaprep;

struct Data {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> vals32;
  std::vector<std::uint64_t> vals64;
};

Data make_data(std::size_t n) {
  util::Xoshiro256 rng(4242);
  Data d;
  d.keys.resize(n);
  d.vals32.resize(n);
  d.vals64.resize(n);
  // 54-bit keys: 2k bits for the paper's k=27 tuples.
  for (std::size_t i = 0; i < n; ++i) {
    d.keys[i] = rng.next() & ((1ULL << 54) - 1);
    d.vals32[i] = static_cast<std::uint32_t>(rng.next());
    d.vals64[i] = rng.next();
  }
  return d;
}

void BM_RadixKv64(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int digit_bits = static_cast<int>(state.range(1));
  const Data base = make_data(n);
  std::vector<std::uint64_t> keys(n), tk(n);
  std::vector<std::uint32_t> vals(n), tv(n);
  for (auto _ : state) {
    state.PauseTiming();
    keys = base.keys;
    vals = base.vals32;
    state.ResumeTiming();
    sort::radix_sort_kv64(keys, vals, tk, tv, 54, digit_bits);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetLabel("metaprep LocalSort tuple layout (12B), digit=" +
                 std::to_string(digit_bits));
}
BENCHMARK(BM_RadixKv64)
    ->Args({1 << 18, 8})    // the paper's configuration
    ->Args({1 << 18, 11})
    ->Args({1 << 18, 16})   // the rejected wide-digit variant
    ->Args({1 << 20, 8})
    ->Args({1 << 20, 16})
    ->Unit(benchmark::kMillisecond);

void BM_RadixKv64x64(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data base = make_data(n);
  std::vector<std::uint64_t> keys(n), vals(n), tk(n), tv(n);
  for (auto _ : state) {
    state.PauseTiming();
    keys = base.keys;
    vals = base.vals64;
    state.ResumeTiming();
    sort::radix_sort_kv64x64(keys, vals, tk, tv, 54, 8);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetLabel("NUMA-aware-baseline layout (64-bit key + 64-bit payload)");
}
BENCHMARK(BM_RadixKv64x64)->Arg(1 << 18)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void BM_StdSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data base = make_data(n);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) pairs[i] = {base.keys[i], base.vals32[i]};
    state.ResumeTiming();
    std::sort(pairs.begin(), pairs.end());
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetLabel("std::sort comparison baseline");
}
BENCHMARK(BM_StdSortPairs)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
