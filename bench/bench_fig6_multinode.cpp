// Figure 6: multi-node execution times and relative speedup (HG, LL, MM).
//
// Paper: P in {1,2,4,8,16} nodes, 24 threads each; HG uses 1 I/O pass, LL 2,
// MM 4.  Relative speedup on 16 nodes: 3.23x (HG) to 7.5x (MM); the gap to
// ideal is attributed to inter-node communication, the merge step, and
// KmerGen-I/O not scaling.  On this 1-core container, wall-clock speedup
// cannot materialize; we report measured per-step times plus the modeled
// interconnect seconds from the Edison cost model (8 GB/s links), which is
// where the multi-node *shape* (comm growing with P) shows up.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::maybe_enable_metrics();
  bench::print_title("Figure 6: multi-node scaling (simulated ranks), k=27, T=4");
  bench::BenchJsonWriter json("fig6_multinode");

  struct Case {
    sim::Preset preset;
    int passes;
  };
  const std::vector<Case> cases{{sim::Preset::HG, 1}, {sim::Preset::LL, 2},
                                {sim::Preset::MM, 4}};
  const std::vector<int> node_counts{1, 2, 4, 8, 16};

  for (const auto& c : cases) {
    bench::ScratchDir dir("fig6");
    const auto ds = bench::make_dataset(c.preset, dir.str());
    bench::print_title(ds.index.name + " (" + std::to_string(c.passes) + " pass(es))");
    util::TablePrinter table(
        bench::step_headers({"Nodes", "Sim-comm (ms)", "Tuples"}));
    double t1 = 0.0;
    std::vector<double> walls;
    for (int p : node_counts) {
      core::MetaprepConfig cfg;
      cfg.k = 27;
      cfg.num_ranks = p;
      cfg.threads_per_rank = 4;
      cfg.num_passes = c.passes;
      cfg.write_output = true;
      cfg.output_dir = dir.str();
      const auto run = bench::timed_run(ds.index, cfg);
      walls.push_back(run.wall_seconds);
      if (p == 1) t1 = run.wall_seconds;
      (void)t1;
      auto cells = bench::step_time_cells(run.result.step_times);
      cells.insert(cells.begin(), std::to_string(run.result.total_tuples));
      cells.insert(cells.begin(),
                   util::TablePrinter::fmt(run.result.sim_comm_seconds * 1e3, 3));
      cells.insert(cells.begin(), std::to_string(p));
      table.add_row(cells);
      json.add_row()
          .str("dataset", ds.index.name)
          .num("nodes", p)
          .num("wall_s", run.wall_seconds)
          .num("sim_comm_s", run.result.sim_comm_seconds)
          .num("tuples", run.result.total_tuples);
    }
    table.print();
    bench::print_relative_speedup("Relative speedup (wall, 1 core => ~1)", node_counts, walls);
  }
  json.emit();
  std::printf("\nPaper: 16-node relative speedup HG 3.23x, LL ~5x, MM 7.5x; MM (11.1 Gbp)\n"
              "processed in 22 s on 16 nodes.  Expect here: Merge-Comm/MergeCC and\n"
              "sim-comm growing with node count, per-rank tuple counts shrinking.\n");
  return 0;
}
