// Figure 9: KmerGen time — comparison with KMC 2.
//
// Paper: Stage1 of KMC 2 = read FASTQ + enumerate + bin super k-mers;
// Stage2 = sort + compact bins.  For METAPREP, Stage1 = KmerGen +
// KmerGen-Comm and Stage2 = LocalSort.  On HG, METAPREP wins Stage1 (no
// super-k-mer bookkeeping) but loses Stage2 (sorts one record per k-mer
// occurrence vs KMC 2's compacted bins).
#include "baseline/kmc_like.hpp"

#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Figure 9: KmerGen vs KMC2-like counter (single node, k=27)");

  util::TablePrinter table({"Dataset", "Impl", "Stage1 (ms)", "Stage2 (ms)", "Total (ms)",
                            "Records sorted"});
  for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
    bench::ScratchDir dir("fig9");
    const auto ds = bench::make_dataset(preset, dir.str());

    // METAPREP single node (stages per the paper's mapping).
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 1;
    cfg.threads_per_rank = 4;
    cfg.write_output = false;
    const auto mp = core::run_metaprep(ds.index, cfg);
    const double mp_stage1 = mp.step_times.get("KmerGen-I/O") + mp.step_times.get("KmerGen") +
                             mp.step_times.get("KmerGen-Comm");
    const double mp_stage2 = mp.step_times.get("LocalSort");
    table.add_row({ds.index.name, "METAPREP", util::TablePrinter::fmt(mp_stage1 * 1e3, 1),
                   util::TablePrinter::fmt(mp_stage2 * 1e3, 1),
                   util::TablePrinter::fmt((mp_stage1 + mp_stage2) * 1e3, 1),
                   std::to_string(mp.total_tuples)});

    baseline::KmcLikeOptions opt;
    opt.k = 27;
    opt.minimizer_len = 9;
    const auto kmc = baseline::kmc_like_count(ds.data.files, opt);
    table.add_row({ds.index.name, "KMC2-like",
                   util::TablePrinter::fmt(kmc.stage1_seconds * 1e3, 1),
                   util::TablePrinter::fmt(kmc.stage2_seconds * 1e3, 1),
                   util::TablePrinter::fmt((kmc.stage1_seconds + kmc.stage2_seconds) * 1e3, 1),
                   std::to_string(kmc.total_kmers) + " (in " +
                       std::to_string(kmc.super_kmers) + " super k-mers)"});
  }
  table.print();
  std::printf("Paper (HG, single node): METAPREP faster in Stage1 (KMC 2 pays super-k-mer\n"
              "overhead), slower in Stage2 (more tuples to sort than KMC 2's compacted\n"
              "bins).  Larger datasets flip Stage1 when METAPREP needs multiple passes.\n");
  return 0;
}
