// Figure 7: multi-node execution time for the Iowa Continuous Corn soil
// dataset — 16 nodes with 8 passes vs 64 nodes with 2 passes.
//
// Paper: 3.25x speedup from 16 to 64 nodes (4x ranks AND 4x fewer passes);
// KmerGen dominates both runs (unlike the single-node case where LocalSort
// dominates), because FASTQ files are redundantly read on every pass.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Figure 7: IS dataset, 16 nodes/8 passes vs 64 nodes/2 passes");

  bench::ScratchDir dir("fig7");
  // T=2 keeps total thread count sane (64 ranks x T threads on one core).
  const auto ds = bench::make_dataset(sim::Preset::IS, dir.str(), 27, 8, 128);

  struct Case {
    int nodes;
    int passes;
  };
  util::TablePrinter table(bench::step_headers({"Nodes", "Passes", "Sim-comm (ms)"}));
  std::vector<double> walls;
  for (const auto& c : std::vector<Case>{{16, 8}, {64, 2}}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = c.nodes;
    cfg.threads_per_rank = 2;
    cfg.num_passes = c.passes;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    util::WallTimer timer;
    const auto result = core::run_metaprep(ds.index, cfg);
    walls.push_back(timer.seconds());
    auto cells = bench::step_time_cells(result.step_times);
    cells.insert(cells.begin(),
                 util::TablePrinter::fmt(result.sim_comm_seconds * 1e3, 3));
    cells.insert(cells.begin(), std::to_string(c.passes));
    cells.insert(cells.begin(), std::to_string(c.nodes));
    table.add_row(cells);
  }
  table.print();
  std::printf("Wall: 16N/8S %.0f ms, 64N/2S %.0f ms (ratio %.2fx; paper: 3.25x on real\n"
              "hardware — here ranks share one core, so the ratio reflects only the\n"
              "4x reduction in redundant I/O passes, visible in KmerGen-I/O+KmerGen).\n",
              walls[0] * 1e3, walls[1] * 1e3, walls[0] / walls[1]);
  return 0;
}
