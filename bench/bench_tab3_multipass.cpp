// Table 3: METAPREP execution time and memory use for the MM dataset when
// varying the number of I/O passes (all runs use 4 nodes).
//
// Paper shape: KmerGen time grows with passes (FASTQ files redundantly
// read); KmerGen-Comm and MergeCC shrink; LocalSort stays flat (same total
// tuples); LocalCC shrinks (the §3.5.1 component-ID locality optimization
// engages from pass 2); CC-I/O flat; memory/node drops sharply
// (49.7 -> 27.0 -> 15.6 -> 10.0 GB in the paper).
#include "core/memory_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Table 3: multipass time/memory sweep, MM, P=4, T=4, k=27");

  bench::ScratchDir dir("tab3");
  bench::maybe_enable_metrics();
  const auto ds = bench::make_dataset(sim::Preset::MM, dir.str());
  // Baseline the delta tracker here so indexing-time metrics (and, per row,
  // every earlier configuration's counts) stop leaking into later rows: each
  // row below embeds only the metrics its own run accrued.
  (void)obs::metrics().snapshot_delta();

  util::TablePrinter table(bench::step_headers(
      {"Passes", "Mode", "Peak tuple buf/rank (MB)", "Model est./rank (MB)"}));
  bench::BenchJsonWriter json("tab3_multipass");
  for (int s : {1, 2, 4, 8}) {
   for (const char* mode : {"barrier", "overlap"}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 4;
    cfg.threads_per_rank = 4;
    cfg.num_passes = s;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    cfg.pipeline_mode = std::string(mode) == "overlap" ? core::PipelineMode::kOverlap
                                                       : core::PipelineMode::kBarrier;
    const auto run = bench::timed_run(ds.index, cfg);
    const auto& result = run.result;

    core::MemoryModelInput mm;
    mm.total_tuples = ds.index.mer_hist.total();
    mm.total_reads = ds.index.total_reads;
    mm.num_chunks = ds.index.part.num_chunks();
    mm.max_chunk_bytes = ds.index.max_chunk_bytes();
    mm.m = ds.index.mer_hist.m;
    mm.num_ranks = 4;
    mm.threads_per_rank = 4;
    mm.num_passes = s;
    const auto est = core::estimate_memory(mm);

    auto cells = bench::step_time_cells(result.step_times);
    cells.insert(cells.begin(),
                 util::TablePrinter::fmt(static_cast<double>(est.total) / 1e6, 2));
    cells.insert(cells.begin(),
                 util::TablePrinter::fmt(
                     static_cast<double>(result.max_tuple_buffer_bytes) / 1e6, 2));
    cells.insert(cells.begin(), mode);
    cells.insert(cells.begin(), std::to_string(s));
    table.add_row(cells);
    json.add_row()
        .str("mode", mode)
        .num("passes", s)
        .num("wall_s", run.wall_seconds)
        .num("peak_tuple_buf_bytes", result.max_tuple_buffer_bytes)
        .json("metrics_delta", obs::metrics().snapshot_delta());
   }
  }
  table.print();
  json.emit();
  std::printf("Paper (MM, 4 nodes): memory/node 49.7 / 27.0 / 15.6 / 10.0 GB for\n"
              "S = 1/2/4/8; KmerGen 11->33 s rising, KmerGen-Comm 20.9->8.6 s falling,\n"
              "LocalSort ~15 s flat, LocalCC 6.5->2.5 s falling, CC-I/O ~5.4 s flat.\n");
  return 0;
}
