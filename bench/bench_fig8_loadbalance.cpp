// Figure 8: load balance among 16 MPI tasks (MM dataset) — box plot of
// per-task execution times for each preprocessing step.
//
// Paper: KmerGen, LocalSort and LocalCC-Opt balance well thanks to the
// index-based static partitioning; MergeCC-Comm and MergeCC spread widely
// because successive merge rounds involve fewer tasks.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::maybe_enable_metrics();
  bench::print_title("Figure 8: per-rank load balance, MM dataset, 16 ranks, 4 passes");

  bench::ScratchDir dir("fig8");
  // 128 chunks so every one of the 16x2 workers gets several chunks
  // (the paper uses 384 chunks for MM).
  const auto ds = bench::make_dataset(sim::Preset::MM, dir.str(), 27, 8, 128);

  core::MetaprepConfig cfg;
  cfg.k = 27;
  cfg.num_ranks = 16;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 4;
  cfg.write_output = true;
  cfg.output_dir = dir.str();
  const auto run = bench::timed_run(ds.index, cfg);
  const auto& result = run.result;

  bench::BenchJsonWriter json("fig8_loadbalance");
  util::TablePrinter table({"Step", "min (ms)", "q1 (ms)", "median (ms)", "q3 (ms)",
                            "max (ms)", "max/median"});
  for (const auto& step : bench::step_order()) {
    std::vector<double> samples;
    for (const auto& rt : result.rank_times) samples.push_back(rt.get(step) * 1e3);
    const auto b = util::box_stats(samples);
    if (b.max == 0.0) continue;  // step absent in this configuration
    table.add_row({step, util::TablePrinter::fmt(b.min, 2), util::TablePrinter::fmt(b.q1, 2),
                   util::TablePrinter::fmt(b.median, 2), util::TablePrinter::fmt(b.q3, 2),
                   util::TablePrinter::fmt(b.max, 2),
                   b.median > 0 ? util::TablePrinter::fmt(b.max / b.median, 2) : "inf"});
    json.add_row()
        .str("step", step)
        .num("min_ms", b.min)
        .num("median_ms", b.median)
        .num("max_ms", b.max);
  }
  table.print();
  json.add_row().str("step", "wall").num("max_ms", run.wall_seconds * 1e3);
  json.emit();
  std::printf("Paper: compute steps (KmerGen/LocalSort/LocalCC-Opt) tightly balanced via\n"
              "the precomputed indices; Merge-Comm/MergeCC spread widely (log P rounds\n"
              "with fewer participants each round).\n");
  return 0;
}
