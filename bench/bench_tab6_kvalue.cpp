// Table 6: impact of k on single-node METAPREP execution time (MM dataset).
//
// Paper: k=63 enumerates fewer tuples than k=27 (4.12 vs 8.4 billion) so
// every step except LocalSort gets cheaper despite the 20-byte tuples
// (buffers 78.65 vs 91 GB); LocalSort slows down because 63-mers need 16
// radix passes instead of 8.  Net: the 63-mer run is faster overall.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Table 6: k=27 vs k=63, MM dataset, single node (T=4)");

  util::TablePrinter table(bench::step_headers(
      {"k", "Tuples", "Tuple bytes", "Peak buf (MB)", "Radix passes"}));
  for (int k : {27, 63}) {
    bench::ScratchDir dir("tab6");
    const auto ds = bench::make_dataset(sim::Preset::MM, dir.str(), k);
    core::MetaprepConfig cfg;
    cfg.k = k;
    cfg.num_ranks = 1;
    cfg.threads_per_rank = 4;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    const auto result = core::run_metaprep(ds.index, cfg);
    auto cells = bench::step_time_cells(result.step_times);
    cells.insert(cells.begin(), std::to_string((2 * k + 7) / 8));  // 8-bit digits
    cells.insert(cells.begin(),
                 util::TablePrinter::fmt(
                     static_cast<double>(result.max_tuple_buffer_bytes) / 1e6, 2));
    cells.insert(cells.begin(), k <= 32 ? "12" : "20");
    cells.insert(cells.begin(), std::to_string(result.total_tuples));
    cells.insert(cells.begin(), std::to_string(k));
    table.add_row(cells);
  }
  table.print();
  std::printf("Paper (MM): total 144.2 s at k=27 vs 137.8 s at k=63; KmerGen 77->60 s,\n"
              "LocalSort 55->68 s (8 vs 16 radix passes), LocalCC 6.4->5.2 s.\n"
              "Expect: fewer tuples at k=63, LocalSort the only step that slows.\n");
  return 0;
}
