// Ablation for §3.2.1: scalar vs 4-way vectorized canonical k-mer
// generation, across k (64-bit and 128-bit paths) and read lengths.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "kmer/scanner.hpp"
#include "sim/genome.hpp"

namespace {

using namespace metaprep;

std::vector<std::string> make_reads(std::size_t count, std::size_t len) {
  const auto genome = sim::random_genome(count * 37 + len + 1000, 777);
  std::vector<std::string> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    reads.push_back(genome.substr((i * 37) % (genome.size() - len), len));
  }
  return reads;
}

void BM_ScanScalar(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  const auto reads = make_reads(1000, len);
  std::vector<std::uint64_t> out;
  std::int64_t kmers = 0;
  for (auto _ : state) {
    out.clear();
    for (const auto& r : reads) kmer::scan_canonical_kmers64(r, k, out);
    benchmark::DoNotOptimize(out.data());
    kmers += static_cast<std::int64_t>(out.size());
  }
  state.SetItemsProcessed(kmers);
  state.SetLabel("scalar rolling scanner");
}
BENCHMARK(BM_ScanScalar)
    ->Args({27, 100})
    ->Args({27, 250})
    ->Args({27, 1000})
    ->Args({27, 5000})
    ->Args({15, 100})
    ->Args({31, 150});

void BM_ScanVectorized(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  const auto reads = make_reads(1000, len);
  std::vector<std::uint64_t> out;
  std::int64_t kmers = 0;
  for (auto _ : state) {
    out.clear();
    for (const auto& r : reads) kmer::scan_canonical_kmers64_x4(r, k, out);
    benchmark::DoNotOptimize(out.data());
    kmers += static_cast<std::int64_t>(out.size());
  }
  state.SetItemsProcessed(kmers);
  state.SetLabel("4-way vectorized scanner (Figure 3)");
}
BENCHMARK(BM_ScanVectorized)
    ->Args({27, 100})
    ->Args({27, 250})
    ->Args({27, 1000})
    ->Args({27, 5000})
    ->Args({15, 100})
    ->Args({31, 150});

void BM_Scan128(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto reads = make_reads(1000, 150);
  std::int64_t kmers = 0;
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& r : reads) {
      kmer::for_each_canonical_kmer128(r, k, [&](kmer::Kmer128 km, std::size_t) {
        acc ^= km.lo;
        ++kmers;
      });
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(kmers);
  state.SetLabel("128-bit scanner (k<=63, the paper's 20-byte tuple path)");
}
BENCHMARK(BM_Scan128)->Arg(45)->Arg(63);

}  // namespace

BENCHMARK_MAIN();
