// Figure 5: single-node execution times and relative speedup (HG dataset).
//
// Paper: one MPI task, 1..24 threads on Ganga and Edison; HG fits in one
// node's memory so 1 I/O pass.  On Edison the speedup reaches 14.5x at 24
// threads and LocalSort is the most time-consuming step at all thread
// counts.  NOTE: this container exposes a single CPU core, so wall-clock
// speedup cannot materialize here; the bench still exercises every thread
// count and reports both wall time and the per-step breakdown (see
// EXPERIMENTS.md for the interpretation).
#include "bench_common.hpp"

#include "util/buffer_pool.hpp"

#include <algorithm>
#include <map>

int main() {
  using namespace metaprep;
  bench::maybe_enable_metrics();
  bench::ScratchDir dir("fig5");
  const auto ds = bench::make_dataset(sim::Preset::HG, dir.str());

  bench::print_title("Figure 5: single-node thread scaling, HG, k=27, 1 pass");
  util::TablePrinter table(bench::step_headers({"Threads"}));
  bench::BenchJsonWriter json("fig5_singlenode");
  double t1 = 0.0;
  std::vector<double> totals;
  const std::vector<int> thread_counts{1, 2, 4, 8, 12, 24};
  for (int t : thread_counts) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 1;
    cfg.threads_per_rank = t;
    cfg.num_passes = 1;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    const auto run = bench::timed_run(ds.index, cfg);
    totals.push_back(run.wall_seconds);
    if (t == 1) t1 = run.wall_seconds;
    auto cells = bench::step_time_cells(run.result.step_times);
    cells.insert(cells.begin(), std::to_string(t));
    table.add_row(cells);
    json.add_row()
        .str("mode", "barrier")
        .num("passes", 1)
        .num("threads", t)
        .num("wall_s", run.wall_seconds)
        .num("tuples", run.result.total_tuples)
        .num("mergecc_s", run.result.step_times.get("MergeCC"))
        .num("merge_comm_s", run.result.step_times.get("Merge-Comm"))
        .num("ccio_s", run.result.step_times.get("CC-I/O"));
  }
  table.print();

  // Pipeline-mode axis: same dataset, S=2 so the overlap schedule has a full
  // pass pair to fuse (one chunk read+scan feeds both passes) and the
  // BufferPool sees within-group reuse.  bench_guard.sh keys on these rows.
  bench::print_title("Figure 5 (mode axis): barrier vs overlap, T=4, 2 passes");
  util::TablePrinter ab(bench::step_headers({"Mode"}));
  auto make_mode_cfg = [&](const char* mode) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 1;
    cfg.threads_per_rank = 4;
    cfg.num_passes = 2;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    cfg.pipeline_mode = std::string(mode) == "overlap" ? core::PipelineMode::kOverlap
                                                       : core::PipelineMode::kBarrier;
    return cfg;
  };
  // The timed A/B pairs run back to back, with nothing (not even an untraced
  // repeat) between the two sides of a pair: the overlap-vs-barrier ratio is
  // gated by bench_guard.sh, and any extra run shifts the allocator/pool
  // state one side depends on.  Each pair is sampled three times per process
  // (interleaved, min wall per mode kept) — the same noise filter the
  // read-store axis uses: on this oversubscribed single core a lone sample
  // can swing the ~60 ms walls by several percent, enough to flip the gated
  // ratio, while the min of three adjacent samples is stable.  The traced
  // repeats for the critical-path attribution follow AFTER all timed
  // samples, where they can perturb nothing.
  struct ModeRun {
    std::string mode;
    bench::TimedRun run;
    std::uint64_t reuse_hits;
  };
  std::vector<ModeRun> timed;
  for (int rep = 0; rep < 3; ++rep) {
    for (const char* mode : {"barrier", "overlap"}) {
      const core::MetaprepConfig cfg = make_mode_cfg(mode);
      const std::uint64_t hits_before = util::BufferPool::global().reuse_hits();
      auto run = bench::timed_run(ds.index, cfg);
      const std::uint64_t hits_delta =
          util::BufferPool::global().reuse_hits() - hits_before;
      auto it = std::find_if(timed.begin(), timed.end(),
                             [&](const ModeRun& mr) { return mr.mode == mode; });
      if (it == timed.end()) {
        timed.push_back({mode, std::move(run), hits_delta});
      } else if (run.wall_seconds < it->run.wall_seconds) {
        *it = {mode, std::move(run), hits_delta};
      }
    }
  }
  // Untimed traced repeats: per-span tracing perturbs the measured wall, so
  // only the attribution (not the timing) of these runs is recorded.
  std::map<std::string, obs::CriticalPath> crit;
  for (const char* mode : {"barrier", "overlap"}) {
    core::MetaprepConfig traced_cfg = make_mode_cfg(mode);
    traced_cfg.write_output = false;
    traced_cfg.attr_out = dir.str() + "/fig5_attr_" + mode + ".json";
    const auto traced = core::run_metaprep(ds.index, traced_cfg);
    if (traced.has_attr) crit[mode] = traced.attr.critical_path;
  }
  for (const ModeRun& mr : timed) {
    auto cells = bench::step_time_cells(mr.run.result.step_times);
    cells.insert(cells.begin(), mr.mode);
    ab.add_row(cells);
    auto& row = json.add_row()
        .str("mode", mr.mode)
        .num("passes", 2)
        .num("threads", 4)
        .num("wall_s", mr.run.wall_seconds)
        .num("tuples", mr.run.result.total_tuples)
        .num("mergecc_s", mr.run.result.step_times.get("MergeCC"))
        .num("merge_comm_s", mr.run.result.step_times.get("Merge-Comm"))
        .num("ccio_s", mr.run.result.step_times.get("CC-I/O"))
        .num("pool_reuse_hits", mr.reuse_hits);
    if (auto it = crit.find(mr.mode); it != crit.end()) {
      row.num("crit_path_s", it->second.length_s)
          .num("crit_wait_s", it->second.wait_s)
          .num("crit_compute_s", it->second.compute_s);
    }
  }
  ab.print();

  // Read-store axis (XL-mini): the XL preset is ~15x HG, big enough that the
  // per-pass text re-parse is a measurable slice of KmerGen.  Packed pays a
  // single PackedIngest up front, then every pass scans the 2-bit arena
  // word-at-a-time — KmerGen-I/O must drop to zero from the first pass on.
  // bench_guard.sh keys on these rows ("text"/"packed") and enforces the
  // packed margin.  Each store is timed three times, interleaved, so the
  // guard's min-of-N sees 3x the samples per process and neither store
  // sits in a fixed (page-cache / frequency-ramp) position.
  bench::print_title(
      "Figure 5 (read-store axis): text vs packed arena, XL-mini, T=4, 2 passes");
  const auto xl = bench::make_dataset(sim::Preset::XL, dir.str());
  util::TablePrinter rs(bench::step_headers({"Store"}));
  for (const char* store : {"text", "packed", "text", "packed", "text", "packed"}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 1;
    cfg.threads_per_rank = 4;
    cfg.num_passes = 2;
    cfg.write_output = false;
    cfg.read_store = std::string(store) == "packed" ? core::ReadStore::kPacked
                                                    : core::ReadStore::kText;
    const auto run = bench::timed_run(xl.index, cfg);
    auto cells = bench::step_time_cells(run.result.step_times);
    cells.insert(cells.begin(), store);
    rs.add_row(cells);
    json.add_row()
        .str("mode", store)
        .num("passes", 2)
        .num("threads", 4)
        .num("wall_s", run.wall_seconds)
        .num("tuples", run.result.total_tuples)
        .num("kmergen_io_s", run.result.step_times.get("KmerGen-I/O"))
        .num("kmergen_s", run.result.step_times.get("KmerGen"))
        .num("packed_ingest_s", run.result.packed_ingest_seconds)
        .num("packed_store_bytes", run.result.packed_store_bytes);
  }
  rs.print();

  // Exchange-compression axis (XL-mini): --comm-compress=both vs none at
  // P=4, where cross-rank traffic exists (at P=1 every block is a
  // self-send and the wire ships nothing).  bench_guard.sh records the
  // achieved alltoallv byte reduction (1 - both/none) in the committed
  // baseline on every run and, with METAPREP_GATE_COMM_BYTES=1, gates it
  // at >= 30%.  Two interleaved samples per mode; the byte counters are
  // deterministic, only the walls jitter.
  bench::print_title(
      "Figure 5 (comm axis): exchange compression, XL-mini, P=4 T=2, 2 passes");
  util::TablePrinter cc({"Compress", "Wall (ms)", "Shipped (KiB)", "Raw (KiB)",
                         "Ratio", "Records", "Dropped"});
  for (const char* compress : {"comm_none", "comm_both", "comm_none", "comm_both"}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 4;
    cfg.threads_per_rank = 2;
    cfg.num_passes = 2;
    cfg.write_output = false;
    cfg.comm_compress = std::string(compress) == "comm_both"
                            ? core::CommCompress::kBoth
                            : core::CommCompress::kNone;
    const auto run = bench::timed_run(xl.index, cfg);
    const auto& r = run.result;
    cc.add_row({compress, util::TablePrinter::fmt(run.wall_seconds * 1e3, 1),
                util::TablePrinter::fmt(static_cast<double>(r.exchange_bytes) / 1024.0, 1),
                util::TablePrinter::fmt(
                    static_cast<double>(r.exchange_bytes_raw) / 1024.0, 1),
                util::TablePrinter::fmt(r.superkmer_ratio, 3),
                std::to_string(r.superkmer_records), std::to_string(r.bloom_dropped)});
    json.add_row()
        .str("mode", compress)
        .num("passes", 2)
        .num("threads", 2)
        .num("wall_s", run.wall_seconds)
        .num("tuples", r.total_tuples)
        .num("alltoallv_bytes", r.exchange_bytes)
        .num("alltoallv_bytes_raw", r.exchange_bytes_raw)
        .num("superkmer_records", r.superkmer_records)
        .num("bloom_dropped", r.bloom_dropped);
  }
  cc.print();

  // Binned-output axis: the scaled merge/output tail at P=4 with greedy
  // component binning.  Reports the tail phase walls, the label-scatter
  // bytes (vs the old O(R) per-rank broadcast), and the achieved bin skew.
  bench::print_title("Figure 5 (output axis): load-balanced binning, P=4 T=2, 2 passes");
  util::TablePrinter ob({"Bins", "MergeCC (ms)", "Merge-Comm (ms)", "CC-I/O (ms)",
                         "Scatter (KiB)", "Skew"});
  for (int bins : {0, 4}) {
    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = 4;
    cfg.threads_per_rank = 2;
    cfg.num_passes = 2;
    cfg.write_output = true;
    cfg.output_dir = dir.str();
    cfg.output_bins = bins;
    const auto run = bench::timed_run(ds.index, cfg);
    ob.add_row({bins == 0 ? "top-1 (legacy)" : std::to_string(bins),
                util::TablePrinter::fmt(run.result.step_times.get("MergeCC") * 1e3, 1),
                util::TablePrinter::fmt(run.result.step_times.get("Merge-Comm") * 1e3, 1),
                util::TablePrinter::fmt(run.result.step_times.get("CC-I/O") * 1e3, 1),
                util::TablePrinter::fmt(
                    static_cast<double>(run.result.label_scatter_bytes) / 1024.0, 1),
                util::TablePrinter::fmt(run.result.bin_skew, 3)});
    json.add_row()
        .str("mode", bins == 0 ? "binned_off" : "binned")
        .num("passes", 2)
        .num("threads", 2)
        .num("wall_s", run.wall_seconds)
        .num("mergecc_s", run.result.step_times.get("MergeCC"))
        .num("merge_comm_s", run.result.step_times.get("Merge-Comm"))
        .num("ccio_s", run.result.step_times.get("CC-I/O"))
        .num("label_scatter_bytes", run.result.label_scatter_bytes)
        .num("bin_skew", run.result.bin_skew);
  }
  ob.print();

  util::TablePrinter speedup({"Threads", "Wall (ms)", "Relative speedup"});
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    speedup.add_row({std::to_string(thread_counts[i]),
                     util::TablePrinter::fmt(totals[i] * 1e3, 1),
                     util::TablePrinter::fmt(t1 / totals[i], 2)});
  }
  speedup.print();
  json.emit();
  std::printf("Paper (Edison): 14.5x speedup at 24 threads; LocalSort dominant at every\n"
              "thread count. This container has 1 physical core: oversubscribed threads\n"
              "exercise the code paths but cannot produce wall-clock speedup.\n");
  return 0;
}
