// Table 4: execution time comparison with the metagenome partitioning work
// of Flick et al. (AP_LB).
//
// Paper: METAPREP beats AP_LB 2.25x-4.22x on 16 Edison nodes, "primarily
// because our method requires fewer communication rounds (log P) in
// comparison to the O(log M) iterations for the Shiloach-Vishkin algorithm.
// AP_LB requires 19, 20, and 21 iterations for the HG, LL, and MM datasets."
#include <cmath>

#include "baseline/ap_lb.hpp"

#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Table 4: METAPREP vs AP_LB (Shiloach-Vishkin) partitioning");

  const int P = 16;
  util::TablePrinter table({"Dataset", "METAPREP (ms)", "AP_LB (ms)", "Speedup",
                            "METAPREP merge rounds (log P)", "AP_LB SV iterations"});
  for (const auto preset : {sim::Preset::HG, sim::Preset::LL, sim::Preset::MM}) {
    bench::ScratchDir dir("tab4");
    const auto ds = bench::make_dataset(preset, dir.str());

    core::MetaprepConfig cfg;
    cfg.k = 27;
    cfg.num_ranks = P;
    cfg.threads_per_rank = 2;
    cfg.write_output = false;
    util::WallTimer mp_timer;
    const auto mp = core::run_metaprep(ds.index, cfg);
    const double mp_seconds = mp_timer.seconds();

    const auto ap = baseline::ap_lb_partition(ds.index);

    table.add_row({ds.index.name, util::TablePrinter::fmt(mp_seconds * 1e3, 1),
                   util::TablePrinter::fmt(ap.total_seconds() * 1e3, 1),
                   util::TablePrinter::fmt(ap.total_seconds() / mp_seconds, 2) + "x",
                   std::to_string(static_cast<int>(std::ceil(std::log2(P)))),
                   std::to_string(ap.sv_iterations)});
  }
  table.print();
  std::printf("Paper (16 nodes): speedups 4.22x (HG), 2.25x (LL), 2.86x (MM); AP_LB needs\n"
              "19/20/21 SV iterations vs METAPREP's log P = 4 merge rounds.\n");
  return 0;
}
