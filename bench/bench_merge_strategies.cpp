// Ablation: MergeCC pairwise tree (paper §3.6) vs component-graph
// contraction (paper §5 future work, after Iverson et al.).
//
// "The scalability of METAPREP is partially limited by the MergeCC step,
// the complexity of which increases with increasing number of MPI tasks.
// This step could be improved by adopting the component graph contraction
// methods described in [16]."  The tree ships (P-1) full 4R-byte arrays
// over ceil(log P) rounds; contraction ships 8 bytes per locally-merged
// vertex in one round — a large win precisely when components are sparse
// (filtered runs) and a loss in dense giant-component runs.
#include "bench_common.hpp"

int main() {
  using namespace metaprep;
  bench::print_title("Ablation: MergeCC strategy (MM dataset, k=27, T=2)");

  bench::ScratchDir dir("merge");
  const auto ds = bench::make_dataset(sim::Preset::MM, dir.str());

  util::TablePrinter table({"P", "Filter", "Strategy", "Merge-Comm (ms)", "MergeCC (ms)",
                            "Bytes shipped", "Components"});
  for (int p : {4, 8, 16}) {
    for (const bool filtered : {false, true}) {
      for (const auto strategy :
           {core::MergeStrategy::kPairwiseTree, core::MergeStrategy::kContraction}) {
        core::MetaprepConfig cfg;
        cfg.k = 27;
        cfg.num_ranks = p;
        cfg.threads_per_rank = 2;
        if (filtered) cfg.filter = {10, 30};
        cfg.merge_strategy = strategy;
        cfg.write_output = false;
        const auto r = core::run_metaprep(ds.index, cfg);
        table.add_row({std::to_string(p), filtered ? "10<=KF<=30" : "none",
                       strategy == core::MergeStrategy::kPairwiseTree ? "tree" : "contraction",
                       util::TablePrinter::fmt(r.step_times.get("Merge-Comm") * 1e3, 2),
                       util::TablePrinter::fmt(r.step_times.get("MergeCC") * 1e3, 2),
                       std::to_string(r.merge_comm_bytes),
                       std::to_string(r.num_components)});
      }
    }
  }
  table.print();
  std::printf("Expect: tree bytes = (P-1)*4R regardless of density; contraction bytes\n"
              "track merged vertices (small under the filter, large for the giant\n"
              "component), and both strategies yield identical components.\n");
  return 0;
}
