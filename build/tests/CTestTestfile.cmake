# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_thread_team[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_kmer128[1]_include.cmake")
include("/root/repo/build/tests/test_scanner[1]_include.cmake")
include("/root/repo/build/tests/test_minimizer[1]_include.cmake")
include("/root/repo/build/tests/test_fastq[1]_include.cmake")
include("/root/repo/build/tests/test_mpsim[1]_include.cmake")
include("/root/repo/build/tests/test_sort[1]_include.cmake")
include("/root/repo/build/tests/test_dsu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_norm[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_manifest[1]_include.cmake")
include("/root/repo/build/tests/test_indices[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_memory_model[1]_include.cmake")
include("/root/repo/build/tests/test_obs[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
