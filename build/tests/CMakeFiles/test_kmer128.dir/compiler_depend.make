# Empty compiler generated dependencies file for test_kmer128.
# This may be replaced when dependencies are built.
