file(REMOVE_RECURSE
  "CMakeFiles/test_kmer128.dir/test_kmer128.cpp.o"
  "CMakeFiles/test_kmer128.dir/test_kmer128.cpp.o.d"
  "test_kmer128"
  "test_kmer128.pdb"
  "test_kmer128[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmer128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
