file(REMOVE_RECURSE
  "CMakeFiles/test_minimizer.dir/test_minimizer.cpp.o"
  "CMakeFiles/test_minimizer.dir/test_minimizer.cpp.o.d"
  "test_minimizer"
  "test_minimizer.pdb"
  "test_minimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
