# Empty compiler generated dependencies file for test_dsu.
# This may be replaced when dependencies are built.
