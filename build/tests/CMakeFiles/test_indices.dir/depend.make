# Empty dependencies file for test_indices.
# This may be replaced when dependencies are built.
