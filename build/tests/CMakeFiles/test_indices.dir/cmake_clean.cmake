file(REMOVE_RECURSE
  "CMakeFiles/test_indices.dir/test_indices.cpp.o"
  "CMakeFiles/test_indices.dir/test_indices.cpp.o.d"
  "test_indices"
  "test_indices.pdb"
  "test_indices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
