file(REMOVE_RECURSE
  "CMakeFiles/test_norm.dir/test_norm.cpp.o"
  "CMakeFiles/test_norm.dir/test_norm.cpp.o.d"
  "test_norm"
  "test_norm.pdb"
  "test_norm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
