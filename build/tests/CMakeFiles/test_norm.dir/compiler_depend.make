# Empty compiler generated dependencies file for test_norm.
# This may be replaced when dependencies are built.
