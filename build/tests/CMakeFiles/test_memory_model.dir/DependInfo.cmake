
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_memory_model.cpp" "tests/CMakeFiles/test_memory_model.dir/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/test_memory_model.dir/test_memory_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaprep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/mp_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/norm/CMakeFiles/mp_norm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/mp_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mp_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/dsu/CMakeFiles/mp_dsu.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/mp_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
