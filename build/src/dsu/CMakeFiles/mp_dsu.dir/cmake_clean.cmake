file(REMOVE_RECURSE
  "CMakeFiles/mp_dsu.dir/dsu.cpp.o"
  "CMakeFiles/mp_dsu.dir/dsu.cpp.o.d"
  "CMakeFiles/mp_dsu.dir/shiloach_vishkin.cpp.o"
  "CMakeFiles/mp_dsu.dir/shiloach_vishkin.cpp.o.d"
  "libmp_dsu.a"
  "libmp_dsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_dsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
