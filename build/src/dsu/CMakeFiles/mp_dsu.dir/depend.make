# Empty dependencies file for mp_dsu.
# This may be replaced when dependencies are built.
