file(REMOVE_RECURSE
  "libmp_dsu.a"
)
