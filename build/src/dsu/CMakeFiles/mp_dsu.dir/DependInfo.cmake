
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsu/dsu.cpp" "src/dsu/CMakeFiles/mp_dsu.dir/dsu.cpp.o" "gcc" "src/dsu/CMakeFiles/mp_dsu.dir/dsu.cpp.o.d"
  "/root/repo/src/dsu/shiloach_vishkin.cpp" "src/dsu/CMakeFiles/mp_dsu.dir/shiloach_vishkin.cpp.o" "gcc" "src/dsu/CMakeFiles/mp_dsu.dir/shiloach_vishkin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
