file(REMOVE_RECURSE
  "libmp_baseline.a"
)
