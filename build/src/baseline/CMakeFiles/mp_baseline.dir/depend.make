# Empty dependencies file for mp_baseline.
# This may be replaced when dependencies are built.
