file(REMOVE_RECURSE
  "CMakeFiles/mp_baseline.dir/ap_lb.cpp.o"
  "CMakeFiles/mp_baseline.dir/ap_lb.cpp.o.d"
  "CMakeFiles/mp_baseline.dir/howe_dbg.cpp.o"
  "CMakeFiles/mp_baseline.dir/howe_dbg.cpp.o.d"
  "CMakeFiles/mp_baseline.dir/kmc_like.cpp.o"
  "CMakeFiles/mp_baseline.dir/kmc_like.cpp.o.d"
  "libmp_baseline.a"
  "libmp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
