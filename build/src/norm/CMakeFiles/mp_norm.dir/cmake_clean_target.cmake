file(REMOVE_RECURSE
  "libmp_norm.a"
)
