
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/norm/count_min.cpp" "src/norm/CMakeFiles/mp_norm.dir/count_min.cpp.o" "gcc" "src/norm/CMakeFiles/mp_norm.dir/count_min.cpp.o.d"
  "/root/repo/src/norm/diginorm.cpp" "src/norm/CMakeFiles/mp_norm.dir/diginorm.cpp.o" "gcc" "src/norm/CMakeFiles/mp_norm.dir/diginorm.cpp.o.d"
  "/root/repo/src/norm/trim.cpp" "src/norm/CMakeFiles/mp_norm.dir/trim.cpp.o" "gcc" "src/norm/CMakeFiles/mp_norm.dir/trim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/mp_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
