# Empty compiler generated dependencies file for mp_norm.
# This may be replaced when dependencies are built.
