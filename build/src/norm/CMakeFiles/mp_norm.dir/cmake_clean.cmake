file(REMOVE_RECURSE
  "CMakeFiles/mp_norm.dir/count_min.cpp.o"
  "CMakeFiles/mp_norm.dir/count_min.cpp.o.d"
  "CMakeFiles/mp_norm.dir/diginorm.cpp.o"
  "CMakeFiles/mp_norm.dir/diginorm.cpp.o.d"
  "CMakeFiles/mp_norm.dir/trim.cpp.o"
  "CMakeFiles/mp_norm.dir/trim.cpp.o.d"
  "libmp_norm.a"
  "libmp_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
