
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/binary.cpp" "src/io/CMakeFiles/mp_io.dir/binary.cpp.o" "gcc" "src/io/CMakeFiles/mp_io.dir/binary.cpp.o.d"
  "/root/repo/src/io/fasta.cpp" "src/io/CMakeFiles/mp_io.dir/fasta.cpp.o" "gcc" "src/io/CMakeFiles/mp_io.dir/fasta.cpp.o.d"
  "/root/repo/src/io/fastq.cpp" "src/io/CMakeFiles/mp_io.dir/fastq.cpp.o" "gcc" "src/io/CMakeFiles/mp_io.dir/fastq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
