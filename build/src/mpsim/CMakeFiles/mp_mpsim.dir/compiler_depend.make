# Empty compiler generated dependencies file for mp_mpsim.
# This may be replaced when dependencies are built.
