file(REMOVE_RECURSE
  "libmp_mpsim.a"
)
