file(REMOVE_RECURSE
  "CMakeFiles/mp_mpsim.dir/comm.cpp.o"
  "CMakeFiles/mp_mpsim.dir/comm.cpp.o.d"
  "libmp_mpsim.a"
  "libmp_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
