file(REMOVE_RECURSE
  "CMakeFiles/metaprep.dir/index_create.cpp.o"
  "CMakeFiles/metaprep.dir/index_create.cpp.o.d"
  "CMakeFiles/metaprep.dir/indices.cpp.o"
  "CMakeFiles/metaprep.dir/indices.cpp.o.d"
  "CMakeFiles/metaprep.dir/manifest.cpp.o"
  "CMakeFiles/metaprep.dir/manifest.cpp.o.d"
  "CMakeFiles/metaprep.dir/memory_model.cpp.o"
  "CMakeFiles/metaprep.dir/memory_model.cpp.o.d"
  "CMakeFiles/metaprep.dir/pipeline.cpp.o"
  "CMakeFiles/metaprep.dir/pipeline.cpp.o.d"
  "CMakeFiles/metaprep.dir/plan.cpp.o"
  "CMakeFiles/metaprep.dir/plan.cpp.o.d"
  "CMakeFiles/metaprep.dir/stats.cpp.o"
  "CMakeFiles/metaprep.dir/stats.cpp.o.d"
  "libmetaprep.a"
  "libmetaprep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaprep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
