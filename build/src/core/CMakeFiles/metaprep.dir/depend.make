# Empty dependencies file for metaprep.
# This may be replaced when dependencies are built.
