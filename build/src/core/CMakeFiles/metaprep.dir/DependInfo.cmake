
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/index_create.cpp" "src/core/CMakeFiles/metaprep.dir/index_create.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/index_create.cpp.o.d"
  "/root/repo/src/core/indices.cpp" "src/core/CMakeFiles/metaprep.dir/indices.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/indices.cpp.o.d"
  "/root/repo/src/core/manifest.cpp" "src/core/CMakeFiles/metaprep.dir/manifest.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/manifest.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "src/core/CMakeFiles/metaprep.dir/memory_model.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/memory_model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/metaprep.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/metaprep.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/plan.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/metaprep.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/metaprep.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/mp_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/mp_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mp_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/dsu/CMakeFiles/mp_dsu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
