file(REMOVE_RECURSE
  "libmetaprep.a"
)
