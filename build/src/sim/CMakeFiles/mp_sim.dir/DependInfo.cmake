
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/genome.cpp" "src/sim/CMakeFiles/mp_sim.dir/genome.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/genome.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/sim/CMakeFiles/mp_sim.dir/presets.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/presets.cpp.o.d"
  "/root/repo/src/sim/read_sim.cpp" "src/sim/CMakeFiles/mp_sim.dir/read_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/read_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/mp_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
