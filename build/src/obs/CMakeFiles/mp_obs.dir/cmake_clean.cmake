file(REMOVE_RECURSE
  "CMakeFiles/mp_obs.dir/metrics.cpp.o"
  "CMakeFiles/mp_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/mp_obs.dir/trace.cpp.o"
  "CMakeFiles/mp_obs.dir/trace.cpp.o.d"
  "libmp_obs.a"
  "libmp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
