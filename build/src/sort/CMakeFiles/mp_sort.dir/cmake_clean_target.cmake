file(REMOVE_RECURSE
  "libmp_sort.a"
)
