file(REMOVE_RECURSE
  "CMakeFiles/mp_sort.dir/radix.cpp.o"
  "CMakeFiles/mp_sort.dir/radix.cpp.o.d"
  "libmp_sort.a"
  "libmp_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
