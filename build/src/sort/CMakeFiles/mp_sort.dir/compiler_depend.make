# Empty compiler generated dependencies file for mp_sort.
# This may be replaced when dependencies are built.
