# Empty dependencies file for mp_assembler.
# This may be replaced when dependencies are built.
