file(REMOVE_RECURSE
  "CMakeFiles/mp_assembler.dir/minihit.cpp.o"
  "CMakeFiles/mp_assembler.dir/minihit.cpp.o.d"
  "CMakeFiles/mp_assembler.dir/spectrum.cpp.o"
  "CMakeFiles/mp_assembler.dir/spectrum.cpp.o.d"
  "CMakeFiles/mp_assembler.dir/stats.cpp.o"
  "CMakeFiles/mp_assembler.dir/stats.cpp.o.d"
  "libmp_assembler.a"
  "libmp_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
