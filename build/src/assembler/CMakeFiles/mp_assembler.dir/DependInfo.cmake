
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/minihit.cpp" "src/assembler/CMakeFiles/mp_assembler.dir/minihit.cpp.o" "gcc" "src/assembler/CMakeFiles/mp_assembler.dir/minihit.cpp.o.d"
  "/root/repo/src/assembler/spectrum.cpp" "src/assembler/CMakeFiles/mp_assembler.dir/spectrum.cpp.o" "gcc" "src/assembler/CMakeFiles/mp_assembler.dir/spectrum.cpp.o.d"
  "/root/repo/src/assembler/stats.cpp" "src/assembler/CMakeFiles/mp_assembler.dir/stats.cpp.o" "gcc" "src/assembler/CMakeFiles/mp_assembler.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/mp_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
