file(REMOVE_RECURSE
  "libmp_assembler.a"
)
