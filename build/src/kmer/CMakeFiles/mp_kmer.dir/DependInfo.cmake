
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmer/codec.cpp" "src/kmer/CMakeFiles/mp_kmer.dir/codec.cpp.o" "gcc" "src/kmer/CMakeFiles/mp_kmer.dir/codec.cpp.o.d"
  "/root/repo/src/kmer/kmer128.cpp" "src/kmer/CMakeFiles/mp_kmer.dir/kmer128.cpp.o" "gcc" "src/kmer/CMakeFiles/mp_kmer.dir/kmer128.cpp.o.d"
  "/root/repo/src/kmer/minimizer.cpp" "src/kmer/CMakeFiles/mp_kmer.dir/minimizer.cpp.o" "gcc" "src/kmer/CMakeFiles/mp_kmer.dir/minimizer.cpp.o.d"
  "/root/repo/src/kmer/scanner.cpp" "src/kmer/CMakeFiles/mp_kmer.dir/scanner.cpp.o" "gcc" "src/kmer/CMakeFiles/mp_kmer.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
