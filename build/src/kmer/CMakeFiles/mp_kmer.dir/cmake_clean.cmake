file(REMOVE_RECURSE
  "CMakeFiles/mp_kmer.dir/codec.cpp.o"
  "CMakeFiles/mp_kmer.dir/codec.cpp.o.d"
  "CMakeFiles/mp_kmer.dir/kmer128.cpp.o"
  "CMakeFiles/mp_kmer.dir/kmer128.cpp.o.d"
  "CMakeFiles/mp_kmer.dir/minimizer.cpp.o"
  "CMakeFiles/mp_kmer.dir/minimizer.cpp.o.d"
  "CMakeFiles/mp_kmer.dir/scanner.cpp.o"
  "CMakeFiles/mp_kmer.dir/scanner.cpp.o.d"
  "libmp_kmer.a"
  "libmp_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
