# Empty compiler generated dependencies file for mp_kmer.
# This may be replaced when dependencies are built.
