file(REMOVE_RECURSE
  "libmp_kmer.a"
)
