# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart" "--pairs=400")
set_tests_properties(example.quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.partition_and_assemble "/root/repo/build/examples/partition_and_assemble" "--pairs=1500")
set_tests_properties(example.partition_and_assemble PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.multipass_demo "/root/repo/build/examples/multipass_demo" "--pairs=1500" "--budget-mb=20")
set_tests_properties(example.multipass_demo PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.component_explorer "/root/repo/build/examples/component_explorer" "--pairs=1200")
set_tests_properties(example.component_explorer PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.howe_pipeline "/root/repo/build/examples/howe_pipeline" "--pairs=1500")
set_tests_properties(example.howe_pipeline PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.kmer_spectrum "/root/repo/build/examples/kmer_spectrum" "--preset=HG" "--scale=0.4")
set_tests_properties(example.kmer_spectrum PROPERTIES  WORKING_DIRECTORY "/root/repo/build/example-smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
