file(REMOVE_RECURSE
  "CMakeFiles/minihit_cli.dir/minihit_cli.cpp.o"
  "CMakeFiles/minihit_cli.dir/minihit_cli.cpp.o.d"
  "minihit_cli"
  "minihit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
