# Empty compiler generated dependencies file for minihit_cli.
# This may be replaced when dependencies are built.
