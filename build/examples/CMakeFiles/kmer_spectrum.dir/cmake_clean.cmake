file(REMOVE_RECURSE
  "CMakeFiles/kmer_spectrum.dir/kmer_spectrum.cpp.o"
  "CMakeFiles/kmer_spectrum.dir/kmer_spectrum.cpp.o.d"
  "kmer_spectrum"
  "kmer_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmer_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
