file(REMOVE_RECURSE
  "CMakeFiles/component_explorer.dir/component_explorer.cpp.o"
  "CMakeFiles/component_explorer.dir/component_explorer.cpp.o.d"
  "component_explorer"
  "component_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
