# Empty compiler generated dependencies file for component_explorer.
# This may be replaced when dependencies are built.
