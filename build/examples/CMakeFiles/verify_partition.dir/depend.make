# Empty dependencies file for verify_partition.
# This may be replaced when dependencies are built.
