file(REMOVE_RECURSE
  "CMakeFiles/verify_partition.dir/verify_partition.cpp.o"
  "CMakeFiles/verify_partition.dir/verify_partition.cpp.o.d"
  "verify_partition"
  "verify_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
