# Empty compiler generated dependencies file for metaprep_cli.
# This may be replaced when dependencies are built.
