file(REMOVE_RECURSE
  "CMakeFiles/metaprep_cli.dir/metaprep_cli.cpp.o"
  "CMakeFiles/metaprep_cli.dir/metaprep_cli.cpp.o.d"
  "metaprep_cli"
  "metaprep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaprep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
