# Empty compiler generated dependencies file for howe_pipeline.
# This may be replaced when dependencies are built.
