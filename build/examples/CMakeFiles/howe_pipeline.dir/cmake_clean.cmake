file(REMOVE_RECURSE
  "CMakeFiles/howe_pipeline.dir/howe_pipeline.cpp.o"
  "CMakeFiles/howe_pipeline.dir/howe_pipeline.cpp.o.d"
  "howe_pipeline"
  "howe_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/howe_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
