file(REMOVE_RECURSE
  "CMakeFiles/partition_and_assemble.dir/partition_and_assemble.cpp.o"
  "CMakeFiles/partition_and_assemble.dir/partition_and_assemble.cpp.o.d"
  "partition_and_assemble"
  "partition_and_assemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_and_assemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
