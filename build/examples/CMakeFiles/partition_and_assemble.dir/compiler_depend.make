# Empty compiler generated dependencies file for partition_and_assemble.
# This may be replaced when dependencies are built.
