file(REMOVE_RECURSE
  "CMakeFiles/multipass_demo.dir/multipass_demo.cpp.o"
  "CMakeFiles/multipass_demo.dir/multipass_demo.cpp.o.d"
  "multipass_demo"
  "multipass_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipass_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
