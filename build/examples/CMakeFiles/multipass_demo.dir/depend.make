# Empty dependencies file for multipass_demo.
# This may be replaced when dependencies are built.
