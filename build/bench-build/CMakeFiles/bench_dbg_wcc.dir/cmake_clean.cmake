file(REMOVE_RECURSE
  "../bench/bench_dbg_wcc"
  "../bench/bench_dbg_wcc.pdb"
  "CMakeFiles/bench_dbg_wcc.dir/bench_dbg_wcc.cpp.o"
  "CMakeFiles/bench_dbg_wcc.dir/bench_dbg_wcc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbg_wcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
