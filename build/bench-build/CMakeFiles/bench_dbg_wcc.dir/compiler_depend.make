# Empty compiler generated dependencies file for bench_dbg_wcc.
# This may be replaced when dependencies are built.
