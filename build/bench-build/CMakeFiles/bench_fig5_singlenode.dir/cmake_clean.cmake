file(REMOVE_RECURSE
  "../bench/bench_fig5_singlenode"
  "../bench/bench_fig5_singlenode.pdb"
  "CMakeFiles/bench_fig5_singlenode.dir/bench_fig5_singlenode.cpp.o"
  "CMakeFiles/bench_fig5_singlenode.dir/bench_fig5_singlenode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_singlenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
