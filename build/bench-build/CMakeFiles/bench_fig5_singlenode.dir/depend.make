# Empty dependencies file for bench_fig5_singlenode.
# This may be replaced when dependencies are built.
