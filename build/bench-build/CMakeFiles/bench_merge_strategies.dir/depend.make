# Empty dependencies file for bench_merge_strategies.
# This may be replaced when dependencies are built.
