file(REMOVE_RECURSE
  "../bench/bench_merge_strategies"
  "../bench/bench_merge_strategies.pdb"
  "CMakeFiles/bench_merge_strategies.dir/bench_merge_strategies.cpp.o"
  "CMakeFiles/bench_merge_strategies.dir/bench_merge_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
