file(REMOVE_RECURSE
  "../bench/bench_tab6_kvalue"
  "../bench/bench_tab6_kvalue.pdb"
  "CMakeFiles/bench_tab6_kvalue.dir/bench_tab6_kvalue.cpp.o"
  "CMakeFiles/bench_tab6_kvalue.dir/bench_tab6_kvalue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_kvalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
