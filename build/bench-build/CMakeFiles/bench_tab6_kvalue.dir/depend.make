# Empty dependencies file for bench_tab6_kvalue.
# This may be replaced when dependencies are built.
