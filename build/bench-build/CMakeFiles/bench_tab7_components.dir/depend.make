# Empty dependencies file for bench_tab7_components.
# This may be replaced when dependencies are built.
