file(REMOVE_RECURSE
  "../bench/bench_tab7_components"
  "../bench/bench_tab7_components.pdb"
  "CMakeFiles/bench_tab7_components.dir/bench_tab7_components.cpp.o"
  "CMakeFiles/bench_tab7_components.dir/bench_tab7_components.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
