# Empty dependencies file for bench_kmerscan.
# This may be replaced when dependencies are built.
