file(REMOVE_RECURSE
  "../bench/bench_kmerscan"
  "../bench/bench_kmerscan.pdb"
  "CMakeFiles/bench_kmerscan.dir/bench_kmerscan.cpp.o"
  "CMakeFiles/bench_kmerscan.dir/bench_kmerscan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmerscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
