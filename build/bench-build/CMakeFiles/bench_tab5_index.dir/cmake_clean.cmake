file(REMOVE_RECURSE
  "../bench/bench_tab5_index"
  "../bench/bench_tab5_index.pdb"
  "CMakeFiles/bench_tab5_index.dir/bench_tab5_index.cpp.o"
  "CMakeFiles/bench_tab5_index.dir/bench_tab5_index.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
