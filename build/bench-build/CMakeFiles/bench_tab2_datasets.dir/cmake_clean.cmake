file(REMOVE_RECURSE
  "../bench/bench_tab2_datasets"
  "../bench/bench_tab2_datasets.pdb"
  "CMakeFiles/bench_tab2_datasets.dir/bench_tab2_datasets.cpp.o"
  "CMakeFiles/bench_tab2_datasets.dir/bench_tab2_datasets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
