# Empty compiler generated dependencies file for bench_sort_throughput.
# This may be replaced when dependencies are built.
