file(REMOVE_RECURSE
  "../bench/bench_sort_throughput"
  "../bench/bench_sort_throughput.pdb"
  "CMakeFiles/bench_sort_throughput.dir/bench_sort_throughput.cpp.o"
  "CMakeFiles/bench_sort_throughput.dir/bench_sort_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
