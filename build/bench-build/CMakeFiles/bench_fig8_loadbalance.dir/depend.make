# Empty dependencies file for bench_fig8_loadbalance.
# This may be replaced when dependencies are built.
