file(REMOVE_RECURSE
  "../bench/bench_fig6_multinode"
  "../bench/bench_fig6_multinode.pdb"
  "CMakeFiles/bench_fig6_multinode.dir/bench_fig6_multinode.cpp.o"
  "CMakeFiles/bench_fig6_multinode.dir/bench_fig6_multinode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
