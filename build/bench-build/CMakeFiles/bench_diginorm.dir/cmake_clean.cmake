file(REMOVE_RECURSE
  "../bench/bench_diginorm"
  "../bench/bench_diginorm.pdb"
  "CMakeFiles/bench_diginorm.dir/bench_diginorm.cpp.o"
  "CMakeFiles/bench_diginorm.dir/bench_diginorm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diginorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
