# Empty dependencies file for bench_diginorm.
# This may be replaced when dependencies are built.
