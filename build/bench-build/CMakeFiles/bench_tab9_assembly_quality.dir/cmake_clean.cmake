file(REMOVE_RECURSE
  "../bench/bench_tab9_assembly_quality"
  "../bench/bench_tab9_assembly_quality.pdb"
  "CMakeFiles/bench_tab9_assembly_quality.dir/bench_tab9_assembly_quality.cpp.o"
  "CMakeFiles/bench_tab9_assembly_quality.dir/bench_tab9_assembly_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab9_assembly_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
