# Empty dependencies file for bench_tab9_assembly_quality.
# This may be replaced when dependencies are built.
