# Empty compiler generated dependencies file for bench_comm_matrix.
# This may be replaced when dependencies are built.
