file(REMOVE_RECURSE
  "../bench/bench_comm_matrix"
  "../bench/bench_comm_matrix.pdb"
  "CMakeFiles/bench_comm_matrix.dir/bench_comm_matrix.cpp.o"
  "CMakeFiles/bench_comm_matrix.dir/bench_comm_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
