file(REMOVE_RECURSE
  "../bench/bench_ablation_ccopt"
  "../bench/bench_ablation_ccopt.pdb"
  "CMakeFiles/bench_ablation_ccopt.dir/bench_ablation_ccopt.cpp.o"
  "CMakeFiles/bench_ablation_ccopt.dir/bench_ablation_ccopt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ccopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
