# Empty compiler generated dependencies file for bench_ablation_ccopt.
# This may be replaced when dependencies are built.
