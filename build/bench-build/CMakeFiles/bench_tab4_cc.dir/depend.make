# Empty dependencies file for bench_tab4_cc.
# This may be replaced when dependencies are built.
