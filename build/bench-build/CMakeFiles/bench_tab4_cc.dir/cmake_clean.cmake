file(REMOVE_RECURSE
  "../bench/bench_tab4_cc"
  "../bench/bench_tab4_cc.pdb"
  "CMakeFiles/bench_tab4_cc.dir/bench_tab4_cc.cpp.o"
  "CMakeFiles/bench_tab4_cc.dir/bench_tab4_cc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
