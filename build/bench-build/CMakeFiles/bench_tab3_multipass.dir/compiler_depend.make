# Empty compiler generated dependencies file for bench_tab3_multipass.
# This may be replaced when dependencies are built.
