file(REMOVE_RECURSE
  "../bench/bench_tab3_multipass"
  "../bench/bench_tab3_multipass.pdb"
  "CMakeFiles/bench_tab3_multipass.dir/bench_tab3_multipass.cpp.o"
  "CMakeFiles/bench_tab3_multipass.dir/bench_tab3_multipass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_multipass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
