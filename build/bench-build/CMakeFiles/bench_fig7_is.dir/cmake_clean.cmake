file(REMOVE_RECURSE
  "../bench/bench_fig7_is"
  "../bench/bench_fig7_is.pdb"
  "CMakeFiles/bench_fig7_is.dir/bench_fig7_is.cpp.o"
  "CMakeFiles/bench_fig7_is.dir/bench_fig7_is.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
