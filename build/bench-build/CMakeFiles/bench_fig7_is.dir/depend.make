# Empty dependencies file for bench_fig7_is.
# This may be replaced when dependencies are built.
