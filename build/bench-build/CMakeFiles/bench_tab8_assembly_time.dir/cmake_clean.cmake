file(REMOVE_RECURSE
  "../bench/bench_tab8_assembly_time"
  "../bench/bench_tab8_assembly_time.pdb"
  "CMakeFiles/bench_tab8_assembly_time.dir/bench_tab8_assembly_time.cpp.o"
  "CMakeFiles/bench_tab8_assembly_time.dir/bench_tab8_assembly_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab8_assembly_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
