# Empty dependencies file for bench_tab8_assembly_time.
# This may be replaced when dependencies are built.
