file(REMOVE_RECURSE
  "../bench/bench_fig9_kmergen"
  "../bench/bench_fig9_kmergen.pdb"
  "CMakeFiles/bench_fig9_kmergen.dir/bench_fig9_kmergen.cpp.o"
  "CMakeFiles/bench_fig9_kmergen.dir/bench_fig9_kmergen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_kmergen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
