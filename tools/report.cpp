#include "report.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string_view>
#include <utility>

#include "util/error.hpp"

namespace metaprep::report {

namespace {

using util::JsonValue;

std::vector<std::uint64_t> read_matrix(const JsonValue& rows, int ranks) {
  const auto n = static_cast<std::size_t>(ranks);
  std::vector<std::uint64_t> flat(n * n, 0);
  const auto& arr = rows.as_array();
  if (arr.size() != n) throw util::parse_error("attr: comm matrix row count != ranks");
  for (std::size_t r = 0; r < n; ++r) {
    const auto& row = arr[r].as_array();
    if (row.size() != n) throw util::parse_error("attr: comm matrix column count != ranks");
    for (std::size_t c = 0; c < n; ++c) flat[r * n + c] = row[c].as_uint();
  }
  return flat;
}

}  // namespace

obs::AttrReport attr_from_json(const JsonValue& doc) {
  obs::AttrReport r;
  r.wall_s = doc.number_or("wall_s", 0.0);
  r.trace_span_s = doc.number_or("trace_span_s", 0.0);
  r.ranks = static_cast<int>(doc.number_or("ranks", 0.0));
  r.threads = static_cast<int>(doc.number_or("threads", 0.0));
  r.passes = static_cast<int>(doc.number_or("passes", 0.0));

  if (const JsonValue* phases = doc.find("phases")) {
    for (const JsonValue& pv : phases->as_array()) {
      obs::PhaseStat ps;
      ps.name = pv.at("name").as_string();
      ps.self_s = pv.number_or("self_s", 0.0);
      ps.max_rank_s = pv.number_or("max_rank_s", 0.0);
      ps.mean_rank_s = pv.number_or("mean_rank_s", 0.0);
      ps.imbalance = pv.number_or("imbalance", 0.0);
      ps.wall_frac = pv.number_or("wall_frac", 0.0);
      if (const JsonValue* per_rank = pv.find("per_rank")) {
        for (const auto& [rank_str, sec] : per_rank->as_object())
          ps.rank_self_s[std::atoi(rank_str.c_str())] = sec.as_number();
      }
      r.phases.push_back(std::move(ps));
    }
  }

  if (const JsonValue* cp = doc.find("critical_path")) {
    r.critical_path.length_s = cp->number_or("length_s", 0.0);
    r.critical_path.wait_s = cp->number_or("wait_s", 0.0);
    r.critical_path.compute_s = cp->number_or("compute_s", 0.0);
    if (const JsonValue* steps = cp->find("steps")) {
      for (const JsonValue& sv : steps->as_array()) {
        obs::CritStep st;
        st.name = sv.at("name").as_string();
        st.pid = static_cast<int>(sv.number_or("pid", 0.0));
        st.tid = static_cast<int>(sv.number_or("tid", 0.0));
        st.start_us = sv.number_or("start_us", 0.0);
        st.dur_us = sv.number_or("dur_us", 0.0);
        if (const JsonValue* w = sv.find("wait")) st.wait = w->as_bool();
        if (const JsonValue* f = sv.find("via_flow")) st.via_flow = f->as_bool();
        r.critical_path.steps.push_back(std::move(st));
      }
    }
  }

  if (const JsonValue* comm = doc.find("comm")) {
    r.comm_ranks = static_cast<int>(comm->number_or("ranks", 0.0));
    r.comm_skew = comm->number_or("skew", 0.0);
    if (r.comm_ranks > 0) {
      r.comm_bytes = read_matrix(comm->at("bytes"), r.comm_ranks);
      r.comm_msgs = read_matrix(comm->at("msgs"), r.comm_ranks);
    }
  }

  if (const JsonValue* mem = doc.find("memory")) {
    if (const JsonValue* subs = mem->find("subsystems")) {
      for (const JsonValue& mv : subs->as_array()) {
        obs::MemSubsystem ms;
        ms.name = mv.at("name").as_string();
        ms.high_water_bytes = mv.at("high_water_bytes").as_uint();
        ms.predicted_bytes =
            static_cast<std::uint64_t>(std::max(0.0, mv.number_or("predicted_bytes", 0.0)));
        r.memory.push_back(std::move(ms));
      }
    }
    r.mem_predicted_total =
        static_cast<std::uint64_t>(std::max(0.0, mem->number_or("predicted_total_bytes", 0.0)));
    r.peak_rss_bytes =
        static_cast<std::uint64_t>(std::max(0.0, mem->number_or("peak_rss_bytes", 0.0)));
    if (const JsonValue* samples = mem->find("rss_samples")) {
      for (const JsonValue& sv : samples->as_array()) {
        obs::RssSample rs;
        rs.phase = sv.at("phase").as_string();
        rs.peak_rss_bytes = sv.at("peak_rss_bytes").as_uint();
        r.rss_samples.push_back(std::move(rs));
      }
    }
  }
  return r;
}

obs::AttrReport load_attr(const std::string& path) {
  return attr_from_json(util::parse_json_file(path));
}

std::vector<obs::TraceEvent> load_chrome_trace(const std::string& path) {
  const JsonValue doc = util::parse_json_file(path);
  const auto& trace_events = doc.at("traceEvents").as_array();

  std::vector<obs::TraceEvent> out;
  // Per-track stack of open "B" events; "E" closes the innermost one.
  struct Open {
    std::string name;
    double ts = 0.0;
  };
  std::map<std::pair<int, int>, std::vector<Open>> open;

  for (const JsonValue& ev : trace_events) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") continue;  // process metadata
    const int pid = static_cast<int>(ev.number_or("pid", 0.0));
    const int tid = static_cast<int>(ev.number_or("tid", 0.0));
    const double ts = ev.number_or("ts", 0.0);
    const std::string name = ev.string_or("name", "");
    if (ph == "B") {
      open[{pid, tid}].push_back(Open{name, ts});
    } else if (ph == "E") {
      auto& stack = open[{pid, tid}];
      if (stack.empty())
        throw util::parse_error("trace: \"E\" event with no open span on pid " +
                                std::to_string(pid) + " tid " + std::to_string(tid));
      obs::TraceEvent span;
      span.name = stack.back().name;
      span.ts_us = stack.back().ts;
      span.dur_us = std::max(0.0, ts - stack.back().ts);
      span.pid = pid;
      span.tid = tid;
      stack.pop_back();
      out.push_back(std::move(span));
    } else if (ph == "s" || ph == "f") {
      obs::TraceEvent marker;
      marker.name = name;
      marker.ts_us = ts;
      marker.dur_us = -1.0;
      marker.pid = pid;
      marker.tid = tid;
      marker.flow = static_cast<std::uint64_t>(std::max(0.0, ev.number_or("id", 0.0)));
      marker.flow_dir =
          ph == "s" ? obs::TraceEvent::kFlowSend : obs::TraceEvent::kFlowRecv;
      out.push_back(std::move(marker));
    } else if (ph == "i") {
      obs::TraceEvent inst;
      inst.name = name;
      inst.ts_us = ts;
      inst.dur_us = -1.0;
      inst.pid = pid;
      inst.tid = tid;
      out.push_back(std::move(inst));
    }
    // "X" complete events are not emitted by our exporter; ignore unknowns.
  }
  return out;  // unclosed "B" spans (truncated trace) are intentionally dropped
}

std::vector<MetricSample> load_metrics(const std::string& path) {
  std::vector<MetricSample> out;
  for (const JsonValue& line : util::parse_jsonl_file(path)) {
    MetricSample s;
    s.name = line.at("name").as_string();
    s.type = line.string_or("type", "gauge");
    if (s.type == "histogram") {
      s.value = line.number_or("sum", 0.0);
      s.count = static_cast<std::uint64_t>(std::max(0.0, line.number_or("count", 0.0)));
    } else {
      s.value = line.number_or("value", 0.0);
    }
    out.push_back(std::move(s));
  }
  return out;
}

void merge_metrics(obs::AttrReport& r, const std::vector<MetricSample>& metrics) {
  constexpr std::string_view kMemPrefix = "mem.";
  constexpr std::string_view kMemSuffix = ".high_water";
  for (const MetricSample& s : metrics) {
    if (s.name == "proc.peak_rss_bytes") {
      if (r.peak_rss_bytes == 0 && s.value > 0.0)
        r.peak_rss_bytes = static_cast<std::uint64_t>(s.value);
    } else if (s.name == "mpsim.comm_matrix_skew") {
      if (r.comm_skew == 0.0) r.comm_skew = s.value;
    } else if (s.name.size() > kMemPrefix.size() + kMemSuffix.size() &&
               s.name.compare(0, kMemPrefix.size(), kMemPrefix) == 0 &&
               s.name.compare(s.name.size() - kMemSuffix.size(), kMemSuffix.size(),
                              kMemSuffix) == 0) {
      const std::string subsystem = s.name.substr(
          kMemPrefix.size(), s.name.size() - kMemPrefix.size() - kMemSuffix.size());
      const bool known =
          std::any_of(r.memory.begin(), r.memory.end(),
                      [&](const obs::MemSubsystem& m) { return m.name == subsystem; });
      if (!known && s.value > 0.0) {
        obs::MemSubsystem ms;
        ms.name = subsystem;
        ms.high_water_bytes = static_cast<std::uint64_t>(s.value);
        r.memory.push_back(std::move(ms));
      }
    }
  }
  std::sort(r.memory.begin(), r.memory.end(),
            [](const obs::MemSubsystem& a, const obs::MemSubsystem& b) {
              return a.name < b.name;
            });
}

}  // namespace metaprep::report
