#include "lint/lexer.hpp"

#include <cctype>

namespace metaprep::lint {

namespace {

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Does a quote at position i open a raw string?  True when the identifier
/// characters immediately before it form one of the raw-string prefixes.
[[nodiscard]] bool is_raw_string_prefix(std::string_view src, std::size_t i) {
  std::size_t begin = i;
  while (begin > 0 && is_ident_char(src[begin - 1])) --begin;
  const std::string_view prefix = src.substr(begin, i - begin);
  return prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "UR" ||
         prefix == "LR";
}

/// Is the quote at position i a digit separator (`1'000`) rather than the
/// start of a char literal?  A separator follows a digit or a pp-number
/// continuation; a char-literal prefix identifier (u, U, L, u8) still opens
/// a literal.
[[nodiscard]] bool is_digit_separator(std::string_view src, std::size_t i) {
  if (i == 0) return false;
  const char prev = src[i - 1];
  if (!is_ident_char(prev)) return false;
  std::size_t begin = i;
  while (begin > 0 && is_ident_char(src[begin - 1])) --begin;
  const std::string_view word = src.substr(begin, i - begin);
  if (word == "u" || word == "U" || word == "L" || word == "u8") return false;
  // Any other identifier-like token directly before a quote is a pp-number
  // (starts with a digit) or user-defined-literal tail; either way the quote
  // separates digits, it does not open a literal.
  return true;
}

}  // namespace

std::vector<LexedLine> lex(std::string_view src) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };

  std::vector<LexedLine> lines;
  LexedLine cur;
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" that terminates the active raw string

  auto end_line = [&] {
    lines.push_back(std::move(cur));
    cur = LexedLine{};
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
          state = State::kLineComment;
          cur.comment += "//";
          cur.code += "  ";
          ++i;
        } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
          state = State::kBlockComment;
          cur.comment += "/*";
          cur.code += "  ";
          ++i;
        } else if (c == '"' && is_raw_string_prefix(src, i)) {
          // R"delim( ... )delim" — capture the close sequence up front.
          std::size_t p = i + 1;
          std::string delim;
          while (p < src.size() && src[p] != '(') delim += src[p++];
          raw_close = ")" + delim + "\"";
          cur.code += '"';
          cur.code.append(p < src.size() ? p - i : 0, ' ');  // delim + '('
          i = p;  // now positioned at '(' (or end)
          state = State::kRawString;
        } else if (c == '"') {
          cur.code += '"';
          state = State::kString;
        } else if (c == '\'' && !is_digit_separator(src, i)) {
          cur.code += '\'';
          state = State::kChar;
        } else {
          cur.code += c;
        }
        break;
      }
      case State::kLineComment:
        cur.comment += c;
        cur.code += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          cur.comment += "*/";
          cur.code += "  ";
          ++i;
          state = State::kCode;
        } else {
          cur.comment += c;
          cur.code += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < src.size()) {
          cur.code += "  ";
          ++i;
          if (src[i] == '\n') end_line();  // escaped newline inside a literal
        } else if (c == close) {
          cur.code += close;
          state = State::kCode;
        } else {
          cur.code += ' ';
        }
        break;
      }
      case State::kRawString: {
        if (src.compare(i, raw_close.size(), raw_close) == 0) {
          cur.code.append(raw_close.size() - 1, ' ');
          cur.code += '"';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          cur.code += ' ';
        }
        break;
      }
    }
  }
  if (!cur.code.empty() || !cur.comment.empty() || lines.empty()) end_line();
  return lines;
}

}  // namespace metaprep::lint
