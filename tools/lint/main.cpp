// metaprep-lint: the repo-idiom analyzer behind scripts/lint.sh.
//
//   metaprep-lint                 lint src/ and tools/ under the cwd
//   metaprep-lint FILE...         lint exactly the named files
//   metaprep-lint --list-rules    print one rule name per line
//
// Findings go to stderr as `lint: file:line: [rule] message` (the same
// contract the historical awk scanner printed, so drivers and CI greps keep
// working); exit status is 1 when anything fired, with a final summary line
// either way.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

[[nodiscard]] std::vector<std::string> discover() {
  std::vector<std::string> files;
  for (const char* root : {"src", "tools"}) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && lintable(it->path()))
        files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& name : metaprep::lint::rule_names())
        std::cout << name << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: metaprep-lint [--list-rules] [file...]\n"
                   "Lints src/ and tools/ (or the named files) against the "
                   "metaprep-* idiom rules.\n";
      return 0;
    }
    files.push_back(arg);
  }
  if (files.empty()) files = discover();

  bool failed = false;
  int linted = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "lint: " << file << ":1: [metaprep-lint] cannot read file\n";
      failed = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ++linted;
    for (const metaprep::lint::Finding& f :
         metaprep::lint::run_rules(file, buf.str())) {
      std::cerr << "lint: " << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      failed = true;
    }
  }
  if (failed) {
    std::cerr << "lint: FAILED (see findings above; suppress only with an inline "
                 "justification)\n";
    return 1;
  }
  std::cout << "lint: clean (" << linted << " files)\n";
  return 0;
}
