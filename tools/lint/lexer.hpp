// Token-level C++ lexer for metaprep-lint.
//
// The analyzer's rules are line-oriented regex/substring checks, but they
// must never fire on rule-looking text inside comments, string literals,
// char literals, or raw strings — and NOLINT suppressions live *only* in
// comments.  This lexer splits each physical line into exactly those two
// views:
//
//   code:    the line with comment text and literal *contents* blanked to
//            spaces (quotes are kept, so `"throw std::runtime_error"` lexes
//            as an empty string literal).  Columns are preserved.
//   comment: the concatenated text of every comment on the line, including
//            the body of a block comment that spans it.
//
// Handled: `//` line comments, `/* */` block comments (multi-line),
// string/char literals with escapes, raw strings `R"delim(...)delim"`
// (multi-line, any prefix u8R/uR/UR/LR), and digit separators (`1'000'000`
// does not open a char literal).  No preprocessor awareness beyond that —
// the rules operate on what the programmer sees, not the translation unit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace metaprep::lint {

struct LexedLine {
  std::string code;     ///< comment/literal-content chars blanked to spaces
  std::string comment;  ///< every comment character on this line
};

/// Lex @p source into per-line code/comment views.  A trailing line without
/// a final newline is still emitted.
[[nodiscard]] std::vector<LexedLine> lex(std::string_view source);

}  // namespace metaprep::lint
