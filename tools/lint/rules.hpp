// Rule engine for metaprep-lint.
//
// Rules operate on the lexed code/comment views (lint/lexer.hpp), so rule
// text inside string literals or comments never fires, and NOLINT
// suppressions are honored only where they belong: in comments.
//
// Suppression contract (same as the historical awk scanner, now enforced
// with a mandatory justification):
//
//   // NOLINT(metaprep-<rule>): <why>          same line or the line above
//   // NOLINTNEXTLINE(metaprep-<rule>): <why>  the line below only
//
// Only the parenthesized forms are markers: a rule is suppressed when its
// name is listed, prose mentioning the word is inert, and there is no bare
// suppress-everything spelling.  A marker whose justification is missing is
// itself a finding (metaprep-nolint-justified) — suppression still applies,
// so a bad suppression produces exactly one actionable finding, not two.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace metaprep::lint {

struct Finding {
  std::string file;
  int line = 0;         ///< 1-based
  std::string rule;     ///< full name, e.g. "metaprep-no-raw-mutex"
  std::string message;
};

/// Names of every implemented rule, in report order.
[[nodiscard]] std::vector<std::string> rule_names();

/// Run every rule over @p source, reporting findings under @p file (used
/// verbatim in reports, and matched against the per-rule path exemptions:
/// util/error.* for no-adhoc-throw, util/sync.hpp for no-raw-mutex,
/// util/env.hpp for no-env-outside-config).
[[nodiscard]] std::vector<Finding> run_rules(const std::string& file,
                                             std::string_view source);

}  // namespace metaprep::lint
