#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

#include "lint/lexer.hpp"

namespace metaprep::lint {

namespace {

// ---------------------------------------------------------------------------
// NOLINT suppression parsing (comment text only).

struct Nolint {
  bool nextline = false;            ///< NOLINTNEXTLINE: applies to line+1 only
  std::vector<std::string> rules;   ///< listed rule names
  bool justified = false;           ///< carries ": <why>" with non-empty why
};

/// Extract NOLINT markers from one line's comment text.  Only the
/// parenthesized forms count — NOLINT or NOLINTNEXTLINE followed immediately
/// by a rule list in parentheses — so prose that merely mentions the word
/// NOLINT is inert, and there is no bare suppress-everything spelling.
[[nodiscard]] std::vector<Nolint> parse_nolints(std::string_view comment) {
  std::vector<Nolint> out;
  std::size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string_view::npos) {
    Nolint n;
    std::size_t p = pos + 6;
    pos += 6;
    if (comment.compare(p, 8, "NEXTLINE") == 0) {
      n.nextline = true;
      p += 8;
    }
    if (p >= comment.size() || comment[p] != '(') continue;  // prose, not a marker
    const std::size_t close = comment.find(')', p);
    if (close == std::string_view::npos) continue;  // malformed, not a marker
    std::string name;
    for (std::size_t i = p + 1; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        while (!name.empty() && name.back() == ' ') name.pop_back();
        if (!name.empty()) n.rules.push_back(name);
        name.clear();
      } else if (c != ' ') {
        name += c;
      }
    }
    p = close + 1;
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (p < comment.size() && comment[p] == ':') {
      ++p;
      while (p < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[p])) != 0)
        ++p;
      n.justified = p < comment.size();
    }
    out.push_back(std::move(n));
  }
  return out;
}

class Suppressions {
 public:
  explicit Suppressions(const std::vector<LexedLine>& lines) {
    per_line_.resize(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
      per_line_[i] = parse_nolints(lines[i].comment);
  }

  /// Is @p rule suppressed at 1-based @p line?  Same-line NOLINT, or a
  /// NOLINT / NOLINTNEXTLINE on the line above.
  [[nodiscard]] bool suppressed(const std::string& rule, int line) const {
    const auto covers = [&](const Nolint& n) {
      return std::find(n.rules.begin(), n.rules.end(), rule) != n.rules.end();
    };
    const std::size_t idx = static_cast<std::size_t>(line - 1);
    if (idx < per_line_.size()) {
      for (const Nolint& n : per_line_[idx])
        if (!n.nextline && covers(n)) return true;
    }
    if (line >= 2) {
      for (const Nolint& n : per_line_[idx - 1])
        if (covers(n)) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<std::vector<Nolint>>& per_line() const {
    return per_line_;
  }

 private:
  std::vector<std::vector<Nolint>> per_line_;
};

// ---------------------------------------------------------------------------
// Path helpers.  Reports use @p file verbatim; exemptions match on the
// normalized tail so absolute and repo-relative invocations agree.

[[nodiscard]] std::string normalized(const std::string& file) {
  std::string s = file;
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

[[nodiscard]] bool path_is(const std::string& norm, std::string_view tail) {
  if (norm.size() < tail.size()) return false;
  if (norm.compare(norm.size() - tail.size(), tail.size(), tail) != 0) return false;
  return norm.size() == tail.size() || norm[norm.size() - tail.size() - 1] == '/';
}

[[nodiscard]] bool is_header(const std::string& norm) {
  return norm.size() >= 4 && norm.compare(norm.size() - 4, 4, ".hpp") == 0;
}

// ---------------------------------------------------------------------------
// Class-scope tracker for metaprep-lock-unannotated.  Heuristic brace/keyword
// scanner over the code view: a scope opened while a class/struct/union head
// is pending is a class scope; when it closes, a class that declared a
// util::Mutex / util::SharedMutex member but annotated no member GUARDED_BY /
// PT_GUARDED_BY gets one finding per mutex member.

struct ClassScope {
  bool is_class = false;
  int guarded = 0;
  std::vector<int> mutex_lines;
};

void scan_lock_annotations(const std::string& file, const std::vector<LexedLine>& lines,
                           const Suppressions& nolint, std::vector<Finding>& findings) {
  static const std::regex kMutexMember(
      R"((^|[^\w:<])(util::)?(Mutex|SharedMutex)\s+[A-Za-z_]\w*)");
  static const std::regex kGuarded(R"(\b(PT_)?GUARDED_BY\s*\()");

  std::vector<ClassScope> stack;
  bool pending_class = false;
  std::string prev_word;

  auto emit = [&](const ClassScope& scope) {
    if (!scope.is_class || scope.mutex_lines.empty() || scope.guarded > 0) return;
    for (const int line : scope.mutex_lines) {
      if (nolint.suppressed("metaprep-lock-unannotated", line)) continue;
      findings.push_back({file, line, "metaprep-lock-unannotated",
                          "class declares a mutex but no member is GUARDED_BY it; "
                          "annotate the guarded state (util/sync.hpp)"});
    }
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    // Member-pattern checks run against the scope state at the start of the
    // line; declarations never share a line with their class's braces here.
    if (!stack.empty() && stack.back().is_class) {
      if (std::regex_search(code, kMutexMember))
        stack.back().mutex_lines.push_back(static_cast<int>(li) + 1);
      if (std::regex_search(code, kGuarded)) ++stack.back().guarded;
    }
    std::string word;
    for (const char c : code) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
        word += c;
        continue;
      }
      if (!word.empty()) {
        if ((word == "class" || word == "struct" || word == "union") &&
            prev_word != "enum")
          pending_class = true;
        prev_word = word;
        word.clear();
      }
      // A class head survives attribute parens only via macros without
      // arguments; `)` also cancels the false pending state a template
      // parameter list's `class` leaves behind.
      if (c == ';' || c == '=' || c == ')') pending_class = false;
      if (c == '{') {
        stack.push_back(ClassScope{pending_class, 0, {}});
        pending_class = false;
      } else if (c == '}') {
        if (!stack.empty()) {
          emit(stack.back());
          stack.pop_back();
        }
      }
    }
    if (!word.empty()) {
      if ((word == "class" || word == "struct" || word == "union") && prev_word != "enum")
        pending_class = true;
      prev_word = word;
    }
  }
}

}  // namespace

std::vector<std::string> rule_names() {
  return {
      "metaprep-no-adhoc-throw",    "metaprep-no-naked-new",
      "metaprep-pragma-once",       "metaprep-no-using-namespace-header",
      "metaprep-lock-unannotated",  "metaprep-no-raw-mutex",
      "metaprep-no-env-outside-config", "metaprep-nolint-justified",
  };
}

std::vector<Finding> run_rules(const std::string& file, std::string_view source) {
  const std::vector<LexedLine> lines = lex(source);
  const Suppressions nolint(lines);
  const std::string norm = normalized(file);
  std::vector<Finding> findings;

  auto scan = [&](const std::regex& re, const char* rule, const char* msg,
                  bool headers_only = false) {
    if (headers_only && !is_header(norm)) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i].code, re)) continue;
      const int line = static_cast<int>(i) + 1;
      if (nolint.suppressed(rule, line)) continue;
      findings.push_back({file, line, rule, msg});
    }
  };

  // --- metaprep-no-adhoc-throw (exempt: the error taxonomy itself) --------
  static const std::regex kAdhocThrow(R"(throw\s+std::runtime_error)");
  if (!path_is(norm, "src/util/error.hpp") && !path_is(norm, "src/util/error.cpp")) {
    scan(kAdhocThrow, "metaprep-no-adhoc-throw",
         "use a util::Error factory (io_error/parse_error/comm_error/config_error)");
  }

  // --- metaprep-no-naked-new ----------------------------------------------
  static const std::regex kNakedNew(
      R"([^_A-Za-z0-9]new\s+[A-Za-z_:][A-Za-z0-9_:<>, ]*[({\[])");
  scan(kNakedNew, "metaprep-no-naked-new",
       "prefer std::make_unique/containers; NOLINT-justify intentional singletons");

  // --- metaprep-pragma-once -----------------------------------------------
  if (is_header(norm)) {
    static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    const bool has = std::any_of(lines.begin(), lines.end(), [&](const LexedLine& l) {
      return std::regex_search(l.code, kPragmaOnce);
    });
    if (!has && !nolint.suppressed("metaprep-pragma-once", 1)) {
      findings.push_back({file, 1, "metaprep-pragma-once",
                          "header is missing #pragma once"});
    }
  }

  // --- metaprep-no-using-namespace-header ---------------------------------
  static const std::regex kUsingNamespace(R"(^\s*using\s+namespace\s)");
  scan(kUsingNamespace, "metaprep-no-using-namespace-header",
       "using-directives in headers leak into every includer", /*headers_only=*/true);

  // --- metaprep-lock-unannotated ------------------------------------------
  scan_lock_annotations(file, lines, nolint, findings);

  // --- metaprep-no-raw-mutex (exempt: the wrapper layer itself) -----------
  static const std::regex kRawMutex(
      R"(\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable|condition_variable_any)\b)");
  if (!path_is(norm, "src/util/sync.hpp")) {
    scan(kRawMutex, "metaprep-no-raw-mutex",
         "raw std synchronization primitive; use the util::Mutex wrappers "
         "(util/sync.hpp) so the thread-safety analysis can see the lock");
  }

  // --- metaprep-no-env-outside-config (exempt: the blessed env layer) -----
  static const std::regex kGetenv(R"(\bgetenv\s*\()");
  if (!path_is(norm, "src/util/env.hpp")) {
    scan(kGetenv, "metaprep-no-env-outside-config",
         "getenv outside the blessed env layer; use util::env_* (util/env.hpp)");
  }

  // --- metaprep-nolint-justified ------------------------------------------
  {
    const char* rule = "metaprep-nolint-justified";
    const auto& per_line = nolint.per_line();
    for (std::size_t i = 0; i < per_line.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      for (const Nolint& n : per_line[i]) {
        if (n.justified) continue;
        if (nolint.suppressed(rule, line)) continue;
        findings.push_back({file, line, rule,
                            "NOLINT without a justification; write "
                            "NOLINT(metaprep-<rule>): <why>"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

}  // namespace metaprep::lint
