// metaprep-report: offline analyzer for the pipeline's observability output.
//
//   metaprep-report --attr attr.json                    # round-trip + print
//   metaprep-report --trace trace.json [--wall 1.23]    # re-analyze a trace
//   metaprep-report --trace t.json --metrics m.jsonl    # overlay RSS/mem/skew
//   ... --json                                          # machine-readable
//
// With --attr, the structured artifact the pipeline wrote is the source of
// truth.  With only --trace, the same PhaseAccountant that ran online
// re-derives phases, imbalance, and the critical path from the Chrome trace;
// --metrics then fills in the gauges a bare trace cannot carry.
#include <cstdio>
#include <exception>
#include <string>

#include "obs/attr.hpp"
#include "report.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s (--attr=FILE | --trace=FILE) [--metrics=FILE]\n"
               "          [--wall=SECONDS] [--json]\n"
               "\n"
               "  --attr=FILE     attr.json written by the pipeline (--attr-out)\n"
               "  --trace=FILE    Chrome trace written by the pipeline (--trace-out);\n"
               "                  re-analyzed when --attr is not given\n"
               "  --metrics=FILE  metrics JSONL (--metrics-out); fills peak RSS,\n"
               "                  mem.*.high_water and comm skew missing from a trace\n"
               "  --wall=SECONDS  measured wall clock for --trace analysis\n"
               "  --json          print the attr.json document instead of the table\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  const std::string attr_path = args.get("attr", "");
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  if (attr_path.empty() && trace_path.empty()) return usage(args.program().c_str());

  try {
    obs::AttrReport report;
    if (!attr_path.empty()) {
      report = report::load_attr(attr_path);
    } else {
      const auto events = report::load_chrome_trace(trace_path);
      report = obs::PhaseAccountant::analyze(events, args.get_double("wall", 0.0) * 1e6);
    }
    if (!metrics_path.empty())
      report::merge_metrics(report, report::load_metrics(metrics_path));

    if (args.has("json")) {
      std::fputs(report.to_json().c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::fputs(obs::format_report(report).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metaprep-report: %s\n", e.what());
    return 1;
  }
}
