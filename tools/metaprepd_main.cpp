// metaprepd: METAPREP preprocessing as a local service.
//
//   metaprepd --socket=PATH [--mem-budget-mb=N] [--max-threads=N]
//             [--job-dir=DIR]
//
// Binds an AF_UNIX socket and serves the line-oriented JSON protocol in
// serve/proto.hpp until a {"cmd":"shutdown"} request arrives.  Jobs run one
// at a time (priority then FIFO) inside per-job PipelineSessions; per-job
// trace/metrics artifacts land in --job-dir (default: the socket's
// directory).  --mem-budget-mb caps admission by the paper's §3.7 per-task
// memory model; --max-threads caps each job's simulated P*T.  Submit and
// poll with `metaprep_cli daemon ...`.
#include <cstdio>

#include "serve/daemon.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  if (!args.has("socket")) {
    std::fprintf(stderr,
                 "usage: metaprepd --socket=PATH [--mem-budget-mb=N] [--max-threads=N] "
                 "[--job-dir=DIR]\n");
    return 2;
  }
  serve::DaemonOptions opt;
  opt.socket_path = args.get("socket", "");
  opt.mem_budget_bytes =
      static_cast<std::uint64_t>(args.get_double("mem-budget-mb", 0.0) * 1e6);
  opt.max_threads = static_cast<int>(args.get_int("max-threads", 0));
  opt.job_dir = args.get("job-dir", "");
  try {
    serve::Daemon daemon(std::move(opt));
    daemon.serve();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metaprepd: %s\n", e.what());
    return 1;
  }
  return 0;
}
