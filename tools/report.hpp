// Offline ingestion for `metaprep-report`: load the pipeline's observability
// artifacts back into the in-process structures so the analyzer can run
// without re-executing the pipeline.
//
// Three inputs, all optional at the CLI but at least one of attr/trace is
// required:
//   - attr.json        (--attr-out)        -> AttrReport, round-tripped
//   - Chrome trace     (--trace-out)       -> TraceEvents, re-analyzed by
//                                            PhaseAccountant (same walker the
//                                            pipeline ran online)
//   - metrics JSONL    (--metrics-out)     -> overlay of RSS / mem.* /
//                                            comm-skew gauges for reports
//                                            built from a bare trace
//
// Lives in tools/ (not src/obs) because it depends on util/json, and mp_obs
// deliberately links below mp_util.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attr.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace metaprep::report {

/// Rebuild an AttrReport from a parsed attr.json document (the inverse of
/// AttrReport::to_json).  Missing optional sections default to empty;
/// structurally wrong documents throw util::parse_error.
obs::AttrReport attr_from_json(const util::JsonValue& doc);

/// parse_json_file + attr_from_json.
obs::AttrReport load_attr(const std::string& path);

/// Parse a Chrome trace_event JSON file (TraceSession::write_chrome_json
/// output) back into closed spans and flow markers: "B"/"E" pairs become
/// spans, "s"/"f" become send/recv flow markers, "i" instants are kept as
/// point events, "M" metadata is dropped.  Unclosed spans at end-of-trace
/// (a truncated file) are dropped rather than fabricated.
std::vector<obs::TraceEvent> load_chrome_trace(const std::string& path);

/// One line of the metrics JSONL export.
struct MetricSample {
  std::string name;
  std::string type;        ///< "counter" | "gauge" | "histogram"
  double value = 0.0;      ///< counter/gauge value; histogram sum
  std::uint64_t count = 0; ///< histogram only
};

/// Parse a MetricsRegistry::write_jsonl file.
std::vector<MetricSample> load_metrics(const std::string& path);

/// Overlay metric gauges onto @p r, filling only what the report does not
/// already carry: proc.peak_rss_bytes, mem.<subsystem>.high_water, and
/// mpsim.comm_matrix_skew.  Lets `--trace + --metrics` approximate the full
/// attr.json without the pipeline's in-memory state.
void merge_metrics(obs::AttrReport& r, const std::vector<MetricSample>& metrics);

}  // namespace metaprep::report
