// mpsim: an in-process message-passing substrate standing in for MPI.
//
// METAPREP uses MPI for distributed memory parallelism (1 task per node) and
// OpenMP within a task.  This container has no MPI and no network, so we run
// each "rank" on its own thread with mailbox-based point-to-point messages
// and the collectives the pipeline needs (barrier, broadcast, gather).  The
// pipeline code is written against this interface exactly as it would be
// against MPI: ranks own disjoint state, exchange k-mer tuples through the
// paper's custom P-stage All-to-all (§3.3: "In stage i, task p sends tuples
// to task (p+i) mod P"), and merge components pairwise over ⌈log P⌉ rounds.
//
// A CostModel accumulates *simulated* interconnect seconds per rank
// (latency + bytes / link bandwidth, defaults from the paper's Edison
// measurements) so the scaling benches can report modeled multi-node
// communication time alongside measured compute time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "util/sync.hpp"

namespace metaprep::check {
class ProtocolChecker;
}

namespace metaprep::mpsim {

/// Interconnect parameters; defaults follow the paper's Edison numbers
/// (§4: "point-to-point link bandwidth of large messages is 8 GB/s").
struct CostModelParams {
  double latency_s = 2e-6;
  double link_bandwidth_Bps = 8e9;
};

class World;
class Comm;

/// Handle for a non-blocking operation, completed by Comm::wait/wait_all.
///
/// Send requests follow MPI buffered-send semantics: the payload is copied
/// into the destination mailbox before isend returns, so the request is
/// already complete and the caller may reuse (or release to the BufferPool)
/// the send buffer immediately.  Receive requests record where the message
/// must land; the mailbox take + copy happens inside wait.  Requests are
/// movable, single-use, and must be completed on the rank that posted them.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool done() const noexcept { return kind_ == Kind::kNone || done_; }

 private:
  friend class Comm;
  enum class Kind { kNone, kSend, kRecv };
  Kind kind_ = Kind::kNone;
  int peer_ = -1;
  int tag_ = 0;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool done_ = true;
  // Protocol-checker bookkeeping (src/check): whether a wait already
  // consumed this request, and its posting index within the (rank, src,
  // tag) irecv stream.  Dead weight when checking is off.
  bool waited_ = false;
  std::uint64_t post_seq_ = 0;
};

/// Per-rank communicator handle, valid only inside World::run.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking-send semantics of a buffered MPI send: copies @p bytes into
  /// the destination mailbox and returns immediately.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of the message (src, tag).  Message sizes are always
  /// known in advance in METAPREP (precomputed from the index tables), so
  /// the caller passes the expected byte count; a mismatch throws.
  void recv(int src, int tag, void* data, std::size_t bytes);

  /// Receive without a size expectation (returns the payload).
  std::vector<std::byte> recv_any_size(int src, int tag);

  /// Non-blocking send (MPI_Ibsend semantics): the payload is copied into
  /// the destination mailbox — through the same fault-injection/retry path
  /// as send(), so a dropped delivery is retransmitted before the post
  /// returns and can never enqueue twice — and the returned request is
  /// already complete.  Messages from one rank to one (dest, tag) mailbox
  /// key arrive in posting order, exactly like send().
  Request isend(int dest, int tag, const void* data, std::size_t bytes);

  /// Non-blocking receive: registers the expectation that (src, tag) will
  /// deliver exactly @p bytes into @p data.  May be posted before the
  /// matching isend exists.  @p data must stay valid until wait; the copy
  /// happens there.  Matching against the mailbox is in wait order, so
  /// waiting requests in posting order preserves per-(src, tag) FIFO.
  Request irecv(int src, int tag, void* data, std::size_t bytes);

  /// Complete one request (blocks for pending receives; no-op when done).
  /// Under check::enabled(), re-waiting a receive request that a previous
  /// wait already completed raises a kDoubleWait violation.
  void wait(Request& request);

  /// Complete requests in index order (see irecv on why order matters).
  void wait_all(std::span<Request> requests);

  /// Async form of alltoallv_staged: the local block is copied inline and
  /// every stage's send is posted (buffered) before return; the returned
  /// requests — the P-1 stage receives — complete in wait_all.  Same
  /// offsets contract and identical CostModel accounting per message as the
  /// blocking version; only the completion point moves, which is what lets
  /// the caller overlap the next pass's KmerGen with this exchange.
  [[nodiscard]] std::vector<Request> ialltoallv_staged(
      const void* sendbuf, std::span<const std::uint64_t> send_offsets, void* recvbuf,
      std::span<const std::uint64_t> recv_offsets, int tag);

  template <typename T>
  void send_span(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void recv_span(int src, int tag, std::span<T> data) {
    recv(src, tag, data.data(), data.size_bytes());
  }

  /// Sense-reversing barrier over all ranks.
  void barrier();

  /// Broadcast @p bytes from @p root into every rank's @p data.
  void broadcast(void* data, std::size_t bytes, int root);

  /// Gather @p bytes from every rank into @p out on @p root (rank-major
  /// order, P * bytes total).  @p out may be null on non-root ranks.
  void gather(const void* data, std::size_t bytes, void* out, int root);

  /// Scatter per-rank slices of @p root's buffer: rank q receives the byte
  /// range [offsets[q], offsets[q] + lengths[q]) of @p sendbuf into its
  /// @p recvbuf.  Unlike MPI_Scatterv, slices may overlap — the label
  /// scatter of the merge tail ships each rank the read-ID interval its
  /// chunks cover, and paired-end chunk tables interleave those intervals.
  /// Both arrays have P entries and must agree on every rank (they are
  /// derived from the shared index tables); @p sendbuf is read only on
  /// root, and zero-length slices ship nothing.  Cross-rank bytes charge
  /// the CostModel/traffic matrix as usual and accumulate in the
  /// mpsim.scatter_bytes counter.
  void scatterv(const void* sendbuf, std::span<const std::uint64_t> offsets,
                std::span<const std::uint64_t> lengths, void* recvbuf, int root);

  /// Sum a 64-bit value across all ranks; every rank receives the total.
  std::uint64_t allreduce_sum(std::uint64_t value);

  /// The paper's custom staged All-to-all (§3.3).  Rank p's send buffer
  /// holds the block for destination d at byte range
  /// [send_offsets[d], send_offsets[d+1]); the block from source s is
  /// received at [recv_offsets[s], recv_offsets[s+1]).  Both offset arrays
  /// have P+1 entries and are precomputed from the FASTQPart table, which is
  /// how METAPREP avoids MPI_Alltoallv's 32-bit count limitation.
  void alltoallv_staged(const void* sendbuf, std::span<const std::uint64_t> send_offsets,
                        void* recvbuf, std::span<const std::uint64_t> recv_offsets, int tag);

  /// Simulated interconnect seconds accumulated by this rank so far.
  [[nodiscard]] double simulated_comm_seconds() const;

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Owns P ranks; run(fn) executes fn(comm) once per rank concurrently.
class World {
 public:
  explicit World(int num_ranks, CostModelParams cost = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] int size() const noexcept { return num_ranks_; }

  /// Execute fn(comm) on every rank; returns when all ranks finish.  If a
  /// rank throws, the first exception is rethrown after all ranks complete
  /// (remaining ranks may deadlock only if they wait on the failed rank; a
  /// failure poisons all mailboxes to unblock them).
  void run(const std::function<void(Comm&)>& fn);

  /// Max over ranks of simulated comm seconds recorded so far.
  [[nodiscard]] double max_simulated_comm_seconds() const;
  [[nodiscard]] double simulated_comm_seconds(int rank) const;
  void reset_cost_model();

  /// Traffic matrix: bytes shipped from src to dest over the lifetime of
  /// this world (self-sends excluded; row-major P x P).  Lets the exchange
  /// pattern of the staged all-to-all (§3.3) be inspected directly.
  [[nodiscard]] std::vector<std::uint64_t> traffic_matrix() const;
  /// Message counts per (src, dest) pair, same shape/exclusions as
  /// traffic_matrix().  Together they are the `mpsim.comm_matrix` export.
  [[nodiscard]] std::vector<std::uint64_t> message_matrix() const;
  [[nodiscard]] std::uint64_t total_traffic_bytes() const;
  [[nodiscard]] std::uint64_t message_count() const;

  /// Async requests posted but not yet completed, world-wide right now (0
  /// between balanced post/wait phases).  The high-water mark is mirrored
  /// into the `mpsim.async_inflight` gauge.
  [[nodiscard]] std::int64_t async_inflight() const noexcept {
    return async_inflight_.load(std::memory_order_relaxed);
  }

 private:
  friend class Comm;

  struct Message {
    std::vector<std::byte> payload;
    std::uint64_t seq = 0;   ///< per-(src, dest, tag) send index (checker FIFO proof)
    std::uint64_t flow = 0;  ///< trace flow id pairing send/recv markers (0 = untraced)
  };

  struct Mailbox {
    util::Mutex mutex;
    util::CondVar cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues GUARDED_BY(mutex);  // (src, tag)
    bool poisoned GUARDED_BY(mutex) = false;

    /// take()'s wake condition: poisoned (about to throw comm_error) or a
    /// queued (src, tag) message.  A named member rather than a lambda at the
    /// wait site so the guarded reads stay visible to the thread-safety
    /// analysis (lambda bodies are opaque to it).
    [[nodiscard]] bool ready(const std::pair<int, int>& key) const REQUIRES(mutex) {
      if (poisoned) return true;
      auto it = queues.find(key);
      return it != queues.end() && !it->second.empty();
    }
  };

  void deliver(int src, int dest, int tag, const void* data, std::size_t bytes);
  Message take(int src, int dest, int tag);
  void poison_all();
  void note_async_posted();
  void note_async_completed() noexcept;

  /// Non-blocking probe: does dest's mailbox hold a (src, tag) message right
  /// now?  Returns true on lock contention (conservative: "may have one"),
  /// which suppresses the deadlock edge — never a false deadlock.
  [[nodiscard]] bool mailbox_has(int dest, int src, int tag);

  /// After all rank threads joined: scan mailboxes for leftover messages
  /// (unmatched sends) and throw CheckError if the checker accumulated any
  /// deferred violations.  Only called when no rank threw.
  void finalize_check();

  int num_ranks_;
  CostModelParams cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable util::Mutex cost_mutex_;
  std::vector<double> sim_comm_seconds_ GUARDED_BY(cost_mutex_);
  /// P x P, row-major (src, dest).
  std::vector<std::uint64_t> traffic_bytes_ GUARDED_BY(cost_mutex_);
  /// P x P, row-major (src, dest).
  std::vector<std::uint64_t> traffic_msgs_ GUARDED_BY(cost_mutex_);
  std::uint64_t message_count_ GUARDED_BY(cost_mutex_) = 0;
  std::atomic<std::int64_t> async_inflight_{0};
  std::atomic<std::uint64_t> next_flow_id_{1};  ///< trace flow ids (never 0)

  // Barrier state.
  util::Mutex barrier_mutex_;
  util::CondVar barrier_cv_;
  int barrier_count_ GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_phase_ GUARDED_BY(barrier_mutex_) = 0;
  /// Set by poison_all to free parked ranks.
  bool barrier_poisoned_ GUARDED_BY(barrier_mutex_) = false;

  /// Protocol checker; non-null only when check::enabled() at construction.
  std::unique_ptr<check::ProtocolChecker> checker_;
};

}  // namespace metaprep::mpsim
