// mpsim: an in-process message-passing substrate standing in for MPI.
//
// METAPREP uses MPI for distributed memory parallelism (1 task per node) and
// OpenMP within a task.  This container has no MPI and no network, so we run
// each "rank" on its own thread with mailbox-based point-to-point messages
// and the collectives the pipeline needs (barrier, broadcast, gather).  The
// pipeline code is written against this interface exactly as it would be
// against MPI: ranks own disjoint state, exchange k-mer tuples through the
// paper's custom P-stage All-to-all (§3.3: "In stage i, task p sends tuples
// to task (p+i) mod P"), and merge components pairwise over ⌈log P⌉ rounds.
//
// A CostModel accumulates *simulated* interconnect seconds per rank
// (latency + bytes / link bandwidth, defaults from the paper's Edison
// measurements) so the scaling benches can report modeled multi-node
// communication time alongside measured compute time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace metaprep::mpsim {

/// Interconnect parameters; defaults follow the paper's Edison numbers
/// (§4: "point-to-point link bandwidth of large messages is 8 GB/s").
struct CostModelParams {
  double latency_s = 2e-6;
  double link_bandwidth_Bps = 8e9;
};

class World;

/// Per-rank communicator handle, valid only inside World::run.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking-send semantics of a buffered MPI send: copies @p bytes into
  /// the destination mailbox and returns immediately.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of the message (src, tag).  Message sizes are always
  /// known in advance in METAPREP (precomputed from the index tables), so
  /// the caller passes the expected byte count; a mismatch throws.
  void recv(int src, int tag, void* data, std::size_t bytes);

  /// Receive without a size expectation (returns the payload).
  std::vector<std::byte> recv_any_size(int src, int tag);

  template <typename T>
  void send_span(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void recv_span(int src, int tag, std::span<T> data) {
    recv(src, tag, data.data(), data.size_bytes());
  }

  /// Sense-reversing barrier over all ranks.
  void barrier();

  /// Broadcast @p bytes from @p root into every rank's @p data.
  void broadcast(void* data, std::size_t bytes, int root);

  /// Gather @p bytes from every rank into @p out on @p root (rank-major
  /// order, P * bytes total).  @p out may be null on non-root ranks.
  void gather(const void* data, std::size_t bytes, void* out, int root);

  /// Sum a 64-bit value across all ranks; every rank receives the total.
  std::uint64_t allreduce_sum(std::uint64_t value);

  /// The paper's custom staged All-to-all (§3.3).  Rank p's send buffer
  /// holds the block for destination d at byte range
  /// [send_offsets[d], send_offsets[d+1]); the block from source s is
  /// received at [recv_offsets[s], recv_offsets[s+1]).  Both offset arrays
  /// have P+1 entries and are precomputed from the FASTQPart table, which is
  /// how METAPREP avoids MPI_Alltoallv's 32-bit count limitation.
  void alltoallv_staged(const void* sendbuf, std::span<const std::uint64_t> send_offsets,
                        void* recvbuf, std::span<const std::uint64_t> recv_offsets, int tag);

  /// Simulated interconnect seconds accumulated by this rank so far.
  [[nodiscard]] double simulated_comm_seconds() const;

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Owns P ranks; run(fn) executes fn(comm) once per rank concurrently.
class World {
 public:
  explicit World(int num_ranks, CostModelParams cost = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] int size() const noexcept { return num_ranks_; }

  /// Execute fn(comm) on every rank; returns when all ranks finish.  If a
  /// rank throws, the first exception is rethrown after all ranks complete
  /// (remaining ranks may deadlock only if they wait on the failed rank; a
  /// failure poisons all mailboxes to unblock them).
  void run(const std::function<void(Comm&)>& fn);

  /// Max over ranks of simulated comm seconds recorded so far.
  [[nodiscard]] double max_simulated_comm_seconds() const;
  [[nodiscard]] double simulated_comm_seconds(int rank) const;
  void reset_cost_model();

  /// Traffic matrix: bytes shipped from src to dest over the lifetime of
  /// this world (self-sends excluded; row-major P x P).  Lets the exchange
  /// pattern of the staged all-to-all (§3.3) be inspected directly.
  [[nodiscard]] std::vector<std::uint64_t> traffic_matrix() const;
  [[nodiscard]] std::uint64_t total_traffic_bytes() const;
  [[nodiscard]] std::uint64_t message_count() const;

 private:
  friend class Comm;

  struct Message {
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;  // (src, tag)
    bool poisoned = false;
  };

  void deliver(int src, int dest, int tag, const void* data, std::size_t bytes);
  Message take(int src, int dest, int tag);
  void poison_all();

  int num_ranks_;
  CostModelParams cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<double> sim_comm_seconds_;
  std::vector<std::uint64_t> traffic_bytes_;  ///< P x P, row-major (src, dest)
  std::uint64_t message_count_ = 0;
  mutable std::mutex cost_mutex_;

  // Barrier state.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_phase_ = 0;
};

}  // namespace metaprep::mpsim
