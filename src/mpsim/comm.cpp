#include "mpsim/comm.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "check/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/retry.hpp"
#include "util/session.hpp"

namespace metaprep::mpsim {

int Comm::size() const noexcept { return world_->size(); }

World::World(int num_ranks, CostModelParams cost) : num_ranks_(num_ranks), cost_(cost) {
  if (num_ranks < 1) throw std::invalid_argument("World: num_ranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  sim_comm_seconds_.assign(static_cast<std::size_t>(num_ranks), 0.0);
  traffic_bytes_.assign(static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks),
                        0);
  traffic_msgs_.assign(static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks),
                       0);
  if (check::enabled()) checker_ = std::make_unique<check::ProtocolChecker>(num_ranks);
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  // Clear any poison left by a previous failed run.
  for (auto& mb : mailboxes_) {
    util::MutexLock lock(mb->mutex);
    mb->poisoned = false;
    mb->queues.clear();
  }
  {
    util::MutexLock lock(barrier_mutex_);
    barrier_poisoned_ = false;
    barrier_count_ = 0;
  }
  if (checker_) checker_->reset();

  std::exception_ptr first_exception;
  util::Mutex exception_mutex;
  auto body = [&](int rank) {
    Comm comm(*this, rank);
    try {
      fn(comm);
    } catch (...) {
      {
        util::MutexLock lock(exception_mutex);
        if (!first_exception) first_exception = std::current_exception();
      }
      poison_all();
    }
  };

  if (num_ranks_ == 1) {
    body(0);
  } else {
    // Rank threads are spawned fresh per run, so they inherit nothing:
    // install the caller's session context (per-session obs/check/log
    // overrides) in each one so a World driven from a pipeline session
    // records into that session's sinks.  Rank 0 runs on the caller's
    // thread, which already has the context.
    const util::SessionContext ctx = util::SessionContext::capture();
    auto rank_body = [&, ctx](int rank) {
      const util::ScopedSessionContext bind(ctx);
      body(rank);
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks_ - 1));
    for (int rank = 1; rank < num_ranks_; ++rank) threads.emplace_back(rank_body, rank);
    body(0);
    for (auto& t : threads) t.join();
  }
  if (first_exception) std::rethrow_exception(first_exception);
  finalize_check();
}

void World::finalize_check() {
  if (!checker_) return;
  // Every rank has returned cleanly; anything still queued is a send that
  // never found its recv.
  for (int dest = 0; dest < num_ranks_; ++dest) {
    Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
    util::MutexLock lock(mb.mutex);
    for (const auto& [key, queue] : mb.queues) {
      if (queue.empty()) continue;
      std::uint64_t bytes = 0;
      for (const Message& m : queue) bytes += m.payload.size();
      checker_->note_unmatched_send(key.first, dest, key.second, queue.size(), bytes);
    }
  }
  check::CheckReport report = checker_->take_final_report();
  if (!report.empty()) throw check::CheckError(std::move(report));
}

bool World::mailbox_has(int dest, int src, int tag) {
  if (dest < 0 || dest >= num_ranks_) return true;
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  // Bare try_lock/unlock rather than a scoped lock: the analysis proves the
  // branch-on-try_lock pattern directly, and nothing in between can throw
  // (map::find with a nothrow comparator, plain reads).
  if (!mb.mutex.try_lock()) return true;  // contended: owner is active, no edge
  const bool has = mb.ready({src, tag});  // poisoned counts as "has": about to
                                          // wake with comm_error, no edge
  mb.mutex.unlock();
  return has;
}

void World::poison_all() {
  for (auto& mb : mailboxes_) {
    {
      util::MutexLock lock(mb->mutex);
      mb->poisoned = true;
    }
    mb->cv.notify_all();
  }
  // Ranks parked inside barrier() watch barrier_poisoned_, not the mailbox
  // flags; without it a failure elsewhere would leave them waiting forever
  // on a phase change that can no longer happen.
  {
    util::MutexLock lock(barrier_mutex_);
    barrier_poisoned_ = true;
  }
  barrier_cv_.notify_all();
}

void World::deliver(int src, int dest, int tag, const void* data, std::size_t bytes) {
  {
    util::FaultPlan& plan = util::FaultPlan::global();
    if (plan.armed() && plan.inject_comm_delay()) {
      static thread_local obs::CounterHandle m_delays;
      m_delays.of(obs::metrics(), "mpsim.deliveries_delayed").add(1);
    }
  }
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  Message msg;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  // Stamp-then-push is safe: a rank's sends to one (dest, tag) stream are
  // issued from its own thread, so stamp order equals enqueue order.
  if (checker_) msg.seq = checker_->on_send(src, dest, tag, bytes);
  // Flow markers pair this enqueue with the matching take() on the receiver
  // thread; the critical-path walker (obs/attr) turns them into send->recv
  // DAG edges.  One relaxed load when tracing is off; self-sends need no
  // edge (same-thread program order already covers them).
  if (src != dest) {
    obs::TraceSession& tr = obs::TraceSession::current();
    if (tr.enabled()) {
      msg.flow = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
      tr.flow_marker("msg", msg.flow, /*is_send=*/true);
    }
  }
  {
    util::MutexLock lock(mb.mutex);
    mb.queues[{src, tag}].push_back(std::move(msg));
  }
  mb.cv.notify_all();
  // Simulated interconnect time is charged to the receiver when the message
  // crosses "the wire" (self-sends are free: MPI implementations short-cut
  // them through shared memory, and the paper's stage-0 block is a local
  // copy).
  if (src != dest) {
    {
      util::MutexLock lock(cost_mutex_);
      sim_comm_seconds_[static_cast<std::size_t>(dest)] +=
          cost_.latency_s + static_cast<double>(bytes) / cost_.link_bandwidth_Bps;
      traffic_bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_ranks_) +
                     static_cast<std::size_t>(dest)] += bytes;
      traffic_msgs_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_ranks_) +
                    static_cast<std::size_t>(dest)] += 1;
      ++message_count_;
    }
    // Cross-rank edge metrics: same quantities as the traffic matrix, but
    // accumulated process-wide across Worlds so a whole bench run snapshots
    // into one metrics file.
    static thread_local obs::CounterHandle m_msgs;
    static thread_local obs::CounterHandle m_bytes;
    static thread_local obs::HistogramHandle m_size;
    obs::MetricsRegistry& reg = obs::metrics();
    m_msgs.of(reg, "mpsim.messages_total").add(1);
    m_bytes.of(reg, "mpsim.bytes_total").add(bytes);
    m_size.of(reg, "mpsim.message_bytes").record(bytes);
  }
}

World::Message World::take(int src, int dest, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  util::MutexLock lock(mb.mutex);
  const std::pair<int, int> key{src, tag};
  if (checker_ && !mb.ready(key)) {
    // Checked blocking path: register as blocked, poll with a short timeout,
    // and probe the wait-for graph on each timeout so a cross-rank deadlock
    // becomes a structured CheckError instead of a hung test run.  Lock
    // order is mailbox -> checker everywhere; the deadlock probe touches
    // mailboxes only through try_lock, outside the checker mutex.
    checker_->block_recv(dest, src, tag, "recv");
    try {
      while (!mb.ready(key)) {
        if (mb.cv.wait_for(mb.mutex, lock, std::chrono::milliseconds(10)) ==
            std::cv_status::timeout) {
          lock.Unlock();
          checker_->detect_deadlock(
              [this](int d, int s, int t) { return mailbox_has(d, s, t); });
          lock.Lock();
        }
      }
    } catch (...) {
      checker_->unblock(dest);
      throw;
    }
    checker_->unblock(dest);
  } else if (!checker_) {
    while (!mb.ready(key)) mb.cv.wait(mb.mutex, lock);
  }
  if (mb.poisoned) throw util::comm_error("mpsim: world poisoned by a failed rank");
  auto it = mb.queues.find(key);
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  lock.Unlock();
  // Verify mailbox FIFO and join the sender's vector clock.  Safe outside
  // the mailbox lock: this rank's thread is the stream's only consumer.
  if (checker_) checker_->on_recv(src, dest, tag, msg.seq);
  // Close the flow edge on the receiver thread (see the deliver() marker).
  if (msg.flow != 0) {
    obs::TraceSession& tr = obs::TraceSession::current();
    if (tr.enabled()) tr.flow_marker("msg", msg.flow, /*is_send=*/false);
  }
  return msg;
}

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  if (dest < 0 || dest >= size())
    throw util::comm_error("mpsim send: bad dest rank " + std::to_string(dest));
  // Lost-message handling of a reliable transport: a delivery attempt that
  // the FaultPlan drops throws a transient comm Error and is retransmitted
  // with backoff.  The message enqueues exactly once (the drop fires before
  // the mailbox is touched), so receivers never see duplicates.
  static const util::RetryPolicy kSendRetryPolicy{};
  util::with_retries(
      kSendRetryPolicy,
      [&] {
        util::FaultPlan& plan = util::FaultPlan::global();
        if (plan.armed() && plan.inject_comm_drop())
          throw util::comm_error("injected message drop", /*transient=*/true);
        world_->deliver(rank_, dest, tag, data, bytes);
      },
      [](int /*attempt*/, const util::Error& /*error*/) {
        static thread_local obs::CounterHandle m_retries;
        m_retries.of(obs::metrics(), "mpsim.send_retries").add(1);
      });
}

void World::note_async_posted() {
  const std::int64_t now = async_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  static thread_local obs::GaugeHandle g_inflight;
  g_inflight.of(obs::metrics(), "mpsim.async_inflight").set_max(static_cast<double>(now));
}

void World::note_async_completed() noexcept {
  async_inflight_.fetch_sub(1, std::memory_order_relaxed);
}

Request Comm::isend(int dest, int tag, const void* data, std::size_t bytes) {
  world_->note_async_posted();
  // Buffered-send semantics: deliver now (drop/retry handling included in
  // send), complete the request now.  The momentary posted state still
  // registers in the inflight high-water mark.
  send(dest, tag, data, bytes);
  world_->note_async_completed();
  Request r;
  r.kind_ = Request::Kind::kSend;
  r.peer_ = dest;
  r.tag_ = tag;
  r.bytes_ = bytes;
  r.done_ = true;
  return r;
}

Request Comm::irecv(int src, int tag, void* data, std::size_t bytes) {
  if (src < 0 || src >= size())
    throw util::comm_error("mpsim irecv: bad src rank " + std::to_string(src));
  world_->note_async_posted();
  Request r;
  r.kind_ = Request::Kind::kRecv;
  r.peer_ = src;
  r.tag_ = tag;
  r.data_ = data;
  r.bytes_ = bytes;
  r.done_ = false;
  if (world_->checker_) r.post_seq_ = world_->checker_->on_post_recv(rank_, src, tag);
  return r;
}

void Comm::wait(Request& request) {
  check::ProtocolChecker* checker = world_->checker_.get();
  if (request.done()) {
    // A pending-recv request that already completed one wait: flag the
    // double completion (waiting a finished isend is legal, as in MPI).
    if (checker && request.kind_ == Request::Kind::kRecv && request.waited_)
      checker->on_double_wait(rank_, request.peer_, request.tag_, "irecv");
    return;
  }
  // Only pending receives reach here; sends complete inside isend.
  World::Message msg = world_->take(request.peer_, rank_, request.tag_);
  request.done_ = true;  // the request is consumed even if the size check throws
  request.waited_ = true;
  world_->note_async_completed();
  if (checker) checker->on_wait_recv(rank_, request.peer_, request.tag_, request.post_seq_);
  if (msg.payload.size() != request.bytes_)
    throw util::comm_error("mpsim wait: size mismatch (got " +
                           std::to_string(msg.payload.size()) + ", expected " +
                           std::to_string(request.bytes_) + ")");
  std::memcpy(request.data_, msg.payload.data(), msg.payload.size());
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) wait(r);
}

std::vector<Request> Comm::ialltoallv_staged(const void* sendbuf,
                                             std::span<const std::uint64_t> send_offsets,
                                             void* recvbuf,
                                             std::span<const std::uint64_t> recv_offsets,
                                             int tag) {
  const int P = size();
  if (send_offsets.size() != static_cast<std::size_t>(P) + 1 ||
      recv_offsets.size() != static_cast<std::size_t>(P) + 1)
    throw std::invalid_argument("ialltoallv_staged: offset arrays must have P+1 entries");
  if (world_->checker_) {
    check::validate_block_offsets(send_offsets, rank_, "ialltoallv_staged send");
    check::validate_block_offsets(recv_offsets, rank_, "ialltoallv_staged recv");
  }

  const auto* sbytes = static_cast<const std::byte*>(sendbuf);
  auto* rbytes = static_cast<std::byte*>(recvbuf);

  // Stage 0: local block, plain copy (src == dest).
  std::memcpy(rbytes + recv_offsets[static_cast<std::size_t>(rank_)],
              sbytes + send_offsets[static_cast<std::size_t>(rank_)],
              send_offsets[static_cast<std::size_t>(rank_) + 1] -
                  send_offsets[static_cast<std::size_t>(rank_)]);

  // Stages 1..P-1, same schedule as the blocking version, but every send is
  // posted up front and every receive is returned pending: the caller's
  // compute between this post and the wait_all is the overlap window.
  std::vector<Request> pending;
  pending.reserve(static_cast<std::size_t>(P > 0 ? P - 1 : 0));
  for (int stage = 1; stage < P; ++stage) {
    const int dest = (rank_ + stage) % P;
    const int src = (rank_ - stage + P) % P;
    const std::uint64_t send_begin = send_offsets[static_cast<std::size_t>(dest)];
    const std::uint64_t send_len = send_offsets[static_cast<std::size_t>(dest) + 1] - send_begin;
    isend(dest, tag + stage, sbytes + send_begin, send_len);
    const std::uint64_t recv_begin = recv_offsets[static_cast<std::size_t>(src)];
    const std::uint64_t recv_len = recv_offsets[static_cast<std::size_t>(src) + 1] - recv_begin;
    pending.push_back(irecv(src, tag + stage, rbytes + recv_begin, recv_len));
  }
  return pending;
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  World::Message msg = world_->take(src, rank_, tag);
  if (msg.payload.size() != bytes)
    throw util::comm_error("mpsim recv: size mismatch (got " +
                           std::to_string(msg.payload.size()) + ", expected " +
                           std::to_string(bytes) + ")");
  std::memcpy(data, msg.payload.data(), bytes);
}

std::vector<std::byte> Comm::recv_any_size(int src, int tag) {
  return world_->take(src, rank_, tag).payload;
}

void Comm::barrier() {
  if (size() == 1) return;
  check::ProtocolChecker* checker = world_->checker_.get();
  util::MutexLock lock(world_->barrier_mutex_);
  if (world_->barrier_poisoned_)
    throw util::comm_error("mpsim: world poisoned by a failed rank");
  if (checker) checker->on_barrier_arrive(rank_);
  const std::uint64_t phase = world_->barrier_phase_;
  if (++world_->barrier_count_ == size()) {
    world_->barrier_count_ = 0;
    ++world_->barrier_phase_;
    world_->barrier_cv_.notify_all();
  } else if (checker) {
    checker->block_barrier(rank_);
    try {
      while (world_->barrier_phase_ == phase && !world_->barrier_poisoned_) {
        if (world_->barrier_cv_.wait_for(world_->barrier_mutex_, lock,
                                         std::chrono::milliseconds(10)) ==
            std::cv_status::timeout) {
          lock.Unlock();
          checker->detect_deadlock(
              [w = world_](int d, int s, int t) { return w->mailbox_has(d, s, t); });
          lock.Lock();
        }
      }
    } catch (...) {
      checker->unblock(rank_);
      throw;
    }
    checker->unblock(rank_);
    if (world_->barrier_phase_ == phase && world_->barrier_poisoned_)
      throw util::comm_error("mpsim: world poisoned while in barrier");
  } else {
    // A rank failing elsewhere can never advance the phase, so the wait
    // also watches the poison flag (set by poison_all) to avoid hanging.
    while (world_->barrier_phase_ == phase && !world_->barrier_poisoned_)
      world_->barrier_cv_.wait(world_->barrier_mutex_, lock);
    if (world_->barrier_phase_ == phase && world_->barrier_poisoned_)
      throw util::comm_error("mpsim: world poisoned while in barrier");
  }
}

void Comm::broadcast(void* data, std::size_t bytes, int root) {
  if (size() == 1) return;
  constexpr int kBcastTag = -424242;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data, bytes);
    }
  } else {
    recv(root, kBcastTag, data, bytes);
  }
}

void Comm::scatterv(const void* sendbuf, std::span<const std::uint64_t> offsets,
                    std::span<const std::uint64_t> lengths, void* recvbuf, int root) {
  constexpr int kScatterTag = -454545;
  const int P = size();
  if (offsets.size() != static_cast<std::size_t>(P) ||
      lengths.size() != static_cast<std::size_t>(P))
    throw util::comm_error("scatterv: offsets/lengths must have P entries");
  if (rank_ == root) {
    const auto* sbytes = static_cast<const std::byte*>(sendbuf);
    std::uint64_t cross_bytes = 0;
    for (int q = 0; q < P; ++q) {
      const std::uint64_t len = lengths[static_cast<std::size_t>(q)];
      if (len == 0) continue;
      const std::byte* slice = sbytes + offsets[static_cast<std::size_t>(q)];
      if (q == root) {
        std::memcpy(recvbuf, slice, len);
      } else {
        send(q, kScatterTag, slice, len);
        cross_bytes += len;
      }
    }
    if (cross_bytes > 0) {
      static thread_local obs::CounterHandle m_scatter;
      m_scatter.of(obs::metrics(), "mpsim.scatter_bytes").add(cross_bytes);
    }
  } else if (lengths[static_cast<std::size_t>(rank_)] > 0) {
    recv(root, kScatterTag, recvbuf, lengths[static_cast<std::size_t>(rank_)]);
  }
}

void Comm::gather(const void* data, std::size_t bytes, void* out, int root) {
  constexpr int kGatherTag = -434343;
  if (rank_ == root) {
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(root) * bytes, data, bytes);
    for (int r = 0; r < size(); ++r) {
      if (r != root) recv(r, kGatherTag, dst + static_cast<std::size_t>(r) * bytes, bytes);
    }
  } else {
    send(root, kGatherTag, data, bytes);
  }
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  if (size() == 1) return value;
  std::vector<std::uint64_t> all(static_cast<std::size_t>(size()), 0);
  gather(&value, sizeof(value), all.data(), 0);
  std::uint64_t total = 0;
  if (rank_ == 0) {
    for (std::uint64_t v : all) total += v;
  }
  broadcast(&total, sizeof(total), 0);
  return total;
}

void Comm::alltoallv_staged(const void* sendbuf, std::span<const std::uint64_t> send_offsets,
                            void* recvbuf, std::span<const std::uint64_t> recv_offsets,
                            int tag) {
  const int P = size();
  if (send_offsets.size() != static_cast<std::size_t>(P) + 1 ||
      recv_offsets.size() != static_cast<std::size_t>(P) + 1)
    throw std::invalid_argument("alltoallv_staged: offset arrays must have P+1 entries");
  if (world_->checker_) {
    check::validate_block_offsets(send_offsets, rank_, "alltoallv_staged send");
    check::validate_block_offsets(recv_offsets, rank_, "alltoallv_staged recv");
  }

  const auto* sbytes = static_cast<const std::byte*>(sendbuf);
  auto* rbytes = static_cast<std::byte*>(recvbuf);

  // Stage 0: local block, plain copy (src == dest).
  std::memcpy(rbytes + recv_offsets[static_cast<std::size_t>(rank_)],
              sbytes + send_offsets[static_cast<std::size_t>(rank_)],
              send_offsets[static_cast<std::size_t>(rank_) + 1] -
                  send_offsets[static_cast<std::size_t>(rank_)]);

  // Stages 1..P-1: in stage i, rank p sends to (p+i) mod P and receives
  // from (p-i+P) mod P (paper §3.3).
  for (int stage = 1; stage < P; ++stage) {
    const int dest = (rank_ + stage) % P;
    const int src = (rank_ - stage + P) % P;
    const std::uint64_t send_begin = send_offsets[static_cast<std::size_t>(dest)];
    const std::uint64_t send_len = send_offsets[static_cast<std::size_t>(dest) + 1] - send_begin;
    send(dest, tag + stage, sbytes + send_begin, send_len);
    const std::uint64_t recv_begin = recv_offsets[static_cast<std::size_t>(src)];
    const std::uint64_t recv_len = recv_offsets[static_cast<std::size_t>(src) + 1] - recv_begin;
    recv(src, tag + stage, rbytes + recv_begin, recv_len);
  }
}

double Comm::simulated_comm_seconds() const { return world_->simulated_comm_seconds(rank_); }

double World::simulated_comm_seconds(int rank) const {
  util::MutexLock lock(cost_mutex_);
  return sim_comm_seconds_[static_cast<std::size_t>(rank)];
}

double World::max_simulated_comm_seconds() const {
  util::MutexLock lock(cost_mutex_);
  double mx = 0.0;
  for (double v : sim_comm_seconds_) mx = std::max(mx, v);
  return mx;
}

void World::reset_cost_model() {
  util::MutexLock lock(cost_mutex_);
  for (auto& v : sim_comm_seconds_) v = 0.0;
  for (auto& v : traffic_bytes_) v = 0;
  for (auto& v : traffic_msgs_) v = 0;
  message_count_ = 0;
}

std::vector<std::uint64_t> World::traffic_matrix() const {
  util::MutexLock lock(cost_mutex_);
  return traffic_bytes_;
}

std::vector<std::uint64_t> World::message_matrix() const {
  util::MutexLock lock(cost_mutex_);
  return traffic_msgs_;
}

std::uint64_t World::total_traffic_bytes() const {
  util::MutexLock lock(cost_mutex_);
  std::uint64_t total = 0;
  for (auto v : traffic_bytes_) total += v;
  return total;
}

std::uint64_t World::message_count() const {
  util::MutexLock lock(cost_mutex_);
  return message_count_;
}

}  // namespace metaprep::mpsim
