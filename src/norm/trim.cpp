#include "norm/trim.hpp"

#include <stdexcept>

#include "io/fastq.hpp"
#include "util/error.hpp"

namespace metaprep::norm {

std::size_t trimmed_length(std::string_view seq, std::string_view qual,
                           const TrimOptions& options) {
  if (seq.size() != qual.size())
    throw std::invalid_argument("trimmed_length: quality length != sequence length");
  std::size_t len = seq.size();
  while (len > 0 &&
         static_cast<int>(qual[len - 1]) - options.phred_offset < options.min_phred) {
    --len;
  }
  return len;
}

TrimStats trim_fastq_pair(const std::string& r1_path, const std::string& r2_path,
                          const std::string& out_prefix, const TrimOptions& options) {
  TrimStats stats;
  io::FastqReader in1(r1_path);
  io::FastqReader in2(r2_path);
  io::FastqWriter out1(out_prefix + "_1.fastq");
  io::FastqWriter out2(out_prefix + "_2.fastq");
  io::FastqRecord rec1, rec2;
  while (in1.next(rec1)) {
    if (!in2.next(rec2))
      throw util::parse_error("trim_fastq_pair: R2 has fewer records than R1", r2_path);
    ++stats.pairs_in;
    stats.bases_in += rec1.seq.size() + rec2.seq.size();
    const std::size_t len1 = trimmed_length(rec1.seq, rec1.qual, options);
    const std::size_t len2 = trimmed_length(rec2.seq, rec2.qual, options);
    if (len1 < options.min_length || len2 < options.min_length) continue;
    ++stats.pairs_kept;
    stats.bases_kept += len1 + len2;
    out1.write(rec1.id, std::string_view(rec1.seq).substr(0, len1),
               std::string_view(rec1.qual).substr(0, len1));
    out2.write(rec2.id, std::string_view(rec2.seq).substr(0, len2),
               std::string_view(rec2.qual).substr(0, len2));
  }
  if (in2.next(rec2))
    throw util::parse_error("trim_fastq_pair: R2 has more records than R1", r2_path);
  return stats;
}

}  // namespace metaprep::norm
