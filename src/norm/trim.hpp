// Quality trimming — the preprocessing step upstream of everything else.
//
// The Howe et al. pipelines the paper builds on operate on quality-trimmed
// reads (the paper's §4.3 even notes the chunking overhead "in case of
// paired-end FASTQ files containing trimmed reads").  This module provides
// the standard 3' trim: cut trailing bases whose Phred quality falls below
// a threshold, and drop pairs whose surviving mates are too short.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace metaprep::norm {

struct TrimOptions {
  int min_phred = 20;          ///< trim trailing bases with quality < this
  std::size_t min_length = 50; ///< drop reads shorter than this after trim
  int phred_offset = 33;       ///< Sanger/Illumina 1.8+ encoding
};

struct TrimStats {
  std::uint64_t pairs_in = 0;
  std::uint64_t pairs_kept = 0;
  std::uint64_t bases_in = 0;
  std::uint64_t bases_kept = 0;
};

/// Length of @p seq after trimming trailing low-quality bases.
std::size_t trimmed_length(std::string_view seq, std::string_view qual,
                           const TrimOptions& options);

/// Trim paired FASTQ files; pairs where either mate falls below min_length
/// are dropped entirely (both mates), preserving pairing.  Writes
/// "<out_prefix>_1.fastq" / "_2.fastq".
TrimStats trim_fastq_pair(const std::string& r1_path, const std::string& r2_path,
                          const std::string& out_prefix, const TrimOptions& options);

}  // namespace metaprep::norm
