#include "norm/diginorm.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/fastq.hpp"
#include "util/error.hpp"
#include "kmer/scanner.hpp"

namespace metaprep::norm {

Normalizer::Normalizer(const DiginormOptions& options)
    : options_(options),
      sketch_(options.sketch_width, options.sketch_depth, options.sketch_seed) {}

std::uint32_t Normalizer::median_abundance(std::string_view read,
                                           std::vector<std::uint32_t>& scratch) {
  scratch.clear();
  kmer::for_each_canonical_kmer64(read, options_.k, [&](std::uint64_t km, std::size_t) {
    scratch.push_back(sketch_.estimate(km));
  });
  if (scratch.empty()) return 0;
  const auto mid = scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2);
  std::nth_element(scratch.begin(), mid, scratch.end());
  return *mid;
}

void Normalizer::count(std::string_view read) {
  kmer::for_each_canonical_kmer64(read, options_.k,
                                  [&](std::uint64_t km, std::size_t) { sketch_.add(km); });
}

bool Normalizer::offer(std::string_view read) {
  ++stats_.pairs_in;
  if (median_abundance(read, scratch_) >= options_.cutoff) return false;
  count(read);
  ++stats_.pairs_kept;
  return true;
}

bool Normalizer::offer_pair(std::string_view r1, std::string_view r2) {
  ++stats_.pairs_in;
  // Keep the pair unless BOTH mates are already saturated (khmer's
  // paired-mode rule: a pair survives if either read is novel).
  const std::uint32_t m1 = median_abundance(r1, scratch_);
  const std::uint32_t m2 = median_abundance(r2, scratch_);
  if (m1 >= options_.cutoff && m2 >= options_.cutoff) return false;
  count(r1);
  count(r2);
  ++stats_.pairs_kept;
  return true;
}

DiginormStats normalize_fastq_pair(const std::string& r1_path, const std::string& r2_path,
                                   const std::string& out_prefix,
                                   const DiginormOptions& options) {
  Normalizer normalizer(options);
  io::FastqReader in1(r1_path);
  io::FastqReader in2(r2_path);
  io::FastqWriter out1(out_prefix + "_1.fastq");
  io::FastqWriter out2(out_prefix + "_2.fastq");
  io::FastqRecord rec1, rec2;
  while (in1.next(rec1)) {
    if (!in2.next(rec2)) {
      throw util::parse_error("normalize_fastq_pair: R2 has fewer records than R1", r2_path);
    }
    if (normalizer.offer_pair(rec1.seq, rec2.seq)) {
      out1.write(rec1);
      out2.write(rec2);
    }
  }
  if (in2.next(rec2)) {
    throw util::parse_error("normalize_fastq_pair: R2 has more records than R1", r2_path);
  }
  return normalizer.stats();
}

}  // namespace metaprep::norm
