#include "norm/count_min.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace metaprep::norm {

namespace {
/// Mix a key with a row seed (xor-multiply-shift; full avalanche).
std::uint64_t mix(std::uint64_t key, std::uint64_t seed) {
  std::uint64_t z = key ^ seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, int depth, std::uint64_t seed) {
  if (width < 2 || depth < 1) throw std::invalid_argument("CountMinSketch: width>=2, depth>=1");
  const std::size_t pow2 = std::bit_ceil(width);
  mask_ = pow2 - 1;
  util::SplitMix64 sm(seed);
  seeds_.resize(static_cast<std::size_t>(depth));
  for (auto& s : seeds_) s = sm.next();
  counters_.assign(static_cast<std::size_t>(depth) * pow2, 0);
}

std::size_t CountMinSketch::slot(int row, std::uint64_t key) const {
  return static_cast<std::size_t>(row) * (mask_ + 1) +
         (mix(key, seeds_[static_cast<std::size_t>(row)]) & mask_);
}

std::uint32_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint32_t best = UINT32_MAX;
  for (int row = 0; row < depth(); ++row) best = std::min(best, counters_[slot(row, key)]);
  return best;
}

std::uint32_t CountMinSketch::add(std::uint64_t key) {
  const std::uint32_t current = estimate(key);
  if (current == UINT32_MAX) return current;  // saturated
  const std::uint32_t updated = current + 1;
  // Conservative update: only rows still at the minimum are raised.
  for (int row = 0; row < depth(); ++row) {
    std::uint32_t& c = counters_[slot(row, key)];
    c = std::max(c, updated);
  }
  return updated;
}

}  // namespace metaprep::norm
