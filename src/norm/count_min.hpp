// Count-min sketch for streaming k-mer abundance estimation.
//
// Substrate for digital normalization (Howe et al. / Pell et al., the
// companion preprocessing strategy named in the paper's introduction:
// "two preprocessing strategies, digital normalization and partitioning").
// khmer uses probabilistic counting for exactly this purpose ("Scaling
// metagenome sequence assembly with probabilistic de Bruijn graphs").
//
// Properties: estimates never undercount (count(x) <= estimate(x)); with
// conservative update the overcount is tight in practice.  Fixed memory:
// depth * width counters, independent of the number of distinct k-mers.
#pragma once

#include <cstdint>
#include <vector>

namespace metaprep::norm {

class CountMinSketch {
 public:
  /// @p width counters per row (rounded up to a power of two), @p depth rows.
  CountMinSketch(std::size_t width, int depth, std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Increment the count of @p key using conservative update (only rows at
  /// the current minimum are bumped), and return the new estimate.
  std::uint32_t add(std::uint64_t key);

  /// Current estimate (an upper bound on the true count).
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key) const;

  [[nodiscard]] std::size_t width() const noexcept { return mask_ + 1; }
  [[nodiscard]] int depth() const noexcept { return static_cast<int>(seeds_.size()); }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return counters_.size() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::size_t slot(int row, std::uint64_t key) const;

  std::size_t mask_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::uint32_t> counters_;  ///< depth rows of (mask_+1) counters
};

}  // namespace metaprep::norm
