// Digital normalization (Brown et al. / Howe et al.).
//
// The paper's introduction describes Howe et al.'s two preprocessing
// strategies for large metagenomes: *digital normalization* and
// *partitioning*; METAPREP implements the partitioning half, and this
// module implements the normalization half so the full Howe-style pipeline
// (normalize -> partition -> assemble) can be reproduced.
//
// Algorithm: stream the reads; estimate the median abundance of a read's
// k-mers against a streaming count-min sketch; if the median is already
// >= the coverage cutoff C the read is redundant and is dropped, otherwise
// it is kept and its k-mers are counted.  Paired-end reads are kept or
// dropped as a unit (both mates' k-mers vote).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "norm/count_min.hpp"

namespace metaprep::norm {

struct DiginormOptions {
  int k = 20;                     ///< khmer's traditional diginorm k
  std::uint32_t cutoff = 20;      ///< target coverage C
  std::size_t sketch_width = 1 << 22;
  int sketch_depth = 4;
  std::uint64_t sketch_seed = 42;
};

struct DiginormStats {
  std::uint64_t pairs_in = 0;
  std::uint64_t pairs_kept = 0;
  [[nodiscard]] double keep_fraction() const {
    return pairs_in == 0 ? 0.0
                         : static_cast<double>(pairs_kept) / static_cast<double>(pairs_in);
  }
};

/// Streaming normalizer; feed read (pairs) in any order, ask keep/drop.
class Normalizer {
 public:
  explicit Normalizer(const DiginormOptions& options);

  /// Decide for a single read; if kept (true), its k-mers are counted.
  bool offer(std::string_view read);

  /// Decide for a read pair as a unit.
  bool offer_pair(std::string_view r1, std::string_view r2);

  [[nodiscard]] const DiginormStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t sketch_memory_bytes() const {
    return sketch_.memory_bytes();
  }

 private:
  /// Median count-min estimate over the read's canonical k-mers.
  std::uint32_t median_abundance(std::string_view read, std::vector<std::uint32_t>& scratch);
  void count(std::string_view read);

  DiginormOptions options_;
  CountMinSketch sketch_;
  DiginormStats stats_;
  std::vector<std::uint32_t> scratch_;
};

/// Normalize paired FASTQ files; writes "<out_prefix>_1.fastq"/"_2.fastq"
/// with the kept pairs and returns the statistics.
DiginormStats normalize_fastq_pair(const std::string& r1_path, const std::string& r2_path,
                                   const std::string& out_prefix,
                                   const DiginormOptions& options);

}  // namespace metaprep::norm
