// Component binning for the output tail (paper §3.6 endgame + Table 4).
//
// MergeCC leaves rank 0 with one component label per read.  Downstream
// assemblers want *balanced* slices of the read graph, not "largest
// component vs everything else", so this subsystem greedily bin-packs
// components into B output partitions by estimated total bp (largest-first,
// deterministic ties) — the classic LPT heuristic, which is within 4/3 of
// the optimal makespan.  The resulting plan is shipped to every rank as a
// compact root->slot table (O(#components), not O(R)), and the written
// files are described by a per-bin JSON manifest so downstream tooling can
// consume a bin without re-scanning the FASTQ set.
//
// Observability: greedy_bin_pack publishes the achieved skew (max bin
// weight / mean bin weight) in the part.bin_skew gauge and the component
// size distribution in the part.component_reads histogram.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace metaprep::part {

/// One connected component of the read graph, as seen by the binner.
struct Component {
  std::uint32_t root = 0;       ///< representative read ID (DSU root)
  std::uint64_t reads = 0;      ///< member reads (paired-end pairs)
  std::uint64_t weight_bp = 0;  ///< estimated total bases across members
};

/// Assignment of components to output bins plus per-bin load accounting.
struct BinPlan {
  int num_bins = 0;
  std::vector<std::uint16_t> slot_of;        ///< bin per input component
  std::vector<std::uint64_t> bin_weight_bp;  ///< load per bin
  std::vector<std::uint64_t> bin_reads;      ///< reads per bin
  std::vector<std::uint32_t> bin_components; ///< components per bin

  /// Max bin weight / mean bin weight (1.0 = perfectly balanced); 0 when
  /// there is no weight to balance.
  [[nodiscard]] double skew() const;
};

/// Greedy largest-first (LPT) bin packing: components in (weight desc, root
/// asc) order each go to the currently lightest bin (ties: lowest bin id).
/// Fully deterministic for a given component set.  Throws util::Error
/// (config) when num_bins < 1 or exceeds the 16-bit slot range.
BinPlan greedy_bin_pack(std::span<const Component> components, int num_bins);

/// Compact root -> bin table broadcast to every rank for CC-I/O routing:
/// parallel arrays sorted by root, looked up by binary search.
struct RootSlotTable {
  static constexpr std::uint16_t kNoSlot = 0xFFFF;
  std::vector<std::uint32_t> roots;  ///< ascending
  std::vector<std::uint16_t> slots;

  /// Bin of @p root, or kNoSlot when the root is not in the table.
  [[nodiscard]] std::uint16_t slot_of(std::uint32_t root) const;
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return roots.size() * sizeof(std::uint32_t) + slots.size() * sizeof(std::uint16_t);
  }
};

RootSlotTable make_root_slot_table(std::span<const Component> components,
                                   const BinPlan& plan);

/// One output FASTQ file belonging to a bin, with the records actually
/// written (lenient parsing may drop records the plan counted).
struct BinFile {
  std::string path;
  std::uint64_t records = 0;
};

/// Everything a downstream consumer needs about one binned run.
struct BinManifest {
  struct Bin {
    std::uint32_t components = 0;
    std::uint64_t reads = 0;      ///< planned reads (pairs) in this bin
    std::uint64_t weight_bp = 0;  ///< planned weight
    std::vector<BinFile> files;
  };
  std::string dataset;
  int num_bins = 0;
  std::uint64_t total_reads = 0;      ///< R for the whole dataset
  std::uint64_t num_components = 0;
  double skew = 0.0;
  std::vector<Bin> bins;
};

/// Assemble a manifest from a plan plus the (path, bin, records) triples the
/// CC-I/O writers produced.  @p file_bins[i] is the bin of @p files[i].
BinManifest build_bin_manifest(const std::string& dataset, std::uint64_t total_reads,
                               std::span<const Component> components, const BinPlan& plan,
                               std::span<const BinFile> files,
                               std::span<const std::uint16_t> file_bins);

/// Write / read the manifest as JSON.  Failures throw util::Error (io for
/// filesystem problems, parse for malformed content).
void save_bin_manifest(const BinManifest& manifest, const std::string& path);
BinManifest load_bin_manifest(const std::string& path);

}  // namespace metaprep::part
