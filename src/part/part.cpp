#include "part/part.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace metaprep::part {

double BinPlan::skew() const {
  if (num_bins < 1) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t w : bin_weight_bp) {
    total += w;
    max = std::max(max, w);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(num_bins);
  return static_cast<double>(max) / mean;
}

BinPlan greedy_bin_pack(std::span<const Component> components, int num_bins) {
  if (num_bins < 1) throw util::config_error("greedy_bin_pack: num_bins must be >= 1");
  if (num_bins > 0xFFFF)
    throw util::config_error("greedy_bin_pack: num_bins must fit the 16-bit slot table");

  BinPlan plan;
  plan.num_bins = num_bins;
  plan.slot_of.assign(components.size(), 0);
  plan.bin_weight_bp.assign(static_cast<std::size_t>(num_bins), 0);
  plan.bin_reads.assign(static_cast<std::size_t>(num_bins), 0);
  plan.bin_components.assign(static_cast<std::size_t>(num_bins), 0);

  // LPT order: heaviest first; equal weights by root so the assignment is a
  // pure function of the component set.
  std::vector<std::uint32_t> order(components.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (components[a].weight_bp != components[b].weight_bp)
      return components[a].weight_bp > components[b].weight_bp;
    return components[a].root < components[b].root;
  });

  obs::Histogram& m_sizes = obs::metrics().histogram("part.component_reads");
  for (std::uint32_t ci : order) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < plan.bin_weight_bp.size(); ++b) {
      if (plan.bin_weight_bp[b] < plan.bin_weight_bp[best]) best = b;
    }
    plan.slot_of[ci] = static_cast<std::uint16_t>(best);
    plan.bin_weight_bp[best] += components[ci].weight_bp;
    plan.bin_reads[best] += components[ci].reads;
    ++plan.bin_components[best];
    m_sizes.record(components[ci].reads);
  }
  obs::metrics().gauge("part.bin_skew").set(plan.skew());
  return plan;
}

std::uint16_t RootSlotTable::slot_of(std::uint32_t root) const {
  const auto it = std::lower_bound(roots.begin(), roots.end(), root);
  if (it == roots.end() || *it != root) return kNoSlot;
  return slots[static_cast<std::size_t>(it - roots.begin())];
}

RootSlotTable make_root_slot_table(std::span<const Component> components,
                                   const BinPlan& plan) {
  RootSlotTable table;
  std::vector<std::uint32_t> order(components.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return components[a].root < components[b].root;
  });
  table.roots.reserve(components.size());
  table.slots.reserve(components.size());
  for (std::uint32_t ci : order) {
    table.roots.push_back(components[ci].root);
    table.slots.push_back(plan.slot_of[ci]);
  }
  return table;
}

BinManifest build_bin_manifest(const std::string& dataset, std::uint64_t total_reads,
                               std::span<const Component> components, const BinPlan& plan,
                               std::span<const BinFile> files,
                               std::span<const std::uint16_t> file_bins) {
  BinManifest m;
  m.dataset = dataset;
  m.num_bins = plan.num_bins;
  m.total_reads = total_reads;
  m.num_components = components.size();
  m.skew = plan.skew();
  m.bins.resize(static_cast<std::size_t>(plan.num_bins));
  for (std::size_t b = 0; b < m.bins.size(); ++b) {
    m.bins[b].components = plan.bin_components[b];
    m.bins[b].reads = plan.bin_reads[b];
    m.bins[b].weight_bp = plan.bin_weight_bp[b];
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    m.bins[file_bins[i]].files.push_back(files[i]);
  }
  return m;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Minimal cursor over the manifest's own JSON dialect (objects, arrays,
/// strings with \" and \\ escapes, numbers) — enough to read back exactly
/// what save_bin_manifest writes.
struct JsonCursor {
  const std::string& text;
  const std::string& path;
  std::size_t i = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw util::parse_error("bin manifest: " + what, path, i);
  }
  void skip_ws() {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
                               text[i] == '\r'))
      ++i;
  }
  char peek() {
    skip_ws();
    if (i >= text.size()) fail("unexpected end of input");
    return text[i];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }
  bool consume_if(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        ++i;
        if (i >= text.size()) fail("dangling escape");
      }
      out.push_back(text[i++]);
    }
    if (i >= text.size()) fail("unterminated string");
    ++i;  // closing quote
    return out;
  }
  std::string parse_raw_number() {
    skip_ws();
    const std::size_t start = i;
    while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                               text[i] == '-' || text[i] == '+' || text[i] == '.' ||
                               text[i] == 'e' || text[i] == 'E'))
      ++i;
    if (i == start) fail("expected a number");
    return text.substr(start, i - start);
  }
  std::uint64_t parse_u64() { return std::strtoull(parse_raw_number().c_str(), nullptr, 10); }
  double parse_double() { return std::strtod(parse_raw_number().c_str(), nullptr); }
};

BinFile parse_file(JsonCursor& c) {
  BinFile f;
  c.expect('{');
  do {
    const std::string key = c.parse_string();
    c.expect(':');
    if (key == "path") {
      f.path = c.parse_string();
    } else if (key == "records") {
      f.records = c.parse_u64();
    } else {
      c.fail("unknown file key '" + key + "'");
    }
  } while (c.consume_if(','));
  c.expect('}');
  return f;
}

BinManifest::Bin parse_bin(JsonCursor& c) {
  BinManifest::Bin bin;
  c.expect('{');
  do {
    const std::string key = c.parse_string();
    c.expect(':');
    if (key == "bin") {
      (void)c.parse_u64();  // positional; bins are stored in order
    } else if (key == "components") {
      bin.components = static_cast<std::uint32_t>(c.parse_u64());
    } else if (key == "reads") {
      bin.reads = c.parse_u64();
    } else if (key == "weight_bp") {
      bin.weight_bp = c.parse_u64();
    } else if (key == "files") {
      c.expect('[');
      if (!c.consume_if(']')) {
        do {
          bin.files.push_back(parse_file(c));
        } while (c.consume_if(','));
        c.expect(']');
      }
    } else {
      c.fail("unknown bin key '" + key + "'");
    }
  } while (c.consume_if(','));
  c.expect('}');
  return bin;
}

}  // namespace

void save_bin_manifest(const BinManifest& manifest, const std::string& path) {
  std::string out;
  out += "{\n";
  out += "  \"dataset\": \"";
  append_escaped(out, manifest.dataset);
  out += "\",\n";
  out += "  \"bins\": " + std::to_string(manifest.num_bins) + ",\n";
  out += "  \"reads\": " + std::to_string(manifest.total_reads) + ",\n";
  out += "  \"components\": " + std::to_string(manifest.num_components) + ",\n";
  char skew_buf[32];
  std::snprintf(skew_buf, sizeof(skew_buf), "%.6f", manifest.skew);
  out += std::string("  \"skew\": ") + skew_buf + ",\n";
  out += "  \"rows\": [\n";
  for (std::size_t b = 0; b < manifest.bins.size(); ++b) {
    const auto& bin = manifest.bins[b];
    out += "    {\"bin\": " + std::to_string(b) +
           ", \"components\": " + std::to_string(bin.components) +
           ", \"reads\": " + std::to_string(bin.reads) +
           ", \"weight_bp\": " + std::to_string(bin.weight_bp) + ", \"files\": [";
    for (std::size_t f = 0; f < bin.files.size(); ++f) {
      if (f > 0) out += ", ";
      out += "{\"path\": \"";
      append_escaped(out, bin.files[f].path);
      out += "\", \"records\": " + std::to_string(bin.files[f].records) + "}";
    }
    out += "]}";
    out += b + 1 < manifest.bins.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw util::io_error("cannot write bin manifest", path, 0, errno);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const int close_rc = std::fclose(f);
  if (written != out.size() || close_rc != 0)
    throw util::io_error("short write on bin manifest", path, written, errno);
}

BinManifest load_bin_manifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::io_error("cannot read bin manifest", path, 0, errno);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  BinManifest m;
  JsonCursor c{text, path};
  c.expect('{');
  do {
    const std::string key = c.parse_string();
    c.expect(':');
    if (key == "dataset") {
      m.dataset = c.parse_string();
    } else if (key == "bins") {
      m.num_bins = static_cast<int>(c.parse_u64());
    } else if (key == "reads") {
      m.total_reads = c.parse_u64();
    } else if (key == "components") {
      m.num_components = c.parse_u64();
    } else if (key == "skew") {
      m.skew = c.parse_double();
    } else if (key == "rows") {
      c.expect('[');
      if (!c.consume_if(']')) {
        do {
          m.bins.push_back(parse_bin(c));
        } while (c.consume_if(','));
        c.expect(']');
      }
    } else {
      c.fail("unknown manifest key '" + key + "'");
    }
  } while (c.consume_if(','));
  c.expect('}');
  if (m.num_bins < 0 || m.bins.size() != static_cast<std::size_t>(m.num_bins))
    throw util::parse_error("bin manifest: row count disagrees with \"bins\"", path);
  return m;
}

}  // namespace metaprep::part
