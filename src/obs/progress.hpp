// One-line stderr progress: phase name, % chunks done, elapsed seconds.
//
// Driven by the same phase boundaries the PhaseAccountant consumes; off by
// default (config.progress / --progress) and silent in tests.  Cost
// discipline matches the tracer: when disabled, every hook is one relaxed
// atomic load and a branch; when enabled, chunk ticks are relaxed atomic
// increments and the line is redrawn at most ~10 times per second.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace metaprep::obs {

class Progress {
 public:
  /// The process-wide reporter used by the pipeline's hooks.
  static Progress& global();

  Progress() = default;
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Start a run: resets counters and the elapsed clock.  @p total_chunks
  /// scales the percentage (0 disables the percent column).
  void begin_run(std::uint64_t total_chunks);

  /// Set the phase label shown on the line.  @p name must be a literal.
  void phase(const char* name);

  /// One chunk finished; redraws the line (throttled).
  void chunk_done();

  /// Final redraw + newline so the shell prompt lands on a clean line.
  void finish();

 private:
  void draw(bool force);

  std::atomic<bool> enabled_{false};
  std::atomic<const char*> phase_{nullptr};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::int64_t> last_draw_ms_{-1000000};
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace metaprep::obs
