#include "obs/progress.hpp"

#include <cstdio>

namespace metaprep::obs {

Progress& Progress::global() {
  // NOLINT(metaprep-no-naked-new): intentionally leaked process-lifetime singleton
  static Progress* instance = new Progress();  // never destroyed
  return *instance;
}

void Progress::begin_run(std::uint64_t total_chunks) {
  if (!enabled()) return;
  done_.store(0, std::memory_order_relaxed);
  total_.store(total_chunks, std::memory_order_relaxed);
  phase_.store("IndexLoad", std::memory_order_relaxed);
  last_draw_ms_.store(-1000000, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

void Progress::phase(const char* name) {
  if (!enabled()) return;
  phase_.store(name, std::memory_order_relaxed);
  draw(/*force=*/true);
}

void Progress::chunk_done() {
  if (!enabled()) return;
  done_.fetch_add(1, std::memory_order_relaxed);
  draw(/*force=*/false);
}

void Progress::finish() {
  if (!enabled()) return;
  draw(/*force=*/true);
  std::fputc('\n', stderr);
}

void Progress::draw(bool force) {
  const auto now = std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_).count();
  // ~10 Hz throttle; a CAS keeps concurrent chunk ticks from stacking
  // redraws (the loser simply skips — the next tick redraws soon enough).
  std::int64_t last = last_draw_ms_.load(std::memory_order_relaxed);
  if (!force && ms - last < 100) return;
  if (!last_draw_ms_.compare_exchange_strong(last, ms, std::memory_order_relaxed))
    return;
  const char* ph = phase_.load(std::memory_order_relaxed);
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  if (total > 0) {
    std::fprintf(stderr, "\r[metaprep] %-14s %3.0f%% (%llu/%llu chunks) %.1fs   ",
                 ph != nullptr ? ph : "", 100.0 * static_cast<double>(done) /
                                              static_cast<double>(total),
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total),
                 static_cast<double>(ms) / 1e3);
  } else {
    std::fprintf(stderr, "\r[metaprep] %-14s %.1fs   ", ph != nullptr ? ph : "",
                 static_cast<double>(ms) / 1e3);
  }
  std::fflush(stderr);
}

}  // namespace metaprep::obs
