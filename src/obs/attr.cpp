#include "obs/attr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace metaprep::obs {

namespace {

/// Wait vs. compute split: comm phases ("KmerGen-Comm", "Merge-Comm") are
/// the spans whose self-time is message wait, everything else is compute.
bool is_wait_phase(const std::string& name) {
  return name.find("Comm") != std::string::npos;
}

/// Self-time segment: [start, end) on one track, attributed to the
/// innermost span open over the interval.  The critical-path DP runs over
/// these — they are disjoint within a track, so serial (program-order)
/// edges reduce to a per-track prefix maximum.
struct Segment {
  double start = 0.0;
  double end = 0.0;
  const TraceEvent* span = nullptr;
  int track = -1;
  // DP state: longest dependency chain ending at `end`, in microseconds.
  double chain = 0.0;
  int prev = -1;         // global index of the predecessor segment
  bool prev_flow = false;  // predecessor reached through a message edge
};

struct Track {
  int pid = 0;
  int tid = 0;
  std::vector<const TraceEvent*> spans;
  std::vector<double> marker_times;  // send/recv flow marker timestamps
  std::vector<int> seg_index;        // global segment indices, time order
};

void append_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

/// Shortest representation that round-trips a double (same idiom as the
/// metrics registry's gauge export).
std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

std::string human_bytes(std::uint64_t b) {
  char buf[48];
  const double v = static_cast<double>(b);
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", v / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", v / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", v / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace

double PhaseAccountant::imbalance_factor(const std::vector<double>& per_rank) {
  if (per_rank.empty()) return 0.0;
  const double mx = *std::max_element(per_rank.begin(), per_rank.end());
  const double sum = std::accumulate(per_rank.begin(), per_rank.end(), 0.0);
  if (sum <= 0.0) return 0.0;
  return mx / (sum / static_cast<double>(per_rank.size()));
}

AttrReport PhaseAccountant::analyze(const std::vector<TraceEvent>& events,
                                    double wall_us) {
  AttrReport report;

  // ---- Partition into per-track span lists plus the flow-marker index. ----
  std::map<std::pair<int, int>, int> track_of;
  std::vector<Track> tracks;
  struct Marker {
    int track = -1;
    double ts = 0.0;
  };
  std::map<std::uint64_t, Marker> sends;
  std::map<std::uint64_t, Marker> recvs;

  auto track_id = [&](int pid, int tid) {
    auto [it, inserted] = track_of.try_emplace({pid, tid}, static_cast<int>(tracks.size()));
    if (inserted) {
      tracks.push_back(Track{});
      tracks.back().pid = pid;
      tracks.back().tid = tid;
    }
    return it->second;
  };

  double extent_lo = 0.0, extent_hi = 0.0;
  bool have_span = false;
  for (const TraceEvent& ev : events) {
    if (ev.dur_us >= 0.0) {
      const int t = track_id(ev.pid, ev.tid);
      tracks[static_cast<std::size_t>(t)].spans.push_back(&ev);
      if (!have_span) {
        extent_lo = ev.ts_us;
        extent_hi = ev.ts_us + ev.dur_us;
        have_span = true;
      } else {
        extent_lo = std::min(extent_lo, ev.ts_us);
        extent_hi = std::max(extent_hi, ev.ts_us + ev.dur_us);
      }
    } else if (ev.flow_dir != 0 && ev.flow != 0) {
      const int t = track_id(ev.pid, ev.tid);
      tracks[static_cast<std::size_t>(t)].marker_times.push_back(ev.ts_us);
      Marker m{t, ev.ts_us};
      if (ev.flow_dir == TraceEvent::kFlowSend) {
        sends.emplace(ev.flow, m);
      } else {
        recvs.emplace(ev.flow, m);
      }
    }
  }
  if (!have_span) return report;

  const double extent_us = std::max(0.0, extent_hi - extent_lo);
  report.trace_span_s = extent_us / 1e6;
  report.wall_s = wall_us > 0.0 ? wall_us / 1e6 : report.trace_span_s;

  // ---- Decompose each track's laminar span family into self-time
  // segments, split at flow-marker timestamps so message edges land on
  // segment boundaries. ----
  std::vector<Segment> segs;
  for (std::size_t ti = 0; ti < tracks.size(); ++ti) {
    Track& trk = tracks[ti];
    std::sort(trk.spans.begin(), trk.spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                return a->dur_us > b->dur_us;
              });
    std::vector<Segment> raw;
    std::vector<const TraceEvent*> open;
    double cur = 0.0;
    bool cur_set = false;
    auto advance = [&](double t) {
      if (!cur_set) {
        cur = t;
        cur_set = true;
        return;
      }
      if (t <= cur) return;  // never move backwards (robust to odd overlap)
      if (!open.empty()) {
        Segment s;
        s.start = cur;
        s.end = t;
        s.span = open.back();
        s.track = static_cast<int>(ti);
        raw.push_back(s);
      }
      cur = t;
    };
    for (const TraceEvent* sp : trk.spans) {
      while (!open.empty() && open.back()->ts_us + open.back()->dur_us <= sp->ts_us) {
        advance(open.back()->ts_us + open.back()->dur_us);
        open.pop_back();
      }
      advance(sp->ts_us);
      open.push_back(sp);
    }
    while (!open.empty()) {
      advance(open.back()->ts_us + open.back()->dur_us);
      open.pop_back();
    }

    std::sort(trk.marker_times.begin(), trk.marker_times.end());
    std::size_t mi = 0;
    for (Segment s : raw) {
      while (mi < trk.marker_times.size() && trk.marker_times[mi] <= s.start) ++mi;
      std::size_t mj = mi;
      while (mj < trk.marker_times.size() && trk.marker_times[mj] < s.end) {
        Segment head = s;
        head.end = trk.marker_times[mj];
        s.start = trk.marker_times[mj];
        trk.seg_index.push_back(static_cast<int>(segs.size()));
        segs.push_back(head);
        ++mj;
      }
      trk.seg_index.push_back(static_cast<int>(segs.size()));
      segs.push_back(s);
    }
  }

  // ---- Phase self-time aggregation + imbalance (Fig. 8 statistic). ----
  {
    std::map<std::string, std::map<int, double>> phase_rank;
    for (const Segment& s : segs) {
      phase_rank[s.span->name][tracks[static_cast<std::size_t>(s.track)].pid] +=
          (s.end - s.start) / 1e6;
    }
    for (auto& [name, ranks] : phase_rank) {
      PhaseStat ps;
      ps.name = name;
      std::vector<double> vals;
      for (auto& [rank, sec] : ranks) {
        ps.rank_self_s[rank] = sec;
        ps.self_s += sec;
        vals.push_back(sec);
      }
      ps.max_rank_s = vals.empty() ? 0.0 : *std::max_element(vals.begin(), vals.end());
      ps.mean_rank_s = vals.empty() ? 0.0 : ps.self_s / static_cast<double>(vals.size());
      ps.imbalance = imbalance_factor(vals);
      ps.wall_frac = report.wall_s > 0.0 ? ps.max_rank_s / report.wall_s : 0.0;
      report.phases.push_back(std::move(ps));
    }
    std::sort(report.phases.begin(), report.phases.end(),
              [](const PhaseStat& a, const PhaseStat& b) {
                if (a.max_rank_s != b.max_rank_s) return a.max_rank_s > b.max_rank_s;
                return a.name < b.name;
              });
  }

  // ---- Flow edges: send marker -> matching recv marker.  The source is
  // the last segment on the sender's track ending at or before the send
  // time; the target is the first segment on the receiver's track starting
  // at or after the receive time.  Both exist on a marker-split boundary
  // when the marker fell inside a span; markers in idle gaps degrade to
  // the nearest valid segment (or drop the edge). ----
  struct FlowEdge {
    int src_seg = -1;
  };
  std::map<int, std::vector<int>> edges_into;  // target segment -> source segments
  auto last_seg_ending_by = [&](const Track& trk, double t) -> int {
    int best = -1;
    for (int gi : trk.seg_index) {
      if (segs[static_cast<std::size_t>(gi)].end <= t) best = gi;
      else break;
    }
    return best;
  };
  auto first_seg_starting_at = [&](const Track& trk, double t) -> int {
    for (int gi : trk.seg_index) {
      if (segs[static_cast<std::size_t>(gi)].start >= t) return gi;
    }
    return -1;
  };
  for (const auto& [id, snd] : sends) {
    auto rit = recvs.find(id);
    if (rit == recvs.end()) continue;
    const Marker& rcv = rit->second;
    const int src = last_seg_ending_by(tracks[static_cast<std::size_t>(snd.track)], snd.ts);
    const int dst = first_seg_starting_at(tracks[static_cast<std::size_t>(rcv.track)], rcv.ts);
    if (src < 0 || dst < 0 || src == dst) continue;
    edges_into[dst].push_back(src);
  }

  // ---- Longest-chain DP over segments in global end-time order.  Within
  // a track, disjoint segments make every earlier segment a valid serial
  // predecessor (prefix max); flow sources end at the send time, which
  // precedes the receive, so they are always processed before the target.
  // Induction: chain(v) <= v.end - extent_lo, hence length <= trace span.
  std::vector<int> order(segs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Segment& sa = segs[static_cast<std::size_t>(a)];
    const Segment& sb = segs[static_cast<std::size_t>(b)];
    if (sa.end != sb.end) return sa.end < sb.end;
    return sa.start < sb.start;
  });
  std::vector<double> track_best(tracks.size(), 0.0);
  std::vector<int> track_best_seg(tracks.size(), -1);
  int best_seg = -1;
  for (int gi : order) {
    Segment& s = segs[static_cast<std::size_t>(gi)];
    const auto ti = static_cast<std::size_t>(s.track);
    double best = track_best[ti];
    s.prev = track_best_seg[ti];
    s.prev_flow = false;
    auto eit = edges_into.find(gi);
    if (eit != edges_into.end()) {
      for (int src : eit->second) {
        const double c = segs[static_cast<std::size_t>(src)].chain;
        if (c > best) {
          best = c;
          s.prev = src;
          s.prev_flow = true;
        }
      }
    }
    s.chain = (s.end - s.start) + best;
    if (s.chain > track_best[ti]) {
      track_best[ti] = s.chain;
      track_best_seg[ti] = gi;
    }
    if (best_seg < 0 || s.chain > segs[static_cast<std::size_t>(best_seg)].chain)
      best_seg = gi;
  }

  // ---- Path reconstruction: walk back, reverse, merge same-phase runs. ----
  if (best_seg >= 0) {
    std::vector<int> path;
    for (int at = best_seg; at >= 0; at = segs[static_cast<std::size_t>(at)].prev)
      path.push_back(at);
    std::reverse(path.begin(), path.end());
    CriticalPath& cp = report.critical_path;
    for (int gi : path) {
      const Segment& s = segs[static_cast<std::size_t>(gi)];
      const Track& trk = tracks[static_cast<std::size_t>(s.track)];
      const double dur = s.end - s.start;
      const bool wait = is_wait_phase(s.span->name);
      if (!cp.steps.empty() && !s.prev_flow && cp.steps.back().name == s.span->name &&
          cp.steps.back().pid == trk.pid && cp.steps.back().tid == trk.tid) {
        cp.steps.back().dur_us += dur;
      } else {
        CritStep step;
        step.name = s.span->name;
        step.pid = trk.pid;
        step.tid = trk.tid;
        step.start_us = s.start - extent_lo;
        step.dur_us = dur;
        step.wait = wait;
        step.via_flow = s.prev_flow;
        cp.steps.push_back(std::move(step));
      }
      if (wait) cp.wait_s += dur / 1e6;
      else cp.compute_s += dur / 1e6;
    }
    // Mathematically chain <= trace extent; the min guards summed-fp drift.
    cp.length_s = std::min(segs[static_cast<std::size_t>(best_seg)].chain / 1e6,
                           report.trace_span_s);
  }

  // Track counts (the pipeline overwrites these with the configured P/T/S).
  {
    std::map<int, int> threads_per_rank;
    for (const Track& trk : tracks) {
      if (!trk.spans.empty()) ++threads_per_rank[trk.pid];
    }
    report.ranks = static_cast<int>(threads_per_rank.size());
    for (const auto& [pid, n] : threads_per_rank)
      report.threads = std::max(report.threads, n);
  }
  return report;
}

std::string AttrReport::to_json() const {
  std::ostringstream out;
  out << "{\"wall_s\":" << json_num(wall_s)
      << ",\"trace_span_s\":" << json_num(trace_span_s) << ",\"ranks\":" << ranks
      << ",\"threads\":" << threads << ",\"passes\":" << passes;

  out << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStat& p = phases[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"";
    append_escaped(out, p.name);
    out << "\",\"self_s\":" << json_num(p.self_s)
        << ",\"max_rank_s\":" << json_num(p.max_rank_s)
        << ",\"mean_rank_s\":" << json_num(p.mean_rank_s)
        << ",\"imbalance\":" << json_num(p.imbalance)
        << ",\"wall_frac\":" << json_num(p.wall_frac) << ",\"per_rank\":{";
    bool first = true;
    for (const auto& [rank, sec] : p.rank_self_s) {
      if (!first) out << ',';
      first = false;
      out << '"' << rank << "\":" << json_num(sec);
    }
    out << "}}";
  }
  out << ']';

  out << ",\"critical_path\":{\"length_s\":" << json_num(critical_path.length_s)
      << ",\"wait_s\":" << json_num(critical_path.wait_s)
      << ",\"compute_s\":" << json_num(critical_path.compute_s) << ",\"steps\":[";
  for (std::size_t i = 0; i < critical_path.steps.size(); ++i) {
    const CritStep& s = critical_path.steps[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"";
    append_escaped(out, s.name);
    out << "\",\"pid\":" << s.pid << ",\"tid\":" << s.tid
        << ",\"start_us\":" << json_num(s.start_us)
        << ",\"dur_us\":" << json_num(s.dur_us)
        << ",\"wait\":" << (s.wait ? "true" : "false")
        << ",\"via_flow\":" << (s.via_flow ? "true" : "false") << '}';
  }
  out << "]}";

  out << ",\"comm\":{\"ranks\":" << comm_ranks << ",\"skew\":" << json_num(comm_skew)
      << ",\"bytes\":[";
  for (int r = 0; r < comm_ranks; ++r) {
    if (r > 0) out << ',';
    out << '[';
    for (int c = 0; c < comm_ranks; ++c) {
      if (c > 0) out << ',';
      out << comm_bytes[static_cast<std::size_t>(r) * static_cast<std::size_t>(comm_ranks) +
                        static_cast<std::size_t>(c)];
    }
    out << ']';
  }
  out << "],\"msgs\":[";
  for (int r = 0; r < comm_ranks; ++r) {
    if (r > 0) out << ',';
    out << '[';
    for (int c = 0; c < comm_ranks; ++c) {
      if (c > 0) out << ',';
      out << comm_msgs[static_cast<std::size_t>(r) * static_cast<std::size_t>(comm_ranks) +
                       static_cast<std::size_t>(c)];
    }
    out << ']';
  }
  out << "]}";

  out << ",\"memory\":{\"subsystems\":[";
  for (std::size_t i = 0; i < memory.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"name\":\"";
    append_escaped(out, memory[i].name);
    out << "\",\"high_water_bytes\":" << memory[i].high_water_bytes
        << ",\"predicted_bytes\":" << memory[i].predicted_bytes << '}';
  }
  out << "],\"predicted_total_bytes\":" << mem_predicted_total
      << ",\"peak_rss_bytes\":" << peak_rss_bytes << ",\"rss_samples\":[";
  for (std::size_t i = 0; i < rss_samples.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"phase\":\"";
    append_escaped(out, rss_samples[i].phase);
    out << "\",\"peak_rss_bytes\":" << rss_samples[i].peak_rss_bytes << '}';
  }
  out << "]}}";
  return out.str();
}

void AttrReport::write_json(const std::string& path) const {
  const std::string body = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (f == nullptr) throw std::runtime_error("attr: cannot open " + path);
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (wrote != body.size()) throw std::runtime_error("attr: short write to " + path);
}

std::string format_report(const AttrReport& r) {
  std::ostringstream out;
  char buf[256];
  out << "METAPREP performance attribution\n";
  std::snprintf(buf, sizeof(buf),
                "  wall %.3f s (trace span %.3f s, ranks=%d threads=%d passes=%d)\n",
                r.wall_s, r.trace_span_s, r.ranks, r.threads, r.passes);
  out << buf;

  out << "\n  phase walls (self-time; imbalance = max/mean over ranks, Fig. 8)\n";
  std::snprintf(buf, sizeof(buf), "  %-16s %12s %12s %10s %7s\n", "phase",
                "max-rank (s)", "mean-rank(s)", "imbalance", "wall%");
  out << buf;
  for (const PhaseStat& p : r.phases) {
    std::snprintf(buf, sizeof(buf), "  %-16s %12.4f %12.4f %10.3f %6.1f%%\n",
                  p.name.c_str(), p.max_rank_s, p.mean_rank_s, p.imbalance,
                  100.0 * p.wall_frac);
    out << buf;
  }

  const CriticalPath& cp = r.critical_path;
  std::snprintf(buf, sizeof(buf),
                "\n  critical path: %.3f s (%.1f%% of wall; wait %.3f s, compute %.3f s)\n",
                cp.length_s, r.wall_s > 0.0 ? 100.0 * cp.length_s / r.wall_s : 0.0,
                cp.wait_s, cp.compute_s);
  out << buf;
  double comm_wall = 0.0;
  for (const PhaseStat& p : r.phases) {
    if (p.name.find("Comm") != std::string::npos) comm_wall += p.max_rank_s;
  }
  if (comm_wall > cp.wait_s) {
    std::snprintf(buf, sizeof(buf),
                  "  comm wall %.3f s vs %.3f s on the path -> %.1f ms of comm hidden "
                  "by overlap\n",
                  comm_wall, cp.wait_s, 1e3 * (comm_wall - cp.wait_s));
    out << buf;
  }
  for (const CritStep& s : cp.steps) {
    std::snprintf(buf, sizeof(buf), "    [r%d/t%d]%s %-16s %10.4f s%s\n", s.pid, s.tid,
                  s.via_flow ? " <-msg" : "      ", s.name.c_str(), s.dur_us / 1e6,
                  s.wait ? "  (wait)" : "");
    out << buf;
  }

  if (r.comm_ranks > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n  comm matrix: skew %.3f (max/mean off-diagonal bytes)\n", r.comm_skew);
    out << buf;
    out << "    src\\dst";
    for (int c = 0; c < r.comm_ranks; ++c) {
      std::snprintf(buf, sizeof(buf), " %12d", c);
      out << buf;
    }
    out << '\n';
    for (int row = 0; row < r.comm_ranks; ++row) {
      std::snprintf(buf, sizeof(buf), "    %7d", row);
      out << buf;
      for (int c = 0; c < r.comm_ranks; ++c) {
        const std::uint64_t b =
            r.comm_bytes[static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(r.comm_ranks) +
                         static_cast<std::size_t>(c)];
        std::snprintf(buf, sizeof(buf), " %12llu", static_cast<unsigned long long>(b));
        out << buf;
      }
      out << '\n';
    }
  }

  if (!r.memory.empty() || r.peak_rss_bytes > 0) {
    out << "\n  memory high-water by subsystem (measured vs memory_model)\n";
    for (const MemSubsystem& m : r.memory) {
      if (m.predicted_bytes > 0) {
        const double delta = 100.0 *
                             (static_cast<double>(m.high_water_bytes) -
                              static_cast<double>(m.predicted_bytes)) /
                             static_cast<double>(m.predicted_bytes);
        std::snprintf(buf, sizeof(buf), "    %-10s %12s   predicted %12s  (%+.1f%%)\n",
                      m.name.c_str(), human_bytes(m.high_water_bytes).c_str(),
                      human_bytes(m.predicted_bytes).c_str(), delta);
      } else {
        std::snprintf(buf, sizeof(buf), "    %-10s %12s\n", m.name.c_str(),
                      human_bytes(m.high_water_bytes).c_str());
      }
      out << buf;
    }
    if (r.mem_predicted_total > 0) {
      std::snprintf(buf, sizeof(buf), "    model total %s; ",
                    human_bytes(r.mem_predicted_total).c_str());
      out << buf;
    } else {
      out << "    ";
    }
    std::snprintf(buf, sizeof(buf), "peak RSS %s\n", human_bytes(r.peak_rss_bytes).c_str());
    out << buf;
    for (const RssSample& s : r.rss_samples) {
      std::snprintf(buf, sizeof(buf), "      after %-16s peak RSS %12s\n",
                    s.phase.c_str(), human_bytes(s.peak_rss_bytes).c_str());
      out << buf;
    }
  }
  return out.str();
}

double comm_matrix_skew(const std::vector<std::uint64_t>& matrix, int ranks) {
  if (ranks <= 1 ||
      matrix.size() < static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks)) {
    return 0.0;
  }
  std::uint64_t max_cell = 0;
  std::uint64_t sum = 0;
  for (int i = 0; i < ranks; ++i) {
    for (int j = 0; j < ranks; ++j) {
      if (i == j) continue;
      const std::uint64_t v = matrix[static_cast<std::size_t>(i) * ranks + j];
      max_cell = std::max(max_cell, v);
      sum += v;
    }
  }
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) /
                      (static_cast<double>(ranks) * (ranks - 1));
  return static_cast<double>(max_cell) / mean;
}

}  // namespace metaprep::obs
