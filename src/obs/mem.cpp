#include "obs/mem.hpp"

#include <algorithm>

namespace metaprep::obs {

namespace {

/// Thread-local MemScope tag stack.  Plain array: scopes are strictly
/// nested (RAII), so push/pop at the top is enough.
struct TagStack {
  const char* tags[MemScope::kMaxDepth] = {};
  int depth = 0;
};

thread_local TagStack tag_stack;

/// Calling thread's registry override; nullptr = inherit the global default.
thread_local MemRegistry* tls_current = nullptr;

}  // namespace

MemRegistry& MemRegistry::global() {
  // NOLINT(metaprep-no-naked-new): intentionally leaked process-lifetime singleton
  static MemRegistry* instance = new MemRegistry();  // never destroyed
  return *instance;
}

MemRegistry& MemRegistry::current() noexcept {
  MemRegistry* r = tls_current;
  return r != nullptr ? *r : global();
}

MemRegistry* MemRegistry::exchange_current(MemRegistry* registry) noexcept {
  MemRegistry* prev = tls_current;
  tls_current = registry;
  return prev;
}

MemRegistry* MemRegistry::current_override() noexcept { return tls_current; }

void MemRegistry::charge(const char* subsystem, std::uint64_t bytes) {
  if (!enabled()) return;
  util::WriterLock lock(mutex_);
  MemUsage& u = usage_[subsystem];
  u.current += static_cast<std::int64_t>(bytes);
  u.high_water = std::max(u.high_water, u.current);
}

void MemRegistry::credit(const char* subsystem, std::uint64_t bytes) {
  if (!enabled()) return;
  util::WriterLock lock(mutex_);
  usage_[subsystem].current -= static_cast<std::int64_t>(bytes);
}

void MemRegistry::set_current(const char* subsystem, std::uint64_t bytes) {
  if (!enabled()) return;
  util::WriterLock lock(mutex_);
  MemUsage& u = usage_[subsystem];
  u.current = static_cast<std::int64_t>(bytes);
  u.high_water = std::max(u.high_water, u.current);
}

std::vector<std::pair<std::string, MemUsage>> MemRegistry::snapshot() const {
  util::ReaderLock lock(mutex_);
  std::vector<std::pair<std::string, MemUsage>> out;
  out.reserve(usage_.size());
  for (const auto& [name, u] : usage_) {
    MemUsage clamped = u;
    clamped.high_water = std::max<std::int64_t>(clamped.high_water, 0);
    out.emplace_back(name, clamped);
  }
  return out;
}

void MemRegistry::reset() {
  util::WriterLock lock(mutex_);
  usage_.clear();
}

MemScope::MemScope(const char* subsystem) noexcept {
  if (tag_stack.depth < kMaxDepth) {
    tag_stack.tags[tag_stack.depth++] = subsystem;
    pushed_ = true;
  }
}

MemScope::~MemScope() {
  if (pushed_) --tag_stack.depth;
}

const char* MemScope::current(const char* fallback) noexcept {
  return tag_stack.depth > 0 ? tag_stack.tags[tag_stack.depth - 1] : fallback;
}

}  // namespace metaprep::obs
