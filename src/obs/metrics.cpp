#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace metaprep::obs {

namespace {

/// Format a double the way JSON expects (no trailing garbage, full
/// round-trip precision for counters stored as gauges).
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t next_registry_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Calling thread's registry override; nullptr = inherit the global default.
thread_local MetricsRegistry* tls_current = nullptr;

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry& MetricsRegistry::global() {
  // NOLINT(metaprep-no-naked-new): intentionally leaked process-lifetime singleton
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

MetricsRegistry& MetricsRegistry::current() noexcept {
  MetricsRegistry* r = tls_current;
  return r != nullptr ? *r : global();
}

MetricsRegistry* MetricsRegistry::exchange_current(MetricsRegistry* registry) noexcept {
  MetricsRegistry* prev = tls_current;
  tls_current = registry;
  return prev;
}

MetricsRegistry* MetricsRegistry::current_override() noexcept { return tls_current; }

Counter& MetricsRegistry::counter(const std::string& name) {
  util::WriterLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // NOLINT(metaprep-no-naked-new): Counter ctor is private; make_unique cannot reach it
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_))).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::WriterLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    // NOLINT(metaprep-no-naked-new): Gauge ctor is private; make_unique cannot reach it
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_))).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  util::WriterLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // NOLINT(metaprep-no-naked-new): Histogram ctor is private; make_unique cannot reach it
    it = histograms_.emplace(name, std::unique_ptr<Histogram>(new Histogram(&enabled_))).first;
  }
  return *it->second;
}

void MetricsRegistry::reset_values() {
  util::WriterLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  counter_baseline_.clear();
  histogram_baseline_.clear();
}

std::string MetricsRegistry::snapshot_delta() {
  util::WriterLock lock(mutex_);
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t now = c->value();
    std::uint64_t& base = counter_baseline_[name];
    // A reset() between snapshots can move the value below the baseline;
    // clamp instead of wrapping around.
    const std::uint64_t delta = now >= base ? now - base : now;
    base = now;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":" << delta << '}';
  }
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
        << json_number(g->value()) << '}';
  }
  for (const auto& [name, h] : histograms_) {
    HistBaseline& base = histogram_baseline_[name];
    if (base.buckets.empty()) base.buckets.assign(Histogram::kBuckets, 0);
    const auto buckets = h->bucket_counts();
    const std::uint64_t sum_now = h->sum();
    std::uint64_t count_delta = 0;
    std::vector<std::uint64_t> bucket_delta(buckets.size(), 0);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::uint64_t b = base.buckets[i];
      bucket_delta[i] = buckets[i] >= b ? buckets[i] - b : buckets[i];
      count_delta += bucket_delta[i];
    }
    const std::uint64_t sum_delta = sum_now >= base.sum ? sum_now - base.sum : sum_now;
    base.sum = sum_now;
    base.buckets = buckets;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << name << "\",\"type\":\"histogram\",\"count\":" << count_delta
        << ",\"sum\":" << sum_delta << ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < bucket_delta.size(); ++i) {
      if (bucket_delta[i] == 0) continue;
      if (!bfirst) out << ',';
      out << '[' << i << ',' << bucket_delta[i] << ']';
      bfirst = false;
    }
    out << "]}";
  }
  out << ']';
  return out.str();
}

std::string MetricsRegistry::to_jsonl() const {
  util::ReaderLock lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":" << c->value()
        << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
        << json_number(g->value()) << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "{\"name\":\"" << name << "\",\"type\":\"histogram\",\"count\":" << h->count()
        << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    const auto buckets = h->bucket_counts();
    bool first = true;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      if (!first) out << ',';
      out << '[' << i << ',' << buckets[i] << ']';
      first = false;
    }
    out << "]}\n";
  }
  return out.str();
}

void MetricsRegistry::write_jsonl(const std::string& path) const {
  const std::string body = to_jsonl();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (f == nullptr) throw std::runtime_error("metrics: cannot open " + path);
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (wrote != body.size()) throw std::runtime_error("metrics: short write to " + path);
}

std::vector<std::string> MetricsRegistry::names() const {
  util::ReaderLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  return out;
}

}  // namespace metaprep::obs
