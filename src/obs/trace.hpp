// Low-overhead span tracer exporting Chrome trace_event JSON.
//
// The METAPREP evaluation reasons about *where time goes per rank per pass*
// (Figures 5-8 are stacked per-step times; Figure 8 is per-rank spread).
// StepTimes only keeps sums, so this tracer records the actual intervals:
// RAII TraceSpans around each pipeline step, tagged with the simulated MPI
// rank ("pid") and worker thread ("tid"), buffered per OS thread without
// locks, and exported in the Chrome trace_event JSON array format that
// chrome://tracing and https://ui.perfetto.dev load directly — ranks show up
// as processes, threads as tracks.
//
// Cost discipline: when the session is disabled, constructing a TraceSpan is
// one relaxed atomic load and a branch; nothing is allocated and the
// destructor does nothing.  Recording when enabled is a push_back into a
// thread-local vector (no lock; buffer registration takes the session mutex
// once per thread).  Export is for quiescent points only — after World::run
// returns, between bench repetitions — not concurrent with recording.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace metaprep::obs {

/// One closed span: [ts_us, ts_us + dur_us) on (pid, tid), timestamps in
/// microseconds since the session epoch.  dur_us < 0 marks a point event:
/// either a plain instant (flow_dir == 0) or a cross-thread flow marker
/// (flow_dir == kFlowSend / kFlowRecv) carrying a message id that pairs a
/// send with its matching receive — the edges the critical-path walker and
/// the Chrome "s"/"f" flow arrows are built from.
struct TraceEvent {
  static constexpr int kFlowSend = 1;
  static constexpr int kFlowRecv = 2;

  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::uint64_t flow = 0;  // message id; 0 = not a flow marker
  int flow_dir = 0;        // 0 = none, kFlowSend, kFlowRecv
};

class TraceSession {
 public:
  /// The process-wide session used as the default sink.  On first access it
  /// honors the METAPREP_TRACE environment variable: unset or "0" leaves
  /// tracing off; "1" enables recording; any other value enables recording,
  /// sets it as the flush path, and registers a last-resort atexit flush
  /// (explicit flush() beforehand makes the atexit hook a no-op).
  static TraceSession& global();

  /// The session built-in instrumentation records into: the calling
  /// thread's override when one is installed (util::SessionContext does this
  /// for pipeline sessions), otherwise global().  Precedence: thread
  /// override > METAPREP_TRACE-configured global default.
  static TraceSession& current() noexcept;

  /// Install @p session as the calling thread's recording target (nullptr
  /// restores the global default).  Returns the previous override so callers
  /// can restore it RAII-style.
  static TraceSession* exchange_current(TraceSession* session) noexcept;

  /// The calling thread's override, nullptr when inheriting the global.
  [[nodiscard]] static TraceSession* current_override() noexcept;

  TraceSession();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Tag the calling thread's future events with (pid, tid).  The pipeline
  /// maps simulated MPI rank -> pid and worker thread -> tid; untagged
  /// threads record under pid 0 with a unique auto-assigned tid.
  static void set_thread_identity(int pid, int tid) noexcept;

  /// Microseconds since the session epoch (steady clock).  Lock-free: the
  /// epoch is an atomic tick count so concurrent recorders never synchronise
  /// here (clear() rewrites it only at quiescent points).
  [[nodiscard]] double now_us() const noexcept {
    const std::chrono::steady_clock::duration since{
        std::chrono::steady_clock::now().time_since_epoch().count() -
        epoch_ticks_.load(std::memory_order_relaxed)};
    return std::chrono::duration<double, std::micro>(since).count();
  }

  /// Append a closed span to the calling thread's buffer.  No-op when
  /// disabled.  @p name is copied.
  void record(const char* name, double ts_us, double dur_us);

  /// Zero-duration marker (exported as an instant event).
  void instant(const char* name);

  /// Flow marker: a send (is_send) or matching receive point for message
  /// @p flow_id, stamped at now_us() on the calling thread.  Exported as
  /// Chrome "s"/"f" flow events; consumed by attr's critical-path walker.
  void flow_marker(const char* name, std::uint64_t flow_id, bool is_send);

  /// Drop all recorded events and start a fresh epoch.  Quiescent use only.
  void clear();

  /// Events recorded so far across all threads.  Quiescent use only.
  [[nodiscard]] std::size_t event_count() const;

  /// Copy of every recorded event, in per-thread completion order.
  /// Quiescent use only — this is the PhaseAccountant's input.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Serialize to the Chrome trace_event JSON array format.  Spans are
  /// emitted as matched "B"/"E" pairs sorted by timestamp, plus "M" metadata
  /// events naming each rank's process.  Quiescent use only.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to @p path (truncates).  Throws on I/O failure.
  void write_chrome_json(const std::string& path) const;

  /// Where flush() writes.  Setting a new path re-arms flush() even if the
  /// event count is unchanged.
  void set_flush_path(std::string path);
  [[nodiscard]] std::string flush_path() const;

  /// Idempotent export: write the trace to the flush path if one is set and
  /// events were recorded since the last flush.  Returns true when a file
  /// was (re)written.  Safe to call any number of times per session; the
  /// atexit hook on the global session calls this as a last resort, so a
  /// session explicitly flushed (or with no flush path) costs nothing at
  /// exit.  Quiescent use only.
  bool flush();

  /// This session's buffer-registry capability, for lock-order declarations
  /// in other layers (see util/sync.hpp).
  [[nodiscard]] util::Mutex& mu() const RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer for this session, registered on first use
  /// (and re-registered after clear(), which bumps the generation).
  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> next_auto_tid_{100000};  // clear of real rank/thread ids
  const std::uint64_t id_;  // process-unique; keys the per-thread buffer cache
  /// Session epoch as steady-clock ticks.  Atomic rather than GUARDED_BY:
  /// now_us() runs on every recording thread with no lock held, while
  /// clear() rewrites the epoch under mutex_ — an atomic makes the pair safe
  /// even if the quiescence contract around clear() is ever violated.
  std::atomic<std::chrono::steady_clock::rep> epoch_ticks_;
  /// Export-side lock.  flush() holds it across event_count() and
  /// write_chrome_json(), both of which take mutex_, hence the declared
  /// flush_mutex_ -> mutex_ order below.
  mutable util::Mutex flush_mutex_;
  mutable util::Mutex mutex_ ACQUIRED_AFTER(flush_mutex_);
  std::vector<std::unique_ptr<Buffer>> buffers_ GUARDED_BY(mutex_);
  std::string flush_path_ GUARDED_BY(flush_mutex_);
  bool flushed_once_ GUARDED_BY(flush_mutex_) = false;
  std::size_t flushed_count_ GUARDED_BY(flush_mutex_) = 0;
};

/// RAII span against the current session: records [construction,
/// destruction) under the name given.  The name must outlive the span
/// (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    TraceSession& s = TraceSession::current();
    if (s.enabled()) {
      session_ = &s;
      name_ = name;
      start_us_ = s.now_us();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (session_ != nullptr)
      session_->record(name_, start_us_, session_->now_us() - start_us_);
  }

 private:
  TraceSession* session_ = nullptr;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace metaprep::obs
