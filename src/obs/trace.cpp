#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/env.hpp"

namespace metaprep::obs {

namespace {

/// Per-thread recording state.  The buffer pointer is owned by the session
/// (it outlives the thread); session_id + generation detect a switch to a
/// different session (or a clear()) between uses, so a thread that records
/// into several sessions over its lifetime never touches a stale buffer —
/// the id is process-unique, never recycled, so a new session allocated at
/// a dead session's address cannot alias the cache.
struct ThreadState {
  void* buffer = nullptr;
  std::uint64_t session_id = ~0ull;
  std::uint64_t generation = ~0ull;
  int pid = 0;
  int tid = -1;  // -1 = not yet assigned; auto-assigned on first record
};

thread_local ThreadState tls;

/// Calling thread's session override; nullptr = inherit the global default.
thread_local TraceSession* tls_current = nullptr;

std::uint64_t next_session_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void flush_trace_at_exit() {
  try {
    TraceSession::global().flush();
  } catch (...) {
    // Exit path: nothing useful to do beyond not crashing.
  }
}

void append_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

TraceSession::TraceSession()
    : id_(next_session_id()),
      epoch_ticks_(std::chrono::steady_clock::now().time_since_epoch().count()) {}

TraceSession& TraceSession::global() {
  static TraceSession* instance = [] {
    // NOLINT(metaprep-no-naked-new): intentionally leaked process-lifetime singleton
    auto* s = new TraceSession();  // never destroyed
    const char* env = util::env_get("METAPREP_TRACE");
    if (env != nullptr && std::strcmp(env, "0") != 0) {
      s->enable();
      if (std::strcmp(env, "1") != 0) {
        s->set_flush_path(env);
        std::atexit(flush_trace_at_exit);
      }
    }
    return s;
  }();
  return *instance;
}

TraceSession& TraceSession::current() noexcept {
  TraceSession* s = tls_current;
  return s != nullptr ? *s : global();
}

TraceSession* TraceSession::exchange_current(TraceSession* session) noexcept {
  TraceSession* prev = tls_current;
  tls_current = session;
  return prev;
}

TraceSession* TraceSession::current_override() noexcept { return tls_current; }

void TraceSession::set_thread_identity(int pid, int tid) noexcept {
  tls.pid = pid;
  tls.tid = tid;
}

TraceSession::Buffer& TraceSession::local_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls.buffer == nullptr || tls.session_id != id_ || tls.generation != gen) {
    util::MutexLock lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    tls.buffer = buffers_.back().get();
    tls.session_id = id_;
    tls.generation = generation_.load(std::memory_order_relaxed);
  }
  return *static_cast<Buffer*>(tls.buffer);
}

void TraceSession::record(const char* name, double ts_us, double dur_us) {
  if (!enabled()) return;
  if (tls.tid < 0) tls.tid = next_auto_tid_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent ev;
  ev.name = name;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.pid = tls.pid;
  ev.tid = tls.tid;
  local_buffer().events.push_back(std::move(ev));
}

void TraceSession::instant(const char* name) {
  record(name, now_us(), /*dur_us=*/-1.0);
}

void TraceSession::flow_marker(const char* name, std::uint64_t flow_id, bool is_send) {
  if (!enabled()) return;
  if (tls.tid < 0) tls.tid = next_auto_tid_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent ev;
  ev.name = name;
  ev.ts_us = now_us();
  ev.dur_us = -1.0;
  ev.pid = tls.pid;
  ev.tid = tls.tid;
  ev.flow = flow_id;
  ev.flow_dir = is_send ? TraceEvent::kFlowSend : TraceEvent::kFlowRecv;
  local_buffer().events.push_back(std::move(ev));
}

void TraceSession::clear() {
  util::MutexLock lock(mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
  epoch_ticks_.store(std::chrono::steady_clock::now().time_since_epoch().count(),
                     std::memory_order_relaxed);
}

std::size_t TraceSession::event_count() const {
  util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::vector<TraceEvent> all;
  util::MutexLock lock(mutex_);
  for (const auto& b : buffers_) all.insert(all.end(), b->events.begin(), b->events.end());
  return all;
}

std::string TraceSession::to_chrome_json() const {
  // Group events by (pid, tid) so each track can be emitted as properly
  // nested "B"/"E" pairs.  Spans within one thread are RAII-nested, so the
  // interval family per track is laminar; recording order is completion
  // order (post-order), which we convert to chronological begin order.
  std::vector<TraceEvent> all;
  {
    util::MutexLock lock(mutex_);
    for (const auto& b : buffers_)
      all.insert(all.end(), b->events.begin(), b->events.end());
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const char* ph, const TraceEvent& ev, double ts) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    append_escaped(out, ev.name);
    char buf[200];
    if (ev.flow_dir != 0) {
      // Flow events: Chrome requires a shared cat+id to join the "s" start
      // with its "f" finish; "bp":"e" binds the finish to the enclosing slice.
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"comm\",\"ph\":\"%s\",\"id\":%llu,\"ts\":%.3f,"
                    "\"pid\":%d,\"tid\":%d%s}",
                    ph, static_cast<unsigned long long>(ev.flow), ts, ev.pid, ev.tid,
                    std::strcmp(ph, "f") == 0 ? ",\"bp\":\"e\"" : "");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}", ph, ts,
                    ev.pid, ev.tid, std::strcmp(ph, "i") == 0 ? ",\"s\":\"t\"" : "");
    }
    out << buf;
  };

  // Metadata: name each pid after its simulated rank.
  std::vector<int> pids;
  for (const auto& ev : all) pids.push_back(ev.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (int pid : pids) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"rank " << pid << "\"}}";
  }

  // Stable-partition into per-track groups.
  std::stable_sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return std::pair(a.pid, a.tid) < std::pair(b.pid, b.tid);
  });
  std::size_t lo = 0;
  while (lo < all.size()) {
    std::size_t hi = lo;
    while (hi < all.size() && all[hi].pid == all[lo].pid && all[hi].tid == all[lo].tid)
      ++hi;
    std::vector<const TraceEvent*> spans;
    std::vector<const TraceEvent*> instants;
    for (std::size_t i = lo; i < hi; ++i) {
      const TraceEvent& ev = all[i];
      (ev.dur_us < 0.0 ? instants : spans).push_back(&ev);
    }
    // Chronological begin order, outermost first on ties.
    std::sort(spans.begin(), spans.end(), [](const TraceEvent* a, const TraceEvent* b) {
      if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
      return a->dur_us > b->dur_us;
    });
    // The stack sweep turns completion-ordered spans into balanced "B"/"E"
    // pairs; buffer into (ts, phase) items so instants can be merged into
    // the same chronological stream afterwards.
    struct Item {
      double ts;
      const char* ph;
      const TraceEvent* ev;
    };
    std::vector<Item> track;
    std::vector<const TraceEvent*> open;
    for (const TraceEvent* sp : spans) {
      while (!open.empty() &&
             open.back()->ts_us + open.back()->dur_us <= sp->ts_us) {
        track.push_back({open.back()->ts_us + open.back()->dur_us, "E", open.back()});
        open.pop_back();
      }
      track.push_back({sp->ts_us, "B", sp});
      open.push_back(sp);
    }
    while (!open.empty()) {
      track.push_back({open.back()->ts_us + open.back()->dur_us, "E", open.back()});
      open.pop_back();
    }
    for (const TraceEvent* in : instants) {
      const char* ph = in->flow_dir == TraceEvent::kFlowSend   ? "s"
                       : in->flow_dir == TraceEvent::kFlowRecv ? "f"
                                                               : "i";
      track.push_back({in->ts_us, ph, in});
    }
    // Stable: equal-timestamp B/E keep sweep (nesting) order, instants after.
    std::stable_sort(track.begin(), track.end(),
                     [](const Item& a, const Item& b) { return a.ts < b.ts; });
    for (const Item& item : track) emit(item.ph, *item.ev, item.ts);
    lo = hi;
  }
  out << "]}";
  return out.str();
}

void TraceSession::set_flush_path(std::string path) {
  util::MutexLock lock(flush_mutex_);
  flush_path_ = std::move(path);
  flushed_once_ = false;
  flushed_count_ = 0;
}

std::string TraceSession::flush_path() const {
  util::MutexLock lock(flush_mutex_);
  return flush_path_;
}

bool TraceSession::flush() {
  // flush_mutex_ is held across the export; event_count() and
  // write_chrome_json() take mutex_ internally (flush_mutex_ -> mutex_ is
  // the only ordering, so no deadlock).  Idempotent: a second flush with no
  // new events is a no-op, which is what makes the atexit hook on the
  // global session free once a run has flushed explicitly.
  util::MutexLock lock(flush_mutex_);
  if (flush_path_.empty()) return false;
  const std::size_t n = event_count();
  if (flushed_once_ && flushed_count_ == n) return false;
  write_chrome_json(flush_path_);
  flushed_once_ = true;
  flushed_count_ = n;
  return true;
}

void TraceSession::write_chrome_json(const std::string& path) const {
  const std::string body = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (f == nullptr) throw std::runtime_error("trace: cannot open " + path);
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  // NOLINT(metaprep-no-adhoc-throw): obs links below util; util::Error unavailable
  if (wrote != body.size()) throw std::runtime_error("trace: short write to " + path);
}

}  // namespace metaprep::obs
