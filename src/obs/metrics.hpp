// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The paper's evaluation (Tables 2-9) is assembled from per-step counts —
// tuples enumerated, bytes shipped per rank pair, memory per pass — so the
// hot paths publish those quantities here instead of threading ad-hoc fields
// through every result struct.  Recording is wait-free: counters and
// histogram buckets are relaxed atomics, and when the registry is disabled
// every record call reduces to one relaxed atomic load and a branch, cheap
// enough to leave compiled into the per-tuple paths (DSU finds, radix
// passes, mailbox deliveries).
//
// Metric objects are created on first use and live as long as their
// registry.  For the process-wide global() registry that is the process
// lifetime, so call sites bound to it may cache references.  Hot paths that
// must follow the *current* (possibly per-session) registry instead cache a
// thread_local CounterHandle/GaugeHandle/HistogramHandle, which re-resolves
// by name whenever the current registry changes — one TLS access plus an id
// compare per call, and never dereferences a metric from a dead registry.
// Snapshots export as JSONL: one self-describing JSON object per line,
// embedding cleanly into the bench harness output.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace metaprep::obs {

/// Monotonic event count (messages sent, bytes read, tuples enumerated).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}
  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-value or running-max measurement (peak RSS, modeled comm seconds).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Keep the maximum of the current and the new value (CAS loop; gauges are
  /// updated rarely, so contention is a non-issue).
  void set_max(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Power-of-two histogram: bucket i counts values v with bit_width(v) == i,
/// i.e. bucket 0 holds v == 0 and bucket i >= 1 holds [2^(i-1), 2^i).  Coarse
/// but constant-time and allocation-free, which is what a per-find DSU
/// path-length probe can afford.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    int b = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++b;
    buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (int i = 0; i < kBuckets; ++i)
      out[static_cast<std::size_t>(i)] =
          buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    return out;
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  const std::atomic<bool>* enabled_;
};

/// Name -> metric registry.  Lookup takes a mutex (do it once, outside the
/// hot loop); the returned references stay valid for the process lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry used as the default sink.
  static MetricsRegistry& global();

  /// The registry built-in instrumentation records into: the calling
  /// thread's override when one is installed (util::SessionContext does
  /// this for pipeline sessions), otherwise global().
  static MetricsRegistry& current() noexcept;

  /// Install @p registry as the calling thread's recording target (nullptr
  /// restores the global default).  Returns the previous override.
  static MetricsRegistry* exchange_current(MetricsRegistry* registry) noexcept;

  /// The calling thread's override, nullptr when inheriting the global.
  [[nodiscard]] static MetricsRegistry* current_override() noexcept;

  MetricsRegistry();

  /// Process-unique, never recycled; keys the handle caches below so a new
  /// registry allocated at a dead registry's address cannot alias them.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered metric (registrations persist).
  void reset_values();

  /// Snapshot as JSONL, one metric per line, sorted by name:
  ///   {"name":"io.bytes_read","type":"counter","value":123}
  ///   {"name":"mem.rss_peak","type":"gauge","value":1.5e8}
  ///   {"name":"dsu.find_path_length","type":"histogram","count":9,"sum":17,
  ///    "buckets":[[0,1],[1,4],[2,4]]}   // [bit_width, count], zeros omitted
  [[nodiscard]] std::string to_jsonl() const;

  /// Write to_jsonl() to @p path (truncates).  Throws on I/O failure.
  void write_jsonl(const std::string& path) const;

  /// Per-interval export: counters and histograms report the *delta* since
  /// the previous snapshot_delta() call (or since reset_values(), which
  /// clears the baseline); gauges report their current value (point-in-time
  /// measurements have no meaningful delta).  Returned as one JSON array of
  /// the same per-metric objects to_jsonl() emits, so multi-run processes
  /// (bench_tab3_multipass rows) can attribute counts to the run that
  /// produced them instead of accumulating pass-1 counts into pass-2 rows.
  [[nodiscard]] std::string snapshot_delta();

  /// Distinct metric names registered so far.
  [[nodiscard]] std::vector<std::string> names() const;

  /// This registry's capability, for lock-order declarations in other
  /// layers (see util/sync.hpp).
  [[nodiscard]] util::SharedMutex& mu() const RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  /// Baseline captured by the previous snapshot_delta() call.
  struct HistBaseline {
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;
  };

  // Reader/writer registry lock: to_jsonl()/names() exports take the shared
  // side, metric registration and delta baselines take the exclusive side.
  // Metric *values* are relaxed atomics and never need it.
  const std::uint64_t id_;
  mutable util::SharedMutex mutex_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t> counter_baseline_ GUARDED_BY(mutex_);
  std::map<std::string, HistBaseline> histogram_baseline_ GUARDED_BY(mutex_);
};

/// Shorthand for MetricsRegistry::current(): the calling thread's session
/// registry when one is installed, else the process-wide default.
inline MetricsRegistry& metrics() { return MetricsRegistry::current(); }

/// Call-site caches for hot paths that must track the *current* registry.
/// Usage (the pattern replacing the old `static Counter&` caches):
///
///   static thread_local obs::CounterHandle h;
///   h.of(obs::metrics(), "dsu.finds").add();
///
/// of() re-resolves the metric by name when the registry's id differs from
/// the cached one; the common case is one TLS access plus an integer
/// compare.  A stale cache is never dereferenced, so a handle outliving a
/// session registry is safe.
class CounterHandle {
 public:
  Counter& of(MetricsRegistry& registry, const char* name) {
    if (cached_ == nullptr || registry_id_ != registry.id()) {
      cached_ = &registry.counter(name);
      registry_id_ = registry.id();
    }
    return *cached_;
  }

 private:
  Counter* cached_ = nullptr;
  std::uint64_t registry_id_ = 0;
};

class GaugeHandle {
 public:
  Gauge& of(MetricsRegistry& registry, const char* name) {
    if (cached_ == nullptr || registry_id_ != registry.id()) {
      cached_ = &registry.gauge(name);
      registry_id_ = registry.id();
    }
    return *cached_;
  }

 private:
  Gauge* cached_ = nullptr;
  std::uint64_t registry_id_ = 0;
};

class HistogramHandle {
 public:
  Histogram& of(MetricsRegistry& registry, const char* name) {
    if (cached_ == nullptr || registry_id_ != registry.id()) {
      cached_ = &registry.histogram(name);
      registry_id_ = registry.id();
    }
    return *cached_;
  }

 private:
  Histogram* cached_ = nullptr;
  std::uint64_t registry_id_ = 0;
};

}  // namespace metaprep::obs
