// Performance attribution: phase accounting, imbalance, critical path.
//
// The paper's evaluation is built on attribution, not raw timings: Figure 8
// is per-rank load imbalance, Table 5 is memory per structure, and the
// scaling discussion hinges on which phase sits on the critical path.  This
// layer turns a TraceSession snapshot into that analysis:
//
//  - PhaseAccountant::analyze aggregates spans per (rank, thread, phase)
//    into *self-time* (span minus children, attributed to the innermost
//    span), computes per-phase wall fraction and the Fig. 8 imbalance
//    factor max/mean over ranks, and extracts the longest dependency chain
//    through the span DAG — serial edges within each (pid, tid) track plus
//    cross-thread send->recv edges from mpsim flow markers — with a
//    per-step wait vs. compute split, so "overlap mode hides N ms of comm"
//    becomes a printed number.
//
//  - AttrReport is the structured result: phases, critical path, the
//    per-(src,dst) comm matrix with skew, and per-subsystem memory
//    high-water marks reconciled against core/memory_model predictions.
//    to_json() serializes it as the `attr.json` artifact; format_report()
//    renders the human-readable table `tools/metaprep-report` prints.
//
// Everything here runs at quiescent points (after World::run) on data the
// tracer already collected — the hot path keeps the tracer's
// one-relaxed-load discipline and this file adds zero per-span cost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace metaprep::obs {

/// Per-phase self-time aggregate across ranks and threads.
struct PhaseStat {
  std::string name;
  double self_s = 0.0;       // total self-time summed over every (rank, thread)
  double max_rank_s = 0.0;   // slowest rank's self-time (its threads summed)
  double mean_rank_s = 0.0;  // mean over ranks that appear in the trace
  double imbalance = 0.0;    // max/mean over ranks (Fig. 8); 1.0 single rank, 0 empty
  double wall_frac = 0.0;    // max_rank_s / wall_s
  std::map<int, double> rank_self_s;  // rank -> self seconds
};

/// One hop of the critical path (a maximal same-phase run of segments).
struct CritStep {
  std::string name;
  int pid = 0;
  int tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  bool wait = false;      // comm-wait time (phase name contains "Comm")
  bool via_flow = false;  // entered from the previous step through a message edge
};

/// Longest dependency chain through the span DAG.
struct CriticalPath {
  double length_s = 0.0;
  double wait_s = 0.0;     // time on the path spent in comm phases
  double compute_s = 0.0;  // length_s - wait_s
  std::vector<CritStep> steps;  // chronological order
};

/// Measured vs. predicted bytes for one subsystem.
struct MemSubsystem {
  std::string name;
  std::uint64_t high_water_bytes = 0;
  std::uint64_t predicted_bytes = 0;  // 0 = no memory_model mapping
};

/// peak RSS sampled at one phase boundary (satellite: per-phase RSS growth).
struct RssSample {
  std::string phase;
  std::uint64_t peak_rss_bytes = 0;
};

/// The structured attribution artifact (`attr.json`).
struct AttrReport {
  double wall_s = 0.0;        // measured run wall; trace extent when unset
  double trace_span_s = 0.0;  // [first span begin, last span end]
  int ranks = 0;
  int threads = 0;
  int passes = 0;

  std::vector<PhaseStat> phases;  // sorted by max_rank_s descending
  CriticalPath critical_path;

  int comm_ranks = 0;                    // matrix dimension (0 = not captured)
  std::vector<std::uint64_t> comm_bytes;  // P*P row-major (src, dst)
  std::vector<std::uint64_t> comm_msgs;   // P*P row-major (src, dst)
  double comm_skew = 0.0;  // max/mean over off-diagonal byte cells; 0 = no traffic

  std::vector<MemSubsystem> memory;        // sorted by name
  std::uint64_t mem_predicted_total = 0;   // memory_model total (all ranks)
  std::uint64_t peak_rss_bytes = 0;        // process VmHWM at run end
  std::vector<RssSample> rss_samples;      // phase-boundary peaks, run order

  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to @p path (truncates).  Throws on I/O failure.
  void write_json(const std::string& path) const;
};

class PhaseAccountant {
 public:
  /// Build phase stats + critical path from a trace snapshot.  @p wall_us
  /// is the measured run wall (<= 0 uses the trace extent); it scales
  /// wall_frac and clamps the critical-path length.  comm/memory/RSS
  /// sections are left empty — the pipeline fills them from its own state.
  static AttrReport analyze(const std::vector<TraceEvent>& events, double wall_us = 0.0);

  /// Fig. 8 statistic: max/mean.  Empty input -> 0; one value -> 1;
  /// all-zero values -> 0.
  static double imbalance_factor(const std::vector<double>& per_rank);
};

/// Render the human-readable table (phase walls, imbalance, critical path,
/// comm skew, memory by subsystem) that `metaprep-report` prints.
std::string format_report(const AttrReport& r);

/// max/mean over the off-diagonal cells of a ranks x ranks row-major byte
/// matrix (AttrReport::comm_skew).  0 when ranks <= 1 or no traffic.
double comm_matrix_skew(const std::vector<std::uint64_t>& matrix, int ranks);

}  // namespace metaprep::obs
