// Per-subsystem memory attribution (Table 5's "memory per structure").
//
// The memory model (core/memory_model) *predicts* bytes per structure; this
// registry *measures* them: instrumented allocation sites charge/credit a
// named subsystem ("tuples", "dsu", "sort", "io", "pool", ...) and the
// registry keeps a current count plus a high-water mark per name.  The
// attribution report reconciles the high-water marks against the model's
// prediction so the predicted-vs-actual delta becomes a printed number.
//
// Two tagging styles:
//  - explicit: mem_charge("dsu", bytes) / mem_credit("dsu", bytes) at sites
//    that know what they are (DSU parent arrays, radix count tables);
//  - scoped:   MemScope("tuples") pushes a thread-local subsystem tag so a
//    *generic* allocator below (the buffer pool) can attribute the bytes it
//    hands out to its caller via MemScope::current().
//
// Cost discipline mirrors src/check and the tracer: when the registry is
// disabled (the default), every charge/credit is one relaxed atomic load and
// a branch — no lock, no map lookup — so instrumented allocation sites add
// nothing to untraced runs.  Enable/snapshot are for quiescent points only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace metaprep::obs {

/// Measured bytes for one subsystem.
struct MemUsage {
  std::int64_t current = 0;      // charges minus credits right now
  std::int64_t high_water = 0;   // max of current since reset
};

class MemRegistry {
 public:
  /// The process-wide registry used as the default sink.
  static MemRegistry& global();

  /// The registry instrumented allocation sites charge: the calling
  /// thread's override when one is installed (util::SessionContext does
  /// this for pipeline sessions), otherwise global().
  static MemRegistry& current() noexcept;

  /// Install @p registry as the calling thread's charge target (nullptr
  /// restores the global default).  Returns the previous override.
  static MemRegistry* exchange_current(MemRegistry* registry) noexcept;

  /// The calling thread's override, nullptr when inheriting the global.
  [[nodiscard]] static MemRegistry* current_override() noexcept;

  MemRegistry() = default;
  MemRegistry(const MemRegistry&) = delete;
  MemRegistry& operator=(const MemRegistry&) = delete;

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Add @p bytes to @p subsystem's current count (raising the high-water
  /// mark if needed).  No-op when disabled.
  void charge(const char* subsystem, std::uint64_t bytes);

  /// Subtract @p bytes from @p subsystem's current count.  No-op when
  /// disabled; the count may go negative if enable happened mid-lease (the
  /// snapshot clamps high_water at >= 0, which is what reports consume).
  void credit(const char* subsystem, std::uint64_t bytes);

  /// Overwrite @p subsystem's current count (for externally-tracked pools
  /// that already know their exact byte total).  No-op when disabled.
  void set_current(const char* subsystem, std::uint64_t bytes);

  /// Per-subsystem usage, sorted by name.  Takes the reader side of the
  /// registry lock, so a live snapshot never blocks concurrent snapshots —
  /// charge/credit writers still serialise against it.
  [[nodiscard]] std::vector<std::pair<std::string, MemUsage>> snapshot() const;

  /// Drop all counts and high-water marks.
  void reset();

  /// This registry's capability, for lock-order declarations in other
  /// layers (see util/sync.hpp).
  [[nodiscard]] util::SharedMutex& mu() const RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable util::SharedMutex mutex_;
  std::map<std::string, MemUsage> usage_ GUARDED_BY(mutex_);
};

/// Convenience forwarders against the current registry.  One TLS access and
/// one relaxed load when the registry is disabled.
inline void mem_charge(const char* subsystem, std::uint64_t bytes) {
  MemRegistry& r = MemRegistry::current();
  if (r.enabled()) r.charge(subsystem, bytes);
}
inline void mem_credit(const char* subsystem, std::uint64_t bytes) {
  MemRegistry& r = MemRegistry::current();
  if (r.enabled()) r.credit(subsystem, bytes);
}
inline void mem_set_current(const char* subsystem, std::uint64_t bytes) {
  MemRegistry& r = MemRegistry::current();
  if (r.enabled()) r.set_current(subsystem, bytes);
}

/// RAII subsystem tag: while alive, MemScope::current() on this thread
/// returns the innermost scope's name, letting generic allocators attribute
/// bytes to their caller.  Nesting is bounded (kMaxDepth); overflow keeps
/// the outer tag.
class MemScope {
 public:
  static constexpr int kMaxDepth = 8;

  explicit MemScope(const char* subsystem) noexcept;
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;
  ~MemScope();

  /// Innermost tag on the calling thread, or @p fallback when untagged.
  [[nodiscard]] static const char* current(const char* fallback) noexcept;

 private:
  bool pushed_ = false;
};

/// RAII charge: charges @p bytes to @p subsystem on construction, credits
/// the same amount on destruction.  Both the registry and the charge/credit
/// pair are decided at construction time, so a registry toggled — or a
/// thread override swapped — mid-scope stays balanced.
class MemCharge {
 public:
  MemCharge(const char* subsystem, std::uint64_t bytes) noexcept
      : subsystem_(subsystem), bytes_(bytes), registry_(&MemRegistry::current()),
        active_(registry_->enabled()) {
    if (active_) registry_->charge(subsystem_, bytes_);
  }
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;
  ~MemCharge() {
    if (active_) registry_->credit(subsystem_, bytes_);
  }

 private:
  const char* subsystem_;
  std::uint64_t bytes_;
  MemRegistry* registry_;
  bool active_;
};

}  // namespace metaprep::obs
