#include "sim/presets.hpp"

#include <cmath>
#include <stdexcept>

namespace metaprep::sim {

std::string preset_name(Preset p) {
  switch (p) {
    case Preset::HG: return "HG";
    case Preset::LL: return "LL";
    case Preset::MM: return "MM";
    case Preset::IS: return "IS";
    case Preset::XL: return "XL";
  }
  throw std::invalid_argument("unknown preset");
}

DatasetConfig preset_config(Preset p, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("preset scale must be > 0");
  DatasetConfig c;
  c.name = preset_name(p);
  auto scaled = [&](double v) { return static_cast<std::uint64_t>(std::llround(v * scale)); };

  switch (p) {
    // Coverage targets (pairs * 200 bp / genome total) are chosen so the
    // Table 7 frequency-filter behavior reproduces: mean canonical-k-mer
    // frequency is coverage * (l-k+1)/l ~ 0.74 * coverage at k=27, so
    // HG ~20x centers frequencies inside the paper's 10..30 band,
    // MM ~40x pushes them against the KF<=30 bound (the mock community's
    // very deep sequencing), and LL ~13x sits lower with more species.
    case Preset::HG:
      c.genomes.num_species = 12;
      c.genomes.min_genome_len = scaled(2'500);
      c.genomes.max_genome_len = scaled(6'000);   // total ~51 kbp -> ~20x
      c.genomes.repeat_fraction = 0.05;
      c.genomes.shared_fraction = 0.090;
      c.genomes.shared_unit_len = 150;
      c.genomes.seed = 101;
      c.num_pairs = scaled(5'000);
      c.abundance_sigma = 1.0;
      c.reads.seed = 1101;
      break;
    case Preset::LL:
      c.genomes.num_species = 30;
      c.genomes.min_genome_len = scaled(2'000);
      c.genomes.max_genome_len = scaled(4'500);   // total ~97 kbp -> ~17x
      c.genomes.repeat_fraction = 0.04;
      c.genomes.shared_fraction = 0.050;
      c.genomes.shared_unit_len = 150;
      c.genomes.seed = 202;
      c.num_pairs = scaled(8'500);
      c.abundance_sigma = 1.2;
      c.reads.seed = 1202;
      break;
    case Preset::MM:
      c.genomes.num_species = 8;
      c.genomes.min_genome_len = scaled(12'000);
      c.genomes.max_genome_len = scaled(22'000);  // total ~140 kbp -> ~30x
      c.genomes.repeat_fraction = 0.08;
      c.genomes.shared_fraction = 0.050;
      c.genomes.seed = 303;
      c.num_pairs = scaled(21'500);
      c.abundance_sigma = 0.5;  // mock communities are near-even
      c.reads.seed = 1303;
      break;
    case Preset::IS:
      c.genomes.num_species = 120;
      c.genomes.min_genome_len = scaled(8'000);
      c.genomes.max_genome_len = scaled(30'000);  // total ~2.2 Mbp -> ~9x
      c.genomes.repeat_fraction = 0.04;
      c.genomes.shared_fraction = 0.008;
      c.genomes.seed = 404;
      c.num_pairs = scaled(100'000);
      c.abundance_sigma = 2.0;  // soil: long-tailed abundance
      c.reads.seed = 1404;
      break;
    case Preset::XL:
      // "XL-mini" (ROADMAP Open item 1): big enough that bench walls
      // measure real per-read work instead of fixed parse/setup cost
      // (~15x HG pairs), small enough for min-of-N gating in CI.
      c.genomes.num_species = 40;
      c.genomes.min_genome_len = scaled(12'000);
      c.genomes.max_genome_len = scaled(25'000);  // total ~740 kbp -> ~20x
      c.genomes.repeat_fraction = 0.04;
      c.genomes.shared_fraction = 0.020;
      c.genomes.shared_unit_len = 150;
      c.genomes.seed = 505;
      c.num_pairs = scaled(75'000);
      c.abundance_sigma = 1.2;
      c.reads.seed = 1505;
      break;
  }
  return c;
}

SimulatedDataset make_preset(Preset p, double scale, const std::string& dir) {
  const DatasetConfig c = preset_config(p, scale);
  return simulate_dataset(c, dir + "/" + c.name);
}

}  // namespace metaprep::sim
