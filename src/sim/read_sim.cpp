#include "sim/read_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/fastq.hpp"
#include "kmer/codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace metaprep::sim {

using util::SplitMix64;
using util::Xoshiro256;

std::vector<double> lognormal_abundances(int num_species, double sigma, std::uint64_t seed) {
  std::vector<double> w(static_cast<std::size_t>(num_species), 1.0);
  if (sigma > 0.0) {
    Xoshiro256 rng(seed);
    for (auto& v : w) v = std::exp(sigma * rng.next_gaussian());
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (auto& v : w) v /= total;
  return w;
}

namespace {

struct PairSim {
  const std::vector<std::string>& genomes;
  const ReadSimConfig& cfg;
  Xoshiro256 rng;

  explicit PairSim(const std::vector<std::string>& g, const ReadSimConfig& c)
      : genomes(g), cfg(c), rng(c.seed) {}

  void mutate(std::string& read) {
    const auto len = static_cast<double>(read.size());
    for (std::size_t i = 0; i < read.size(); ++i) {
      char& ch = read[i];
      // 3' degradation: error probability ramps up along the read.
      const double boost =
          cfg.end_error_boost * (len > 1 ? static_cast<double>(i) / (len - 1) : 0.0);
      if (rng.next_bool(cfg.n_rate)) {
        ch = 'N';
      } else if (rng.next_bool(cfg.error_rate + boost)) {
        const std::uint8_t orig = kmer::base_code(ch);
        // Substitute with one of the three other bases.
        const auto shift = static_cast<std::uint8_t>(1 + rng.next_below(3));
        ch = kmer::base_char(static_cast<std::uint8_t>((orig + shift) & 3));
      }
    }
  }

  /// Simulate one pair from species @p s.  Returns false if the genome is
  /// too short for the insert (caller retries with another position/species).
  bool simulate(std::uint32_t s, std::string& r1, std::string& r2) {
    const std::string& g = genomes[s];
    const double gauss = rng.next_gaussian();
    auto insert = static_cast<std::int64_t>(
        std::llround(static_cast<double>(cfg.insert_mean) +
                     gauss * static_cast<double>(cfg.insert_sd)));
    insert = std::max<std::int64_t>(insert, cfg.read_len);
    if (static_cast<std::uint64_t>(insert) > g.size()) return false;
    const std::uint64_t pos = rng.next_below(g.size() - static_cast<std::uint64_t>(insert) + 1);
    r1 = g.substr(pos, cfg.read_len);
    const std::uint64_t mate_start = pos + static_cast<std::uint64_t>(insert) - cfg.read_len;
    r2 = kmer::revcomp_string(std::string_view(g).substr(mate_start, cfg.read_len));
    mutate(r1);
    mutate(r2);
    return true;
  }
};

std::string quality_string(std::uint32_t len, int end_quality_drop, Xoshiro256& rng) {
  // Phred ~30-40 ASCII ('?' .. 'I') with an optional linear 3' decline that
  // mirrors ReadSimConfig::end_error_boost, so quality trimming removes the
  // genuinely error-rich tail.
  std::string q(len, 'I');
  for (std::uint32_t i = 0; i < len; ++i) {
    const int drop =
        len > 1 ? static_cast<int>(static_cast<double>(end_quality_drop) * i / (len - 1)) : 0;
    const int phred33 = '?' + static_cast<int>(rng.next_below(11)) - drop;
    q[i] = static_cast<char>(std::max(phred33, '!' + 1));
  }
  return q;
}

}  // namespace

InMemoryDataset simulate_in_memory(const DatasetConfig& config) {
  const auto genomes = generate_genomes(config.genomes);
  SplitMix64 seeder(config.reads.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  const auto weights =
      lognormal_abundances(config.genomes.num_species, config.abundance_sigma, seeder.next());
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cdf[i] = acc;
  }

  PairSim sim(genomes, config.reads);
  Xoshiro256 pick(seeder.next());

  InMemoryDataset out;
  out.r1.reserve(config.num_pairs);
  out.r2.reserve(config.num_pairs);
  out.pair_species.reserve(config.num_pairs);
  std::string r1, r2;
  for (std::uint64_t i = 0; i < config.num_pairs; ++i) {
    for (int attempt = 0;; ++attempt) {
      const double u = pick.next_double();
      const auto s = static_cast<std::uint32_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      const std::uint32_t species = std::min<std::uint32_t>(s, static_cast<std::uint32_t>(cdf.size() - 1));
      if (sim.simulate(species, r1, r2)) {
        out.r1.push_back(r1);
        out.r2.push_back(r2);
        out.pair_species.push_back(species);
        break;
      }
      if (attempt > 1000)
        throw util::config_error("simulate_dataset: genomes too short for insert size");
    }
  }
  return out;
}

SimulatedDataset simulate_dataset(const DatasetConfig& config, const std::string& out_prefix) {
  const auto genomes = generate_genomes(config.genomes);
  InMemoryDataset mem = simulate_in_memory(config);

  SimulatedDataset ds;
  ds.name = config.name;
  ds.num_pairs = config.num_pairs;
  ds.pair_species = std::move(mem.pair_species);
  for (const auto& g : genomes) ds.genome_lengths.push_back(g.size());

  const std::string p1 = out_prefix + "_1.fastq";
  const std::string p2 = out_prefix + "_2.fastq";
  Xoshiro256 qrng(config.reads.seed ^ 0x5151515151515151ULL);
  {
    io::FastqWriter w1(p1);
    io::FastqWriter w2(p2);
    for (std::uint64_t i = 0; i < config.num_pairs; ++i) {
      const std::string id = config.name + "." + std::to_string(i);
      w1.write(id + "/1",
               mem.r1[i], quality_string(config.reads.read_len,
                                         config.reads.end_quality_drop, qrng));
      w2.write(id + "/2",
               mem.r2[i], quality_string(config.reads.read_len,
                                         config.reads.end_quality_drop, qrng));
      ds.total_bases += mem.r1[i].size() + mem.r2[i].size();
    }
  }
  ds.files = {p1, p2};
  return ds;
}

}  // namespace metaprep::sim
