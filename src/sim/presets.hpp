// Dataset presets mirroring Table 2 of the paper.
//
// The four evaluation datasets (HG = human gut SRR341725, LL = Lake Lanier
// SRR947737, MM = mock microbial community SRX200676, IS = Iowa continuous
// corn soil JGI 402461) are unavailable offline, so each preset is a
// synthetic community whose *structure* matches the role the dataset plays
// in the evaluation:
//
//   preset  species  coverage  sharing  paper trait reproduced
//   HG        12       ~5x      high    LC ~95% without filtering
//   LL        30       ~3x      low     most diverse of the small three, LC ~76%
//   MM         8      ~20x      high    mock community: LC ~99.5%, huge k-mer counts
//   IS       120       ~8x      low     largest dataset; multipass + multi-node runs
//   XL        40      ~20x      low     "XL-mini" bench preset: ~15x HG read count,
//                                       so parse/scan/sort work dominates fixed costs
//
// Relative read counts follow Table 2 (LL ~1.7x HG, MM ~4.3x HG); IS is
// compressed from 89x to 20x HG to stay runnable in a container.  `scale`
// multiplies read counts and genome lengths together, preserving coverage.
#pragma once

#include <string>

#include "sim/read_sim.hpp"

namespace metaprep::sim {

enum class Preset { HG, LL, MM, IS, XL };

/// Short identifier used in file names and bench output ("HG", "LL", ...).
std::string preset_name(Preset p);

/// Build the dataset configuration for a preset at the given scale.
DatasetConfig preset_config(Preset p, double scale = 1.0);

/// Generate the preset dataset under @p dir (creates "<dir>/<name>_1.fastq"
/// and "_2.fastq"); returns its description.  Deterministic per (p, scale).
SimulatedDataset make_preset(Preset p, double scale, const std::string& dir);

}  // namespace metaprep::sim
