// Synthetic genome generation.
//
// Stands in for the paper's NCBI/JGI metagenomes (Table 2).  The read-graph
// behaviour METAPREP measures is driven by three structural knobs that we
// control directly:
//  * distinct species genomes => distinct read-graph components;
//  * intra-genome repeats => high-frequency k-mers (what the KF<30 filter
//    removes, Table 7);
//  * segments shared between species (conserved genes / near-identical
//    strains) => inter-species read-graph edges, i.e. the giant component
//    the paper observes ("99.5% of the reads belong to the giant
//    component" for MM at k=27).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metaprep::sim {

struct GenomeSetConfig {
  int num_species = 8;
  std::uint64_t min_genome_len = 20'000;
  std::uint64_t max_genome_len = 80'000;
  /// Fraction of each genome overwritten with copies of its own repeat
  /// units (creates high-frequency k-mers).
  double repeat_fraction = 0.05;
  std::uint64_t repeat_unit_len = 400;
  /// Fraction of each genome overwritten with segments drawn from a pool
  /// shared across all species (creates inter-species read-graph edges).
  double shared_fraction = 0.02;
  std::uint64_t shared_unit_len = 300;
  std::uint64_t seed = 1;
};

/// A generated community: one genome string per species.
std::vector<std::string> generate_genomes(const GenomeSetConfig& config);

/// Uniform random ACGT string of length @p len.
std::string random_genome(std::uint64_t len, std::uint64_t seed);

}  // namespace metaprep::sim
