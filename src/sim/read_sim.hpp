// Illumina-style paired-end read simulation over a synthetic community.
//
// Produces the FASTQ inputs for every experiment: read pairs are drawn from
// species chosen by an abundance profile, fragments are sampled uniformly
// within the genome, both ends get substitution errors and occasional N's
// (sequencing errors create the low-frequency k-mers that the 10 <= KF
// filter bound targets in Table 7).  Output is deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/genome.hpp"

namespace metaprep::sim {

struct ReadSimConfig {
  std::uint32_t read_len = 100;
  std::uint32_t insert_mean = 280;
  std::uint32_t insert_sd = 20;
  double error_rate = 0.004;  ///< per-base substitution probability
  double n_rate = 0.0004;     ///< per-base probability of an N call
  /// Illumina-style 3' degradation: extra substitution probability ramping
  /// linearly from 0 at the 5' end to this value at the last base.  Gives
  /// quality trimming (norm/trim) realistic work to do.
  double end_error_boost = 0.0;
  /// Phred-score drop at the 3' end (linear ramp), mirrored in the quality
  /// strings so trimming correlates with the real error positions.
  int end_quality_drop = 0;
  std::uint64_t seed = 7;
};

struct DatasetConfig {
  std::string name = "dataset";
  GenomeSetConfig genomes;
  ReadSimConfig reads;
  std::uint64_t num_pairs = 50'000;
  /// Log-normal abundance skew (sigma of underlying gaussian); 0 = uniform.
  double abundance_sigma = 1.0;
};

/// A simulated dataset on disk plus its ground truth.
struct SimulatedDataset {
  std::string name;
  std::vector<std::string> files;         ///< {R1 path, R2 path}
  std::uint64_t num_pairs = 0;
  std::uint64_t total_bases = 0;          ///< across both ends
  std::vector<std::uint32_t> pair_species;  ///< ground-truth species per pair
  std::vector<std::uint64_t> genome_lengths;
};

/// Generate the dataset and write "<out_prefix>_1.fastq" / "_2.fastq".
SimulatedDataset simulate_dataset(const DatasetConfig& config, const std::string& out_prefix);

/// In-memory variant used by unit tests: returns the two mates per pair
/// without touching the filesystem.
struct InMemoryDataset {
  std::vector<std::string> r1, r2;
  std::vector<std::uint32_t> pair_species;
};
InMemoryDataset simulate_in_memory(const DatasetConfig& config);

/// Species sampling weights from a log-normal profile (normalized).
std::vector<double> lognormal_abundances(int num_species, double sigma, std::uint64_t seed);

}  // namespace metaprep::sim
