#include "sim/genome.hpp"

#include <algorithm>
#include <stdexcept>

#include "kmer/codec.hpp"
#include "util/rng.hpp"

namespace metaprep::sim {

using util::SplitMix64;
using util::Xoshiro256;

std::string random_genome(std::uint64_t len, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string g(len, 'A');
  // Draw 32 bases (2 bits each) per 64-bit random value.
  std::size_t i = 0;
  while (i < g.size()) {
    std::uint64_t bits = rng.next();
    const std::size_t n = std::min<std::size_t>(32, g.size() - i);
    for (std::size_t j = 0; j < n; ++j) {
      g[i + j] = kmer::base_char(static_cast<std::uint8_t>(bits & 3));
      bits >>= 2;
    }
    i += n;
  }
  return g;
}

namespace {

/// Overwrite ~fraction of @p genome with copies of units drawn from @p pool.
void paste_units(std::string& genome, const std::vector<std::string>& pool, double fraction,
                 Xoshiro256& rng) {
  if (pool.empty() || fraction <= 0.0 || genome.empty()) return;
  const auto target = static_cast<std::uint64_t>(fraction * static_cast<double>(genome.size()));
  std::uint64_t pasted = 0;
  while (pasted < target) {
    const std::string& unit = pool[rng.next_below(pool.size())];
    if (unit.size() >= genome.size()) break;
    const std::uint64_t pos = rng.next_below(genome.size() - unit.size());
    std::copy(unit.begin(), unit.end(), genome.begin() + static_cast<std::ptrdiff_t>(pos));
    pasted += unit.size();
  }
}

}  // namespace

std::vector<std::string> generate_genomes(const GenomeSetConfig& config) {
  if (config.num_species < 1) throw std::invalid_argument("generate_genomes: num_species < 1");
  if (config.min_genome_len > config.max_genome_len)
    throw std::invalid_argument("generate_genomes: min_genome_len > max_genome_len");
  SplitMix64 seeder(config.seed);
  Xoshiro256 rng(seeder.next());

  // Shared pool: a handful of segments any species may carry (conserved
  // genes / mobile elements).  Kept small so sharing is the exception.
  std::vector<std::string> shared_pool;
  if (config.shared_fraction > 0.0) {
    const int pool_size = std::max(2, config.num_species / 2);
    for (int i = 0; i < pool_size; ++i) {
      shared_pool.push_back(random_genome(config.shared_unit_len, seeder.next()));
    }
  }

  std::vector<std::string> genomes;
  genomes.reserve(static_cast<std::size_t>(config.num_species));
  for (int s = 0; s < config.num_species; ++s) {
    const std::uint64_t span = config.max_genome_len - config.min_genome_len;
    const std::uint64_t len = config.min_genome_len + (span == 0 ? 0 : rng.next_below(span + 1));
    std::string g = random_genome(len, seeder.next());

    // Species-private repeat units, pasted multiple times within the genome.
    if (config.repeat_fraction > 0.0 && len > 2 * config.repeat_unit_len) {
      std::vector<std::string> repeats;
      const int nunits = 2;
      for (int u = 0; u < nunits; ++u) {
        const std::uint64_t pos = rng.next_below(len - config.repeat_unit_len);
        repeats.push_back(g.substr(pos, config.repeat_unit_len));
      }
      paste_units(g, repeats, config.repeat_fraction, rng);
    }
    if (!shared_pool.empty() && len > 2 * config.shared_unit_len) {
      paste_units(g, shared_pool, config.shared_fraction, rng);
    }
    genomes.push_back(std::move(g));
  }
  return genomes;
}

}  // namespace metaprep::sim
