// Minimal JSON reader for the offline tooling (metaprep-report).
//
// The pipeline's exporters (attr.json, metrics JSONL, the Chrome trace, the
// comm-matrix dump) emit a small, known subset of JSON; this parser reads
// exactly that subset back — objects, arrays, strings with the escapes the
// exporters produce, numbers, booleans, null — into a simple tree.  It is
// for trusted tool input, not adversarial data: depth is bounded only by the
// stack and numbers parse via strtod.  Malformed input throws
// util::parse_error naming the byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace metaprep::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// One node of the parsed tree.  Accessors throw util::parse_error on kind
/// mismatch so tool code can chain them and surface one typed failure.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;    ///< as_number, truncated
  [[nodiscard]] std::uint64_t as_uint() const;  ///< as_number, clamped at 0
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; throws if not an object or the key is missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Object member lookup; returns nullptr if absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Tool-side conveniences with defaults for optional fields.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirect so JsonValue stays movable without recursive type issues.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parse one JSON document (leading/trailing whitespace allowed; trailing
/// garbage throws).
JsonValue parse_json(std::string_view text);

/// Parse every non-empty line as one JSON document (the metrics JSONL
/// format).  A malformed line throws with its line number.
std::vector<JsonValue> parse_jsonl(std::string_view text);

/// Read @p path and parse_json its contents.
JsonValue parse_json_file(const std::string& path);

/// Read @p path and parse_jsonl its contents.
std::vector<JsonValue> parse_jsonl_file(const std::string& path);

}  // namespace metaprep::util
