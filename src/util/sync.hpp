#pragma once

/// Thread-safety capability layer (Clang `-Wthread-safety`).
///
/// Every mutex in METAPREP is a `util::Mutex` (or `util::SharedMutex`), every
/// guarded field carries `GUARDED_BY(mutex_)`, and every `*_locked()` helper
/// carries `REQUIRES(mutex_)`.  Under Clang the attributes turn the lock
/// discipline comments into compile-time proofs; under GCC they expand to
/// nothing and the wrappers are zero-cost shims over the std primitives.
///
/// Global lock order (outermost first) — see DESIGN.md "Static concurrency
/// safety":
///
///   serve::JobQueue::mutex_
///     > session-registry mutexes (obs::TraceSession / obs::MetricsRegistry /
///       obs::MemRegistry)
///     > util::BufferPool::mutex_            (leaf: no locks taken under it)
///
/// The order is declared structurally with ACQUIRED_BEFORE / ACQUIRED_AFTER
/// at the mutex declarations (enforced under -Wthread-safety-beta; plain
/// -Wthread-safety treats them as documentation).

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute plumbing.  `capability` needs clang; the macros must vanish under
// GCC, which parses (and ignores) some of these spellings but warns on others.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define METAPREP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef METAPREP_TSA
#define METAPREP_TSA(x)  // expands to nothing: GCC or pre-capability clang
#endif

#define CAPABILITY(x) METAPREP_TSA(capability(x))
#define SCOPED_CAPABILITY METAPREP_TSA(scoped_lockable)
#define GUARDED_BY(x) METAPREP_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) METAPREP_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) METAPREP_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) METAPREP_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) METAPREP_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) METAPREP_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) METAPREP_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) METAPREP_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) METAPREP_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) METAPREP_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) METAPREP_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) METAPREP_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) METAPREP_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) METAPREP_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) METAPREP_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS METAPREP_TSA(no_thread_safety_analysis)

namespace metaprep::util {

/// Exclusive mutex carrying the `"mutex"` capability.  Satisfies
/// BasicLockable/Lockable, so `CondVar` (condition_variable_any) can park on
/// it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For negative capability / assertion use in annotations only.
  const Mutex& operator!() const { return *this; }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex carrying the `"shared_mutex"` capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

  const SharedMutex& operator!() const { return *this; }

 private:
  std::shared_mutex mu_;
};

/// Tag selecting the deferred-lock MutexLock constructor.
struct defer_lock_t {
  explicit defer_lock_t() = default;
};
inline constexpr defer_lock_t defer_lock{};

/// Tag selecting the try-lock MutexLock constructor.
struct try_to_lock_t {
  explicit try_to_lock_t() = default;
};
inline constexpr try_to_lock_t try_to_lock{};

/// Scoped exclusive lock over `Mutex`.  Relockable: `Unlock()`/`Lock()` may
/// be used mid-scope (the destructor releases only if held), and the
/// deferred/try constructors support the try-to-lock probing idiom.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  MutexLock(Mutex& mu, defer_lock_t) EXCLUDES(mu) : mu_(mu), held_(false) {}
  MutexLock(Mutex& mu, try_to_lock_t) TRY_ACQUIRE(true, mu)
      : mu_(mu), held_(mu.try_lock()) {}
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return held_ = mu_.try_lock(); }
  [[nodiscard]] bool owns_lock() const noexcept { return held_; }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Scoped shared (reader) lock over `SharedMutex`.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over `SharedMutex`.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable parking on `util::Mutex`.
///
/// All waits take the owning `Mutex` plus the live `MutexLock` and are
/// annotated `REQUIRES(mu)`: the capability is held on entry and on return,
/// which is exactly what the analysis can see (the internal release/reacquire
/// happens inside the unannotated std machinery).  Predicate waits are
/// deliberately absent — a predicate lambda is opaque to the analysis, so
/// call sites spell the `while (!cond) cv.wait(...)` loop with the guarded
/// reads inline where the checker can prove them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu, MutexLock& lock) REQUIRES(mu) {
    (void)lock;
    cv_.wait(mu);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mu, MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    (void)lock;
    return cv_.wait_until(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu, MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) REQUIRES(mu) {
    (void)lock;
    return cv_.wait_for(mu, dur);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace metaprep::util
