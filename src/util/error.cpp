#include "util/error.hpp"

#include <cstring>

namespace metaprep::util {

std::string_view to_string(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kIo:
      return "io";
    case ErrorCategory::kParse:
      return "parse";
    case ErrorCategory::kComm:
      return "comm";
    case ErrorCategory::kConfig:
      return "config";
    case ErrorCategory::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

std::string format_what(ErrorCategory category, const std::string& detail,
                        const std::string& path, std::uint64_t offset, int sys_errno,
                        bool transient) {
  std::string out = "[";
  out += to_string(category);
  if (transient) out += ", transient";
  out += "] ";
  if (!path.empty()) {
    out += path;
    if (offset != Error::kNoOffset) {
      out += " @";
      out += std::to_string(offset);
    }
    out += ": ";
  }
  out += detail;
  if (sys_errno != 0) {
    out += " (errno ";
    out += std::to_string(sys_errno);
    out += ": ";
    out += std::strerror(sys_errno);
    out += ")";
  }
  return out;
}

}  // namespace

Error::Error(ErrorCategory category, std::string detail, std::string path,
             std::uint64_t offset, int sys_errno, bool transient)
    : std::runtime_error(format_what(category, detail, path, offset, sys_errno, transient)),
      category_(category),
      detail_(std::move(detail)),
      path_(std::move(path)),
      offset_(offset),
      errno_(sys_errno),
      transient_(transient) {}

Error io_error(std::string detail, std::string path, std::uint64_t offset, int sys_errno,
               bool transient) {
  return Error(ErrorCategory::kIo, std::move(detail), std::move(path), offset, sys_errno,
               transient);
}

Error parse_error(std::string detail, std::string path, std::uint64_t offset) {
  return Error(ErrorCategory::kParse, std::move(detail), std::move(path), offset);
}

Error comm_error(std::string detail, bool transient) {
  return Error(ErrorCategory::kComm, std::move(detail), {}, Error::kNoOffset, 0, transient);
}

Error config_error(std::string detail) {
  return Error(ErrorCategory::kConfig, std::move(detail));
}

Error cancelled_error(std::string detail) {
  return Error(ErrorCategory::kCancelled, std::move(detail));
}

}  // namespace metaprep::util
