#include "util/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace metaprep::util {

namespace {

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw parse_error(std::string("json: value is not a ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch("number");
  return num_;
}

std::int64_t JsonValue::as_int() const { return static_cast<std::int64_t>(as_number()); }

std::uint64_t JsonValue::as_uint() const {
  const double v = as_number();
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch("string");
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray || !arr_) kind_mismatch("array");
  return *arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject || !obj_) kind_mismatch("object");
  return *obj_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw parse_error("json: missing key \"" + key + "\"");
  return it->second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject || !obj_) return nullptr;
  auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind() == Kind::kNumber ? v->num_ : fallback;
}

std::string JsonValue::string_or(const std::string& key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind() == Kind::kString ? v->str_ : std::move(fallback);
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw parse_error(std::string("json: ") + what, {}, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    v.obj_ = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*v.obj_)[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    v.arr_ = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_->push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The exporters only emit \u00XX control escapes; decode the BMP
          // code point as UTF-8 without surrogate-pair handling.
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs a terminated buffer; numbers are short.
    char buf[64];
    const std::size_t len = pos_ - start;
    if (len >= sizeof(buf)) fail("number too long");
    std::memcpy(buf, text_.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    const double d = std::strtod(buf, &end);
    if (end != buf + len) fail("malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

std::vector<JsonValue> parse_jsonl(std::string_view text) {
  std::vector<JsonValue> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    ++line_no;
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Skip blank lines (and a possible trailing one).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    try {
      out.push_back(parse_json(line));
    } catch (const Error& e) {
      throw parse_error("jsonl line " + std::to_string(line_no) + ": " + e.detail());
    }
  }
  return out;
}

namespace {

std::string read_whole_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw io_error("json: cannot open", path);
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw io_error("json: read failed", path);
  return data;
}

}  // namespace

JsonValue parse_json_file(const std::string& path) {
  try {
    return parse_json(read_whole_file(path));
  } catch (const Error& e) {
    throw parse_error(path + ": " + e.detail(), path);
  }
}

std::vector<JsonValue> parse_jsonl_file(const std::string& path) {
  try {
    return parse_jsonl(read_whole_file(path));
  } catch (const Error& e) {
    throw parse_error(path + ": " + e.detail(), path);
  }
}

}  // namespace metaprep::util
