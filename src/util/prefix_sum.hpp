// Prefix sums over count arrays.
//
// METAPREP's synchronization-free writes hinge on exclusive prefix sums over
// histogram counts: thread/rank write offsets into shared buffers are the
// prefix sums of per-(chunk, k-mer-range) tuple counts (paper §3.2.2, §3.3,
// §3.4).  These helpers are the single implementation used everywhere.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace metaprep::util {

/// Exclusive prefix sum: out[i] = sum of in[0..i), out.size() == in.size()+1,
/// so out.back() is the grand total.
template <typename T>
std::vector<std::uint64_t> exclusive_prefix_sum(std::span<const T> in) {
  std::vector<std::uint64_t> out(in.size() + 1, 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += static_cast<std::uint64_t>(in[i]);
  }
  out[in.size()] = acc;
  return out;
}

/// In-place exclusive prefix sum; returns the grand total.
template <typename T>
T exclusive_prefix_sum_inplace(std::span<T> data) {
  T acc = 0;
  for (auto& v : data) {
    const T count = v;
    v = acc;
    acc += count;
  }
  return acc;
}

/// Sum of a count span as uint64 (histogram bins are 32-bit, totals are not).
template <typename T>
std::uint64_t sum_u64(std::span<const T> in) {
  std::uint64_t acc = 0;
  for (const auto& v : in) acc += static_cast<std::uint64_t>(v);
  return acc;
}

}  // namespace metaprep::util
