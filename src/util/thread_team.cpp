#include "util/thread_team.hpp"

#include <cassert>
#include <stdexcept>

namespace metaprep::util {

ThreadTeam::ThreadTeam(int num_threads) : num_threads_(num_threads) {
  if (num_threads < 1) throw std::invalid_argument("ThreadTeam: num_threads must be >= 1");
  // Worker 0 is the calling thread; only tids 1..T-1 get dedicated threads.
  threads_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int tid = 1; tid < num_threads; ++tid) {
    threads_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadTeam::execute(const std::function<void(int)>& fn, int tid) {
  try {
    fn(tid);
  } catch (...) {
    MutexLock lock(mutex_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
}

void ThreadTeam::worker_loop(int tid) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    SessionContext ctx;
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen_generation) cv_start_.wait(mutex_, lock);
      if (stop_) return;
      seen_generation = generation_;
      ctx = job_ctx_;
      // Copy the job pointer out while holding the lock: run() keeps it
      // valid until every worker has decremented pending_.
      job = job_;
    }
    {
      // Record into the launching session's sinks for this region only.
      const ScopedSessionContext bind(ctx);
      execute(*job, tid);
    }
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadTeam::run(const std::function<void(int)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_ctx_ = SessionContext::capture();
    pending_ = num_threads_ - 1;
    first_exception_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  execute(fn, 0);  // Caller participates as tid 0.
  {
    MutexLock lock(mutex_);
    while (pending_ != 0) cv_done_.wait(mutex_, lock);
    job_ = nullptr;
    if (first_exception_) std::rethrow_exception(first_exception_);
  }
}

void ThreadTeam::arrive_and_wait() {
  if (num_threads_ == 1) return;
  MutexLock lock(barrier_mutex_);
  const std::uint64_t phase = barrier_phase_;
  if (++barrier_count_ == num_threads_) {
    barrier_count_ = 0;
    ++barrier_phase_;
    barrier_cv_.notify_all();
  } else {
    while (barrier_phase_ == phase) barrier_cv_.wait(barrier_mutex_, lock);
  }
}

std::vector<std::size_t> split_range(std::size_t n, int nchunks) {
  assert(nchunks >= 1);
  std::vector<std::size_t> bounds(static_cast<std::size_t>(nchunks) + 1);
  const std::size_t base = n / static_cast<std::size_t>(nchunks);
  const std::size_t rem = n % static_cast<std::size_t>(nchunks);
  std::size_t pos = 0;
  for (int i = 0; i <= nchunks; ++i) {
    bounds[static_cast<std::size_t>(i)] = pos;
    if (i < nchunks) pos += base + (static_cast<std::size_t>(i) < rem ? 1 : 0);
  }
  return bounds;
}

void parallel_for(ThreadTeam& team, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const auto bounds = split_range(end - begin, team.size());
  team.run([&](int tid) {
    const std::size_t lo = begin + bounds[static_cast<std::size_t>(tid)];
    const std::size_t hi = begin + bounds[static_cast<std::size_t>(tid) + 1];
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace metaprep::util
