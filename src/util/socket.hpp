// Minimal Unix-domain stream sockets for the metaprepd control plane.
//
// The daemon's wire protocol is line-oriented (one JSON object per line in
// each direction), so this wrapper only needs blocking listeners, blocking
// connects, and newline-framed send/recv.  Local-socket-only by design: the
// daemon serves same-host clients, and an AF_UNIX path under the run
// directory doubles as the liveness marker the smoke test checks for leaks.
#pragma once

#include <string>

namespace metaprep::util {

/// One accepted or dialed connection.  Move-only; closes on destruction.
class SocketConn {
 public:
  SocketConn() = default;
  explicit SocketConn(int fd) noexcept : fd_(fd) {}
  SocketConn(SocketConn&& other) noexcept;
  SocketConn& operator=(SocketConn&& other) noexcept;
  SocketConn(const SocketConn&) = delete;
  SocketConn& operator=(const SocketConn&) = delete;
  ~SocketConn();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Write @p line plus a trailing '\n' (the line must not contain one).
  /// Throws util::io_error on failure.
  void send_line(const std::string& line);

  /// Read up to the next '\n' (stripped).  Returns false on clean EOF
  /// before any byte; throws util::io_error on failure or EOF mid-line.
  bool recv_line(std::string& line);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string pending_;  // bytes read past the last newline
};

/// Listening AF_UNIX socket bound to @p path.  The constructor refuses to
/// bind over an existing file unless it is a stale socket left by a dead
/// process; the destructor closes and unlinks.  Move-only.
class UnixListener {
 public:
  explicit UnixListener(std::string path);
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  /// Block until a client connects.  Throws util::io_error on failure.
  [[nodiscard]] SocketConn accept();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

/// Dial the daemon at @p path.  Throws util::io_error when nothing listens.
[[nodiscard]] SocketConn connect_unix(const std::string& path);

}  // namespace metaprep::util
