// FaultPlan: deterministic, seed-driven fault injection for the I/O and
// comm layers.
//
// The pipeline's robustness claims (retry on transient I/O faults, lenient
// resynchronization on corrupt FASTQ records, retransmission of dropped
// mpsim messages) are only worth anything if they are exercised — this is
// the harness that exercises them.  A process-wide plan is armed with rates
// and a seed; instrumented sites (io::read_file_range, FastqReader refills,
// mpsim::Comm::send / World::deliver) ask the plan whether to fail.
//
// Decisions are *site-keyed*, not sequence-keyed: a read fault or chunk
// corruption fires based on a hash of (seed, path, offset), so every re-read
// of the same byte range sees the same fault regardless of thread
// scheduling.  That matters for the pipeline, whose precomputed buffer
// offsets assume each chunk parses identically in the histogram, KmerGen,
// and output phases.  Transient read faults additionally heal after
// transient_failures_per_site attempts so the retry policy can win.
//
// When disarmed (the default), every hook is one relaxed atomic load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/sync.hpp"

namespace metaprep::util {

struct FaultPlanConfig {
  std::uint64_t seed = 1;

  /// Probability a distinct (path, offset) read site fails transiently.
  double transient_read_rate = 0.0;
  /// Attempts that fail at a faulted read site before it heals; keep below
  /// RetryPolicy::max_attempts for a recoverable plan.
  int transient_failures_per_site = 1;

  /// Probability a FASTQ chunk read at (path, offset) returns a corrupted
  /// buffer (one record's '@' header is clobbered, making it unparseable).
  double corrupt_rate = 0.0;

  /// Probability a message delivery attempt is dropped (the sender's retry
  /// loop retransmits it).
  double comm_drop_rate = 0.0;
  /// Probability a delivery is delayed by comm_delay before enqueue.
  double comm_delay_rate = 0.0;
  std::chrono::microseconds comm_delay{200};
};

class FaultPlan {
 public:
  /// The process-wide plan consulted by all instrumented sites.
  static FaultPlan& global();

  /// Install @p config, clear per-site state, and zero the counters.
  void arm(const FaultPlanConfig& config);
  /// Disable all injection (hooks become a relaxed load + branch).
  void disarm();
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// True when the read at (path, offset) should fail this attempt; the
  /// caller throws a transient io Error and lets its retry policy re-run.
  bool inject_read_fault(std::string_view path, std::uint64_t offset);

  /// Deterministically corrupt the FASTQ buffer read from (path, offset):
  /// one record's '@' header byte becomes '#'.  Returns true if corrupted.
  bool corrupt_fastq_chunk(std::string_view path, std::uint64_t offset,
                           std::span<char> buffer);

  /// True when this delivery attempt should be dropped (per-message draw).
  bool inject_comm_drop();

  /// Per-message draw; sleeps config.comm_delay internally when it fires.
  /// Returns true if a delay was injected.
  bool inject_comm_delay();

  struct Counters {
    std::uint64_t read_faults = 0;       ///< transient read failures injected
    std::uint64_t chunks_corrupted = 0;  ///< FASTQ buffers corrupted
    std::uint64_t comm_drops = 0;        ///< deliveries dropped
    std::uint64_t comm_delays = 0;       ///< deliveries delayed
  };
  [[nodiscard]] Counters counters() const;
  void reset_counters();

 private:
  [[nodiscard]] bool draw(std::uint64_t site_hash, double rate) const;

  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  FaultPlanConfig config_ GUARDED_BY(mutex_);
  /// Failed-attempt count per transiently-faulted read site, keyed
  /// "path@offset"; lets sites heal so retries succeed.
  std::unordered_map<std::string, int> read_site_attempts_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> comm_seq_{0};

  std::atomic<std::uint64_t> n_read_faults_{0};
  std::atomic<std::uint64_t> n_corrupted_{0};
  std::atomic<std::uint64_t> n_drops_{0};
  std::atomic<std::uint64_t> n_delays_{0};
};

/// RAII arm/disarm for tests: arms the global plan on construction and
/// disarms it (and resets counters) on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlanConfig& config) { FaultPlan::global().arm(config); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
  ~ScopedFaultPlan() { FaultPlan::global().disarm(); }
};

}  // namespace metaprep::util
