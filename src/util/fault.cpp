#include "util/fault.hpp"

#include <cstring>
#include <thread>
#include <vector>

namespace metaprep::util {

namespace {

// Site tags keep the decision streams for different fault kinds independent.
constexpr std::uint64_t kTagRead = 0x52454144;     // "READ"
constexpr std::uint64_t kTagCorrupt = 0x434f5252;  // "CORR"
constexpr std::uint64_t kTagDrop = 0x44524f50;     // "DROP"
constexpr std::uint64_t kTagDelay = 0x44454c59;    // "DELY"

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t site_hash(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                        std::uint64_t b) {
  return splitmix64(splitmix64(splitmix64(seed ^ tag) ^ a) ^ b);
}

}  // namespace

FaultPlan& FaultPlan::global() {
  // NOLINT(metaprep-no-naked-new): intentionally leaked process-lifetime singleton
  static FaultPlan* plan = new FaultPlan();  // leaked: process lifetime
  return *plan;
}

void FaultPlan::arm(const FaultPlanConfig& config) {
  {
    MutexLock lock(mutex_);
    config_ = config;
    read_site_attempts_.clear();
  }
  comm_seq_.store(0, std::memory_order_relaxed);
  reset_counters();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultPlan::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  read_site_attempts_.clear();
}

bool FaultPlan::draw(std::uint64_t hash, double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(hash >> 11) * 0x1.0p-53 < rate;
}

bool FaultPlan::inject_read_fault(std::string_view path, std::uint64_t offset) {
  if (!armed()) return false;
  MutexLock lock(mutex_);
  if (!draw(site_hash(config_.seed, kTagRead, fnv1a(path), offset),
            config_.transient_read_rate))
    return false;
  int& attempts = read_site_attempts_[std::string(path) + "@" + std::to_string(offset)];
  if (attempts >= config_.transient_failures_per_site) return false;  // site healed
  ++attempts;
  n_read_faults_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::corrupt_fastq_chunk(std::string_view path, std::uint64_t offset,
                                    std::span<char> buffer) {
  if (!armed()) return false;
  std::uint64_t seed;
  double rate;
  {
    MutexLock lock(mutex_);
    seed = config_.seed;
    rate = config_.corrupt_rate;
  }
  const std::uint64_t h = site_hash(seed, kTagCorrupt, fnv1a(path), offset);
  if (!draw(h, rate)) return false;

  // Record starts in a well-formed 4-line-record buffer: line 0, 4, 8, ...
  // Walk the lines once; bail (no corruption) if the buffer doesn't look
  // like clean FASTQ, so injected damage stays exactly one record's worth.
  std::vector<std::size_t> record_starts;
  std::size_t pos = 0;
  std::size_t line = 0;
  while (pos < buffer.size()) {
    if (line % 4 == 0) {
      if (buffer[pos] != '@') return false;
      record_starts.push_back(pos);
    }
    const void* nl = std::memchr(buffer.data() + pos, '\n', buffer.size() - pos);
    if (nl == nullptr) break;
    pos = static_cast<std::size_t>(static_cast<const char*>(nl) - buffer.data()) + 1;
    ++line;
  }
  if (record_starts.empty()) return false;
  // Deterministic victim choice from the same site hash.
  const std::size_t victim = splitmix64(h) % record_starts.size();
  buffer[record_starts[victim]] = '#';
  n_corrupted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::inject_comm_drop() {
  if (!armed()) return false;
  std::uint64_t seed;
  double rate;
  {
    MutexLock lock(mutex_);
    seed = config_.seed;
    rate = config_.comm_drop_rate;
  }
  const std::uint64_t seq = comm_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!draw(site_hash(seed, kTagDrop, seq, 0), rate)) return false;
  n_drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::inject_comm_delay() {
  if (!armed()) return false;
  std::uint64_t seed;
  double rate;
  std::chrono::microseconds delay;
  {
    MutexLock lock(mutex_);
    seed = config_.seed;
    rate = config_.comm_delay_rate;
    delay = config_.comm_delay;
  }
  const std::uint64_t seq = comm_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!draw(site_hash(seed, kTagDelay, seq, 0), rate)) return false;
  n_delays_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(delay);
  return true;
}

FaultPlan::Counters FaultPlan::counters() const {
  Counters c;
  c.read_faults = n_read_faults_.load(std::memory_order_relaxed);
  c.chunks_corrupted = n_corrupted_.load(std::memory_order_relaxed);
  c.comm_drops = n_drops_.load(std::memory_order_relaxed);
  c.comm_delays = n_delays_.load(std::memory_order_relaxed);
  return c;
}

void FaultPlan::reset_counters() {
  n_read_faults_.store(0, std::memory_order_relaxed);
  n_corrupted_.store(0, std::memory_order_relaxed);
  n_drops_.store(0, std::memory_order_relaxed);
  n_delays_.store(0, std::memory_order_relaxed);
}

}  // namespace metaprep::util
