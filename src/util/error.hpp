// Typed error taxonomy for the METAPREP pipeline.
//
// The pipeline is I/O-dominated (IndexCreate and KmerGen stream the full
// FASTQ set every pass), so failures need enough structure for a caller to
// decide between retrying (transient interconnect/filesystem hiccups),
// skipping (one corrupt record out of billions), and aborting (bad config,
// truncated index).  Error carries a category, the resource path, the byte
// offset of the failure, the captured errno, and a transient flag, while
// still deriving from std::runtime_error so existing catch sites and tests
// keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace metaprep::util {

enum class ErrorCategory {
  kIo,         ///< open/read/write/seek/close failures
  kParse,      ///< malformed FASTQ/FASTA/binary-index content
  kComm,       ///< mpsim messaging failures (poisoned world, size mismatch)
  kConfig,     ///< invalid run configuration or CLI arguments
  kCancelled,  ///< cooperative cancellation observed at a pass/chunk boundary
};

[[nodiscard]] std::string_view to_string(ErrorCategory category) noexcept;

class Error : public std::runtime_error {
 public:
  /// Sentinel for "no byte offset applies to this failure".
  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

  Error(ErrorCategory category, std::string detail, std::string path = {},
        std::uint64_t offset = kNoOffset, int sys_errno = 0, bool transient = false);

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
  /// File or resource the failure refers to; empty when none applies.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Byte offset of the failure within path(), or kNoOffset.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] bool has_offset() const noexcept { return offset_ != kNoOffset; }
  /// errno captured at the failure site, 0 when none applies.
  [[nodiscard]] int sys_errno() const noexcept { return errno_; }
  /// Transient failures (EINTR, injected faults, dropped messages) are safe
  /// to retry; everything else is permanent.
  [[nodiscard]] bool transient() const noexcept { return transient_; }
  /// The failure description without the category/path/offset decoration.
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  ErrorCategory category_;
  std::string detail_;
  std::string path_;
  std::uint64_t offset_;
  int errno_;
  bool transient_;
};

// Category-specific constructors, for call-site brevity.
[[nodiscard]] Error io_error(std::string detail, std::string path = {},
                             std::uint64_t offset = Error::kNoOffset, int sys_errno = 0,
                             bool transient = false);
[[nodiscard]] Error parse_error(std::string detail, std::string path = {},
                                std::uint64_t offset = Error::kNoOffset);
[[nodiscard]] Error comm_error(std::string detail, bool transient = false);
[[nodiscard]] Error config_error(std::string detail);
[[nodiscard]] Error cancelled_error(std::string detail);

}  // namespace metaprep::util
