#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace metaprep::util {

double Xoshiro256::next_gaussian() noexcept {
  // Box-Muller. Guard against log(0) by nudging u1 away from zero.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace metaprep::util
