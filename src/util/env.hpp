#pragma once

/// The blessed environment layer.
///
/// This header is the ONLY place in src/ and tools/ allowed to touch
/// `std::getenv` (enforced by the `metaprep-no-env-outside-config` lint
/// rule).  Funnelling every environment read through one file keeps the
/// process-global configuration surface auditable: each `METAPREP_*` knob a
/// subsystem consumes is visible as an `env_*` call site, and the thread-local
/// session overrides (util::Session) can reason about exactly which globals
/// they must shadow.
///
/// Header-only on purpose: `obs/` and `check/` sit below `mp_util` in the
/// link order and still need environment reads.

#include <cstdlib>
#include <cstring>

namespace metaprep::util {

/// Raw environment read; nullptr when unset.  Prefer the typed helpers.
[[nodiscard]] inline const char* env_get(const char* name) noexcept {
  return std::getenv(name);
}

/// String read with fallback; empty values fall back.
[[nodiscard]] inline const char* env_string(const char* name,
                                            const char* fallback) noexcept {
  const char* value = env_get(name);
  return (value == nullptr || *value == '\0') ? fallback : value;
}

/// Boolean read: "1", "on", and "true" enable; anything else (or unset) is
/// the fallback.
[[nodiscard]] inline bool env_bool(const char* name, bool fallback = false) noexcept {
  const char* value = env_get(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
         std::strcmp(value, "true") == 0;
}

/// Double read with fallback; unparsable values fall back.
[[nodiscard]] inline double env_double(const char* name, double fallback) noexcept {
  const char* value = env_get(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

}  // namespace metaprep::util
