// Plain-text table rendering for the bench harness.  Every bench binary
// prints rows mirroring one of the paper's tables/figures; TablePrinter
// keeps the formatting consistent and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace metaprep::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; includes a header separator line.
  [[nodiscard]] std::string str() const;

  /// Render as CSV (RFC-4180-ish: fields containing commas/quotes are
  /// quoted), for plotting pipelines.
  [[nodiscard]] std::string csv() const;

  /// Render to stdout.  When the METAPREP_TABLE_CSV_DIR environment
  /// variable is set, additionally export the table as CSV into that
  /// directory as "<program>_<n>.csv" (n = per-process table counter), so
  /// every bench table is machine-readable without call-site changes.
  void print() const;

  /// Format a double with the given precision (helper for cells).
  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metaprep::util
