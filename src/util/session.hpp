// Per-thread session context: which observability sinks and gates a thread
// records into.
//
// run_metaprep historically wrote through process-global singletons
// (TraceSession/MetricsRegistry/MemRegistry::global(), the METAPREP_CHECK /
// METAPREP_LOG getenv caches), which made two concurrent in-process runs
// corrupt each other's observability.  The fix is thread-scoped overrides on
// each singleton (obs::*::exchange_current, check::exchange_thread_override,
// util::exchange_thread_log_level) plus this bundle, which captures a
// thread's complete override set and re-installs it on another thread —
// that is how a session's identity crosses into ThreadTeam workers and
// mpsim rank threads, whose pools outlive any one session.
//
// Propagation contract: ThreadTeam::run and mpsim::World::run capture the
// *caller's* context and install it (RAII) in every worker/rank thread for
// the duration of the region, so instrumentation below them transparently
// lands in the calling session's sinks.  Inline fast paths (T == 1, P == 1)
// already run on the caller's thread and need no install.
#pragma once

#include "check/check.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace metaprep::util {

/// Value snapshot of the calling thread's override set.  Null pointers /
/// -1 mean "inherit the process-wide default", which is also what a
/// default-constructed context carries — installing it is a reset.
struct SessionContext {
  obs::TraceSession* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::MemRegistry* mem = nullptr;
  int check_override = -1;
  int log_override = -1;

  /// The calling thread's current override set.
  [[nodiscard]] static SessionContext capture() noexcept {
    SessionContext ctx;
    ctx.trace = obs::TraceSession::current_override();
    ctx.metrics = obs::MetricsRegistry::current_override();
    ctx.mem = obs::MemRegistry::current_override();
    ctx.check_override = check::thread_override();
    ctx.log_override = thread_log_level_override();
    return ctx;
  }
};

/// RAII install of a SessionContext on the calling thread; the destructor
/// restores whatever was installed before.  Exception-safe by construction:
/// unwinding through the scope restores the previous context.
class ScopedSessionContext {
 public:
  explicit ScopedSessionContext(const SessionContext& ctx) noexcept {
    prev_.trace = obs::TraceSession::exchange_current(ctx.trace);
    prev_.metrics = obs::MetricsRegistry::exchange_current(ctx.metrics);
    prev_.mem = obs::MemRegistry::exchange_current(ctx.mem);
    prev_.check_override = check::exchange_thread_override(ctx.check_override);
    prev_.log_override = exchange_thread_log_level(ctx.log_override);
  }
  ScopedSessionContext(const ScopedSessionContext&) = delete;
  ScopedSessionContext& operator=(const ScopedSessionContext&) = delete;
  ~ScopedSessionContext() {
    obs::TraceSession::exchange_current(prev_.trace);
    obs::MetricsRegistry::exchange_current(prev_.metrics);
    obs::MemRegistry::exchange_current(prev_.mem);
    check::exchange_thread_override(prev_.check_override);
    exchange_thread_log_level(prev_.log_override);
  }

 private:
  SessionContext prev_;
};

}  // namespace metaprep::util
