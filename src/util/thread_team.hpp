// ThreadTeam: a persistent worker pool modelling the paper's "T threads per
// MPI task" (OpenMP team).  METAPREP's hot loops are structured as "thread
// tid processes its precomputed range and writes at its precomputed offset",
// i.e. an SPMD region.  ThreadTeam::run(fn) executes fn(tid) on every worker
// concurrently and returns when all complete; arrive_and_wait() provides an
// in-region barrier.
//
// A persistent pool (rather than spawn-per-region) keeps region launch cheap:
// the pipeline enters hundreds of parallel regions per pass.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/session.hpp"
#include "util/sync.hpp"

namespace metaprep::util {

class ThreadTeam {
 public:
  /// Creates a team of @p num_threads workers.  num_threads >= 1.
  /// With num_threads == 1, run() executes inline on the caller.
  explicit ThreadTeam(int num_threads);
  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;
  ~ThreadTeam();

  [[nodiscard]] int size() const noexcept { return num_threads_; }

  /// Run fn(tid) for tid in [0, size()) concurrently; blocks until all
  /// workers finish.  If any worker throws, one of the exceptions is
  /// rethrown on the caller after all workers have completed.  The caller's
  /// SessionContext (per-session obs/check/log overrides) is captured and
  /// installed in every worker for the region, so a region launched from a
  /// pipeline session records into that session's sinks even though the
  /// worker threads are persistent and session-agnostic.
  void run(const std::function<void(int)>& fn);

  /// Barrier usable by workers inside a run() region.  All size() workers
  /// must call it the same number of times.
  void arrive_and_wait();

 private:
  void worker_loop(int tid);
  /// Runs fn(tid), funnelling any exception into first_exception_.  Workers
  /// pass the job pointer they copied under mutex_ rather than re-reading
  /// the guarded job_ field outside the lock.
  void execute(const std::function<void(int)>& fn, int tid);

  int num_threads_;
  std::vector<std::thread> threads_;

  Mutex mutex_;
  CondVar cv_start_;
  CondVar cv_done_;
  const std::function<void(int)>* job_ GUARDED_BY(mutex_) = nullptr;
  SessionContext job_ctx_ GUARDED_BY(mutex_);  // caller's overrides for the region
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  int pending_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::exception_ptr first_exception_ GUARDED_BY(mutex_);

  // In-region barrier state (sense-reversing).
  Mutex barrier_mutex_;
  CondVar barrier_cv_;
  int barrier_count_ GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_phase_ GUARDED_BY(barrier_mutex_) = 0;
};

/// Chunked parallel for over [begin, end): splits the range into size()
/// contiguous chunks and invokes body(i) for each index.  Static schedule,
/// matching METAPREP's index-precomputed load balancing.
void parallel_for(ThreadTeam& team, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Splits [0, n) into nchunks near-equal contiguous ranges; returns the
/// (nchunks + 1) boundaries.  Chunk i is [bounds[i], bounds[i+1]).
std::vector<std::size_t> split_range(std::size_t n, int nchunks);

}  // namespace metaprep::util
