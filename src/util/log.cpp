#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/env.hpp"
#include "util/sync.hpp"

namespace metaprep::util {

namespace {

LogLevel initial_level() {
  const char* env = env_get("METAPREP_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
Mutex g_mutex;  // serialises the stderr fprintf so lines never interleave

// Per-thread override (-1 inherit); see log.hpp.
thread_local int tls_level = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() {
  const int o = tls_level;
  if (o >= 0) return static_cast<LogLevel>(o);
  return g_level.load(std::memory_order_relaxed);
}

int exchange_thread_log_level(int level) noexcept {
  const int prev = tls_level;
  tls_level = (level < 0 || level > static_cast<int>(LogLevel::kOff)) ? -1 : level;
  return prev;
}

int thread_log_level_override() noexcept { return tls_level; }

void log_line(LogLevel level, const std::string& message) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[metaprep %s] %s\n", level_name(level), message.c_str());
}

}  // namespace metaprep::util
