#include "util/memusage.hpp"

#include <cstdio>
#include <cstring>

namespace metaprep::util {

namespace {
std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t keylen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, keylen) == 0) {
      std::sscanf(line + keylen, " %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM:"); }
std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS:"); }

}  // namespace metaprep::util
