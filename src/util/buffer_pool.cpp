#include "util/buffer_pool.hpp"

#include <algorithm>
#include <sstream>

#include "check/check.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"

namespace metaprep::util {

namespace {

constexpr std::uint64_t kPoison64 = 0xDEADBEEFDEADBEEFULL;
constexpr std::uint32_t kPoison32 = 0xDEADBEEFU;

[[noreturn]] void throw_pool_violation(check::ViolationKind kind, std::uint64_t generation,
                                       std::uint64_t capacity_bytes, const char* detail) {
  check::Violation v;
  v.kind = kind;
  v.detail_a = generation;
  v.bytes = capacity_bytes;
  std::ostringstream msg;
  msg << "BufferPool: " << detail;
  if (generation != 0) msg << " (lease generation " << generation << ")";
  msg << ", " << capacity_bytes << " byte(s) of capacity";
  v.message = msg.str();
  check::CheckReport report;
  report.violations.push_back(std::move(v));
  throw check::CheckError(std::move(report));
}

}  // namespace

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

template <typename T>
std::vector<T> BufferPool::acquire_from(std::vector<FreeEntry<T>>& list, LeaseMap& leases,
                                        std::size_t n, T poison, bool* reused) {
  const bool checked = check::enabled();
  // Best fit: smallest capacity that still holds n, so one oversized buffer
  // is not burned on a tiny request.
  std::size_t best = list.size();
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].buf.capacity() < n) continue;
    if (best == list.size() || list[i].buf.capacity() < list[best].buf.capacity()) best = i;
  }
  std::vector<T> out;
  if (best == list.size()) {
    out.assign(n, T{});  // miss: fresh allocation
  } else {
    FreeEntry<T> entry = std::move(list[best]);
    list[best] = std::move(list.back());
    list.pop_back();
    bytes_held_ -= entry.buf.capacity() * sizeof(T);
    ++reuse_hits_;
    *reused = true;
    if (checked && entry.poisoned) {
      // Release filled size()==capacity() with poison; any break means a
      // caller wrote through a dangling handle while we held the storage.
      for (const T& x : entry.buf) {
        if (x != poison) {
          throw_pool_violation(check::ViolationKind::kUseAfterReturn, 0,
                               entry.buf.capacity() * sizeof(T),
                               "released buffer was written while on the free list");
        }
      }
    }
    out = std::move(entry.buf);
    out.resize(n);
  }
  if (checked) {
    // Zero-size leases still need a registrable data pointer.
    if (out.capacity() == 0) out.reserve(1);
    leases[out.data()] = next_generation_++;
  }
  return out;
}

template <typename T>
void BufferPool::release_into(std::vector<FreeEntry<T>>& list, LeaseMap& leases,
                              std::vector<T>&& v, T poison) {
  if (check::enabled()) {
    if (v.capacity() == 0) {
      // An empty/moved-from vector is the signature of re-releasing a lease
      // release() already consumed.
      throw_pool_violation(check::ViolationKind::kDoubleRelease, 0, 0,
                           "empty/moved-from buffer released (lease already returned?)");
    }
    auto it = leases.find(v.data());
    if (it == leases.end()) {
      throw_pool_violation(check::ViolationKind::kForeignRelease, 0,
                           v.capacity() * sizeof(T),
                           "buffer released that the pool never leased");
    }
    leases.erase(it);
    v.resize(v.capacity());
    std::fill(v.begin(), v.end(), poison);
    bytes_held_ += v.capacity() * sizeof(T);
    list.push_back(FreeEntry<T>{std::move(v), /*poisoned=*/true});
  } else {
    if (v.capacity() == 0) return;
    if (!leases.empty()) leases.erase(v.data());  // tolerate toggled-off checking
    bytes_held_ += v.capacity() * sizeof(T);
    list.push_back(FreeEntry<T>{std::move(v), /*poisoned=*/false});
  }
}

// The public entry points hold mutex_ only across the free-list/lease state
// change, then run the observability side effects (registry locks) after
// releasing it: the pool lock is declared a leaf, so holding it across
// obs::mem_charge / gauge publication would invert the global lock order.
// The charge may therefore land a moment after a concurrent release's
// credit for the same storage; the balance is unchanged and the high-water
// mark errs high (never low).

std::vector<std::uint64_t> BufferPool::acquire_u64(std::size_t n) {
  std::vector<std::uint64_t> out;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  bool reused = false;
  {
    MutexLock lock(mutex_);
    out = acquire_from(free64_, leases64_, n, kPoison64, &reused);
    bytes = bytes_held_;
    hits = reuse_hits_;
  }
  // Memory attribution: leased bytes belong to the caller's subsystem (the
  // pipeline tags tuple leases with MemScope("tuples")); acquire and release
  // sites must agree on the tag for the charge to balance.
  obs::mem_charge(obs::MemScope::current("pool"), out.capacity() * sizeof(std::uint64_t));
  if (reused) publish_gauges(bytes, hits);
  return out;
}

std::vector<std::uint32_t> BufferPool::acquire_u32(std::size_t n) {
  std::vector<std::uint32_t> out;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  bool reused = false;
  {
    MutexLock lock(mutex_);
    out = acquire_from(free32_, leases32_, n, kPoison32, &reused);
    bytes = bytes_held_;
    hits = reuse_hits_;
  }
  obs::mem_charge(obs::MemScope::current("pool"), out.capacity() * sizeof(std::uint32_t));
  if (reused) publish_gauges(bytes, hits);
  return out;
}

void BufferPool::release(std::vector<std::uint64_t>&& v) {
  const std::uint64_t credited = v.capacity() * sizeof(std::uint64_t);
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  {
    MutexLock lock(mutex_);
    release_into(free64_, leases64_, std::move(v), kPoison64);
    bytes = bytes_held_;
    hits = reuse_hits_;
  }
  obs::mem_credit(obs::MemScope::current("pool"), credited);
  publish_gauges(bytes, hits);
}

void BufferPool::release(std::vector<std::uint32_t>&& v) {
  const std::uint64_t credited = v.capacity() * sizeof(std::uint32_t);
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  {
    MutexLock lock(mutex_);
    release_into(free32_, leases32_, std::move(v), kPoison32);
    bytes = bytes_held_;
    hits = reuse_hits_;
  }
  obs::mem_credit(obs::MemScope::current("pool"), credited);
  publish_gauges(bytes, hits);
}

std::uint64_t BufferPool::bytes_held() const {
  MutexLock lock(mutex_);
  return bytes_held_;
}

std::uint64_t BufferPool::reuse_hits() const {
  MutexLock lock(mutex_);
  return reuse_hits_;
}

std::size_t BufferPool::buffers_held() const {
  MutexLock lock(mutex_);
  return free64_.size() + free32_.size();
}

std::size_t BufferPool::outstanding_leases() const {
  MutexLock lock(mutex_);
  return leases64_.size() + leases32_.size();
}

void BufferPool::trim() {
  std::uint64_t hits = 0;
  {
    MutexLock lock(mutex_);
    free64_.clear();
    free32_.clear();
    bytes_held_ = 0;
    hits = reuse_hits_;
  }
  publish_gauges(0, hits);
}

void BufferPool::publish_gauges(std::uint64_t bytes_held, std::uint64_t reuse_hits) const {
  // Deliberately pinned to the *global* registry: a pool can be shared
  // across sessions (the daemon's jobs all lease from one pool), so its
  // footprint is process-level state, and pinning keeps these static refs
  // safe — they must never bind a session registry that can die first.
  // Per-session pool accounting goes through bytes_held() accessors.
  static obs::Gauge& g_bytes = obs::MetricsRegistry::global().gauge("pool.bytes_held");
  static obs::Gauge& g_hits = obs::MetricsRegistry::global().gauge("pool.reuse_hits");
  g_bytes.set(static_cast<double>(bytes_held));
  g_hits.set(static_cast<double>(reuse_hits));
  // Bytes parked on the free list are the pool's own footprint (leased bytes
  // are attributed to the acquiring subsystem above).
  obs::mem_set_current("pool", bytes_held);
}

}  // namespace metaprep::util
