#include "util/buffer_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace metaprep::util {

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

template <typename T>
std::vector<T> BufferPool::acquire_from(std::vector<std::vector<T>>& list, std::size_t n) {
  // Best fit: smallest capacity that still holds n, so one oversized buffer
  // is not burned on a tiny request.
  std::size_t best = list.size();
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].capacity() < n) continue;
    if (best == list.size() || list[i].capacity() < list[best].capacity()) best = i;
  }
  if (best == list.size()) return std::vector<T>(n);  // miss: fresh allocation
  std::vector<T> out = std::move(list[best]);
  list[best] = std::move(list.back());
  list.pop_back();
  bytes_held_ -= out.capacity() * sizeof(T);
  ++reuse_hits_;
  publish_gauges_locked();
  out.resize(n);
  return out;
}

template <typename T>
void BufferPool::release_into(std::vector<std::vector<T>>& list, std::vector<T>&& v) {
  if (v.capacity() == 0) return;
  bytes_held_ += v.capacity() * sizeof(T);
  list.push_back(std::move(v));
  publish_gauges_locked();
}

std::vector<std::uint64_t> BufferPool::acquire_u64(std::size_t n) {
  std::lock_guard lock(mutex_);
  return acquire_from(free64_, n);
}

std::vector<std::uint32_t> BufferPool::acquire_u32(std::size_t n) {
  std::lock_guard lock(mutex_);
  return acquire_from(free32_, n);
}

void BufferPool::release(std::vector<std::uint64_t>&& v) {
  std::lock_guard lock(mutex_);
  release_into(free64_, std::move(v));
}

void BufferPool::release(std::vector<std::uint32_t>&& v) {
  std::lock_guard lock(mutex_);
  release_into(free32_, std::move(v));
}

std::uint64_t BufferPool::bytes_held() const {
  std::lock_guard lock(mutex_);
  return bytes_held_;
}

std::uint64_t BufferPool::reuse_hits() const {
  std::lock_guard lock(mutex_);
  return reuse_hits_;
}

std::size_t BufferPool::buffers_held() const {
  std::lock_guard lock(mutex_);
  return free64_.size() + free32_.size();
}

void BufferPool::trim() {
  std::lock_guard lock(mutex_);
  free64_.clear();
  free32_.clear();
  bytes_held_ = 0;
  publish_gauges_locked();
}

void BufferPool::publish_gauges_locked() const {
  static obs::Gauge& g_bytes = obs::metrics().gauge("pool.bytes_held");
  static obs::Gauge& g_hits = obs::metrics().gauge("pool.reuse_hits");
  g_bytes.set(static_cast<double>(bytes_held_));
  g_hits.set(static_cast<double>(reuse_hits_));
}

}  // namespace metaprep::util
