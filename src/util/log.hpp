// Leveled stderr logging.  Quiet by default so bench output stays clean;
// set METAPREP_LOG=debug|info|warn|error or call set_level().
#pragma once

#include <sstream>
#include <string>

namespace metaprep::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single log line if @p level passes the current threshold.
void log_line(LogLevel level, const std::string& message);

}  // namespace metaprep::util

#define METAPREP_LOG(level, expr)                                        \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::metaprep::util::log_level())) {               \
      std::ostringstream metaprep_log_os;                                \
      metaprep_log_os << expr;                                           \
      ::metaprep::util::log_line(level, metaprep_log_os.str());          \
    }                                                                    \
  } while (0)

#define LOG_DEBUG(expr) METAPREP_LOG(::metaprep::util::LogLevel::kDebug, expr)
#define LOG_INFO(expr) METAPREP_LOG(::metaprep::util::LogLevel::kInfo, expr)
#define LOG_WARN(expr) METAPREP_LOG(::metaprep::util::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) METAPREP_LOG(::metaprep::util::LogLevel::kError, expr)
