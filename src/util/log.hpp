// Leveled stderr logging.  Quiet by default so bench output stays clean;
// set METAPREP_LOG=debug|info|warn|error or call set_level().
#pragma once

#include <sstream>
#include <string>

namespace metaprep::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Per-thread override of the process-wide level, used by pipeline sessions
/// so concurrent jobs can log at different verbosities.  Pass -1 to inherit
/// the process level (set_log_level / METAPREP_LOG), or the integer value of
/// a LogLevel to pin this thread.  Returns the previous override so callers
/// can restore it.  Precedence: thread override > set_log_level >
/// METAPREP_LOG environment variable (read once as the initial level).
int exchange_thread_log_level(int level) noexcept;

/// The calling thread's override, -1 when inheriting the process level.
[[nodiscard]] int thread_log_level_override() noexcept;

/// Emit a single log line if @p level passes the current threshold.
void log_line(LogLevel level, const std::string& message);

}  // namespace metaprep::util

#define METAPREP_LOG(level, expr)                                        \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::metaprep::util::log_level())) {               \
      std::ostringstream metaprep_log_os;                                \
      metaprep_log_os << expr;                                           \
      ::metaprep::util::log_line(level, metaprep_log_os.str());          \
    }                                                                    \
  } while (0)

#define LOG_DEBUG(expr) METAPREP_LOG(::metaprep::util::LogLevel::kDebug, expr)
#define LOG_INFO(expr) METAPREP_LOG(::metaprep::util::LogLevel::kInfo, expr)
#define LOG_WARN(expr) METAPREP_LOG(::metaprep::util::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) METAPREP_LOG(::metaprep::util::LogLevel::kError, expr)
