#include "util/timer.hpp"

#include <algorithm>
#include <cmath>

namespace metaprep::util {

namespace {
// Linear-interpolated quantile on a sorted sample (type-7, the common
// spreadsheet/NumPy default), adequate for box plots over 16 rank timings.
double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}
}  // namespace

BoxStats box_stats(std::vector<double> samples) {
  BoxStats b;
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  b.min = samples.front();
  b.max = samples.back();
  b.q1 = quantile_sorted(samples, 0.25);
  b.median = quantile_sorted(samples, 0.5);
  b.q3 = quantile_sorted(samples, 0.75);
  return b;
}

}  // namespace metaprep::util
