// Wall-clock timing and per-step time accounting.
//
// The METAPREP evaluation reports stacked per-step execution times
// (KmerGen-I/O, KmerGen, KmerGen-Comm, LocalSort, LocalCC-Opt, Merge-Comm,
// MergeCC, CC-I/O).  StepTimes accumulates named durations across passes and
// ranks so the bench harness can print the same rows as the paper's figures.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace metaprep::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named step durations.  Keys follow the paper's step names.
class StepTimes {
 public:
  void add(const std::string& step, double seconds) { times_[step] += seconds; }

  /// Merge another accumulator into this one (summing shared keys).
  void merge(const StepTimes& other) {
    for (const auto& [k, v] : other.times_) times_[k] += v;
  }

  /// Keep, per key, the maximum of the two values.  Used to combine per-rank
  /// timings into a critical-path estimate (slowest rank determines the
  /// step's wall time when ranks run concurrently).
  void merge_max(const StepTimes& other) {
    for (const auto& [k, v] : other.times_) {
      auto it = times_.find(k);
      if (it == times_.end() || it->second < v) times_[k] = v;
    }
  }

  [[nodiscard]] double get(const std::string& step) const {
    auto it = times_.find(step);
    return it == times_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [k, v] : times_) t += v;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& map() const { return times_; }

  void clear() { times_.clear(); }

 private:
  std::map<std::string, double> times_;
};

/// RAII helper: adds elapsed time to a StepTimes entry on destruction.
class ScopedStepTimer {
 public:
  ScopedStepTimer(StepTimes& sink, std::string step)
      : sink_(sink), step_(std::move(step)) {}
  ScopedStepTimer(const ScopedStepTimer&) = delete;
  ScopedStepTimer& operator=(const ScopedStepTimer&) = delete;
  ~ScopedStepTimer() { sink_.add(step_, timer_.seconds()); }

 private:
  StepTimes& sink_;
  std::string step_;
  WallTimer timer_;
};

/// Five-number summary used by the load-balance experiment (Figure 8).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};

/// Compute box-plot statistics over a sample (sorted internally).
BoxStats box_stats(std::vector<double> samples);

}  // namespace metaprep::util
