// Deterministic pseudo-random number generation for simulators and tests.
//
// We deliberately avoid std::mt19937 / std::uniform_int_distribution in the
// data simulators: their output is not guaranteed to be identical across
// standard library implementations, and dataset determinism is part of the
// reproduction contract (every bench regenerates byte-identical input from a
// seed). SplitMix64 is used for seeding, xoshiro256** for bulk generation.
#pragma once

#include <array>
#include <cstdint>

namespace metaprep::util {

/// SplitMix64: tiny, statistically solid generator used to expand a single
/// 64-bit seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply keeps the mapping unbiased enough for simulation use.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box-Muller on two uniforms (polar-free variant is
  /// not needed; this is used only for abundance profiles).
  double next_gaussian() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

}  // namespace metaprep::util
