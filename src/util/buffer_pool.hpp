// BufferPool: process-wide recycling of the large tuple-sized arrays.
//
// Every METAPREP pass allocates the same shapes over and over — per-pass
// keys/keys_hi/vals arrays, send blocks, radix scratch — and in the
// pipelined (overlap) schedule two passes' buffers are alive at once, so
// freeing and reallocating them each pass costs page faults and zero-fill
// on exactly the hottest boundary.  The pool keeps released vectors on a
// free list and hands the largest fitting one back on the next acquire:
// storage stays paged-in and warm across passes and across Worlds.
//
// Ownership is move-based: acquire() transfers a vector to the caller,
// release() transfers it back.  Nothing in the pool aliases caller memory,
// so a leased buffer may be handed to mpsim::Comm::isend and released as
// soon as the post returns (the mailbox owns the in-flight copy; see
// DESIGN.md "Buffer-pool ownership").
//
// Observability: the pool mirrors its state into the obs gauges
// `pool.bytes_held` (bytes sitting on the free lists right now) and
// `pool.reuse_hits` (acquires served from the free list since process
// start); both are also readable directly via bytes_held()/reuse_hits()
// when the metrics registry is disabled.
//
// Checked mode (check::enabled()): every acquire registers a
// generation-stamped lease keyed by the buffer's data pointer, and every
// release must match a live lease.  Releasing an empty/moved-from vector is
// flagged as a double release, releasing storage the pool never leased as a
// foreign release.  Released buffers are filled with a poison pattern and
// re-scanned on the next acquire, so a caller that kept a dangling span and
// wrote through it is caught as use-after-return at the reuse point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace metaprep::util {

class BufferPool {
 public:
  /// The process-wide pool used by the pipeline's overlap schedule.
  static BufferPool& global();

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Acquire a vector with size() == n.  Element values are unspecified
  /// (recycled buffers keep stale contents); callers overwrite every slot —
  /// the pipeline's precomputed-offset writes already guarantee that.
  [[nodiscard]] std::vector<std::uint64_t> acquire_u64(std::size_t n);
  [[nodiscard]] std::vector<std::uint32_t> acquire_u32(std::size_t n);

  /// Return a buffer to the free list.  The vector is left empty.
  void release(std::vector<std::uint64_t>&& v);
  void release(std::vector<std::uint32_t>&& v);

  /// Bytes of capacity currently sitting on the free lists.
  [[nodiscard]] std::uint64_t bytes_held() const;
  /// Acquires served by recycling (free-list capacity >= requested size).
  [[nodiscard]] std::uint64_t reuse_hits() const;
  /// Buffers currently on the free lists.
  [[nodiscard]] std::size_t buffers_held() const;
  /// Live (acquired, not yet released) leases.  Only tracked while
  /// check::enabled(); the cancelled-run tests assert this drains to zero.
  [[nodiscard]] std::size_t outstanding_leases() const;

  /// Drop every held buffer (bytes_held returns to 0; hits are kept).
  void trim();

  /// This pool's capability, for lock-order declarations in other layers
  /// (see util/sync.hpp).
  [[nodiscard]] Mutex& mu() const RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  /// Free-list entry; `poisoned` records whether checked-mode release filled
  /// the storage with the poison pattern (a buffer released while checking
  /// was off must not be poison-scanned on reuse).
  template <typename T>
  struct FreeEntry {
    std::vector<T> buf;
    bool poisoned = false;
  };
  /// Live leases in checked mode: buffer data pointer -> generation stamp.
  using LeaseMap = std::map<const void*, std::uint64_t>;

  template <typename T>
  std::vector<T> acquire_from(std::vector<FreeEntry<T>>& list, LeaseMap& leases,
                              std::size_t n, T poison, bool* reused) REQUIRES(mutex_);
  template <typename T>
  void release_into(std::vector<FreeEntry<T>>& list, LeaseMap& leases,
                    std::vector<T>&& v, T poison) REQUIRES(mutex_);
  /// Mirror a pool-state snapshot into the obs gauges and the "pool" memory
  /// row.  Called with mutex_ released: the pool lock is a leaf in the
  /// declared order and must never be held across a registry lock.
  void publish_gauges(std::uint64_t bytes_held, std::uint64_t reuse_hits) const
      EXCLUDES(mutex_);

  /// Leaf lock in the declared global order (see util/sync.hpp): acquired
  /// after the JobQueue and session-registry mutexes — the globals below
  /// stand in for every registry instance — and nothing is taken under it.
  mutable Mutex mutex_ ACQUIRED_AFTER(obs::TraceSession::global().mu(),
                                      obs::MetricsRegistry::global().mu(),
                                      obs::MemRegistry::global().mu());
  std::vector<FreeEntry<std::uint64_t>> free64_ GUARDED_BY(mutex_);
  std::vector<FreeEntry<std::uint32_t>> free32_ GUARDED_BY(mutex_);
  LeaseMap leases64_ GUARDED_BY(mutex_);
  LeaseMap leases32_ GUARDED_BY(mutex_);
  std::uint64_t next_generation_ GUARDED_BY(mutex_) = 1;
  std::uint64_t bytes_held_ GUARDED_BY(mutex_) = 0;
  std::uint64_t reuse_hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace metaprep::util
