#include "util/table.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/env.hpp"

namespace metaprep::util {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string program_name() {
  std::FILE* f = std::fopen("/proc/self/comm", "r");
  if (f == nullptr) return "table";
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string name(buf, n);
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) name.pop_back();
  return name.empty() ? "table" : name;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TablePrinter::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    auto padded = row;
    padded.resize(headers_.size());
    emit(padded);
  }
  return os.str();
}

void TablePrinter::print() const {
  std::fputs(str().c_str(), stdout);
  const char* dir = env_string("METAPREP_TABLE_CSV_DIR", nullptr);
  if (dir == nullptr) return;
  static std::atomic<int> counter{0};
  const std::string path = std::string(dir) + "/" + program_name() + "_" +
                           std::to_string(counter.fetch_add(1)) + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // export is best-effort
  const std::string data = csv();
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
}

}  // namespace metaprep::util
