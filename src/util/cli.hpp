// Minimal command-line parsing for the examples and bench binaries.
// Accepts "--name=value" and "--flag" forms; everything else is positional.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/env.hpp"  // env_double and friends moved to the blessed env layer

namespace metaprep::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace metaprep::util
