// Cooperative cancellation for pipeline sessions.
//
// A CancelToken is a single atomic flag shared between a controller (the
// daemon's cancel handler, a test) and the workers executing a run.  The
// pipeline polls it at pass and chunk boundaries — never mid-kernel — so a
// cancel costs one relaxed load per poll and takes effect at the next
// boundary, unwinding via util::cancelled_error().  The throw on one rank
// poisons the mpsim World, which unblocks the remaining ranks with comm
// errors; World::run then rethrows the cancellation as the first exception.
#pragma once

#include <atomic>

#include "util/error.hpp"

namespace metaprep::util {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation.  Idempotent; safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Re-arm a token for reuse across runs.  Quiescent use only.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Boundary poll: throws util::cancelled_error when cancellation was
  /// requested, else returns.  @p where names the boundary for the error.
  void throw_if_cancelled(const char* where) const {
    if (cancelled()) throw cancelled_error(std::string("cancelled at ") + where);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Boundary poll through a possibly-null token pointer (the pipeline's
/// config carries `const CancelToken*`, null when nobody can cancel).
inline void throw_if_cancelled(const CancelToken* token, const char* where) {
  if (token != nullptr) token->throw_if_cancelled(where);
}

}  // namespace metaprep::util
