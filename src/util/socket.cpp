#include "util/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace metaprep::util {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw io_error("unix socket path too long", path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketConn::SocketConn(SocketConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), pending_(std::move(other.pending_)) {}

SocketConn& SocketConn::operator=(SocketConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

SocketConn::~SocketConn() { close(); }

void SocketConn::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

void SocketConn::send_line(const std::string& line) {
  if (fd_ < 0) throw io_error("send_line on closed socket");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error("socket send failed", {}, Error::kNoOffset, errno,
                     /*transient=*/errno == EAGAIN);
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool SocketConn::recv_line(std::string& line) {
  if (fd_ < 0) throw io_error("recv_line on closed socket");
  for (;;) {
    const std::size_t nl = pending_.find('\n');
    if (nl != std::string::npos) {
      line.assign(pending_, 0, nl);
      pending_.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error("socket recv failed", {}, Error::kNoOffset, errno);
    }
    if (n == 0) {
      if (pending_.empty()) return false;
      throw io_error("socket closed mid-line");
    }
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw io_error("socket() failed", path_, Error::kNoOffset, errno);
  sockaddr_un addr = make_addr(path_);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    // A stale socket file from a dead daemon is the one case worth healing:
    // if nothing answers a connect, unlink and retry the bind once.
    if (errno == EADDRINUSE) {
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (!live && ::unlink(path_.c_str()) == 0 &&
          ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        // healed; fall through to listen
      } else {
        const int saved = live ? EADDRINUSE : errno;
        ::close(fd_);
        fd_ = -1;
        throw io_error(live ? "daemon already listening" : "bind() failed", path_,
                       Error::kNoOffset, saved);
      }
    } else {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      throw io_error("bind() failed", path_, Error::kNoOffset, saved);
    }
  }
  if (::listen(fd_, 16) != 0) {
    const int saved = errno;
    close();
    throw io_error("listen() failed", path_, Error::kNoOffset, saved);
  }
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

SocketConn UnixListener::accept() {
  if (fd_ < 0) throw io_error("accept on closed listener", path_);
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return SocketConn(conn);
    if (errno == EINTR) continue;
    throw io_error("accept() failed", path_, Error::kNoOffset, errno);
  }
}

SocketConn connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw io_error("socket() failed", path, Error::kNoOffset, errno);
  sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw io_error("connect() failed (is metaprepd running?)", path,
                   Error::kNoOffset, saved);
  }
  return SocketConn(fd);
}

}  // namespace metaprep::util
