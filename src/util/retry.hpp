// Retry-with-backoff for transient failures.
//
// The I/O and comm layers mark recoverable failures (EINTR, injected faults,
// dropped mpsim messages) as transient util::Error; with_retries re-runs the
// operation with exponential backoff and rethrows everything else — so a
// Lustre hiccup costs a few retries instead of the whole multi-hour run.
#pragma once

#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace metaprep::util {

struct RetryPolicy {
  int max_attempts = 5;  ///< total attempts (first try included)
  std::chrono::microseconds initial_backoff{50};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};  ///< cap keeps worst case bounded
};

/// Runs fn(); on a transient util::Error, invokes on_retry(attempt, error),
/// sleeps the current backoff, and tries again, up to policy.max_attempts.
/// Non-transient errors, other exception types, and exhaustion propagate to
/// the caller unchanged.
template <typename Fn, typename OnRetry>
auto with_retries(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error& e) {
      if (!e.transient() || attempt >= policy.max_attempts) throw;
      on_retry(attempt, e);
      std::this_thread::sleep_for(backoff);
      const auto next =
          std::chrono::microseconds(static_cast<std::chrono::microseconds::rep>(
              static_cast<double>(backoff.count()) * policy.backoff_multiplier));
      backoff = next < policy.max_backoff ? next : policy.max_backoff;
    }
  }
}

template <typename Fn>
auto with_retries(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  return with_retries(policy, std::forward<Fn>(fn), [](int, const Error&) {});
}

}  // namespace metaprep::util
