// Process memory probes (Linux).  Table 3 reports memory per node vs the
// number of I/O passes; benches combine the analytic model (core/memory_model)
// with these measured values.
#pragma once

#include <cstdint>

namespace metaprep::util {

/// Peak resident set size of the current process in bytes (VmHWM), or 0 when
/// /proc is unavailable.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), or 0 when unavailable.
std::uint64_t current_rss_bytes();

}  // namespace metaprep::util
