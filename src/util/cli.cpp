#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace metaprep::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        named_[arg.substr(2)] = "1";
      } else {
        named_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Args::has(const std::string& name) const { return named_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(const std::string& name, double fallback) const {
  auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return std::stod(it->second);
}

}  // namespace metaprep::util
