// Happens-before / deadlock checker for a message-passing substrate.
//
// The checker is substrate-agnostic: ranks and tags are plain ints, and the
// owner (mpsim::World) feeds it events — send, recv, irecv post, wait,
// barrier — plus "I am blocked on X" state transitions.  From those it
// maintains
//  * a vector clock per rank (ticked on send/recv, joined on recv and
//    barrier) so every blocked-op trace carries a causal timestamp,
//  * per-(src, dst, tag) send/recv sequence numbers, verifying the mailbox
//    FIFO contract on every delivery,
//  * per-(rank, src, tag) irecv posting/wait counters, flagging receives
//    completed out of posting order (the bug where wait_all order drift
//    lands payloads in the wrong buffers),
//  * a wait-for graph over blocked ranks, probed periodically by blocked
//    ranks; a cycle is reported as a structured deadlock (every blocked
//    rank's operation, peer, tag, clock) instead of hanging the test suite.
//
// Immediate-fatal violations (double wait, recv reorder, FIFO breach,
// deadlock) throw CheckError at the offending call; end-of-world violations
// (unmatched sends, unwaited requests) are accumulated and thrown by the
// owner after all ranks have finished.
//
// All methods are thread-safe (one internal mutex); the checker is only
// instantiated when check::enabled(), so the production fast path never
// touches it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "check/check.hpp"
#include "util/sync.hpp"

namespace metaprep::check {

class ProtocolChecker {
 public:
  explicit ProtocolChecker(int num_ranks);

  /// Clear all state for a fresh run (the owner reuses one checker per
  /// World, and a World may host several run() invocations).
  void reset();

  // --- messaging events -----------------------------------------------
  /// A message (src -> dst, tag) entered the destination mailbox.  Returns
  /// the per-(src, dst, tag) send sequence number the owner must stamp on
  /// the message so on_recv can verify FIFO delivery.
  std::uint64_t on_send(int src, int dst, int tag, std::size_t bytes);

  /// A message was taken from the mailbox.  Joins the sender's clock into
  /// the receiver's and verifies @p seq is the next expected for the
  /// (src, dst, tag) stream; throws CheckError(kRecvReorder) otherwise.
  void on_recv(int src, int dst, int tag, std::uint64_t seq);

  /// An irecv was posted; returns its posting index for on_wait_recv.
  std::uint64_t on_post_recv(int rank, int src, int tag);

  /// A pending receive completed in wait.  Throws CheckError(kRecvReorder)
  /// when an earlier-posted irecv for the same (src, tag) is still pending.
  void on_wait_recv(int rank, int src, int tag, std::uint64_t post_seq);

  /// wait() was invoked on a request that already completed a wait.
  [[noreturn]] void on_double_wait(int rank, int peer, int tag, const char* kind);

  // --- blocking state / deadlock detection ----------------------------
  void block_recv(int rank, int src, int tag, const char* op);
  void block_barrier(int rank);
  void unblock(int rank);

  /// Arrival at the barrier: accumulates the rank's clock into the phase
  /// join; the P-th arrival folds the joined clock into every rank.
  void on_barrier_arrive(int rank);

  /// Probe the wait-for graph.  @p mailbox_has(dst, src, tag) must return
  /// true when dst's mailbox already holds a (src, tag) message (such a
  /// blocked rank is about to wake and contributes no edge) — conservative
  /// "true" is always safe.  Throws CheckError(kDeadlock) with the full
  /// per-rank blocked-op trace when a cycle of blocked ranks exists.
  void detect_deadlock(const std::function<bool(int, int, int)>& mailbox_has);

  // --- end-of-world accounting ----------------------------------------
  /// Owner reports a message still sitting in a mailbox after all ranks
  /// returned.
  void note_unmatched_send(int src, int dst, int tag, std::uint64_t count,
                           std::uint64_t bytes);

  /// Appends kUnwaitedRequest violations for outstanding irecvs, then
  /// returns the accumulated deferred report (clearing it).
  [[nodiscard]] CheckReport take_final_report();

  /// The rank's own Lamport component (diagnostics / tests).
  [[nodiscard]] std::uint64_t clock(int rank) const;

 private:
  struct Blocked {
    bool active = false;
    bool barrier = false;
    int peer = -1;
    int tag = 0;
    std::string op;
  };

  using Key = std::tuple<int, int, int>;  // (src, dst, tag)

  [[nodiscard]] BlockedOp blocked_trace_locked(int rank) const REQUIRES(mutex_);

  int num_ranks_;
  mutable util::Mutex mutex_;
  std::vector<std::vector<std::uint64_t>> vc_ GUARDED_BY(mutex_);  ///< vc_[rank][comp]
  std::map<Key, std::uint64_t> send_seq_ GUARDED_BY(mutex_);
  std::map<Key, std::uint64_t> recv_seq_ GUARDED_BY(mutex_);
  std::map<Key, std::deque<std::vector<std::uint64_t>>> msg_clocks_ GUARDED_BY(mutex_);
  std::map<Key, std::uint64_t> post_seq_ GUARDED_BY(mutex_);  ///< (rank, src, tag)
  std::map<Key, std::uint64_t> wait_seq_ GUARDED_BY(mutex_);  ///< (rank, src, tag)
  std::vector<std::uint64_t> outstanding_recv_ GUARDED_BY(mutex_);  ///< per rank
  std::vector<Blocked> blocked_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> barrier_join_ GUARDED_BY(mutex_);
  int barrier_arrivals_ GUARDED_BY(mutex_) = 0;
  CheckReport deferred_ GUARDED_BY(mutex_);
};

/// Validates the P+1-entry block-offset contract of the staged all-to-all:
/// offsets must be monotone non-decreasing (blocks must not overlap).
/// Throws CheckError(kOffsetOverlap) naming the rank and first bad index.
void validate_block_offsets(std::span<const std::uint64_t> offsets, int rank,
                            const char* which);

}  // namespace metaprep::check
