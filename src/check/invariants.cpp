#include "check/invariants.hpp"

#include <sstream>
#include <vector>

namespace metaprep::check {

namespace {

[[noreturn]] void throw_one(Violation v) {
  CheckReport report;
  report.violations.push_back(std::move(v));
  throw CheckError(std::move(report));
}

}  // namespace

void verify_parent_forest(std::span<const std::uint32_t> parents, const char* what) {
  const std::uint32_t n = static_cast<std::uint32_t>(parents.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (parents[i] < n) continue;
    Violation v;
    v.kind = ViolationKind::kDsuBounds;
    v.detail_a = i;
    v.detail_b = parents[i];
    std::ostringstream msg;
    msg << what << ": parent[" << i << "] = " << parents[i] << " out of [0, " << n << ")";
    v.message = msg.str();
    throw_one(std::move(v));
  }
  // Stamp-based cycle check: walk each node's parent chain once; chains that
  // hit an already-stamped node stop (either a known-good path or a known
  // root).  A chain that revisits its own stamp is a cycle.  O(n) total.
  std::vector<std::uint32_t> stamp(parents.size(), 0);
  std::uint32_t epoch = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stamp[i] != 0) continue;
    ++epoch;
    std::uint32_t x = i;
    while (stamp[x] == 0 && parents[x] != x) {
      stamp[x] = epoch;
      x = parents[x];
    }
    if (stamp[x] == epoch && parents[x] != x) {
      Violation v;
      v.kind = ViolationKind::kDsuCycle;
      v.detail_a = x;
      v.detail_b = parents[x];
      std::ostringstream msg;
      msg << what << ": parent pointers cycle through node " << x << " (parent "
          << parents[x] << "): not a forest";
      v.message = msg.str();
      throw_one(std::move(v));
    }
    // Re-stamp the walked chain as settled (epoch stays; nothing to do —
    // any later chain entering it terminates at the first stamped node).
  }
}

void verify_size_conservation(std::uint64_t observed, std::uint64_t expected,
                              const char* what) {
  if (observed == expected) return;
  Violation v;
  v.kind = ViolationKind::kSizeConservation;
  v.detail_a = observed;
  v.detail_b = expected;
  std::ostringstream msg;
  msg << what << ": observed total " << observed << " != expected " << expected;
  v.message = msg.str();
  throw_one(std::move(v));
}

}  // namespace metaprep::check
