// Structural invariants for the pipeline's hot data structures.
//
// These are the checks that TSan and asserts cannot express: a Union-Find
// parent array that is a valid forest (every pointer in bounds, no cycles —
// the property union-by-index is supposed to guarantee even under races),
// and conservation laws ("the component sizes after the rank-0 flatten sum
// to exactly R reads").  All functions throw CheckError with a structured
// Violation naming the offending node/value; callers gate on
// check::enabled() so the production path never pays for the scans.
#pragma once

#include <cstdint>
#include <span>

#include "check/check.hpp"

namespace metaprep::check {

/// Verify @p parents is a valid parent-pointer forest: every entry is a
/// valid index (else kDsuBounds, detail_a = node, detail_b = parent) and
/// following parent pointers from any node reaches a root (else kDsuCycle,
/// detail_a = a node on the cycle).  O(n) via visit stamping.  @p what
/// names the structure in the report (e.g. "MergeCC merged forest").
void verify_parent_forest(std::span<const std::uint32_t> parents, const char* what);

/// Verify a conservation law: @p observed == @p expected (else
/// kSizeConservation with both values in detail_a/detail_b).  @p what names
/// the quantity (e.g. "component sizes after flatten").
void verify_size_conservation(std::uint64_t observed, std::uint64_t expected,
                              const char* what);

}  // namespace metaprep::check
