#include "check/check.hpp"

#include <sstream>

#include "util/env.hpp"

namespace metaprep::check {

namespace {

#if METAPREP_CHECKED
bool env_enabled() {
  static const bool value = util::env_bool("METAPREP_CHECK");
  return value;
}
#endif

std::atomic<int>& force_count() noexcept {
  static std::atomic<int> count{0};
  return count;
}

// Per-thread tri-state override (-1 inherit, 0 off, 1 on); see check.hpp.
thread_local int tls_override = -1;

}  // namespace

#if METAPREP_CHECKED
bool enabled() noexcept {
  const int o = tls_override;
  if (o >= 0) return o != 0;
  return force_count().load(std::memory_order_relaxed) > 0 || env_enabled();
}
#endif

int exchange_thread_override(int value) noexcept {
  const int prev = tls_override;
  tls_override = value < 0 ? -1 : (value != 0 ? 1 : 0);
  return prev;
}

int thread_override() noexcept { return tls_override; }

void force_enable() noexcept { force_count().fetch_add(1, std::memory_order_relaxed); }
void force_disable() noexcept { force_count().fetch_sub(1, std::memory_order_relaxed); }

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kUnmatchedSend: return "unmatched-send";
    case ViolationKind::kUnwaitedRequest: return "unwaited-request";
    case ViolationKind::kDoubleWait: return "double-wait";
    case ViolationKind::kRecvReorder: return "recv-reorder";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kOffsetOverlap: return "offset-overlap";
    case ViolationKind::kDoubleRelease: return "double-release";
    case ViolationKind::kForeignRelease: return "foreign-release";
    case ViolationKind::kUseAfterReturn: return "use-after-return";
    case ViolationKind::kDsuCycle: return "dsu-cycle";
    case ViolationKind::kDsuBounds: return "dsu-bounds";
    case ViolationKind::kSizeConservation: return "size-conservation";
  }
  return "unknown";
}

std::size_t CheckReport::count(ViolationKind kind) const noexcept {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

const Violation* CheckReport::first(ViolationKind kind) const noexcept {
  for (const Violation& v : violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

std::string CheckReport::to_string() const {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << "check: " << check::to_string(v.kind) << ": " << v.message << '\n';
    for (const BlockedOp& b : v.blocked) {
      out << "  rank " << b.rank << " blocked in " << b.op;
      if (b.peer >= 0) out << " on rank " << b.peer << " tag " << b.tag;
      out << " (clock " << b.clock << ")\n";
    }
  }
  return out.str();
}

CheckError::CheckError(CheckReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

}  // namespace metaprep::check
