#include "check/protocol.hpp"

#include <algorithm>
#include <sstream>

namespace metaprep::check {

namespace {

[[noreturn]] void throw_one(Violation v) {
  CheckReport report;
  report.violations.push_back(std::move(v));
  throw CheckError(std::move(report));
}

}  // namespace

ProtocolChecker::ProtocolChecker(int num_ranks) : num_ranks_(num_ranks) { reset(); }

void ProtocolChecker::reset() {
  util::MutexLock lock(mutex_);
  vc_.assign(static_cast<std::size_t>(num_ranks_),
             std::vector<std::uint64_t>(static_cast<std::size_t>(num_ranks_), 0));
  send_seq_.clear();
  recv_seq_.clear();
  msg_clocks_.clear();
  post_seq_.clear();
  wait_seq_.clear();
  outstanding_recv_.assign(static_cast<std::size_t>(num_ranks_), 0);
  blocked_.assign(static_cast<std::size_t>(num_ranks_), Blocked{});
  barrier_join_.assign(static_cast<std::size_t>(num_ranks_), 0);
  barrier_arrivals_ = 0;
  deferred_ = CheckReport{};
}

std::uint64_t ProtocolChecker::on_send(int src, int dst, int tag, std::size_t bytes) {
  (void)bytes;
  util::MutexLock lock(mutex_);
  auto& my_vc = vc_[static_cast<std::size_t>(src)];
  ++my_vc[static_cast<std::size_t>(src)];
  const Key key{src, dst, tag};
  msg_clocks_[key].push_back(my_vc);
  return send_seq_[key]++;
}

void ProtocolChecker::on_recv(int src, int dst, int tag, std::uint64_t seq) {
  util::MutexLock lock(mutex_);
  const Key key{src, dst, tag};
  const std::uint64_t expected = recv_seq_[key]++;
  auto& my_vc = vc_[static_cast<std::size_t>(dst)];
  auto it = msg_clocks_.find(key);
  if (it != msg_clocks_.end() && !it->second.empty()) {
    const auto& snap = it->second.front();
    for (std::size_t i = 0; i < my_vc.size(); ++i) my_vc[i] = std::max(my_vc[i], snap[i]);
    it->second.pop_front();
  }
  ++my_vc[static_cast<std::size_t>(dst)];
  if (seq != expected) {
    Violation v;
    v.kind = ViolationKind::kRecvReorder;
    v.src = src;
    v.dst = dst;
    v.tag = tag;
    v.detail_a = expected;
    v.detail_b = seq;
    std::ostringstream msg;
    msg << "mailbox FIFO breach on (src " << src << " -> dst " << dst << ", tag " << tag
        << "): delivered send #" << seq << ", expected #" << expected;
    v.message = msg.str();
    v.ranks = {src, dst};
    throw_one(std::move(v));
  }
}

std::uint64_t ProtocolChecker::on_post_recv(int rank, int src, int tag) {
  util::MutexLock lock(mutex_);
  ++outstanding_recv_[static_cast<std::size_t>(rank)];
  return post_seq_[Key{rank, src, tag}]++;
}

void ProtocolChecker::on_wait_recv(int rank, int src, int tag, std::uint64_t post_seq) {
  util::MutexLock lock(mutex_);
  if (outstanding_recv_[static_cast<std::size_t>(rank)] > 0) {
    --outstanding_recv_[static_cast<std::size_t>(rank)];
  }
  const Key key{rank, src, tag};
  const std::uint64_t expected = wait_seq_[key]++;
  if (post_seq != expected) {
    Violation v;
    v.kind = ViolationKind::kRecvReorder;
    v.src = src;
    v.dst = rank;
    v.tag = tag;
    v.detail_a = expected;
    v.detail_b = post_seq;
    std::ostringstream msg;
    msg << "rank " << rank << " completed irecv #" << post_seq << " from src " << src
        << " tag " << tag << " before irecv #" << expected
        << " posted earlier for the same (src, tag)";
    v.message = msg.str();
    v.ranks = {rank, src};
    throw_one(std::move(v));
  }
}

void ProtocolChecker::on_double_wait(int rank, int peer, int tag, const char* kind) {
  Violation v;
  v.kind = ViolationKind::kDoubleWait;
  v.dst = rank;
  v.src = peer;
  v.tag = tag;
  std::ostringstream msg;
  msg << "rank " << rank << " waited twice on the same " << kind << " request (peer "
      << peer << ", tag " << tag << ")";
  v.message = msg.str();
  v.ranks = {rank};
  throw_one(std::move(v));
}

void ProtocolChecker::block_recv(int rank, int src, int tag, const char* op) {
  util::MutexLock lock(mutex_);
  Blocked& b = blocked_[static_cast<std::size_t>(rank)];
  b.active = true;
  b.barrier = false;
  b.peer = src;
  b.tag = tag;
  b.op = op;
}

void ProtocolChecker::block_barrier(int rank) {
  util::MutexLock lock(mutex_);
  Blocked& b = blocked_[static_cast<std::size_t>(rank)];
  b.active = true;
  b.barrier = true;
  b.peer = -1;
  b.tag = 0;
  b.op = "barrier";
}

void ProtocolChecker::unblock(int rank) {
  util::MutexLock lock(mutex_);
  blocked_[static_cast<std::size_t>(rank)].active = false;
}

void ProtocolChecker::on_barrier_arrive(int rank) {
  util::MutexLock lock(mutex_);
  const auto& my_vc = vc_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < barrier_join_.size(); ++i) {
    barrier_join_[i] = std::max(barrier_join_[i], my_vc[i]);
  }
  if (++barrier_arrivals_ == num_ranks_) {
    for (auto& rank_vc : vc_) {
      for (std::size_t i = 0; i < rank_vc.size(); ++i) {
        rank_vc[i] = std::max(rank_vc[i], barrier_join_[i]);
      }
    }
    std::fill(barrier_join_.begin(), barrier_join_.end(), 0);
    barrier_arrivals_ = 0;
  }
}

BlockedOp ProtocolChecker::blocked_trace_locked(int rank) const {
  const Blocked& b = blocked_[static_cast<std::size_t>(rank)];
  BlockedOp op;
  op.rank = rank;
  op.op = b.op;
  op.peer = b.peer;
  op.tag = b.tag;
  op.clock = vc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)];
  return op;
}

void ProtocolChecker::detect_deadlock(
    const std::function<bool(int, int, int)>& mailbox_has) {
  // Snapshot the blocked table, then verify recv edges against the
  // mailboxes *outside* the checker mutex (mailbox_has try-locks; a busy
  // mailbox means its owner is active, so "no edge" is the safe answer on
  // contention — handled by the caller returning true).
  std::vector<Blocked> snap;
  {
    util::MutexLock lock(mutex_);
    snap = blocked_;
  }
  // adj[r] = ranks r is waiting on.  A recv edge only counts while the
  // awaited message is absent; a barrier edge points at every rank that has
  // not (yet) parked in the same barrier.
  std::vector<std::vector<int>> adj(snap.size());
  for (int r = 0; r < num_ranks_; ++r) {
    const Blocked& b = snap[static_cast<std::size_t>(r)];
    if (!b.active) continue;
    if (b.barrier) {
      for (int q = 0; q < num_ranks_; ++q) {
        if (q == r) continue;
        const Blocked& other = snap[static_cast<std::size_t>(q)];
        if (!(other.active && other.barrier)) adj[static_cast<std::size_t>(r)].push_back(q);
      }
    } else if (!mailbox_has(r, b.peer, b.tag)) {
      adj[static_cast<std::size_t>(r)].push_back(b.peer);
    }
  }
  // Cycle search restricted to blocked ranks: an edge into a non-blocked
  // rank can still resolve (that rank is running), so it ends the path.
  std::vector<int> color(snap.size(), 0);  // 0 white, 1 on-stack, 2 done
  std::vector<int> stack;
  std::vector<int> cycle;
  std::function<bool(int)> dfs = [&](int r) {
    if (!snap[static_cast<std::size_t>(r)].active) return false;
    color[static_cast<std::size_t>(r)] = 1;
    stack.push_back(r);
    for (int q : adj[static_cast<std::size_t>(r)]) {
      if (color[static_cast<std::size_t>(q)] == 1) {
        auto it = std::find(stack.begin(), stack.end(), q);
        cycle.assign(it, stack.end());
        return true;
      }
      if (color[static_cast<std::size_t>(q)] == 0 && dfs(q)) return true;
    }
    stack.pop_back();
    color[static_cast<std::size_t>(r)] = 2;
    return false;
  };
  for (int r = 0; r < num_ranks_; ++r) {
    if (color[static_cast<std::size_t>(r)] == 0 && dfs(r)) break;
  }
  if (cycle.empty()) return;

  Violation v;
  v.kind = ViolationKind::kDeadlock;
  v.ranks = cycle;
  {
    util::MutexLock lock(mutex_);
    for (int r = 0; r < num_ranks_; ++r) {
      if (blocked_[static_cast<std::size_t>(r)].active) {
        v.blocked.push_back(blocked_trace_locked(r));
      }
    }
  }
  std::ostringstream msg;
  msg << "cross-rank deadlock: cycle";
  for (int r : cycle) msg << ' ' << r;
  msg << " in the wait-for graph (" << v.blocked.size() << " rank(s) blocked)";
  v.message = msg.str();
  throw_one(std::move(v));
}

void ProtocolChecker::note_unmatched_send(int src, int dst, int tag, std::uint64_t count,
                                          std::uint64_t bytes) {
  util::MutexLock lock(mutex_);
  Violation v;
  v.kind = ViolationKind::kUnmatchedSend;
  v.src = src;
  v.dst = dst;
  v.tag = tag;
  v.count = count;
  v.bytes = bytes;
  std::ostringstream msg;
  msg << count << " message(s), " << bytes << " byte(s) from rank " << src
      << " still queued in rank " << dst << "'s mailbox (tag " << tag
      << ") at end of run: send with no matching recv";
  v.message = msg.str();
  v.ranks = {src, dst};
  deferred_.violations.push_back(std::move(v));
}

CheckReport ProtocolChecker::take_final_report() {
  util::MutexLock lock(mutex_);
  for (int r = 0; r < num_ranks_; ++r) {
    const std::uint64_t n = outstanding_recv_[static_cast<std::size_t>(r)];
    if (n == 0) continue;
    Violation v;
    v.kind = ViolationKind::kUnwaitedRequest;
    v.dst = r;
    v.count = n;
    std::ostringstream msg;
    msg << "rank " << r << " ended the run with " << n
        << " posted irecv request(s) never completed by wait";
    v.message = msg.str();
    v.ranks = {r};
    deferred_.violations.push_back(std::move(v));
  }
  CheckReport out = std::move(deferred_);
  deferred_ = CheckReport{};
  return out;
}

std::uint64_t ProtocolChecker::clock(int rank) const {
  util::MutexLock lock(mutex_);
  return vc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)];
}

void validate_block_offsets(std::span<const std::uint64_t> offsets, int rank,
                            const char* which) {
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] <= offsets[i + 1]) continue;
    Violation v;
    v.kind = ViolationKind::kOffsetOverlap;
    v.dst = rank;
    v.detail_a = i;
    v.detail_b = offsets[i];
    std::ostringstream msg;
    msg << "rank " << rank << ": " << which << " offsets not monotone at index " << i
        << " (" << offsets[i] << " > " << offsets[i + 1]
        << "): send blocks would overlap";
    v.message = msg.str();
    v.ranks = {rank};
    throw_one(std::move(v));
  }
}

}  // namespace metaprep::check
