// Correctness-tooling layer: compile-out-able verification subsystem.
//
// The pipeline's concurrency discipline — mailbox FIFO per (src, tag),
// buffer-pool lease lifetimes, atomic DSU adoption, precomputed all-to-all
// offset geometry — is hand-maintained and only probed by TSan on the
// schedules TSan happens to see.  This layer makes the discipline
// *checkable*: mpsim grows a protocol checker (src/check/protocol.hpp), the
// hot structures grow invariant hooks (dsu::verify_forest, BufferPool lease
// stamps), and every violation is reported as a structured CheckReport
// instead of a hang or a silently wrong answer.
//
// Gating is two-level:
//  * compile time: the METAPREP_CHECKED macro (CMake option of the same
//    name, default ON).  With METAPREP_CHECKED=0 every hook compiles away
//    and the binaries contain zero checker code.
//  * run time: enabled() — true when the METAPREP_CHECK environment
//    variable is "1"/"on"/"true" at process start, or when a test forces it
//    via ScopedCheckEnable.  When disabled at runtime, the per-operation
//    cost is one relaxed atomic load and a branch.
//
// This library is deliberately std-only (it sits *below* util in the link
// order so BufferPool and the DSU can use it without a dependency cycle).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#if !defined(METAPREP_CHECKED)
#define METAPREP_CHECKED 1
#endif

namespace metaprep::check {

/// True when checking was compiled in AND enabled at runtime (env
/// METAPREP_CHECK, or a ScopedCheckEnable in scope).  With
/// METAPREP_CHECKED=0 this is constexpr-false, so every
/// `if (check::enabled())` hook folds away entirely.
#if METAPREP_CHECKED
[[nodiscard]] bool enabled() noexcept;
#else
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
#endif

/// Test/e2e override of the environment gate (reference-counted so nested
/// scopes compose).  Prefer ScopedCheckEnable.
void force_enable() noexcept;
void force_disable() noexcept;

/// Per-thread override of the process-wide gate, used by pipeline sessions
/// to give each concurrent job its own check setting.  Values: -1 inherit
/// (consult force_enable / METAPREP_CHECK as before), 0 force-off, 1
/// force-on — for the calling thread and any worker that installs the same
/// override.  Returns the previous value so callers can restore it (RAII in
/// util::SessionContext).  Precedence: thread override > force_enable >
/// METAPREP_CHECK environment variable.
int exchange_thread_override(int value) noexcept;
[[nodiscard]] int thread_override() noexcept;

/// RAII runtime-enable for tests: checking is on while any instance lives.
class ScopedCheckEnable {
 public:
  ScopedCheckEnable() noexcept { force_enable(); }
  ~ScopedCheckEnable() { force_disable(); }
  ScopedCheckEnable(const ScopedCheckEnable&) = delete;
  ScopedCheckEnable& operator=(const ScopedCheckEnable&) = delete;
};

/// What a violation is, machine-readably (tests assert on this, not on
/// message strings).
enum class ViolationKind {
  kUnmatchedSend,    ///< message still in a mailbox when the World wound down
  kUnwaitedRequest,  ///< irecv posted but never completed by wait/wait_all
  kDoubleWait,       ///< wait() called twice on the same Request
  kRecvReorder,      ///< same-(src, tag) irecvs waited out of posting order
  kDeadlock,         ///< cycle of blocked ranks in the wait-for graph
  kOffsetOverlap,    ///< non-monotone send/recv block offsets in an all-to-all
  kDoubleRelease,    ///< BufferPool lease returned twice (moved-from buffer)
  kForeignRelease,   ///< buffer returned that was never leased from the pool
  kUseAfterReturn,   ///< released buffer written while on the free list
  kDsuCycle,         ///< parent-pointer forest contains a cycle
  kDsuBounds,        ///< parent pointer out of [0, n)
  kSizeConservation, ///< component sizes after flatten do not sum to n
};

[[nodiscard]] const char* to_string(ViolationKind kind) noexcept;

/// One blocked operation in a deadlock report: what the rank was stuck on.
struct BlockedOp {
  int rank = -1;
  std::string op;          ///< "recv", "wait(irecv)", "barrier"
  int peer = -1;           ///< awaited source rank (-1 for barrier)
  int tag = 0;
  std::uint64_t clock = 0; ///< rank-local Lamport component of its vector clock
};

/// One rule violation, with enough structure for a test (or a human) to see
/// exactly which ranks/sites are involved.
struct Violation {
  ViolationKind kind{};
  std::string message;          ///< human-readable one-liner
  std::vector<int> ranks;       ///< ranks involved (deadlock cycle order)
  std::vector<BlockedOp> blocked;  ///< per-rank blocked-op trace (deadlocks)
  int src = -1;                 ///< source rank / lease site where it applies
  int dst = -1;                 ///< destination rank where it applies
  int tag = 0;                  ///< mpsim tag where it applies
  std::uint64_t count = 0;      ///< e.g. messages left unmatched
  std::uint64_t bytes = 0;      ///< payload bytes involved
  std::uint64_t detail_a = 0;   ///< kind-specific (expected seq, node id, ...)
  std::uint64_t detail_b = 0;   ///< kind-specific (observed seq, parent, ...)
};

/// The checker's structured output.  Accumulated per World / per structure
/// and carried inside CheckError when a violation is fatal.
struct CheckReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool empty() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(ViolationKind kind) const noexcept;
  [[nodiscard]] const Violation* first(ViolationKind kind) const noexcept;
  /// Multi-line rendering: one "check: <kind>: <message>" line per
  /// violation, blocked-op traces indented beneath deadlocks.
  [[nodiscard]] std::string to_string() const;
};

/// Thrown when a check fails.  Derives std::runtime_error (this layer sits
/// below util::Error) so existing catch sites keep working; the structured
/// report rides along for tests and tooling.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(CheckReport report);

  [[nodiscard]] const CheckReport& report() const noexcept { return report_; }

 private:
  CheckReport report_;
};

}  // namespace metaprep::check
