// KmerTraits: one compile-time interface over the two k-mer representations
// (64-bit for k <= 32, 128-bit for k <= 63), so components that must work at
// any k — the MiniHit assembler in particular — can be written once.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "kmer/codec.hpp"
#include "kmer/kmer128.hpp"
#include "kmer/scanner.hpp"

namespace metaprep::kmer {

template <typename K>
struct KmerTraits;

template <>
struct KmerTraits<std::uint64_t> {
  static constexpr int kMaxK = kMaxK64;

  static std::uint64_t mask(int k) { return kmer_mask64(k); }
  static std::uint64_t canonical(std::uint64_t v, int k) { return canonical64(v, k); }
  static std::uint64_t reverse_complement(std::uint64_t v, int k) { return revcomp64(v, k); }
  /// Append base code b at the 3' end: ((v << 2) | b) & mask.
  static std::uint64_t shift_in(std::uint64_t v, std::uint8_t b, std::uint64_t m) {
    return ((v << 2) | b) & m;
  }
  static std::string decode(std::uint64_t v, int k) { return decode64(v, k); }

  template <typename Fn>
  static void for_each_canonical(std::string_view seq, int k, Fn&& fn) {
    for_each_canonical_kmer64(seq, k, std::forward<Fn>(fn));
  }
};

template <>
struct KmerTraits<Kmer128> {
  static constexpr int kMaxK = kMaxK128;

  static Kmer128 mask(int k) { return kmer_mask128(k); }
  static Kmer128 canonical(Kmer128 v, int k) { return canonical128(v, k); }
  static Kmer128 reverse_complement(Kmer128 v, int k) { return revcomp128(v, k); }
  static Kmer128 shift_in(Kmer128 v, std::uint8_t b, Kmer128 m) {
    return push_base128(v, b, m);
  }
  static std::string decode(Kmer128 v, int k) { return decode128(v, k); }

  template <typename Fn>
  static void for_each_canonical(std::string_view seq, int k, Fn&& fn) {
    for_each_canonical_kmer128(seq, k, std::forward<Fn>(fn));
  }
};

}  // namespace metaprep::kmer

namespace std {
/// Hash for 128-bit k-mers (hash-map keys in the wide-k assembler path).
template <>
struct hash<metaprep::kmer::Kmer128> {
  size_t operator()(const metaprep::kmer::Kmer128& v) const noexcept {
    // SplitMix-style mix of the two words.
    std::uint64_t z = v.hi ^ (v.lo * 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};
}  // namespace std
