// 128-bit k-mer for 32 < k <= 63 (the paper's §4.4 extension: "We modify the
// METAPREP k-mer enumeration code to support k-mer sizes up to 63", making a
// tuple 20 bytes: 16-byte k-mer + 4-byte read ID).
//
// Layout mirrors the paper's Figure 3: `hi` holds the most significant bits
// (kmerH) and `lo` the least significant (kmerL).  Numeric order on (hi, lo)
// equals lexicographic order on the decoded string.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "kmer/codec.hpp"

namespace metaprep::kmer {

inline constexpr int kMaxK128 = 63;

struct Kmer128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr auto operator<=>(const Kmer128&, const Kmer128&) = default;
};

/// Mask pair selecting the low 2k bits of a 128-bit value.
constexpr Kmer128 kmer_mask128(int k) noexcept {
  if (k <= 32) return {0, kmer_mask64(k)};
  return {(1ULL << (2 * k - 64)) - 1, ~0ULL};
}

/// Appends a base code at the least significant end, keeping 2k bits.
constexpr Kmer128 push_base128(Kmer128 v, std::uint8_t code, Kmer128 mask) noexcept {
  v.hi = ((v.hi << 2) | (v.lo >> 62)) & mask.hi;
  v.lo = ((v.lo << 2) | code) & mask.lo;
  return v;
}

/// Reverse-complement of a k-mer of length k (32 < k <= 63 supported; also
/// correct for k <= 32 where the value lives entirely in lo).
constexpr Kmer128 revcomp128(Kmer128 v, int k) noexcept {
  // Reverse+complement all 64 groups: low word maps to the high side.
  const std::uint64_t rhi = revcomp_full64(v.lo);
  const std::uint64_t rlo = revcomp_full64(v.hi);
  // Shift the 128-bit value (rhi:rlo) right by 128 - 2k.
  const int s = 128 - 2 * k;
  Kmer128 out;
  if (s == 0) {
    out = {rhi, rlo};
  } else if (s < 64) {
    out.hi = rhi >> s;
    out.lo = (rlo >> s) | (rhi << (64 - s));
  } else if (s == 64) {
    out.hi = 0;
    out.lo = rhi;
  } else {
    out.hi = 0;
    out.lo = rhi >> (s - 64);
  }
  return out;
}

constexpr Kmer128 canonical128(Kmer128 v, int k) noexcept {
  const Kmer128 rc = revcomp128(v, k);
  return v < rc ? v : rc;
}

/// m-mer prefix (top 2m bits) of a k-mer of length k.
constexpr std::uint32_t prefix_bin128(Kmer128 v, int k, int m) noexcept {
  const int shift = 2 * (k - m);  // 128-bit right shift amount
  std::uint64_t r;
  if (shift >= 64) {
    r = v.hi >> (shift - 64);
  } else if (shift == 0) {
    r = v.lo;
  } else {
    r = (v.lo >> shift) | (v.hi << (64 - shift));
  }
  return static_cast<std::uint32_t>(r & ((1ULL << (2 * m)) - 1));
}

/// Encode a string of length 33..63 (also valid for <= 32).
Kmer128 encode128(std::string_view s);

/// Decode a 128-bit k-mer of length k.
std::string decode128(Kmer128 v, int k);

}  // namespace metaprep::kmer
