#include "kmer/superkmer.hpp"

#include "util/error.hpp"

namespace metaprep::kmer {

namespace {

std::uint64_t read_le(const std::byte* p, int nbytes) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

SuperKmerStreamStats count_superkmer_stream(const std::byte* data, std::size_t size, int k) {
  SuperKmerStreamStats stats;
  std::size_t off = 0;
  while (off < size) {
    if (size - off < kSuperKmerHeaderBytes) {
      throw util::parse_error("comm-compress: truncated super-k-mer record header");
    }
    const auto n = static_cast<std::uint32_t>(read_le(data + off + 4, 2));
    if (n == 0) throw util::parse_error("comm-compress: empty super-k-mer record");
    const std::size_t rec = superkmer_record_bytes(k, n);
    if (size - off < rec) {
      throw util::parse_error("comm-compress: truncated super-k-mer record bases");
    }
    ++stats.records;
    stats.kmers += n;
    off += rec;
  }
  return stats;
}

void SuperKmerReader::next_header() {
  if (end_ - p_ < static_cast<std::ptrdiff_t>(kSuperKmerHeaderBytes)) {
    throw util::parse_error("comm-compress: truncated super-k-mer record header");
  }
  value_ = static_cast<std::uint32_t>(read_le(p_, 4));
  n_ = static_cast<std::uint32_t>(read_le(p_ + 4, 2));
  if (n_ == 0) throw util::parse_error("comm-compress: empty super-k-mer record");
  nbases_ = n_ + static_cast<std::uint32_t>(k_) - 1;
  const std::size_t rec = superkmer_record_bytes(k_, n_);
  if (static_cast<std::size_t>(end_ - p_) < rec) {
    throw util::parse_error("comm-compress: truncated super-k-mer record bases");
  }
  bases_ = p_ + kSuperKmerHeaderBytes;
  p_ += rec;
}

void SuperKmerReader::rebuild_words() {
  const std::size_t nbytes = (static_cast<std::size_t>(nbases_) + 3) / 4;
  words_.assign((static_cast<std::size_t>(nbases_) + 31) / 32, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    words_[i >> 3] |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(bases_[i]))
                      << (8 * (i & 7));
  }
}

}  // namespace metaprep::kmer
