// 2-bit DNA encoding and canonical k-mer primitives.
//
// Encoding: A=0, C=1, G=2, T=3 with the FIRST base in the most significant
// position, so numeric order on encoded values equals lexicographic order on
// the strings.  This matters twice in METAPREP:
//  * the canonical k-mer is the lexicographically smaller of a k-mer and its
//    reverse complement (paper §3), which becomes a simple integer min;
//  * the m-mer *prefix* of a canonical k-mer (the merHist histogram bin,
//    §3.1.1) is just the top 2m bits, so sorting by k-mer value groups all
//    k-mers of a histogram bin contiguously and bin ranges partition the
//    k-mer space.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace metaprep::kmer {

/// Sentinel for non-ACGT characters (N, etc.).
inline constexpr std::uint8_t kInvalidBase = 0xFF;

namespace detail {
consteval std::array<std::uint8_t, 256> make_base_table() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = kInvalidBase;
  t['A'] = 0; t['a'] = 0;
  t['C'] = 1; t['c'] = 1;
  t['G'] = 2; t['g'] = 2;
  t['T'] = 3; t['t'] = 3;
  return t;
}
inline constexpr std::array<std::uint8_t, 256> kBaseTable = make_base_table();
inline constexpr std::array<char, 4> kBaseChar = {'A', 'C', 'G', 'T'};
}  // namespace detail

/// 2-bit code for a base character, or kInvalidBase for non-ACGT.
constexpr std::uint8_t base_code(char c) noexcept {
  return detail::kBaseTable[static_cast<unsigned char>(c)];
}

/// Character for a 2-bit base code (code must be < 4).
constexpr char base_char(std::uint8_t code) noexcept { return detail::kBaseChar[code & 3]; }

/// Complement of a 2-bit base code (A<->T, C<->G).
constexpr std::uint8_t complement_code(std::uint8_t code) noexcept {
  return static_cast<std::uint8_t>(3 - code);
}

/// Maximum k representable in a single 64-bit word.
inline constexpr int kMaxK64 = 32;

/// Mask selecting the low 2k bits.
constexpr std::uint64_t kmer_mask64(int k) noexcept {
  return k >= 32 ? ~0ULL : ((1ULL << (2 * k)) - 1);
}

/// Reverse-complement of all 32 2-bit groups of @p v (no length shift).
constexpr std::uint64_t revcomp_full64(std::uint64_t v) noexcept {
  v = ~v;
  v = ((v >> 2) & 0x3333333333333333ULL) | ((v & 0x3333333333333333ULL) << 2);
  v = ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL) | ((v & 0x0F0F0F0F0F0F0F0FULL) << 4);
  return __builtin_bswap64(v);
}

/// Reverse-complement of a k-mer stored in the low 2k bits.
constexpr std::uint64_t revcomp64(std::uint64_t v, int k) noexcept {
  return revcomp_full64(v) >> (64 - 2 * k);
}

/// Canonical form: the numerically (== lexicographically) smaller of the
/// k-mer and its reverse complement.
constexpr std::uint64_t canonical64(std::uint64_t v, int k) noexcept {
  const std::uint64_t rc = revcomp64(v, k);
  return v < rc ? v : rc;
}

/// Encode an ACGT string (length <= 32) into a 64-bit k-mer.  Behaviour is
/// undefined for non-ACGT input (asserted in debug builds).
std::uint64_t encode64(std::string_view s);

/// Decode a 64-bit k-mer of length k back into its string form.
std::string decode64(std::uint64_t v, int k);

/// m-mer prefix (top 2m bits) of a k-mer of length k; the merHist bin.
constexpr std::uint32_t prefix_bin64(std::uint64_t v, int k, int m) noexcept {
  return static_cast<std::uint32_t>(v >> (2 * (k - m)));
}

/// Reverse complement of a whole sequence string.
std::string revcomp_string(std::string_view s);

}  // namespace metaprep::kmer
