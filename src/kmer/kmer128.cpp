#include "kmer/kmer128.hpp"

#include <cassert>

namespace metaprep::kmer {

Kmer128 encode128(std::string_view s) {
  assert(s.size() <= static_cast<std::size_t>(kMaxK128));
  const Kmer128 mask = kmer_mask128(static_cast<int>(s.size()));
  Kmer128 v;
  for (char c : s) {
    const std::uint8_t code = base_code(c);
    assert(code != kInvalidBase);
    v = push_base128(v, code, mask);
  }
  return v;
}

std::string decode128(Kmer128 v, int k) {
  std::string s(static_cast<std::size_t>(k), 'A');
  for (int i = k - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = base_char(static_cast<std::uint8_t>(v.lo & 3));
    // 128-bit right shift by 2.
    v.lo = (v.lo >> 2) | (v.hi << 62);
    v.hi >>= 2;
  }
  return s;
}

}  // namespace metaprep::kmer
