// Counting Bloom filter for the singleton-k-mer exchange prefilter.
//
// Pell et al. ("Scaling metagenome sequence assembly with probabilistic de
// Bruijn graphs") and the mhm2 kcount two-pass Bloom both exploit the same
// observation: in error-prone short-read data the majority of *distinct*
// k-mers occur exactly once and are overwhelmingly sequencing errors.  A
// singleton k-mer can never create a read-graph edge (an edge needs two
// tuples with the same key), so suppressing frequency-1 k-mers from the
// exchange preserves the component partition exactly — see DESIGN.md
// "Exchange compression" for the proof sketch and the sizing math.
//
// The counters saturate at 255 and count() returns the MINIMUM over the h
// probed positions, so the reported count never undercounts the true
// insertion count: false positives can only *keep* a true singleton (ships
// a few harmless bytes), never drop a k-mer that occurs twice.
//
// insert() is thread-safe (relaxed atomic saturating increments; the
// pipeline separates the insert phase from the read phase with a barrier);
// count() is safe only after all inserts are published.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace metaprep::kmer {

class CountingBloom {
 public:
  CountingBloom() = default;
  /// Sizes the table to the next power of two >= expected_keys *
  /// counters_per_key (min 4096 counters, 8 bits each).  @p hashes probe
  /// positions are derived deterministically from (key hash, seed), so two
  /// filters built with the same parameters agree bit for bit.
  CountingBloom(std::uint64_t expected_keys, int counters_per_key, int hashes,
                std::uint64_t seed);

  /// Saturating increment of the @p hashes counters for @p hash.
  void insert(std::uint64_t hash) noexcept;
  /// Minimum counter over the probed positions (>= true insert count).
  [[nodiscard]] std::uint32_t count(std::uint64_t hash) const noexcept;

  [[nodiscard]] std::size_t num_counters() const noexcept { return counters_.size(); }
  [[nodiscard]] int hashes() const noexcept { return hashes_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept { return counters_.size(); }

 private:
  std::vector<std::uint8_t> counters_;
  std::uint64_t mask_ = 0;  ///< counters_.size() - 1 (power-of-two table)
  int hashes_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace metaprep::kmer
