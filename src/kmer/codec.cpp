#include "kmer/codec.hpp"

#include <cassert>

namespace metaprep::kmer {

std::uint64_t encode64(std::string_view s) {
  assert(s.size() <= static_cast<std::size_t>(kMaxK64));
  std::uint64_t v = 0;
  for (char c : s) {
    const std::uint8_t code = base_code(c);
    assert(code != kInvalidBase);
    v = (v << 2) | code;
  }
  return v;
}

std::string decode64(std::uint64_t v, int k) {
  std::string s(static_cast<std::size_t>(k), 'A');
  for (int i = k - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = base_char(static_cast<std::uint8_t>(v & 3));
    v >>= 2;
  }
  return s;
}

std::string revcomp_string(std::string_view s) {
  std::string out(s.size(), 'N');
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t code = base_code(s[s.size() - 1 - i]);
    out[i] = code == kInvalidBase ? 'N' : base_char(complement_code(code));
  }
  return out;
}

}  // namespace metaprep::kmer
