// Canonical k-mer enumeration from read sequences (paper §3.2).
//
// Two implementations with identical output *sets*:
//  * a scalar rolling scanner (one k-mer per step), and
//  * the paper's Figure-3 vectorized scheme: the read's k-mer start
//    positions are split into 4 equidistant segments and 4 rolling
//    (forward, reverse-complement) lane pairs advance in lockstep, emitting
//    4 canonical k-mers per step with a branch-free lexicographic select.
//    Lanes are plain arrays so the compiler vectorizes the shifts/selects;
//    an explicit SSE4.2 select is used when available.
//
// k-mers containing non-ACGT symbols (N) are skipped, matching §3.2 ("We do
// not enumerate k-mers that contain the N symbol").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "kmer/codec.hpp"
#include "kmer/kmer128.hpp"

namespace metaprep::kmer {

/// Invoke fn(canonical_kmer, start_position) for every valid k-mer window.
/// Requires 1 <= k <= kMaxK64.
template <typename Fn>
void for_each_canonical_kmer64(std::string_view seq, int k, Fn&& fn) {
  if (static_cast<int>(seq.size()) < k) return;
  const std::uint64_t mask = kmer_mask64(k);
  const int rc_shift = 2 * (k - 1);
  std::uint64_t fwd = 0;
  std::uint64_t rc = 0;
  int valid = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::uint8_t code = base_code(seq[i]);
    if (code == kInvalidBase) {
      valid = 0;
      fwd = 0;
      rc = 0;
      continue;
    }
    fwd = ((fwd << 2) | code) & mask;
    rc = (rc >> 2) | (static_cast<std::uint64_t>(3 - code) << rc_shift);
    if (++valid >= k) fn(fwd < rc ? fwd : rc, i + 1 - static_cast<std::size_t>(k));
  }
}

/// Invoke fn(canonical_kmer128, start_position) for every valid k-mer
/// window.  Requires 1 <= k <= kMaxK128.
template <typename Fn>
void for_each_canonical_kmer128(std::string_view seq, int k, Fn&& fn) {
  if (static_cast<int>(seq.size()) < k) return;
  const Kmer128 mask = kmer_mask128(k);
  const int top = 2 * (k - 1);
  Kmer128 fwd{};
  Kmer128 rc{};
  int valid = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::uint8_t code = base_code(seq[i]);
    if (code == kInvalidBase) {
      valid = 0;
      fwd = {};
      rc = {};
      continue;
    }
    fwd = push_base128(fwd, code, mask);
    rc.lo = (rc.lo >> 2) | (rc.hi << 62);
    rc.hi >>= 2;
    const std::uint64_t comp = static_cast<std::uint64_t>(3 - code);
    if (top >= 64) {
      rc.hi |= comp << (top - 64);
    } else {
      rc.lo |= comp << top;
    }
    if (++valid >= k) fn(fwd < rc ? fwd : rc, i + 1 - static_cast<std::size_t>(k));
  }
}

/// A packed record view as stored by io::PackedStore: 2-bit codes LSB-first
/// within each 64-bit word (base i in bits [2*(i%32), 2*(i%32)+1] of word
/// i/32), plus a sorted list of ambiguous-base positions (which were packed
/// as code 0 and must reset the window exactly like an 'N' character).
///
/// Invoke fn(canonical_kmer, start_position) for every valid k-mer window —
/// bit-exactly the same invocations as for_each_canonical_kmer64 on the
/// original text.  Requires 1 <= k <= kMaxK64.
template <typename Fn>
void for_each_canonical_kmer64_packed(const std::uint64_t* words, std::uint32_t len,
                                      const std::uint32_t* npos, std::uint32_t ncount,
                                      int k, Fn&& fn) {
  if (static_cast<int>(len) < k) return;
  const std::uint64_t mask = kmer_mask64(k);
  const int rc_shift = 2 * (k - 1);
  std::uint64_t fwd = 0;
  std::uint64_t rc = 0;
  int valid = 0;
  std::uint32_t nj = 0;
  std::uint64_t w = 0;
  for (std::uint32_t i = 0; i < len; ++i, w >>= 2) {
    if ((i & 31u) == 0) w = words[i >> 5];
    if (nj < ncount && npos[nj] == i) {
      ++nj;
      valid = 0;
      fwd = 0;
      rc = 0;
      continue;
    }
    const std::uint64_t code = w & 3u;
    fwd = ((fwd << 2) | code) & mask;
    rc = (rc >> 2) | ((3 - code) << rc_shift);
    if (++valid >= k) fn(fwd < rc ? fwd : rc, i + 1 - static_cast<std::size_t>(k));
  }
}

/// 128-bit packed variant: bit-exact against for_each_canonical_kmer128 on
/// the original text.  Requires 1 <= k <= kMaxK128.
template <typename Fn>
void for_each_canonical_kmer128_packed(const std::uint64_t* words, std::uint32_t len,
                                       const std::uint32_t* npos, std::uint32_t ncount,
                                       int k, Fn&& fn) {
  if (static_cast<int>(len) < k) return;
  const Kmer128 mask = kmer_mask128(k);
  const int top = 2 * (k - 1);
  Kmer128 fwd{};
  Kmer128 rc{};
  int valid = 0;
  std::uint32_t nj = 0;
  std::uint64_t w = 0;
  for (std::uint32_t i = 0; i < len; ++i, w >>= 2) {
    if ((i & 31u) == 0) w = words[i >> 5];
    if (nj < ncount && npos[nj] == i) {
      ++nj;
      valid = 0;
      fwd = {};
      rc = {};
      continue;
    }
    const auto code = static_cast<std::uint8_t>(w & 3u);
    fwd = push_base128(fwd, code, mask);
    rc.lo = (rc.lo >> 2) | (rc.hi << 62);
    rc.hi >>= 2;
    const std::uint64_t comp = static_cast<std::uint64_t>(3 - code);
    if (top >= 64) {
      rc.hi |= comp << (top - 64);
    } else {
      rc.lo |= comp << top;
    }
    if (++valid >= k) fn(fwd < rc ? fwd : rc, i + 1 - static_cast<std::size_t>(k));
  }
}

/// Append all canonical k-mers of @p seq to @p out (scalar path).
void scan_canonical_kmers64(std::string_view seq, int k, std::vector<std::uint64_t>& out);

/// Append all canonical k-mers of @p seq to @p out using the 4-way
/// vectorized scheme of Figure 3.  Output is a permutation of the scalar
/// path's output (lane-major instead of position-major).
void scan_canonical_kmers64_x4(std::string_view seq, int k, std::vector<std::uint64_t>& out);

/// Count valid (N-free) k-mer windows in a sequence without emitting them.
std::uint64_t count_valid_kmers(std::string_view seq, int k);

}  // namespace metaprep::kmer
