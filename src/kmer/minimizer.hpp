// Minimizers and super-k-mer decomposition.
//
// Substrate for the KMC 2 comparison baseline (paper §4.2.1): KMC 2 bins
// *super k-mers* — maximal runs of consecutive k-mers sharing the same
// minimizer — instead of individual k-mers.  The minimizer of a k-mer is the
// smallest canonical m-mer among its m-length substrings; consecutive
// k-mers usually share it, so a super k-mer stores a run of k-mers in
// (run_length + k - 1) bases instead of run_length * k.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace metaprep::kmer {

struct SuperKmer {
  std::uint32_t start = 0;      ///< base offset of the first k-mer in the read
  std::uint32_t kmer_count = 0; ///< number of consecutive k-mers in the run
  std::uint64_t minimizer = 0;  ///< shared canonical m-mer value
};

/// Decompose a read into super k-mers.  Windows containing non-ACGT bases
/// are skipped (consistent with the k-mer scanner).  Requires m <= k.
std::vector<SuperKmer> super_kmers(std::string_view seq, int k, int m);

/// Minimizer (smallest canonical m-mer) of the k-length window starting at
/// @p pos.  Returns false if the window contains an invalid base.
bool window_minimizer(std::string_view seq, std::size_t pos, int k, int m,
                      std::uint64_t& out);

}  // namespace metaprep::kmer
