#include "kmer/minimizer.hpp"

#include "kmer/codec.hpp"
#include "kmer/scanner.hpp"
#include "kmer/superkmer.hpp"

namespace metaprep::kmer {

bool window_minimizer(std::string_view seq, std::size_t pos, int k, int m,
                      std::uint64_t& out) {
  if (pos + static_cast<std::size_t>(k) > seq.size()) return false;
  bool found = false;
  std::uint64_t best = ~0ULL;
  // A k-window contains k - m + 1 m-mers.
  for_each_canonical_kmer64(seq.substr(pos, static_cast<std::size_t>(k)), m,
                            [&](std::uint64_t mm, std::size_t) {
                              if (mm < best) best = mm;
                              found = true;
                            });
  const auto expected = static_cast<std::size_t>(k - m + 1);
  std::size_t count = count_valid_kmers(seq.substr(pos, static_cast<std::size_t>(k)), m);
  if (!found || count != expected) return false;  // window has an N
  out = best;
  return true;
}

std::vector<SuperKmer> super_kmers(std::string_view seq, int k, int m) {
  // Thin vector adapter over the shared streaming scanner (kmer/superkmer):
  // the pipeline's compressed exchange and the KMC-2 baseline both use the
  // scanner directly, so this wrapper is what keeps the three callers on one
  // decomposition.
  std::vector<SuperKmer> result;
  SuperKmerScanner scanner;
  scanner.scan(seq, k, m, [&](std::uint32_t start, std::uint32_t count, std::uint64_t mz) {
    result.push_back(SuperKmer{start, count, mz});
  });
  return result;
}

}  // namespace metaprep::kmer
