#include "kmer/minimizer.hpp"

#include <deque>

#include "kmer/codec.hpp"
#include "kmer/scanner.hpp"

namespace metaprep::kmer {

bool window_minimizer(std::string_view seq, std::size_t pos, int k, int m,
                      std::uint64_t& out) {
  if (pos + static_cast<std::size_t>(k) > seq.size()) return false;
  bool found = false;
  std::uint64_t best = ~0ULL;
  // A k-window contains k - m + 1 m-mers.
  for_each_canonical_kmer64(seq.substr(pos, static_cast<std::size_t>(k)), m,
                            [&](std::uint64_t mm, std::size_t) {
                              if (mm < best) best = mm;
                              found = true;
                            });
  const auto expected = static_cast<std::size_t>(k - m + 1);
  std::size_t count = count_valid_kmers(seq.substr(pos, static_cast<std::size_t>(k)), m);
  if (!found || count != expected) return false;  // window has an N
  out = best;
  return true;
}

std::vector<SuperKmer> super_kmers(std::string_view seq, int k, int m) {
  std::vector<SuperKmer> result;
  const auto len = static_cast<std::int64_t>(seq.size());
  const std::int64_t nkmers = len - k + 1;
  if (nkmers <= 0) return result;

  // Sliding-window minimum over canonical m-mer values using a monotonic
  // deque of (value, position); O(len) total.
  std::vector<std::uint64_t> mmer(seq.size(), ~0ULL);
  std::vector<bool> mmer_valid(seq.size(), false);
  for_each_canonical_kmer64(seq, m, [&](std::uint64_t v, std::size_t pos) {
    mmer[pos] = v;
    mmer_valid[pos] = true;
  });

  std::deque<std::pair<std::uint64_t, std::int64_t>> window;  // (value, pos)
  const std::int64_t width = k - m + 1;  // m-mers per k-window
  auto push_mmer = [&](std::int64_t pos) {
    if (!mmer_valid[static_cast<std::size_t>(pos)]) return;
    const std::uint64_t v = mmer[static_cast<std::size_t>(pos)];
    while (!window.empty() && window.back().first >= v) window.pop_back();
    window.emplace_back(v, pos);
  };

  // Count of valid m-mers inside the current k-window, to detect N's.
  std::int64_t valid_in_window = 0;

  for (std::int64_t p = 0; p < width - 1; ++p) {
    push_mmer(p);
    if (mmer_valid[static_cast<std::size_t>(p)]) ++valid_in_window;
  }

  SuperKmer current{};
  bool open = false;
  auto flush = [&] {
    if (open) {
      result.push_back(current);
      open = false;
    }
  };

  for (std::int64_t start = 0; start < nkmers; ++start) {
    const std::int64_t newest = start + width - 1;
    push_mmer(newest);
    if (mmer_valid[static_cast<std::size_t>(newest)]) ++valid_in_window;
    while (!window.empty() && window.front().second < start) window.pop_front();

    const bool window_clean = valid_in_window == width;
    if (!window_clean || window.empty()) {
      flush();
    } else {
      const std::uint64_t mz = window.front().first;
      if (open && current.minimizer == mz) {
        ++current.kmer_count;
      } else {
        flush();
        current = {static_cast<std::uint32_t>(start), 1, mz};
        open = true;
      }
    }

    const std::int64_t oldest = start;  // leaves the window next iteration
    if (mmer_valid[static_cast<std::size_t>(oldest)]) --valid_in_window;
  }
  flush();
  return result;
}

}  // namespace metaprep::kmer
