// Super-k-mer decomposition and wire records for the compressed exchange.
//
// A super k-mer (KMC 2) is a maximal run of consecutive k-mers sharing the
// same minimizer — the smallest canonical m-mer among a k-window's m-length
// substrings.  A run of n k-mers occupies n + k - 1 bases, so shipping the
// packed bases instead of n separate (k-mer, value) tuples converts the
// exchange volume from O(occurrences * tuple_bytes) toward
// O(distinct runs * (header + bases/4)).
//
// This header is the single shared implementation: the KMC-2 comparison
// baseline (src/baseline/kmc_like) and the pipeline's --comm-compress emit
// path (src/core/pipeline.cpp) both decompose reads through
// SuperKmerScanner, and the pipeline's wire format lives next to it so the
// encoder and decoder cannot drift apart.
//
// Wire record layout (little-endian, self-delimiting):
//
//   uint32  value      read ID, or component root under §3.5.1 substitution
//   uint16  n_kmers    k-mers in the run (1 .. kMaxSuperKmerRun)
//   bytes   bases      ceil((n_kmers + k - 1) / 4) bytes of 2-bit codes,
//                      LSB-first within each byte — byte i's bits 2j..2j+1
//                      hold base 4i+j, the same layout as io::PackedStore
//                      words, so the decoder reassembles uint64 words and
//                      reuses the packed k-mer scanners verbatim.
//
// Records never span an N: the scanner only forms runs from windows free of
// invalid bases, so decoding needs no npos sidecar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "kmer/codec.hpp"
#include "kmer/scanner.hpp"

namespace metaprep::kmer {

/// SplitMix64 finalizer: the routing hash for minimizer bins.  Decoupling
/// the routing bin from the minimizer's value (lexicographically tiny
/// m-mers dominate) spreads runs uniformly over ranks.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Hash of a canonical k-mer for the counting-Bloom prefilter (k <= 32).
constexpr std::uint64_t kmer_hash64(std::uint64_t km) noexcept { return mix64(km); }
/// Wide (k > 32) variant over both words.
constexpr std::uint64_t kmer_hash128(std::uint64_t hi, std::uint64_t lo) noexcept {
  return mix64(lo ^ mix64(hi));
}

/// Routing-bin space for minimizer-routed super-k-mers.  All occurrences of
/// a canonical k-mer share its minimizer, hence its bin — so uniform splits
/// of bin space over (pass, rank, thread) keep frequency counting global.
inline constexpr int kMinimizerBinBits = 12;
inline constexpr std::uint32_t kNumMinimizerBins = 1u << kMinimizerBinBits;
constexpr std::uint32_t minimizer_bin(std::uint64_t minimizer) noexcept {
  return static_cast<std::uint32_t>(mix64(minimizer) >> (64 - kMinimizerBinBits));
}

/// Streaming super-k-mer decomposition with reusable scratch.  fn(start,
/// kmer_count, minimizer) is invoked once per run in increasing start order;
/// k-windows containing non-ACGT bases are skipped (consistent with the
/// k-mer scanners).  Requires 1 <= m <= min(k, 31).
class SuperKmerScanner {
 public:
  template <typename Fn>
  void scan(std::string_view seq, int k, int m, Fn&& fn) {
    if (!prepare(seq.size(), k)) return;
    for_each_canonical_kmer64(seq, m, [&](std::uint64_t v, std::size_t pos) {
      mmer_[pos] = v;
      mmer_valid_[pos] = 1;
    });
    emit_runs(static_cast<std::int64_t>(seq.size()), k, m, std::forward<Fn>(fn));
  }

  /// Same decomposition over a 2-bit packed record (io::PackedStore layout);
  /// bit-identical runs to scan() on the equivalent text.
  template <typename Fn>
  void scan_packed(const std::uint64_t* words, std::uint32_t len, const std::uint32_t* npos,
                   std::uint32_t ncount, int k, int m, Fn&& fn) {
    if (!prepare(len, k)) return;
    for_each_canonical_kmer64_packed(words, len, npos, ncount, m,
                                     [&](std::uint64_t v, std::size_t pos) {
                                       mmer_[pos] = v;
                                       mmer_valid_[pos] = 1;
                                     });
    emit_runs(static_cast<std::int64_t>(len), k, m, std::forward<Fn>(fn));
  }

 private:
  [[nodiscard]] bool prepare(std::size_t len, int k) {
    if (len < static_cast<std::size_t>(k)) return false;
    mmer_.assign(len, ~0ULL);
    mmer_valid_.assign(len, 0);
    return true;
  }

  template <typename Fn>
  void emit_runs(std::int64_t len, int k, int m, Fn&& fn) {
    const std::int64_t nkmers = len - k + 1;
    const std::int64_t width = k - m + 1;  // m-mers per k-window
    // Sliding-window minimum over canonical m-mer values using a monotonic
    // deque of (value, position); O(len) total.
    window_.clear();
    std::size_t head = 0;
    auto push_mmer = [&](std::int64_t pos) {
      if (mmer_valid_[static_cast<std::size_t>(pos)] == 0) return;
      const std::uint64_t v = mmer_[static_cast<std::size_t>(pos)];
      while (window_.size() > head && window_.back().first >= v) window_.pop_back();
      window_.emplace_back(v, pos);
    };

    // Count of valid m-mers inside the current k-window, to detect N's.
    std::int64_t valid_in_window = 0;
    for (std::int64_t pos = 0; pos < width - 1; ++pos) {
      push_mmer(pos);
      if (mmer_valid_[static_cast<std::size_t>(pos)] != 0) ++valid_in_window;
    }

    std::uint32_t run_start = 0;
    std::uint32_t run_count = 0;
    std::uint64_t run_mz = 0;
    auto flush = [&] {
      if (run_count > 0) {
        fn(run_start, run_count, run_mz);
        run_count = 0;
      }
    };

    for (std::int64_t start = 0; start < nkmers; ++start) {
      const std::int64_t newest = start + width - 1;
      push_mmer(newest);
      if (mmer_valid_[static_cast<std::size_t>(newest)] != 0) ++valid_in_window;
      while (window_.size() > head && window_[head].second < start) ++head;

      const bool window_clean = valid_in_window == width;
      if (!window_clean || window_.size() == head) {
        flush();
      } else {
        const std::uint64_t mz = window_[head].first;
        if (run_count > 0 && run_mz == mz) {
          ++run_count;
        } else {
          flush();
          run_start = static_cast<std::uint32_t>(start);
          run_count = 1;
          run_mz = mz;
        }
      }

      // start leaves the window next iteration
      if (mmer_valid_[static_cast<std::size_t>(start)] != 0) --valid_in_window;
    }
    flush();
  }

  std::vector<std::uint64_t> mmer_;
  std::vector<std::uint8_t> mmer_valid_;
  std::vector<std::pair<std::uint64_t, std::int64_t>> window_;  // deque via head index
};

// ---------------------------------------------------------------------------
// Wire records.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kSuperKmerHeaderBytes = 6;
/// Runs longer than this are split at encode time (same minimizer, so the
/// fragments route identically); keeps n_kmers in a uint16.
inline constexpr std::uint32_t kMaxSuperKmerRun = 0xFFFF;

/// On-wire size of one record carrying @p n_kmers k-mers.
constexpr std::size_t superkmer_record_bytes(int k, std::uint32_t n_kmers) noexcept {
  const std::size_t nbases = static_cast<std::size_t>(n_kmers) + static_cast<std::size_t>(k) - 1;
  return kSuperKmerHeaderBytes + (nbases + 3) / 4;
}

/// Append one record.  @p code_at(j) must return the 2-bit code (0..3) of the
/// j-th base of the run, j in [0, n_kmers + k - 1); the caller guarantees the
/// run is free of invalid bases (the scanner only emits such runs).
template <typename CodeAt>
void append_superkmer_record(std::vector<std::byte>& out, std::uint32_t value,
                             std::uint32_t n_kmers, int k, CodeAt&& code_at) {
  const std::uint32_t nbases = n_kmers + static_cast<std::uint32_t>(k) - 1;
  out.reserve(out.size() + superkmer_record_bytes(k, n_kmers));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xFF));
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<std::byte>((n_kmers >> (8 * i)) & 0xFF));
  const std::size_t base = out.size();
  out.resize(base + (static_cast<std::size_t>(nbases) + 3) / 4, std::byte{0});
  for (std::uint32_t j = 0; j < nbases; ++j) {
    const auto code = static_cast<std::uint8_t>(code_at(static_cast<std::size_t>(j)) & 3u);
    out[base + (j >> 2)] |= static_cast<std::byte>(code << (2 * (j & 3u)));
  }
}

/// Totals of a record stream, validated record by record (throws
/// util::parse_error on truncation).  The receiver's sizing pass.
struct SuperKmerStreamStats {
  std::uint64_t records = 0;
  std::uint64_t kmers = 0;
};
SuperKmerStreamStats count_superkmer_stream(const std::byte* data, std::size_t size, int k);

/// Streaming reader over a buffer of wire records.  Usage:
///
///   SuperKmerReader rd(data, size, k);
///   while (!rd.done()) { rd.next_header(); rd.expand64([&](uint64_t km){...}); }
///
/// expand64/expand128 re-enumerate the run's canonical k-mers by rebuilding
/// the packed words and running the 2-bit scanners — the exact enumeration
/// the sender's text/packed scan performed over those bases.
class SuperKmerReader {
 public:
  SuperKmerReader(const std::byte* data, std::size_t size, int k)
      : p_(data), end_(data + size), k_(k) {}

  [[nodiscard]] bool done() const noexcept { return p_ == end_; }
  /// Parse the next record's header and advance past the whole record.
  /// Throws util::parse_error if the buffer truncates mid-record.
  void next_header();
  [[nodiscard]] std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::uint32_t kmer_count() const noexcept { return n_; }

  template <typename Fn>
  void expand64(Fn&& fn) {
    rebuild_words();
    for_each_canonical_kmer64_packed(words_.data(), nbases_, nullptr, 0, k_,
                                     [&](std::uint64_t km, std::size_t) { fn(km); });
  }
  template <typename Fn>
  void expand128(Fn&& fn) {
    rebuild_words();
    for_each_canonical_kmer128_packed(words_.data(), nbases_, nullptr, 0, k_,
                                      [&](Kmer128 km, std::size_t) { fn(km); });
  }

 private:
  void rebuild_words();

  const std::byte* p_;
  const std::byte* end_;
  int k_;
  const std::byte* bases_ = nullptr;  ///< current record's packed bases
  std::uint32_t value_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t nbases_ = 0;
  std::vector<std::uint64_t> words_;  ///< scratch for the packed scanners
};

}  // namespace metaprep::kmer
