#include "kmer/bloom.hpp"

#include <atomic>

#include "util/rng.hpp"

namespace metaprep::kmer {

namespace {

std::size_t next_pow2(std::uint64_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t kMinCounters = 4096;

}  // namespace

CountingBloom::CountingBloom(std::uint64_t expected_keys, int counters_per_key, int hashes,
                             std::uint64_t seed)
    : hashes_(hashes), seed_(seed) {
  const std::uint64_t want =
      expected_keys * static_cast<std::uint64_t>(counters_per_key);
  const std::size_t n = next_pow2(want < kMinCounters ? kMinCounters : want);
  counters_.assign(n, 0);
  mask_ = n - 1;
}

void CountingBloom::insert(std::uint64_t hash) noexcept {
  util::SplitMix64 gen(hash ^ seed_);
  for (int j = 0; j < hashes_; ++j) {
    const std::size_t at = static_cast<std::size_t>(gen.next()) & mask_;
    std::atomic_ref<std::uint8_t> cell(counters_[at]);
    std::uint8_t cur = cell.load(std::memory_order_relaxed);
    while (cur != 0xFF &&
           !cell.compare_exchange_weak(cur, static_cast<std::uint8_t>(cur + 1),
                                       std::memory_order_relaxed)) {
    }
  }
}

std::uint32_t CountingBloom::count(std::uint64_t hash) const noexcept {
  util::SplitMix64 gen(hash ^ seed_);
  std::uint32_t best = 0xFF;
  for (int j = 0; j < hashes_; ++j) {
    const std::size_t at = static_cast<std::size_t>(gen.next()) & mask_;
    const std::uint32_t v = counters_[at];
    if (v < best) best = v;
  }
  return best;
}

}  // namespace metaprep::kmer
