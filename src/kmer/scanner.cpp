#include "kmer/scanner.hpp"

#include <algorithm>

#if defined(__SSE4_2__)
#include <emmintrin.h>
#include <smmintrin.h>
#endif

namespace metaprep::kmer {

void scan_canonical_kmers64(std::string_view seq, int k, std::vector<std::uint64_t>& out) {
  for_each_canonical_kmer64(seq, k, [&](std::uint64_t c, std::size_t) { out.push_back(c); });
}

std::uint64_t count_valid_kmers(std::string_view seq, int k) {
  std::uint64_t n = 0;
  int valid = 0;
  if (static_cast<int>(seq.size()) < k) return 0;
  for (char ch : seq) {
    if (base_code(ch) == kInvalidBase) {
      valid = 0;
      continue;
    }
    if (++valid >= k) ++n;
  }
  return n;
}

namespace {

bool has_invalid_base(std::string_view seq) {
  for (char ch : seq) {
    if (base_code(ch) == kInvalidBase) return true;
  }
  return false;
}

#if defined(__SSE4_2__)
// Unsigned 64-bit min via the sign-flip trick (_mm_cmpgt_epi64 is signed).
// This is the explicit form of the paper's Figure 3 step: "output four
// canonical k-mers by comparing the original and the reverse complemented
// k-mers and selecting the lexicographically smaller of the two".
inline __m128i min_epu64(__m128i a, __m128i b) {
  const __m128i sign = _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m128i a_gt_b = _mm_cmpgt_epi64(_mm_xor_si128(a, sign), _mm_xor_si128(b, sign));
  return _mm_blendv_epi8(a, b, a_gt_b);
}
#endif

}  // namespace

void scan_canonical_kmers64_x4(std::string_view seq, int k, std::vector<std::uint64_t>& out) {
  const auto len = static_cast<std::int64_t>(seq.size());
  const std::int64_t nkmers = len - k + 1;
  if (nkmers <= 0) return;
  // Lanes only pay off on clean reads long enough to amortize the warm-up;
  // reads containing N take the scalar path (rare, and N resets break the
  // lockstep schedule).
  if (nkmers < 16 || has_invalid_base(seq)) {
    scan_canonical_kmers64(seq, k, out);
    return;
  }

  const std::uint64_t mask = kmer_mask64(k);
  const int rc_shift = 2 * (k - 1);

  // Figure 3: "four k-mers are generated from four equidistant points".
  // Lane `lane` owns k-mer start positions [seg[lane], seg[lane+1]).
  std::int64_t seg[5];
  for (int lane = 0; lane <= 4; ++lane) seg[lane] = nkmers * lane / 4;

  alignas(16) std::uint64_t fwd[4];
  alignas(16) std::uint64_t rc[4];

  // Warm-up: load the first k-1 bases of each lane's window.
  for (int lane = 0; lane < 4; ++lane) {
    std::uint64_t f = 0;
    std::uint64_t r = 0;
    for (std::int64_t j = seg[lane]; j < seg[lane] + k - 1; ++j) {
      const std::uint8_t code = base_code(seq[static_cast<std::size_t>(j)]);
      f = (f << 2) | code;
      r = (r >> 2) | (static_cast<std::uint64_t>(3 - code) << rc_shift);
    }
    fwd[lane] = f & mask;
    rc[lane] = r;
  }

  // Steady state: every lane emits one canonical k-mer per step for
  // `common` steps (segments differ in length by at most one).
  std::int64_t seg_len[4];
  for (int lane = 0; lane < 4; ++lane) seg_len[lane] = seg[lane + 1] - seg[lane];
  const std::int64_t common = *std::min_element(seg_len, seg_len + 4);

  const std::size_t out_base = out.size();
  out.resize(out_base + static_cast<std::size_t>(nkmers));
  std::uint64_t* dst = out.data() + out_base;
  // Lane emission offsets so output is grouped per lane (a permutation of
  // the scalar order; the pipeline never depends on tuple order).
  std::size_t emit[4];
  {
    std::size_t acc = 0;
    for (int lane = 0; lane < 4; ++lane) {
      emit[lane] = acc;
      acc += static_cast<std::size_t>(seg_len[lane]);
    }
  }

#if defined(__SSE4_2__)
  {
    // Two 128-bit registers hold the 4 forward k-mers; two more hold the
    // reverse complements (the 64-bit-k-mer analogue of kmerH/kmerL and
    // rcH/rcL in Figure 3).  Lane state lives in registers across the whole
    // steady loop; only the canonical results are stored.
    __m128i f01 = _mm_load_si128(reinterpret_cast<const __m128i*>(fwd));
    __m128i f23 = _mm_load_si128(reinterpret_cast<const __m128i*>(fwd + 2));
    __m128i r01 = _mm_load_si128(reinterpret_cast<const __m128i*>(rc));
    __m128i r23 = _mm_load_si128(reinterpret_cast<const __m128i*>(rc + 2));
    const __m128i vmask = _mm_set1_epi64x(static_cast<long long>(mask));
    const __m128i vthree = _mm_set1_epi64x(3);
    const __m128i vshift = _mm_cvtsi32_si128(rc_shift);
    const char* __restrict in0 = seq.data() + seg[0] + k - 1;
    const char* __restrict in1 = seq.data() + seg[1] + k - 1;
    const char* __restrict in2 = seq.data() + seg[2] + k - 1;
    const char* __restrict in3 = seq.data() + seg[3] + k - 1;
    std::uint64_t* __restrict d0 = dst + emit[0];
    std::uint64_t* __restrict d1 = dst + emit[1];
    std::uint64_t* __restrict d2 = dst + emit[2];
    std::uint64_t* __restrict d3 = dst + emit[3];
    for (std::int64_t step = 0; step < common; ++step) {
      const __m128i c01 = _mm_set_epi64x(base_code(in1[step]), base_code(in0[step]));
      const __m128i c23 = _mm_set_epi64x(base_code(in3[step]), base_code(in2[step]));
      f01 = _mm_and_si128(_mm_or_si128(_mm_slli_epi64(f01, 2), c01), vmask);
      f23 = _mm_and_si128(_mm_or_si128(_mm_slli_epi64(f23, 2), c23), vmask);
      r01 = _mm_or_si128(_mm_srli_epi64(r01, 2),
                         _mm_sll_epi64(_mm_sub_epi64(vthree, c01), vshift));
      r23 = _mm_or_si128(_mm_srli_epi64(r23, 2),
                         _mm_sll_epi64(_mm_sub_epi64(vthree, c23), vshift));
      const __m128i canon01 = min_epu64(f01, r01);
      const __m128i canon23 = min_epu64(f23, r23);
      d0[step] = static_cast<std::uint64_t>(_mm_extract_epi64(canon01, 0));
      d1[step] = static_cast<std::uint64_t>(_mm_extract_epi64(canon01, 1));
      d2[step] = static_cast<std::uint64_t>(_mm_extract_epi64(canon23, 0));
      d3[step] = static_cast<std::uint64_t>(_mm_extract_epi64(canon23, 1));
    }
    _mm_store_si128(reinterpret_cast<__m128i*>(fwd), f01);
    _mm_store_si128(reinterpret_cast<__m128i*>(fwd + 2), f23);
    _mm_store_si128(reinterpret_cast<__m128i*>(rc), r01);
    _mm_store_si128(reinterpret_cast<__m128i*>(rc + 2), r23);
  }
#else
  for (std::int64_t step = 0; step < common; ++step) {
    for (int lane = 0; lane < 4; ++lane) {
      const std::uint64_t code =
          base_code(seq[static_cast<std::size_t>(seg[lane] + k - 1 + step)]);
      fwd[lane] = ((fwd[lane] << 2) | code) & mask;
      rc[lane] = (rc[lane] >> 2) | ((3 - code) << rc_shift);
      dst[emit[lane] + static_cast<std::size_t>(step)] =
          fwd[lane] < rc[lane] ? fwd[lane] : rc[lane];
    }
  }
#endif

  // Drain: lanes whose segment is one longer than `common`.
  for (int lane = 0; lane < 4; ++lane) {
    for (std::int64_t step = common; step < seg_len[lane]; ++step) {
      const std::uint64_t code =
          base_code(seq[static_cast<std::size_t>(seg[lane] + k - 1 + step)]);
      fwd[lane] = ((fwd[lane] << 2) | code) & mask;
      rc[lane] = (rc[lane] >> 2) | ((3 - code) << rc_shift);
      dst[emit[lane] + static_cast<std::size_t>(step)] =
          fwd[lane] < rc[lane] ? fwd[lane] : rc[lane];
    }
  }
}

}  // namespace metaprep::kmer
