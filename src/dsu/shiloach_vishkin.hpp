// Shiloach-Vishkin connected components over an explicit edge list.
//
// Baseline for the Table 4 comparison: Flick et al.'s AP_LB partitioner
// parallelizes Shiloach-Vishkin, whose iterative hook-and-jump structure
// needs O(log M) rounds over the data (the paper reports 19-21 iterations
// on HG/LL/MM), whereas METAPREP's distributed Union-Find merges in
// ceil(log P) rounds.  We reproduce the iteration-count contrast directly.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace metaprep::dsu {

struct SVResult {
  std::vector<std::uint32_t> labels;  ///< component label per vertex
  int iterations = 0;                 ///< hook+jump rounds until convergence
};

/// Classic Shiloach-Vishkin: repeat {conditional hooking; pointer jumping}
/// until no label changes.
SVResult shiloach_vishkin(std::uint32_t n,
                          std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

}  // namespace metaprep::dsu
