#include "dsu/dsu.hpp"

#include <numeric>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"

namespace metaprep::dsu {

namespace {

/// Hot-path metric handles, resolved once per process.  With metrics
/// disabled each probe is a relaxed atomic load and a branch.
obs::Histogram& find_path_histogram() {
  static thread_local obs::HistogramHandle h;
  return h.of(obs::metrics(), "dsu.find_path_length");
}

obs::Counter& unions_counter() {
  static thread_local obs::CounterHandle c;
  return c.of(obs::metrics(), "dsu.unions_total");
}

}  // namespace

SerialDSU::SerialDSU(std::uint32_t n)
    : parent_(n), mem_charged_(static_cast<std::uint64_t>(n) * sizeof(std::uint32_t)) {
  std::iota(parent_.begin(), parent_.end(), 0U);
  obs::mem_charge("dsu", mem_charged_);
}

std::uint32_t SerialDSU::find(std::uint32_t x) {
  while (parent_[x] != x) {
    const std::uint32_t grandparent = parent_[parent_[x]];
    parent_[x] = grandparent;  // path splitting
    x = grandparent;
  }
  return x;
}

bool SerialDSU::unite(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t ra = find(a);
  const std::uint32_t rb = find(b);
  if (ra == rb) return false;
  // Union-by-index: lower-index root points at higher-index root.
  if (ra < rb) {
    parent_[ra] = rb;
  } else {
    parent_[rb] = ra;
  }
  return true;
}

std::vector<std::uint32_t> SerialDSU::labels() {
  std::vector<std::uint32_t> out(parent_.size());
  for (std::uint32_t i = 0; i < parent_.size(); ++i) out[i] = find(i);
  return out;
}

void SerialDSU::verify_forest(const char* what) const {
  check::verify_parent_forest(parent_, what);
}

std::uint32_t SerialDSU::component_count() {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < parent_.size(); ++i) {
    if (find(i) == i) ++n;
  }
  return n;
}

AtomicDSU::AtomicDSU(std::uint32_t n)
    : parent_(n), mem_charged_(static_cast<std::uint64_t>(n) * sizeof(std::uint32_t)) {
  reset();
  obs::mem_charge("dsu", mem_charged_);
}

AtomicDSU::AtomicDSU(std::span<const std::uint32_t> parents)
    : parent_(parents.size()), mem_charged_(parents.size_bytes()) {
  for (std::size_t i = 0; i < parents.size(); ++i) {
    parent_[i].store(parents[i], std::memory_order_relaxed);
  }
  obs::mem_charge("dsu", mem_charged_);
}

void AtomicDSU::reset() {
  for (std::uint32_t i = 0; i < parent_.size(); ++i) {
    parent_[i].store(i, std::memory_order_relaxed);
  }
}

std::uint32_t AtomicDSU::find(std::uint32_t x) {
  std::uint64_t steps = 0;
  for (;;) {
    const std::uint32_t p = parent_[x].load(std::memory_order_relaxed);
    if (p == x) break;
    ++steps;
    const std::uint32_t gp = parent_[p].load(std::memory_order_relaxed);
    if (p == gp) {
      x = p;
      break;
    }
    // Path splitting: re-point x at its grandparent.  A racing update may
    // have changed parent_[x]; a failed CAS is harmless (pure optimization).
    std::uint32_t expected = p;
    parent_[x].compare_exchange_weak(expected, gp, std::memory_order_relaxed);
    x = gp;
  }
  find_path_histogram().record(steps);
  return x;
}

bool AtomicDSU::unite(std::uint32_t a, std::uint32_t b) {
  for (;;) {
    std::uint32_t ra = find(a);
    std::uint32_t rb = find(b);
    if (ra == rb) return false;
    if (ra > rb) std::swap(ra, rb);  // ra < rb: ra's parent becomes rb
    std::uint32_t expected = ra;
    if (parent_[ra].compare_exchange_strong(expected, rb, std::memory_order_relaxed)) {
      unions_counter().add(1);
      return true;
    }
    // Lost a race: ra is no longer a root; retry from the new roots.
    a = ra;
    b = rb;
  }
}

bool AtomicDSU::unite_once(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = find(a);
  std::uint32_t rb = find(b);
  if (ra == rb) return true;
  if (ra > rb) std::swap(ra, rb);
  std::uint32_t expected = ra;
  const bool merged =
      parent_[ra].compare_exchange_strong(expected, rb, std::memory_order_relaxed);
  if (merged) unions_counter().add(1);
  return merged;
}

std::vector<std::uint32_t> AtomicDSU::parents() const {
  std::vector<std::uint32_t> out(parent_.size());
  for (std::uint32_t i = 0; i < parent_.size(); ++i) {
    out[i] = parent_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint32_t> AtomicDSU::labels() {
  std::vector<std::uint32_t> out(parent_.size());
  for (std::uint32_t i = 0; i < parent_.size(); ++i) out[i] = find(i);
  return out;
}

std::uint32_t AtomicDSU::component_count() {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < parent_.size(); ++i) {
    if (find(i) == i) ++n;
  }
  return n;
}

void AtomicDSU::verify_forest(const char* what) const {
  check::verify_parent_forest(parents(), what);
}

int process_edges_algorithm1(AtomicDSU& dsu,
                             std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  // Algorithm 1: E_in starts as all edges; every edge that performed a Union
  // (or whose single-try union was contended) goes into E_out for the next
  // iteration, where it is re-verified with fresh Finds.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> in(edges.begin(), edges.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  int iterations = 0;
  while (!in.empty()) {
    ++iterations;
    out.clear();
    for (const auto& [u, v] : in) {
      const std::uint32_t ru = dsu.find(u);
      const std::uint32_t rv = dsu.find(v);
      if (ru != rv) {
        dsu.unite_once(ru, rv);
        out.emplace_back(u, v);  // re-verify next iteration (race condition)
      }
    }
    in.swap(out);
  }
  return iterations;
}

}  // namespace metaprep::dsu
