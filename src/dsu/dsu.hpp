// Disjoint-set (Union-Find) structures for connected components.
//
// LocalCC (paper §3.5) runs a shared-memory parallel Union-Find combining
// ideas from Cybenko et al. and Patwary et al.:
//  * Find uses the *path splitting* optimization (Tarjan & van Leeuwen);
//  * Union uses *union-by-index* — "the parent pointer of the root element
//    with lower index is set to the root element with higher index" — which
//    cannot create cycles even under concurrent updates;
//  * threads process edges without synchronization, buffering the edges that
//    caused a Union and re-verifying them in a next iteration (Algorithm 1).
//
// The paper's plain concurrent stores are a data race (UB in C++), so parent
// entries here are relaxed atomics and the root update is a single CAS; a
// failed CAS leaves the edge "possibly unmerged", which is exactly the state
// Algorithm 1's re-verification loop repairs.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "obs/mem.hpp"

namespace metaprep::dsu {

/// Sequential Union-Find with path splitting and union-by-index.  Reference
/// implementation for tests and the single-threaded code paths.
class SerialDSU {
 public:
  explicit SerialDSU(std::uint32_t n);

  /// Adopt an existing parent-pointer forest (e.g. a component array
  /// received from another rank during MergeCC).  Every entry must be a
  /// valid index.
  explicit SerialDSU(std::vector<std::uint32_t> parents)
      : parent_(std::move(parents)), mem_charged_(parent_.size() * sizeof(std::uint32_t)) {
    obs::mem_charge("dsu", mem_charged_);
  }

  // The "dsu" memory charge follows the parent array's ownership, so copies
  // are disallowed and moves transfer the charge.
  SerialDSU(const SerialDSU&) = delete;
  SerialDSU& operator=(const SerialDSU&) = delete;
  SerialDSU(SerialDSU&& other) noexcept
      : parent_(std::move(other.parent_)),
        mem_charged_(std::exchange(other.mem_charged_, 0)) {}
  SerialDSU& operator=(SerialDSU&& other) noexcept {
    if (this != &other) {
      obs::mem_credit("dsu", mem_charged_);
      parent_ = std::move(other.parent_);
      mem_charged_ = std::exchange(other.mem_charged_, 0);
    }
    return *this;
  }
  ~SerialDSU() { obs::mem_credit("dsu", mem_charged_); }

  /// Move the parent array back out (ends this object's usefulness).
  [[nodiscard]] std::vector<std::uint32_t> take_parents() {
    obs::mem_credit("dsu", mem_charged_);
    mem_charged_ = 0;
    return std::move(parent_);
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }

  std::uint32_t find(std::uint32_t x);

  /// Returns true if a and b were in different components (now merged).
  bool unite(std::uint32_t a, std::uint32_t b);

  /// Component label (root) per element; also usable as an edge list
  /// (i -> label[i]) for the MergeCC step.
  [[nodiscard]] std::vector<std::uint32_t> labels();

  /// Number of distinct components.
  std::uint32_t component_count();

  /// Assert the parent array is a valid forest (bounds + acyclicity);
  /// throws check::CheckError naming the offending node otherwise.  @p what
  /// labels the structure in the report.
  void verify_forest(const char* what = "SerialDSU") const;

#if METAPREP_CHECKED
  /// Test hook: corrupt the forest directly (e.g. inject a parent cycle) to
  /// prove verify_forest catches it.  Compiled out with METAPREP_CHECKED=0.
  void debug_set_parent(std::uint32_t x, std::uint32_t p) { parent_[x] = p; }
#endif

 private:
  std::vector<std::uint32_t> parent_;
  std::uint64_t mem_charged_ = 0;  ///< bytes charged to the "dsu" subsystem
};

/// Concurrent Union-Find used by LocalCC.  All methods are safe to call from
/// multiple threads simultaneously.
class AtomicDSU {
 public:
  explicit AtomicDSU(std::uint32_t n);

  /// Adopt an existing parent-pointer forest (e.g. the merged global forest
  /// on rank 0, so the final flatten can run find() from many threads).
  /// Every entry must be a valid index.
  explicit AtomicDSU(std::span<const std::uint32_t> parents);

  AtomicDSU(const AtomicDSU&) = delete;
  AtomicDSU& operator=(const AtomicDSU&) = delete;
  ~AtomicDSU() { obs::mem_credit("dsu", mem_charged_); }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }

  /// Find with path splitting (each node on the path is re-pointed at its
  /// grandparent); wait-free in practice under concurrent unions.
  std::uint32_t find(std::uint32_t x);

  /// Linearizable union (CAS retry loop).  Returns true if this call merged
  /// two distinct components.
  bool unite(std::uint32_t a, std::uint32_t b);

  /// Single-attempt union used by Algorithm 1: one CAS try, no retry.
  /// Returns true if the CAS succeeded or the roots were already equal;
  /// false means "contended, re-verify later".
  bool unite_once(std::uint32_t a, std::uint32_t b);

  /// Snapshot of parent pointers (quiescent use only).
  [[nodiscard]] std::vector<std::uint32_t> parents() const;

  /// Fully-compressed component label per element (quiescent use only).
  std::vector<std::uint32_t> labels();

  std::uint32_t component_count();

  /// Reset to singleton components.
  void reset();

  /// Assert the (quiescent) parent snapshot is a valid forest; throws
  /// check::CheckError naming the offending node otherwise.
  void verify_forest(const char* what = "AtomicDSU") const;

#if METAPREP_CHECKED
  /// Test hook: corrupt the forest directly (see SerialDSU::debug_set_parent).
  void debug_set_parent(std::uint32_t x, std::uint32_t p) {
    parent_[x].store(p, std::memory_order_relaxed);
  }
#endif

 private:
  std::vector<std::atomic<std::uint32_t>> parent_;
  std::uint64_t mem_charged_ = 0;  ///< bytes charged to the "dsu" subsystem
};

/// Algorithm 1 of the paper, for one thread's share of the edges: process
/// all edges; edges whose union succeeded are buffered and re-verified in
/// subsequent iterations until no verification produces further work.
/// Returns the number of iterations executed (the paper observes the total
/// time is dominated by the first).
int process_edges_algorithm1(AtomicDSU& dsu,
                             std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

}  // namespace metaprep::dsu
