#include "dsu/shiloach_vishkin.hpp"

#include <numeric>

namespace metaprep::dsu {

SVResult shiloach_vishkin(std::uint32_t n,
                          std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  SVResult result;
  auto& p = result.labels;
  p.resize(n);
  std::iota(p.begin(), p.end(), 0U);
  if (n == 0) return result;

  // Synchronous (PRAM-style) iteration: hooking decisions in each round read
  // only the previous round's parent array, exactly as the parallel
  // algorithm would.  A sequential in-place variant would propagate labels
  // along the edge order and collapse long paths in one sweep, hiding the
  // O(log n) round behavior that the AP_LB comparison (Table 4) is about.
  std::vector<std::uint32_t> old_p(n);
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    old_p = p;

    // Hooking: roots (in the snapshot) hook onto the smallest neighboring
    // label; conflicting hooks resolve to the minimum.
    for (const auto& [u, v] : edges) {
      const std::uint32_t lu = old_p[u];
      const std::uint32_t lv = old_p[v];
      if (lu == lv) continue;
      if (old_p[lu] == lu && lv < lu && lv < p[lu]) {
        p[lu] = lv;
        changed = true;
      }
      if (old_p[lv] == lv && lu < lv && lu < p[lv]) {
        p[lv] = lu;
        changed = true;
      }
    }

    // Pointer jumping: halve tree heights.  Also snapshot-consistent — an
    // in-place sequential sweep would cascade (p[i] reads already-jumped
    // parents) and flatten any chain in a single round.
    old_p = p;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t pp = old_p[old_p[i]];
      if (p[i] != pp) {
        p[i] = pp;
        changed = true;
      }
    }
  }

  // Final flatten so labels are roots.
  for (std::uint32_t i = 0; i < n; ++i) {
    while (p[i] != p[p[i]]) p[i] = p[p[i]];
  }
  return result;
}

}  // namespace metaprep::dsu
