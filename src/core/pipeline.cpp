#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/memory_model.hpp"
#include "core/plan.hpp"
#include "dsu/dsu.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "mpsim/comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sort/radix.hpp"
#include "util/memusage.hpp"
#include "util/prefix_sum.hpp"
#include "util/thread_team.hpp"

namespace metaprep::core {

namespace {

using util::StepTimes;
using util::ThreadTeam;
using util::WallTimer;

/// Tuple buffers in SoA layout.  keys_hi is used only for k > 32 ("wide"):
/// the 12-byte tuple becomes the paper's 20-byte tuple (§4.4).
struct TupleBuffer {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> keys_hi;
  std::vector<std::uint32_t> vals;
  bool wide = false;

  void resize(std::size_t n) {
    keys.resize(n);
    vals.resize(n);
    if (wide) keys_hi.resize(n);
  }
  [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return keys.size() * (wide ? 20 : 12);
  }
  void swap(TupleBuffer& other) noexcept {
    keys.swap(other.keys);
    keys_hi.swap(other.keys_hi);
    vals.swap(other.vals);
    std::swap(wide, other.wide);
  }
};

/// counts[i] += sum of row[b] for b in [bounds[i], bounds[i+1]), computed in
/// one scan over the row's relevant bin range.
void accumulate_bounded_counts(const std::uint32_t* row,
                               std::span<const std::uint32_t> bounds,
                               std::span<std::uint64_t> counts) {
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::uint32_t b = bounds[i]; b < bounds[i + 1]; ++b) acc += row[b];
    counts[i] += acc;
  }
}

/// Lookup table bin -> part index for a boundary vector covering
/// [bounds.front(), bounds.back()).
std::vector<std::uint16_t> bin_owner_table(std::span<const std::uint32_t> bounds) {
  const std::uint32_t lo = bounds.front();
  const std::uint32_t hi = bounds.back();
  std::vector<std::uint16_t> table(hi - lo, 0);
  for (std::size_t part = 0; part + 1 < bounds.size(); ++part) {
    for (std::uint32_t b = bounds[part]; b < bounds[part + 1]; ++b) {
      table[b - lo] = static_cast<std::uint16_t>(part);
    }
  }
  return table;
}

/// Read-ID sentinel carried by tuples that pad under-filled send blocks
/// (lenient parsing skipped records the chunk histograms had counted).
/// LocalCC never forms an edge through it.
constexpr std::uint32_t kInvalidRead = 0xFFFFFFFFu;

struct RankShared {
  StepTimes times;
  std::vector<std::string> output_files;
  int cc_iterations = 0;
  std::uint64_t tuples = 0;
  std::uint64_t max_buffer_bytes = 0;
  std::uint64_t merge_comm_bytes = 0;
};

}  // namespace

PipelineResult run_metaprep(const DatasetIndex& index, const MetaprepConfig& config) {
  const int k = config.k;
  if (k != index.k)
    throw std::invalid_argument("run_metaprep: config.k differs from the index's k");
  if (k < index.mer_hist.m || k > kmer::kMaxK128)
    throw std::invalid_argument("run_metaprep: k out of range");
  const int P = config.num_ranks;
  const int T = config.threads_per_rank;
  if (P < 1 || T < 1) throw std::invalid_argument("run_metaprep: P and T must be >= 1");
  const bool wide = k > kmer::kMaxK64;
  const int tuple_bytes = wide ? 20 : 12;
  const std::uint32_t R = index.total_reads;
  const int m = index.mer_hist.m;

  int S = config.num_passes;
  if (S == 0) {
    MemoryModelInput mm;
    mm.total_tuples = index.mer_hist.total();
    mm.total_reads = R;
    mm.num_chunks = index.part.num_chunks();
    mm.max_chunk_bytes = index.max_chunk_bytes();
    mm.m = m;
    mm.num_ranks = P;
    mm.threads_per_rank = T;
    mm.tuple_bytes = tuple_bytes;
    S = min_passes_for_budget(mm, config.memory_budget_bytes);
    if (S == 0)
      throw std::runtime_error("run_metaprep: memory budget too small for any pass count");
  }

  const PassPlan plan(index.mer_hist, S, P, T);
  const ChunkAssignment ca(index.part.num_chunks(), P, T);
  const std::size_t nbins = index.mer_hist.counts.size();
  (void)nbins;

  // Observability: when the config names output files, this run owns the
  // global tracer/metrics (cleared + enabled here, exported after the run).
  obs::TraceSession& tr = obs::TraceSession::global();
  const bool trace_was_enabled = tr.enabled();
  if (!config.trace_out.empty()) {
    tr.clear();
    tr.enable();
  }
  const bool metrics_were_enabled = obs::metrics().enabled();
  if (!config.metrics_out.empty()) {
    obs::metrics().reset_values();
    obs::metrics().set_enabled(true);
  }
  // Hot-path metric handles resolved once (registry lookup takes a mutex).
  obs::Counter& m_tuples = obs::metrics().counter("pipeline.tuples_total");
  obs::Counter& m_cc_edges = obs::metrics().counter("pipeline.cc_edges_total");
  obs::Gauge& m_rss = obs::metrics().gauge("mem.rss_peak");
  // Manual span markers for steps whose lifetime doesn't match a C++ scope.
  auto span_begin = [&tr]() { return tr.enabled() ? tr.now_us() : -1.0; };
  auto span_end = [&tr](const char* name, double t0) {
    if (t0 >= 0.0) tr.record(name, t0, tr.now_us() - t0);
  };

  mpsim::World world(P, config.cost_model);
  std::vector<RankShared> shared(static_cast<std::size_t>(P));
  std::vector<std::uint32_t> final_labels(R);
  std::uint32_t largest_root_shared = 0;

  world.run([&](mpsim::Comm& comm) {
    const int p = comm.rank();
    obs::TraceSession::set_thread_identity(p, 0);
    RankShared& my = shared[static_cast<std::size_t>(p)];
    ThreadTeam team(T);
    dsu::AtomicDSU local_cc(R);

    TupleBuffer kmer_out;
    TupleBuffer kmer_in;
    kmer_out.wide = wide;
    kmer_in.wide = wide;

    for (int s = 0; s < S; ++s) {
      const double pass_t0 = span_begin();
      const BinRange my_range = plan.rank_range(s, p);
      const auto& rank_bounds = plan.rank_bounds(s);
      const auto& thread_bounds = plan.thread_bounds(s, p);

      // ---- Send-side offsets (§3.2.2): tuples generated by each of my
      // threads destined to each rank, from the chunk histograms. ----
      std::vector<std::uint64_t> count_send(static_cast<std::size_t>(T) * P, 0);  // [t][dest]
      for (int t = 0; t < T; ++t) {
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          accumulate_bounded_counts(
              index.part.row(c), rank_bounds,
              std::span(count_send).subspan(static_cast<std::size_t>(t) * P, P));
        }
      }
      std::vector<std::uint64_t> send_offsets(static_cast<std::size_t>(P) + 1, 0);
      for (int d = 0; d < P; ++d) {
        std::uint64_t tot = 0;
        for (int t = 0; t < T; ++t) tot += count_send[static_cast<std::size_t>(t) * P + d];
        send_offsets[static_cast<std::size_t>(d) + 1] =
            send_offsets[static_cast<std::size_t>(d)] + tot;
      }
      // Per-(thread, dest) write cursors within the dest blocks.
      std::vector<std::uint64_t> cursor(static_cast<std::size_t>(T) * P, 0);
      for (int d = 0; d < P; ++d) {
        std::uint64_t off = send_offsets[static_cast<std::size_t>(d)];
        for (int t = 0; t < T; ++t) {
          cursor[static_cast<std::size_t>(t) * P + d] = off;
          off += count_send[static_cast<std::size_t>(t) * P + d];
        }
      }
      const std::vector<std::uint64_t> cursor_start = cursor;
      const std::uint64_t total_out = send_offsets.back();
      kmer_out.resize(total_out);
      my.tuples += total_out;
      m_tuples.add(total_out);

      // ---- Recv-side offsets (§3.3): tuples arriving from each source
      // rank's threads that fall in my k-mer range. ----
      std::vector<std::uint64_t> count_recv(static_cast<std::size_t>(P) * T, 0);  // [src][t']
      const std::array<std::uint32_t, 2> my_bounds_arr{my_range.begin, my_range.end};
      for (int q = 0; q < P; ++q) {
        for (int t2 = 0; t2 < T; ++t2) {
          std::uint64_t acc = 0;
          for (std::uint32_t c = ca.thread_begin(q, t2); c < ca.thread_end(q, t2); ++c) {
            std::uint64_t one = 0;
            accumulate_bounded_counts(index.part.row(c), my_bounds_arr, std::span(&one, 1));
            acc += one;
          }
          count_recv[static_cast<std::size_t>(q) * T + t2] = acc;
        }
      }
      std::vector<std::uint64_t> recv_offsets(static_cast<std::size_t>(P) + 1, 0);
      for (int q = 0; q < P; ++q) {
        std::uint64_t tot = 0;
        for (int t2 = 0; t2 < T; ++t2) tot += count_recv[static_cast<std::size_t>(q) * T + t2];
        recv_offsets[static_cast<std::size_t>(q) + 1] =
            recv_offsets[static_cast<std::size_t>(q)] + tot;
      }
      const std::uint64_t total_in = recv_offsets.back();

      // ---- KmerGen: threads enumerate canonical k-mers from their chunks
      // and write tuples at precomputed offsets, no synchronization. ----
      const std::vector<std::uint16_t> dest_of_bin = bin_owner_table(rank_bounds);
      const std::uint32_t pass_lo = plan.pass_range(s).begin;
      const std::uint32_t pass_hi = plan.pass_range(s).end;
      std::vector<double> io_seconds(static_cast<std::size_t>(T), 0.0);
      std::vector<double> gen_seconds(static_cast<std::size_t>(T), 0.0);
      const bool substitute_components = config.cc_opt && s > 0;

      team.run([&](int t) {
        obs::TraceSession::set_thread_identity(p, t);
        std::uint64_t* cur = cursor.data() + static_cast<std::size_t>(t) * P;
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          const ChunkRecord& chunk = index.part.chunks[c];
          WallTimer io_timer;
          const double io_t0 = span_begin();
          const auto buffer =
              io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
          span_end("KmerGen-I/O", io_t0);
          io_seconds[static_cast<std::size_t>(t)] += io_timer.seconds();

          WallTimer gen_timer;
          const double gen_t0 = span_begin();
          std::uint32_t read_id = chunk.first_read_id;
          io::for_each_record_in_buffer(
              std::string_view(buffer.data(), buffer.size()),
              [&](std::string_view, std::string_view seq, std::string_view) {
                // LocalCC-Opt (§3.5.1): from pass 2 on, enumerate the
                // component ID instead of the read ID for better locality.
                const std::uint32_t value =
                    substitute_components ? local_cc.find(read_id) : read_id;
                if (!wide) {
                  kmer::for_each_canonical_kmer64(
                      seq, k, [&](std::uint64_t km, std::size_t) {
                        const std::uint32_t bin = kmer::prefix_bin64(km, k, m);
                        if (bin < pass_lo || bin >= pass_hi) return;
                        const std::uint16_t d = dest_of_bin[bin - pass_lo];
                        const std::uint64_t at = cur[d]++;
                        kmer_out.keys[at] = km;
                        kmer_out.vals[at] = value;
                      });
                } else {
                  kmer::for_each_canonical_kmer128(
                      seq, k, [&](kmer::Kmer128 km, std::size_t) {
                        const std::uint32_t bin = kmer::prefix_bin128(km, k, m);
                        if (bin < pass_lo || bin >= pass_hi) return;
                        const std::uint16_t d = dest_of_bin[bin - pass_lo];
                        const std::uint64_t at = cur[d]++;
                        kmer_out.keys[at] = km.lo;
                        kmer_out.keys_hi[at] = km.hi;
                        kmer_out.vals[at] = value;
                      });
                }
                ++read_id;
              },
              io::ParseOptions{config.parse_mode, index.files[chunk.file], chunk.offset});
          span_end("KmerGen", gen_t0);
          gen_seconds[static_cast<std::size_t>(t)] += gen_timer.seconds();
        }
      });
      my.times.add("KmerGen-I/O", *std::max_element(io_seconds.begin(), io_seconds.end()));
      my.times.add("KmerGen", *std::max_element(gen_seconds.begin(), gen_seconds.end()));

      // Lenient parsing may have skipped records that the (clean-data) chunk
      // histograms counted, leaving some (thread, dest) blocks under-filled.
      // The exchange geometry is precomputed on both sides, so the gap slots
      // ship regardless — fill them with sentinel tuples whose bin falls in
      // the destination's range (so its partition step stays in bounds) and
      // whose value is kInvalidRead (so LocalCC ignores them).
      for (int t = 0; t < T; ++t) {
        for (int d = 0; d < P; ++d) {
          const std::size_t td = static_cast<std::size_t>(t) * P + d;
          const std::uint64_t block_end = cursor_start[td] + count_send[td];
          if (cursor[td] == block_end) continue;
          const auto bin = static_cast<std::uint64_t>(rank_bounds[static_cast<std::size_t>(d)]);
          const int shift = 2 * (k - m);
          std::uint64_t s_lo, s_hi;
          if (!wide) {
            s_lo = bin << shift;
            s_hi = 0;
          } else if (shift >= 64) {
            s_hi = bin << (shift - 64);
            s_lo = 0;
          } else {
            s_lo = bin << shift;
            s_hi = bin >> (64 - shift);
          }
          for (std::uint64_t at = cursor[td]; at < block_end; ++at) {
            kmer_out.keys[at] = s_lo;
            if (wide) kmer_out.keys_hi[at] = s_hi;
            kmer_out.vals[at] = kInvalidRead;
          }
          cursor[td] = block_end;
        }
      }

      // ---- KmerGen-Comm: staged All-to-all of the tuple arrays. ----
      {
        obs::TraceSpan comm_span("KmerGen-Comm");
        WallTimer comm_timer;
        if (P == 1) {
          kmer_in.swap(kmer_out);
          kmer_out.resize(kmer_in.size());
        } else {
          kmer_in.resize(total_in);
          const int tag_base = (s * 3) * (P + 1) + 1000;
          auto byte_offsets = [&](std::span<const std::uint64_t> elems, std::size_t esize) {
            std::vector<std::uint64_t> out(elems.size());
            for (std::size_t i = 0; i < elems.size(); ++i) out[i] = elems[i] * esize;
            return out;
          };
          const auto so8 = byte_offsets(send_offsets, 8);
          const auto ro8 = byte_offsets(recv_offsets, 8);
          const auto so4 = byte_offsets(send_offsets, 4);
          const auto ro4 = byte_offsets(recv_offsets, 4);
          comm.alltoallv_staged(kmer_out.keys.data(), so8, kmer_in.keys.data(), ro8, tag_base);
          comm.alltoallv_staged(kmer_out.vals.data(), so4, kmer_in.vals.data(), ro4,
                                tag_base + (P + 1));
          if (wide) {
            comm.alltoallv_staged(kmer_out.keys_hi.data(), so8, kmer_in.keys_hi.data(), ro8,
                                  tag_base + 2 * (P + 1));
          }
          kmer_out.resize(total_in);  // becomes the partition/sort buffer
        }
        my.times.add("KmerGen-Comm", comm_timer.seconds());
      }
      my.max_buffer_bytes = std::max(my.max_buffer_bytes, kmer_in.bytes() + kmer_out.bytes());

      // ---- LocalSort (§3.4): parallel range partitioning into T disjoint
      // thread ranges, then serial radix sort per thread. ----
      {
        const double sort_t0 = span_begin();
        WallTimer sort_timer;
        // Source blocks: one per (src rank, src thread), layout known from
        // the recv offsets; bin distribution known from FASTQPart.
        const int nblocks = P * T;
        std::vector<std::uint64_t> block_start(static_cast<std::size_t>(nblocks) + 1, 0);
        {
          std::size_t bi = 0;
          std::uint64_t off = 0;
          for (int q = 0; q < P; ++q) {
            for (int t2 = 0; t2 < T; ++t2) {
              block_start[bi++] = off;
              off += count_recv[static_cast<std::size_t>(q) * T + t2];
            }
          }
          block_start[static_cast<std::size_t>(nblocks)] = off;
        }
        // Scatter counts per (block, dest thread range).
        std::vector<std::uint64_t> count_part(static_cast<std::size_t>(nblocks) * T, 0);
        {
          std::size_t bi = 0;
          for (int q = 0; q < P; ++q) {
            for (int t2 = 0; t2 < T; ++t2, ++bi) {
              for (std::uint32_t c = ca.thread_begin(q, t2); c < ca.thread_end(q, t2); ++c) {
                accumulate_bounded_counts(
                    index.part.row(c), thread_bounds,
                    std::span(count_part).subspan(bi * T, static_cast<std::size_t>(T)));
              }
            }
          }
        }
        // Dest-range starts and per-(block, dest) cursors.
        std::vector<std::uint64_t> dest_start(static_cast<std::size_t>(T) + 1, 0);
        for (int t = 0; t < T; ++t) {
          std::uint64_t tot = 0;
          for (int b = 0; b < nblocks; ++b) tot += count_part[static_cast<std::size_t>(b) * T + t];
          dest_start[static_cast<std::size_t>(t) + 1] = dest_start[static_cast<std::size_t>(t)] + tot;
        }
        std::vector<std::uint64_t> part_cursor(static_cast<std::size_t>(nblocks) * T, 0);
        for (int t = 0; t < T; ++t) {
          std::uint64_t off = dest_start[static_cast<std::size_t>(t)];
          for (int b = 0; b < nblocks; ++b) {
            part_cursor[static_cast<std::size_t>(b) * T + t] = off;
            off += count_part[static_cast<std::size_t>(b) * T + t];
          }
        }

        const std::vector<std::uint16_t> thread_of_bin = bin_owner_table(thread_bounds);
        const std::uint32_t range_lo = my_range.begin;
        const auto block_bounds = util::split_range(static_cast<std::size_t>(nblocks), T);

        // Phase 1: parallel partition kmer_in -> kmer_out.
        team.run([&](int t) {
          for (std::size_t b = block_bounds[static_cast<std::size_t>(t)];
               b < block_bounds[static_cast<std::size_t>(t) + 1]; ++b) {
            std::uint64_t* cur = part_cursor.data() + b * T;
            for (std::uint64_t i = block_start[b]; i < block_start[b + 1]; ++i) {
              const std::uint32_t bin =
                  wide ? kmer::prefix_bin128({kmer_in.keys_hi[i], kmer_in.keys[i]}, k, m)
                       : kmer::prefix_bin64(kmer_in.keys[i], k, m);
              const std::uint16_t d = thread_of_bin[bin - range_lo];
              const std::uint64_t at = cur[d]++;
              kmer_out.keys[at] = kmer_in.keys[i];
              kmer_out.vals[at] = kmer_in.vals[i];
              if (wide) kmer_out.keys_hi[at] = kmer_in.keys_hi[i];
            }
          }
        });

        // Phase 2: serial radix sort per thread range, scratch = kmer_in
        // (the paper reuses the send buffer as the out-of-place buffer).
        team.run([&](int t) {
          const std::uint64_t lo = dest_start[static_cast<std::size_t>(t)];
          const std::uint64_t hi = dest_start[static_cast<std::size_t>(t) + 1];
          const std::size_t n = hi - lo;
          if (n == 0) return;
          if (!wide) {
            sort::radix_sort_kv64(std::span(kmer_out.keys).subspan(lo, n),
                                  std::span(kmer_out.vals).subspan(lo, n),
                                  std::span(kmer_in.keys).subspan(lo, n),
                                  std::span(kmer_in.vals).subspan(lo, n), 2 * k,
                                  config.sort_digit_bits);
          } else {
            sort::radix_sort_kv128(std::span(kmer_out.keys_hi).subspan(lo, n),
                                   std::span(kmer_out.keys).subspan(lo, n),
                                   std::span(kmer_out.vals).subspan(lo, n),
                                   std::span(kmer_in.keys_hi).subspan(lo, n),
                                   std::span(kmer_in.keys).subspan(lo, n),
                                   std::span(kmer_in.vals).subspan(lo, n), 2 * k,
                                   config.sort_digit_bits);
          }
        });
        my.times.add("LocalSort", sort_timer.seconds());
        span_end("LocalSort", sort_t0);

        // ---- LocalCC (§3.5, Algorithm 1): runs of equal k-mers become
        // read-graph edges; union-find with buffered re-verification. ----
        const double cc_t0 = span_begin();
        WallTimer cc_timer;
        std::vector<int> thread_iters(static_cast<std::size_t>(T), 0);
        team.run([&](int t) {
          const std::uint64_t lo = dest_start[static_cast<std::size_t>(t)];
          const std::uint64_t hi = dest_start[static_cast<std::size_t>(t) + 1];
          std::vector<std::pair<std::uint32_t, std::uint32_t>> pending;
          std::uint64_t i = lo;
          while (i < hi) {
            std::uint64_t j = i + 1;
            if (!wide) {
              while (j < hi && kmer_out.keys[j] == kmer_out.keys[i]) ++j;
            } else {
              while (j < hi && kmer_out.keys[j] == kmer_out.keys[i] &&
                     kmer_out.keys_hi[j] == kmer_out.keys_hi[i])
                ++j;
            }
            const std::uint64_t freq = j - i;
            if (config.filter.accepts(freq)) {
              for (std::uint64_t x = i + 1; x < j; ++x) {
                const std::uint32_t u = kmer_out.vals[x - 1];
                const std::uint32_t v = kmer_out.vals[x];
                if (u == v) continue;
                if (u == kInvalidRead || v == kInvalidRead) continue;
                const std::uint32_t ru = local_cc.find(u);
                const std::uint32_t rv = local_cc.find(v);
                if (ru != rv) {
                  local_cc.unite_once(ru, rv);
                  pending.emplace_back(u, v);
                }
              }
            }
            i = j;
          }
          thread_iters[static_cast<std::size_t>(t)] =
              1 + dsu::process_edges_algorithm1(local_cc, pending);
          m_cc_edges.add(pending.size());
        });
        my.times.add("LocalCC", cc_timer.seconds());
        span_end("LocalCC", cc_t0);
        my.cc_iterations =
            std::max(my.cc_iterations,
                     *std::max_element(thread_iters.begin(), thread_iters.end()));
      }
      m_rss.set_max(static_cast<double>(util::current_rss_bytes()));
      span_end("Pass", pass_t0);
    }  // passes

    // ---- MergeCC (§3.6): combine rank-local component arrays. ----
    std::vector<std::uint32_t> parents = local_cc.parents();
    if (config.merge_strategy == MergeStrategy::kPairwiseTree) {
      // The paper's method (Figure 4): pairwise merge over ceil(log P)
      // rounds; rank 0 ends with the global components.
      constexpr int kMergeTag = 1 << 20;
      int round = 0;
      for (int step = 1; step < P; step <<= 1, ++round) {
        if (p % (2 * step) == step) {
          const double send_t0 = span_begin();
          WallTimer send_timer;
          comm.send(p - step, kMergeTag + round, parents.data(),
                    parents.size() * sizeof(std::uint32_t));
          my.times.add("Merge-Comm", send_timer.seconds());
          span_end("Merge-Comm", send_t0);
          my.merge_comm_bytes += parents.size() * sizeof(std::uint32_t);
          break;  // this rank is inactive in later rounds
        }
        if (p % (2 * step) == 0 && p + step < P) {
          const double recv_t0 = span_begin();
          WallTimer recv_timer;
          std::vector<std::uint32_t> incoming(R);
          comm.recv(p + step, kMergeTag + round, incoming.data(),
                    incoming.size() * sizeof(std::uint32_t));
          my.times.add("Merge-Comm", recv_timer.seconds());
          span_end("Merge-Comm", recv_t0);
          const double merge_t0 = span_begin();
          WallTimer merge_timer;
          // Each entry is an edge (i, p'[i]); union into the local forest.
          dsu::SerialDSU merged(std::move(parents));
          for (std::uint32_t i = 0; i < R; ++i) {
            if (incoming[i] != i) merged.unite(i, incoming[i]);
          }
          parents = merged.take_parents();
          my.times.add("MergeCC", merge_timer.seconds());
          span_end("MergeCC", merge_t0);
        }
      }
    } else if (P > 1) {
      // Contraction (§5 future work, after Iverson et al.): ship only the
      // non-trivial (vertex, parent) pairs — the contracted component
      // graph — to rank 0 in a single round.
      constexpr int kContractTag = (1 << 20) + 4096;
      if (p != 0) {
        const double send_t0 = span_begin();
        WallTimer send_timer;
        std::vector<std::uint32_t> edges;
        for (std::uint32_t i = 0; i < R; ++i) {
          if (parents[i] != i) {
            edges.push_back(i);
            edges.push_back(parents[i]);
          }
        }
        comm.send(0, kContractTag, edges.data(), edges.size() * sizeof(std::uint32_t));
        my.times.add("Merge-Comm", send_timer.seconds());
        span_end("Merge-Comm", send_t0);
        my.merge_comm_bytes += edges.size() * sizeof(std::uint32_t);
      } else {
        dsu::SerialDSU merged(std::move(parents));
        for (int q = 1; q < P; ++q) {
          const double recv_t0 = span_begin();
          WallTimer recv_timer;
          const auto payload = comm.recv_any_size(q, kContractTag);
          my.times.add("Merge-Comm", recv_timer.seconds());
          span_end("Merge-Comm", recv_t0);
          const double merge_t0 = span_begin();
          WallTimer merge_timer;
          std::vector<std::uint32_t> edges(payload.size() / sizeof(std::uint32_t));
          std::memcpy(edges.data(), payload.data(), payload.size());
          for (std::size_t i = 0; i + 1 < edges.size(); i += 2) {
            merged.unite(edges[i], edges[i + 1]);
          }
          my.times.add("MergeCC", merge_timer.seconds());
          span_end("MergeCC", merge_t0);
        }
        parents = merged.take_parents();
      }
    }

    // Rank 0 flattens labels and ranks component sizes; the labels and the
    // top-N component roots are broadcast to all ranks for the output step
    // ("The global components list in Rank 0 is broadcast to all other
    // tasks", §3.6).
    const int top_n = std::max(1, config.output_top_components);
    std::vector<std::uint32_t> labels(R);
    std::vector<std::uint32_t> top_roots(static_cast<std::size_t>(top_n), 0xFFFFFFFFu);
    if (p == 0) {
      const double flatten_t0 = span_begin();
      WallTimer flatten_timer;
      dsu::SerialDSU final_dsu(std::move(parents));
      std::vector<std::uint32_t> sizes(R, 0);
      for (std::uint32_t i = 0; i < R; ++i) {
        labels[i] = final_dsu.find(i);
        ++sizes[labels[i]];
      }
      // Top-N roots by component size (N is small; partial selection).
      std::vector<std::uint32_t> roots;
      for (std::uint32_t i = 0; i < R; ++i) {
        if (sizes[i] > 0) roots.push_back(i);
      }
      const auto take = std::min<std::size_t>(static_cast<std::size_t>(top_n), roots.size());
      std::partial_sort(roots.begin(), roots.begin() + static_cast<std::ptrdiff_t>(take),
                        roots.end(), [&](std::uint32_t a, std::uint32_t b) {
                          return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
                        });
      for (std::size_t i = 0; i < take; ++i) top_roots[i] = roots[i];
      final_labels = labels;
      largest_root_shared = top_roots[0];
      my.times.add("MergeCC", flatten_timer.seconds());
      span_end("MergeCC", flatten_t0);
    }
    {
      obs::TraceSpan bc_span("Merge-Comm");
      WallTimer bc_timer;
      comm.broadcast(labels.data(), labels.size() * sizeof(std::uint32_t), 0);
      comm.broadcast(top_roots.data(), top_roots.size() * sizeof(std::uint32_t), 0);
      if (p != 0) my.times.add("Merge-Comm", bc_timer.seconds());
    }

    // ---- CC-I/O (§3.6): each thread extracts reads from its FASTQ chunks
    // and writes them to per-thread output files (largest component vs the
    // rest). ----
    if (config.write_output) {
      obs::TraceSpan io_span("CC-I/O");
      WallTimer io_timer;
      std::vector<std::vector<std::string>> thread_files(static_cast<std::size_t>(T));
      team.run([&](int t) {
        if (ca.thread_begin(p, t) >= ca.thread_end(p, t)) return;
        const std::string base = config.output_dir + "/" + index.name + ".p" +
                                 std::to_string(p) + ".t" + std::to_string(t);
        // One writer per top component plus the remainder.  N == 1 keeps
        // the paper's ".lc"/".other" naming.
        std::vector<std::string> names;
        std::vector<std::unique_ptr<io::FastqWriter>> writers;
        for (int j = 0; j < top_n; ++j) {
          if (top_roots[static_cast<std::size_t>(j)] == 0xFFFFFFFFu) break;
          names.push_back(base + (top_n == 1 ? ".lc" : ".c" + std::to_string(j)) + ".fastq");
          writers.push_back(std::make_unique<io::FastqWriter>(names.back()));
        }
        names.push_back(base + ".other.fastq");
        writers.push_back(std::make_unique<io::FastqWriter>(names.back()));
        const std::size_t other_slot = writers.size() - 1;

        auto slot_of = [&](std::uint32_t root) -> std::size_t {
          for (std::size_t j = 0; j < other_slot; ++j) {
            if (top_roots[j] == root) return j;
          }
          return other_slot;
        };

        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          const ChunkRecord& chunk = index.part.chunks[c];
          const auto buffer =
              io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
          std::uint32_t read_id = chunk.first_read_id;
          io::for_each_record_in_buffer(
              std::string_view(buffer.data(), buffer.size()),
              [&](std::string_view id, std::string_view seq, std::string_view qual) {
                writers[slot_of(labels[read_id])]->write(id, seq, qual);
                ++read_id;
              },
              io::ParseOptions{config.parse_mode, index.files[chunk.file], chunk.offset});
        }
        // Explicit close so a failed flush (e.g. ENOSPC) surfaces as a typed
        // Error instead of being swallowed by the destructor.
        for (auto& w : writers) w->close();
        writers.clear();
        thread_files[static_cast<std::size_t>(t)] = std::move(names);
      });
      for (auto& files : thread_files) {
        for (auto& f : files) my.output_files.push_back(std::move(f));
      }
      my.times.add("CC-I/O", io_timer.seconds());
    }
  });

  // ---- Assemble the result. ----
  PipelineResult result;
  result.num_reads = R;
  result.labels = std::move(final_labels);
  result.passes_used = S;
  result.largest_root = largest_root_shared;
  {
    std::vector<std::uint64_t> sizes(R, 0);
    for (std::uint32_t l : result.labels) ++sizes[l];
    std::vector<std::uint64_t> nonzero;
    for (std::uint64_t v : sizes) {
      if (v > 0) nonzero.push_back(v);
    }
    result.num_components = nonzero.size();
    result.largest_size = R > 0 ? sizes[result.largest_root] : 0;
    result.largest_fraction =
        R > 0 ? static_cast<double>(result.largest_size) / static_cast<double>(R) : 0.0;
    std::sort(nonzero.begin(), nonzero.end(), std::greater<>());
    nonzero.resize(std::min<std::size_t>(nonzero.size(), 10));
    result.top_component_sizes = std::move(nonzero);
  }
  for (auto& rs : shared) {
    result.step_times.merge_max(rs.times);
    result.rank_times.push_back(rs.times);
    result.total_tuples += rs.tuples;
    result.merge_comm_bytes += rs.merge_comm_bytes;
    result.max_tuple_buffer_bytes = std::max(result.max_tuple_buffer_bytes, rs.max_buffer_bytes);
    for (auto& f : rs.output_files) result.output_files.push_back(std::move(f));
    result.cc_iterations_max = std::max(result.cc_iterations_max, rs.cc_iterations);
  }
  result.traffic_matrix = world.traffic_matrix();
  result.total_traffic_bytes = world.total_traffic_bytes();
  result.message_count = world.message_count();
  result.sim_comm_seconds = world.max_simulated_comm_seconds();

  // Publish run-level metrics and export the requested artifacts.
  {
    obs::MetricsRegistry& m = obs::metrics();
    m.gauge("pipeline.passes").set(static_cast<double>(result.passes_used));
    m.gauge("pipeline.components").set(static_cast<double>(result.num_components));
    m.gauge("pipeline.largest_fraction").set(result.largest_fraction);
    m.gauge("pipeline.max_tuple_buffer_bytes")
        .set_max(static_cast<double>(result.max_tuple_buffer_bytes));
    m.gauge("pipeline.cc_iterations_max")
        .set_max(static_cast<double>(result.cc_iterations_max));
    m.gauge("mpsim.sim_comm_seconds").set_max(result.sim_comm_seconds);
    m_rss.set_max(static_cast<double>(util::peak_rss_bytes()));
    if (!config.metrics_out.empty()) {
      m.write_jsonl(config.metrics_out);
      m.set_enabled(metrics_were_enabled);
    }
    if (!config.trace_out.empty()) {
      tr.write_chrome_json(config.trace_out);
      if (!trace_was_enabled) tr.disable();
    }
  }
  return result;
}

std::vector<std::uint32_t> reference_components(const DatasetIndex& index,
                                                const KmerFreqFilter& filter,
                                                io::ParseMode parse_mode) {
  const int k = index.k;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::uint32_t>> kmer_reads;
  for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
    const ChunkRecord& chunk = index.part.chunks[c];
    const auto buffer = io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
    std::uint32_t read_id = chunk.first_read_id;
    io::for_each_record_in_buffer(
        std::string_view(buffer.data(), buffer.size()),
        [&](std::string_view, std::string_view seq, std::string_view) {
          if (k <= kmer::kMaxK64) {
            kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
              kmer_reads[{0, km}].push_back(read_id);
            });
          } else {
            kmer::for_each_canonical_kmer128(seq, k, [&](kmer::Kmer128 km, std::size_t) {
              kmer_reads[{km.hi, km.lo}].push_back(read_id);
            });
          }
          ++read_id;
        },
        io::ParseOptions{parse_mode, index.files[chunk.file], chunk.offset});
  }
  dsu::SerialDSU dsu(index.total_reads);
  for (const auto& [km, reads] : kmer_reads) {
    if (!filter.accepts(reads.size())) continue;
    for (std::size_t i = 1; i < reads.size(); ++i) dsu.unite(reads[i - 1], reads[i]);
  }
  return dsu.labels();
}

}  // namespace metaprep::core
