#include "core/pipeline.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <utility>

#include "check/invariants.hpp"
#include "core/memory_model.hpp"
#include "core/packed_ingest.hpp"
#include "core/plan.hpp"
#include "dsu/dsu.hpp"
#include "io/fastq.hpp"
#include "kmer/bloom.hpp"
#include "kmer/scanner.hpp"
#include "kmer/superkmer.hpp"
#include "mpsim/comm.hpp"
#include "obs/attr.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "part/part.hpp"
#include "sort/radix.hpp"
#include "util/buffer_pool.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/memusage.hpp"
#include "util/prefix_sum.hpp"
#include "util/session.hpp"
#include "util/thread_team.hpp"

namespace metaprep::core {

namespace {

using util::StepTimes;
using util::ThreadTeam;
using util::WallTimer;

/// Tuple buffers in SoA layout.  keys_hi is used only for k > 32 ("wide"):
/// the 12-byte tuple becomes the paper's 20-byte tuple (§4.4).
struct TupleBuffer {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> keys_hi;
  std::vector<std::uint32_t> vals;
  bool wide = false;

  void resize(std::size_t n) {
    keys.resize(n);
    vals.resize(n);
    if (wide) keys_hi.resize(n);
  }
  [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return keys.size() * (wide ? 20 : 12);
  }
  void swap(TupleBuffer& other) noexcept {
    keys.swap(other.keys);
    keys_hi.swap(other.keys_hi);
    vals.swap(other.vals);
    std::swap(wide, other.wide);
    std::swap(mem_charged, other.mem_charged);
  }

  /// Memory attribution (src/obs/mem): reconcile the "tuples" subsystem with
  /// this buffer's current capacity.  Called after resizes in the barrier
  /// schedule; the overlap schedule leases from BufferPool, whose charges are
  /// tagged via MemScope instead, so it never calls this.
  std::uint64_t mem_charged = 0;
  void mem_account() {
    const std::uint64_t now =
        keys.capacity() * 8 + keys_hi.capacity() * 8 + vals.capacity() * 4;
    if (now >= mem_charged) {
      obs::mem_charge("tuples", now - mem_charged);
    } else {
      obs::mem_credit("tuples", mem_charged - now);
    }
    mem_charged = now;
  }
};

/// counts[i] += sum of row[b] for b in [bounds[i], bounds[i+1]), computed in
/// one scan over the row's relevant bin range.
void accumulate_bounded_counts(const std::uint32_t* row,
                               std::span<const std::uint32_t> bounds,
                               std::span<std::uint64_t> counts) {
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::uint32_t b = bounds[i]; b < bounds[i + 1]; ++b) acc += row[b];
    counts[i] += acc;
  }
}

/// Minimal scope guard for lease cleanup on exception unwind (a cancel or a
/// typed Error mid-pass must return every BufferPool lease).  The callback
/// must not throw during unwind, so failures inside it are swallowed.
template <typename F>
class ScopeExit {
 public:
  explicit ScopeExit(F f) : f_(std::move(f)) {}
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;
  ~ScopeExit() {
    if (!armed_) return;
    try {
      f_();
    } catch (...) {
      // Unwind path: the original exception matters more.
    }
  }
  void dismiss() noexcept { armed_ = false; }

 private:
  F f_;
  bool armed_ = true;
};

/// Lookup table bin -> part index for a boundary vector covering
/// [bounds.front(), bounds.back()).
std::vector<std::uint16_t> bin_owner_table(std::span<const std::uint32_t> bounds) {
  const std::uint32_t lo = bounds.front();
  const std::uint32_t hi = bounds.back();
  std::vector<std::uint16_t> table(hi - lo, 0);
  for (std::size_t part = 0; part + 1 < bounds.size(); ++part) {
    for (std::uint32_t b = bounds[part]; b < bounds[part + 1]; ++b) {
      table[b - lo] = static_cast<std::uint16_t>(part);
    }
  }
  return table;
}

/// Read-ID sentinel carried by tuples that pad under-filled send blocks
/// (lenient parsing skipped records the chunk histograms had counted).
/// LocalCC never forms an edge through it.
constexpr std::uint32_t kInvalidRead = 0xFFFFFFFFu;

struct RankShared {
  StepTimes times;
  std::vector<std::string> output_files;
  int cc_iterations = 0;
  std::uint64_t tuples = 0;
  std::uint64_t max_buffer_bytes = 0;
  std::uint64_t merge_comm_bytes = 0;
  std::vector<part::BinFile> bin_files;       ///< binned-output files this rank wrote
  std::vector<std::uint16_t> bin_file_bins;   ///< bin of bin_files[i]
  std::vector<obs::RssSample> rss_samples;    ///< rank 0 only: peak RSS per phase boundary
  std::uint64_t records_skipped = 0;  ///< distinct records lenient parsing dropped
                                      ///< (first KmerGen sweep over this rank's chunks)
  // Exchange-compression accounting (--comm-compress; see PipelineResult).
  std::uint64_t exchange_bytes = 0;      ///< cross-rank KmerGen-Comm bytes shipped
  std::uint64_t exchange_bytes_raw = 0;  ///< uncompressed-equivalent of the same traffic
  std::uint64_t superkmer_records = 0;   ///< wire records this rank emitted
  std::uint64_t bloom_dropped = 0;       ///< k-mer occurrences the Bloom prefilter dropped
};

/// Everything the per-rank pass loop needs, bundled so the barrier and
/// overlap schedules are interchangeable implementations of one interface.
struct PassCtx {
  const DatasetIndex& index;
  const MetaprepConfig& config;
  const PassPlan& plan;
  const ChunkAssignment& ca;
  mpsim::Comm& comm;
  ThreadTeam& team;
  dsu::AtomicDSU& local_cc;
  RankShared& my;
  obs::TraceSession& tr;
  obs::Counter& m_tuples;
  obs::Counter& m_cc_edges;
  obs::Gauge& m_rss;
  obs::Gauge& m_peak;
  /// Non-null in --read-store=packed runs: the mmap'd 2-bit arena KmerGen
  /// scans instead of re-reading FASTQ text each pass.
  const io::PackedStore* packed;
  int p, P, T, S, k, m;
  bool wide;
};

/// Manual span markers for steps whose lifetime doesn't match a C++ scope.
inline double span_begin(obs::TraceSession& tr) { return tr.enabled() ? tr.now_us() : -1.0; }
inline void span_end(obs::TraceSession& tr, const char* name, double t0) {
  if (t0 >= 0.0) tr.record(name, t0, tr.now_us() - t0);
}

/// Phase boundary (ISSUE satellite: per-phase RSS growth).  Records the
/// process peak RSS into the proc.peak_rss_bytes gauge and — on rank 0 of a
/// traced run — appends an (phase, peak) sample for the attribution report.
/// Collapses to two relaxed loads when neither tracing nor metrics are on.
void phase_boundary(PassCtx& ctx, const char* phase) {
  if (!ctx.tr.enabled() && !obs::metrics().enabled()) return;
  const std::uint64_t peak = util::peak_rss_bytes();
  if (peak == 0) return;  // /proc unavailable
  ctx.m_peak.set_max(static_cast<double>(peak));
  if (ctx.p == 0 && ctx.tr.enabled()) ctx.my.rss_samples.push_back({phase, peak});
}

/// Progress line updates happen on rank 0 only (the phases are globally
/// synchronized by the exchange anyway, so rank 0's view is representative).
inline void progress_phase(const PassCtx& ctx, const char* phase) {
  if (ctx.p == 0) obs::Progress::global().phase(phase);
}

/// One chunk's record stream for KmerGen, shared by the barrier and overlap
/// schedulers.  Text mode reads the chunk's byte range and parses it;
/// packed mode walks the arena's record range for the chunk — same records,
/// same order, same read IDs, so the emitted tuple stream is bit-identical.
/// Per record: value = find(read_id) under the §3.5.1 substitution, then
/// emit64(km, value) / emit128(km, value) per canonical k-mer.  @p io_s and
/// @p gen_s accumulate the KmerGen-I/O and KmerGen step walls for this
/// thread.  Returns the lenient-parse skips this scan observed (always 0 in
/// packed mode: ingest already recorded them in the arena).
template <typename Emit64, typename Emit128>
std::uint64_t scan_chunk(PassCtx& ctx, std::uint32_t c, bool substitute,
                         double& io_s, double& gen_s, Emit64&& emit64,
                         Emit128&& emit128, bool tick_progress = true) {
  util::throw_if_cancelled(ctx.config.cancel_token, "KmerGen chunk");
  const DatasetIndex& index = ctx.index;
  dsu::AtomicDSU& local_cc = ctx.local_cc;
  const int k = ctx.k;
  std::uint64_t skipped = 0;
  if (ctx.packed != nullptr) {
    const io::PackedStore& ps = *ctx.packed;
    WallTimer gen_timer;
    const double gen_t0 = span_begin(ctx.tr);
    for (std::uint64_t r = ps.chunk_begin(c), e = ps.chunk_end(c); r < e; ++r) {
      const io::PackedStore::Record rec = ps.record(r);
      const std::uint32_t value = substitute ? local_cc.find(rec.read_id) : rec.read_id;
      if (!ctx.wide) {
        kmer::for_each_canonical_kmer64_packed(
            rec.words, rec.len, rec.npos, rec.ncount, k,
            [&](std::uint64_t km, std::size_t) { emit64(km, value); });
      } else {
        kmer::for_each_canonical_kmer128_packed(
            rec.words, rec.len, rec.npos, rec.ncount, k,
            [&](kmer::Kmer128 km, std::size_t) { emit128(km, value); });
      }
    }
    span_end(ctx.tr, "KmerGen", gen_t0);
    gen_s += gen_timer.seconds();
  } else {
    const ChunkRecord& chunk = index.part.chunks[c];
    WallTimer io_timer;
    const double io_t0 = span_begin(ctx.tr);
    const auto buffer =
        io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
    span_end(ctx.tr, "KmerGen-I/O", io_t0);
    const obs::MemCharge io_mem("io", buffer.size());
    io_s += io_timer.seconds();

    WallTimer gen_timer;
    const double gen_t0 = span_begin(ctx.tr);
    std::uint32_t read_id = chunk.first_read_id;
    io::ParseOptions popt{ctx.config.parse_mode, index.files[chunk.file], chunk.offset,
                          [&read_id] { ++read_id; }};
    const io::BufferParseStats stats = io::for_each_record_in_buffer(
        std::string_view(buffer.data(), buffer.size()),
        [&](std::string_view, std::string_view seq, std::string_view) {
          // LocalCC-Opt (§3.5.1): from pass 2 on, enumerate the component
          // ID instead of the read ID for better locality.
          const std::uint32_t value = substitute ? local_cc.find(read_id) : read_id;
          if (!ctx.wide) {
            kmer::for_each_canonical_kmer64(
                seq, k, [&](std::uint64_t km, std::size_t) { emit64(km, value); });
          } else {
            kmer::for_each_canonical_kmer128(
                seq, k, [&](kmer::Kmer128 km, std::size_t) { emit128(km, value); });
          }
          ++read_id;
        },
        popt);
    span_end(ctx.tr, "KmerGen", gen_t0);
    gen_s += gen_timer.seconds();
    skipped = stats.skipped;
  }
  if (tick_progress) obs::Progress::global().chunk_done();
  return skipped;
}

/// Record-granular variant of scan_chunk for the compressed emit path: same
/// I/O scaffolding and §3.5.1 substitution, but the callback receives the
/// whole record's bases (RecordView) instead of per-k-mer events, so the
/// super-k-mer scanner can see run structure.
struct RecordView {
  const char* text = nullptr;            ///< text mode: raw sequence chars
  const std::uint64_t* words = nullptr;  ///< packed mode: 2-bit LSB-first words
  std::uint32_t len = 0;
  const std::uint32_t* npos = nullptr;   ///< packed mode: N positions
  std::uint32_t ncount = 0;
  /// 2-bit code of base i.  Only called for positions inside a valid
  /// super-k-mer run, which the scanner guarantees is free of invalid bases.
  [[nodiscard]] std::uint8_t code_at(std::size_t i) const noexcept {
    if (words != nullptr)
      return static_cast<std::uint8_t>((words[i >> 5] >> (2 * (i & 31))) & 3u);
    return kmer::base_code(text[i]);
  }
};

template <typename RecFn>
std::uint64_t scan_chunk_records(PassCtx& ctx, std::uint32_t c, bool substitute,
                                 double& io_s, double& gen_s, bool tick_progress,
                                 RecFn&& rec_fn) {
  util::throw_if_cancelled(ctx.config.cancel_token, "KmerGen chunk");
  const DatasetIndex& index = ctx.index;
  dsu::AtomicDSU& local_cc = ctx.local_cc;
  std::uint64_t skipped = 0;
  if (ctx.packed != nullptr) {
    const io::PackedStore& ps = *ctx.packed;
    WallTimer gen_timer;
    const double gen_t0 = span_begin(ctx.tr);
    for (std::uint64_t r = ps.chunk_begin(c), e = ps.chunk_end(c); r < e; ++r) {
      const io::PackedStore::Record rec = ps.record(r);
      const std::uint32_t value = substitute ? local_cc.find(rec.read_id) : rec.read_id;
      rec_fn(value, RecordView{nullptr, rec.words, rec.len, rec.npos, rec.ncount});
    }
    span_end(ctx.tr, "KmerGen", gen_t0);
    gen_s += gen_timer.seconds();
  } else {
    const ChunkRecord& chunk = index.part.chunks[c];
    WallTimer io_timer;
    const double io_t0 = span_begin(ctx.tr);
    const auto buffer =
        io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
    span_end(ctx.tr, "KmerGen-I/O", io_t0);
    const obs::MemCharge io_mem("io", buffer.size());
    io_s += io_timer.seconds();

    WallTimer gen_timer;
    const double gen_t0 = span_begin(ctx.tr);
    std::uint32_t read_id = chunk.first_read_id;
    io::ParseOptions popt{ctx.config.parse_mode, index.files[chunk.file], chunk.offset,
                          [&read_id] { ++read_id; }};
    const io::BufferParseStats stats = io::for_each_record_in_buffer(
        std::string_view(buffer.data(), buffer.size()),
        [&](std::string_view, std::string_view seq, std::string_view) {
          const std::uint32_t value = substitute ? local_cc.find(read_id) : read_id;
          rec_fn(value, RecordView{seq.data(), nullptr,
                                   static_cast<std::uint32_t>(seq.size()), nullptr, 0});
          ++read_id;
        },
        popt);
    span_end(ctx.tr, "KmerGen", gen_t0);
    gen_s += gen_timer.seconds();
    skipped = stats.skipped;
  }
  if (tick_progress) obs::Progress::global().chunk_done();
  return skipped;
}

// ---------------------------------------------------------------------------
// Barrier schedule: the paper's pass loop, one phase at a time.
// ---------------------------------------------------------------------------
void run_passes_barrier(PassCtx& ctx) {
  const DatasetIndex& index = ctx.index;
  const MetaprepConfig& config = ctx.config;
  const PassPlan& plan = ctx.plan;
  const ChunkAssignment& ca = ctx.ca;
  mpsim::Comm& comm = ctx.comm;
  ThreadTeam& team = ctx.team;
  dsu::AtomicDSU& local_cc = ctx.local_cc;
  RankShared& my = ctx.my;
  obs::TraceSession& tr = ctx.tr;
  obs::Counter& m_tuples = ctx.m_tuples;
  obs::Counter& m_cc_edges = ctx.m_cc_edges;
  obs::Gauge& m_rss = ctx.m_rss;
  const int p = ctx.p, P = ctx.P, T = ctx.T, S = ctx.S, k = ctx.k, m = ctx.m;
  const bool wide = ctx.wide;

  TupleBuffer kmer_out;
  TupleBuffer kmer_in;
  kmer_out.wide = wide;
  kmer_in.wide = wide;

  for (int s = 0; s < S; ++s) {
    util::throw_if_cancelled(config.cancel_token, "barrier pass");
    const double pass_t0 = span_begin(tr);
    const BinRange my_range = plan.rank_range(s, p);
    const auto& rank_bounds = plan.rank_bounds(s);
    const auto& thread_bounds = plan.thread_bounds(s, p);

    // ---- Send-side offsets (§3.2.2): tuples generated by each of my
    // threads destined to each rank, from the chunk histograms. ----
    std::vector<std::uint64_t> count_send(static_cast<std::size_t>(T) * P, 0);  // [t][dest]
    for (int t = 0; t < T; ++t) {
      for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
        accumulate_bounded_counts(
            index.part.row(c), rank_bounds,
            std::span(count_send).subspan(static_cast<std::size_t>(t) * P, P));
      }
    }
    std::vector<std::uint64_t> send_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int d = 0; d < P; ++d) {
      std::uint64_t tot = 0;
      for (int t = 0; t < T; ++t) tot += count_send[static_cast<std::size_t>(t) * P + d];
      send_offsets[static_cast<std::size_t>(d) + 1] =
          send_offsets[static_cast<std::size_t>(d)] + tot;
    }
    // Per-(thread, dest) write cursors within the dest blocks.
    std::vector<std::uint64_t> cursor(static_cast<std::size_t>(T) * P, 0);
    for (int d = 0; d < P; ++d) {
      std::uint64_t off = send_offsets[static_cast<std::size_t>(d)];
      for (int t = 0; t < T; ++t) {
        cursor[static_cast<std::size_t>(t) * P + d] = off;
        off += count_send[static_cast<std::size_t>(t) * P + d];
      }
    }
    const std::vector<std::uint64_t> cursor_start = cursor;
    const std::uint64_t total_out = send_offsets.back();
    kmer_out.resize(total_out);
    kmer_out.mem_account();
    my.tuples += total_out;
    m_tuples.add(total_out);

    // ---- Recv-side offsets (§3.3): tuples arriving from each source
    // rank's threads that fall in my k-mer range. ----
    std::vector<std::uint64_t> count_recv(static_cast<std::size_t>(P) * T, 0);  // [src][t']
    const std::array<std::uint32_t, 2> my_bounds_arr{my_range.begin, my_range.end};
    for (int q = 0; q < P; ++q) {
      for (int t2 = 0; t2 < T; ++t2) {
        std::uint64_t acc = 0;
        for (std::uint32_t c = ca.thread_begin(q, t2); c < ca.thread_end(q, t2); ++c) {
          std::uint64_t one = 0;
          accumulate_bounded_counts(index.part.row(c), my_bounds_arr, std::span(&one, 1));
          acc += one;
        }
        count_recv[static_cast<std::size_t>(q) * T + t2] = acc;
      }
    }
    std::vector<std::uint64_t> recv_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int q = 0; q < P; ++q) {
      std::uint64_t tot = 0;
      for (int t2 = 0; t2 < T; ++t2) tot += count_recv[static_cast<std::size_t>(q) * T + t2];
      recv_offsets[static_cast<std::size_t>(q) + 1] =
          recv_offsets[static_cast<std::size_t>(q)] + tot;
    }
    const std::uint64_t total_in = recv_offsets.back();

    // ---- KmerGen: threads enumerate canonical k-mers from their chunks
    // and write tuples at precomputed offsets, no synchronization. ----
    const std::vector<std::uint16_t> dest_of_bin = bin_owner_table(rank_bounds);
    const std::uint32_t pass_lo = plan.pass_range(s).begin;
    const std::uint32_t pass_hi = plan.pass_range(s).end;
    std::vector<double> io_seconds(static_cast<std::size_t>(T), 0.0);
    std::vector<double> gen_seconds(static_cast<std::size_t>(T), 0.0);
    const bool substitute_components = config.cc_opt && s > 0;

    progress_phase(ctx, "KmerGen");
    std::vector<std::uint64_t> skip_counts(static_cast<std::size_t>(T), 0);
    team.run([&](int t) {
      obs::TraceSession::set_thread_identity(p, t);
      std::uint64_t* cur = cursor.data() + static_cast<std::size_t>(t) * P;
      auto emit64 = [&](std::uint64_t km, std::uint32_t value) {
        const std::uint32_t bin = kmer::prefix_bin64(km, k, m);
        if (bin < pass_lo || bin >= pass_hi) return;
        const std::uint16_t d = dest_of_bin[bin - pass_lo];
        const std::uint64_t at = cur[d]++;
        kmer_out.keys[at] = km;
        kmer_out.vals[at] = value;
      };
      auto emit128 = [&](kmer::Kmer128 km, std::uint32_t value) {
        const std::uint32_t bin = kmer::prefix_bin128(km, k, m);
        if (bin < pass_lo || bin >= pass_hi) return;
        const std::uint16_t d = dest_of_bin[bin - pass_lo];
        const std::uint64_t at = cur[d]++;
        kmer_out.keys[at] = km.lo;
        kmer_out.keys_hi[at] = km.hi;
        kmer_out.vals[at] = value;
      };
      for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
        skip_counts[static_cast<std::size_t>(t)] +=
            scan_chunk(ctx, c, substitute_components,
                       io_seconds[static_cast<std::size_t>(t)],
                       gen_seconds[static_cast<std::size_t>(t)], emit64, emit128);
      }
    });
    my.times.add("KmerGen-I/O", *std::max_element(io_seconds.begin(), io_seconds.end()));
    my.times.add("KmerGen", *std::max_element(gen_seconds.begin(), gen_seconds.end()));
    if (s == 0) {
      // The first sweep visits every record exactly once, so its skip count
      // is the number of *distinct* records lenient parsing dropped (later
      // passes re-discover the same skips in text mode).
      for (std::uint64_t sk : skip_counts) my.records_skipped += sk;
    }

    // Lenient parsing may have skipped records that the (clean-data) chunk
    // histograms counted, leaving some (thread, dest) blocks under-filled.
    // The exchange geometry is precomputed on both sides, so the gap slots
    // ship regardless — fill them with sentinel tuples whose bin falls in
    // the destination's range (so its partition step stays in bounds) and
    // whose value is kInvalidRead (so LocalCC ignores them).
    for (int t = 0; t < T; ++t) {
      for (int d = 0; d < P; ++d) {
        const std::size_t td = static_cast<std::size_t>(t) * P + d;
        const std::uint64_t block_end = cursor_start[td] + count_send[td];
        if (cursor[td] == block_end) continue;
        const auto bin = static_cast<std::uint64_t>(rank_bounds[static_cast<std::size_t>(d)]);
        const int shift = 2 * (k - m);
        std::uint64_t s_lo, s_hi;
        if (!wide) {
          s_lo = bin << shift;
          s_hi = 0;
        } else if (shift >= 64) {
          s_hi = bin << (shift - 64);
          s_lo = 0;
        } else {
          s_lo = bin << shift;
          s_hi = bin >> (64 - shift);
        }
        for (std::uint64_t at = cursor[td]; at < block_end; ++at) {
          kmer_out.keys[at] = s_lo;
          if (wide) kmer_out.keys_hi[at] = s_hi;
          kmer_out.vals[at] = kInvalidRead;
        }
        cursor[td] = block_end;
      }
    }

    // ---- KmerGen-Comm: staged All-to-all of the tuple arrays. ----
    progress_phase(ctx, "KmerGen-Comm");
    {
      obs::TraceSpan comm_span("KmerGen-Comm");
      WallTimer comm_timer;
      if (P == 1) {
        kmer_in.swap(kmer_out);
        kmer_out.resize(kmer_in.size());
      } else {
        kmer_in.resize(total_in);
        const int tag_base = (s * 3) * (P + 1) + 1000;
        auto byte_offsets = [&](std::span<const std::uint64_t> elems, std::size_t esize) {
          std::vector<std::uint64_t> out(elems.size());
          for (std::size_t i = 0; i < elems.size(); ++i) out[i] = elems[i] * esize;
          return out;
        };
        const auto so8 = byte_offsets(send_offsets, 8);
        const auto ro8 = byte_offsets(recv_offsets, 8);
        const auto so4 = byte_offsets(send_offsets, 4);
        const auto ro4 = byte_offsets(recv_offsets, 4);
        comm.alltoallv_staged(kmer_out.keys.data(), so8, kmer_in.keys.data(), ro8, tag_base);
        comm.alltoallv_staged(kmer_out.vals.data(), so4, kmer_in.vals.data(), ro4,
                              tag_base + (P + 1));
        if (wide) {
          comm.alltoallv_staged(kmer_out.keys_hi.data(), so8, kmer_in.keys_hi.data(), ro8,
                                tag_base + 2 * (P + 1));
        }
        // Exchange-volume accounting (cross-rank tuples only, matching the
        // traffic matrix); uncompressed, so shipped == raw.
        const std::uint64_t cross =
            total_out - (send_offsets[static_cast<std::size_t>(p) + 1] -
                         send_offsets[static_cast<std::size_t>(p)]);
        my.exchange_bytes += cross * (wide ? 20u : 12u);
        my.exchange_bytes_raw += cross * (wide ? 20u : 12u);
        kmer_out.resize(total_in);  // becomes the partition/sort buffer
      }
      my.times.add("KmerGen-Comm", comm_timer.seconds());
    }
    kmer_in.mem_account();
    kmer_out.mem_account();
    my.max_buffer_bytes = std::max(my.max_buffer_bytes, kmer_in.bytes() + kmer_out.bytes());
    phase_boundary(ctx, "KmerGen-Comm");

    // ---- LocalSort (§3.4): parallel range partitioning into T disjoint
    // thread ranges, then serial radix sort per thread. ----
    progress_phase(ctx, "LocalSort");
    {
      const double sort_t0 = span_begin(tr);
      WallTimer sort_timer;
      // Source blocks: one per (src rank, src thread), layout known from
      // the recv offsets; bin distribution known from FASTQPart.
      const int nblocks = P * T;
      std::vector<std::uint64_t> block_start(static_cast<std::size_t>(nblocks) + 1, 0);
      {
        std::size_t bi = 0;
        std::uint64_t off = 0;
        for (int q = 0; q < P; ++q) {
          for (int t2 = 0; t2 < T; ++t2) {
            block_start[bi++] = off;
            off += count_recv[static_cast<std::size_t>(q) * T + t2];
          }
        }
        block_start[static_cast<std::size_t>(nblocks)] = off;
      }
      // Scatter counts per (block, dest thread range).
      std::vector<std::uint64_t> count_part(static_cast<std::size_t>(nblocks) * T, 0);
      {
        std::size_t bi = 0;
        for (int q = 0; q < P; ++q) {
          for (int t2 = 0; t2 < T; ++t2, ++bi) {
            for (std::uint32_t c = ca.thread_begin(q, t2); c < ca.thread_end(q, t2); ++c) {
              accumulate_bounded_counts(
                  index.part.row(c), thread_bounds,
                  std::span(count_part).subspan(bi * T, static_cast<std::size_t>(T)));
            }
          }
        }
      }
      // Dest-range starts and per-(block, dest) cursors.
      std::vector<std::uint64_t> dest_start(static_cast<std::size_t>(T) + 1, 0);
      for (int t = 0; t < T; ++t) {
        std::uint64_t tot = 0;
        for (int b = 0; b < nblocks; ++b) tot += count_part[static_cast<std::size_t>(b) * T + t];
        dest_start[static_cast<std::size_t>(t) + 1] = dest_start[static_cast<std::size_t>(t)] + tot;
      }
      std::vector<std::uint64_t> part_cursor(static_cast<std::size_t>(nblocks) * T, 0);
      for (int t = 0; t < T; ++t) {
        std::uint64_t off = dest_start[static_cast<std::size_t>(t)];
        for (int b = 0; b < nblocks; ++b) {
          part_cursor[static_cast<std::size_t>(b) * T + t] = off;
          off += count_part[static_cast<std::size_t>(b) * T + t];
        }
      }

      const std::vector<std::uint16_t> thread_of_bin = bin_owner_table(thread_bounds);
      const std::uint32_t range_lo = my_range.begin;
      const auto block_bounds = util::split_range(static_cast<std::size_t>(nblocks), T);

      // Phase 1: parallel partition kmer_in -> kmer_out.
      team.run([&](int t) {
        for (std::size_t b = block_bounds[static_cast<std::size_t>(t)];
             b < block_bounds[static_cast<std::size_t>(t) + 1]; ++b) {
          std::uint64_t* cur = part_cursor.data() + b * T;
          for (std::uint64_t i = block_start[b]; i < block_start[b + 1]; ++i) {
            const std::uint32_t bin =
                wide ? kmer::prefix_bin128({kmer_in.keys_hi[i], kmer_in.keys[i]}, k, m)
                     : kmer::prefix_bin64(kmer_in.keys[i], k, m);
            const std::uint16_t d = thread_of_bin[bin - range_lo];
            const std::uint64_t at = cur[d]++;
            kmer_out.keys[at] = kmer_in.keys[i];
            kmer_out.vals[at] = kmer_in.vals[i];
            if (wide) kmer_out.keys_hi[at] = kmer_in.keys_hi[i];
          }
        }
      });

      // Phase 2: serial radix sort per thread range, scratch = kmer_in
      // (the paper reuses the send buffer as the out-of-place buffer).
      team.run([&](int t) {
        const std::uint64_t lo = dest_start[static_cast<std::size_t>(t)];
        const std::uint64_t hi = dest_start[static_cast<std::size_t>(t) + 1];
        const std::size_t n = hi - lo;
        if (n == 0) return;
        if (!wide) {
          sort::radix_sort_kv64(std::span(kmer_out.keys).subspan(lo, n),
                                std::span(kmer_out.vals).subspan(lo, n),
                                std::span(kmer_in.keys).subspan(lo, n),
                                std::span(kmer_in.vals).subspan(lo, n), 2 * k,
                                config.sort_digit_bits);
        } else {
          sort::radix_sort_kv128(std::span(kmer_out.keys_hi).subspan(lo, n),
                                 std::span(kmer_out.keys).subspan(lo, n),
                                 std::span(kmer_out.vals).subspan(lo, n),
                                 std::span(kmer_in.keys_hi).subspan(lo, n),
                                 std::span(kmer_in.keys).subspan(lo, n),
                                 std::span(kmer_in.vals).subspan(lo, n), 2 * k,
                                 config.sort_digit_bits);
        }
      });
      my.times.add("LocalSort", sort_timer.seconds());
      span_end(tr, "LocalSort", sort_t0);
      phase_boundary(ctx, "LocalSort");

      // ---- LocalCC (§3.5, Algorithm 1): runs of equal k-mers become
      // read-graph edges; union-find with buffered re-verification. ----
      progress_phase(ctx, "LocalCC");
      const double cc_t0 = span_begin(tr);
      WallTimer cc_timer;
      std::vector<int> thread_iters(static_cast<std::size_t>(T), 0);
      team.run([&](int t) {
        const std::uint64_t lo = dest_start[static_cast<std::size_t>(t)];
        const std::uint64_t hi = dest_start[static_cast<std::size_t>(t) + 1];
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pending;
        std::uint64_t i = lo;
        while (i < hi) {
          std::uint64_t j = i + 1;
          if (!wide) {
            while (j < hi && kmer_out.keys[j] == kmer_out.keys[i]) ++j;
          } else {
            while (j < hi && kmer_out.keys[j] == kmer_out.keys[i] &&
                   kmer_out.keys_hi[j] == kmer_out.keys_hi[i])
              ++j;
          }
          const std::uint64_t freq = j - i;
          if (config.filter.accepts(freq)) {
            for (std::uint64_t x = i + 1; x < j; ++x) {
              const std::uint32_t u = kmer_out.vals[x - 1];
              const std::uint32_t v = kmer_out.vals[x];
              if (u == v) continue;
              if (u == kInvalidRead || v == kInvalidRead) continue;
              const std::uint32_t ru = local_cc.find(u);
              const std::uint32_t rv = local_cc.find(v);
              if (ru != rv) {
                local_cc.unite_once(ru, rv);
                pending.emplace_back(u, v);
              }
            }
          }
          i = j;
        }
        thread_iters[static_cast<std::size_t>(t)] =
            1 + dsu::process_edges_algorithm1(local_cc, pending);
        m_cc_edges.add(pending.size());
      });
      my.times.add("LocalCC", cc_timer.seconds());
      span_end(tr, "LocalCC", cc_t0);
      phase_boundary(ctx, "LocalCC");
      my.cc_iterations =
          std::max(my.cc_iterations,
                   *std::max_element(thread_iters.begin(), thread_iters.end()));
    }
    m_rss.set_max(static_cast<double>(util::current_rss_bytes()));
    span_end(tr, "Pass", pass_t0);
  }  // passes
}

// ---------------------------------------------------------------------------
// Overlap (pipelined) schedule.
//
// Passes run in groups of two.  One chunk read + k-mer scan generates both
// passes' tuple sets — pass s+1's KmerGen rides inside pass s's
// KmerGen-Comm window — the exchange is posted with async isend/irecv and
// completed lazily, and KmerGen partitions tuples at (dest rank, dest
// thread) granularity so the receive buffer IS the sort buffer and
// LocalSort's partition copy disappears.  All tuple arrays are leased from
// util::BufferPool and recycled across passes and groups.
//
// Equivalence to the barrier schedule (the differential grid asserts it):
// within a dest-thread region, tuples are laid out ordered by (src rank,
// src thread, generation order) — exactly the sequence the barrier
// partition copy produces — and the radix sort is stable, so LocalSort
// emits the same tuple sequence and LocalCC performs the same unions.  The
// one visible difference is §3.5.1 staleness: pass s+1 substitutes
// component IDs as of pass s-1 instead of pass s.  A stale root is still a
// member of the same component, so the union structure — and therefore the
// final partition — is unchanged (only label representatives may differ).
// ---------------------------------------------------------------------------

/// Exchange geometry of one pass at (dest rank, dest thread) granularity,
/// fully precomputed from the index tables (the overlap-mode analogue of
/// the barrier schedule's send/recv offset vectors).
struct OverlapGeom {
  std::uint32_t pass_lo = 0, pass_hi = 0;
  std::vector<std::uint32_t> slot_bounds;   ///< P*T+1 concatenated thread bounds
  std::vector<std::uint16_t> slot_of_bin;   ///< bin - pass_lo -> slot d*T+dt
  // Send side: slot-major layout, ordered by my thread t within a slot.
  std::vector<std::uint64_t> count_send;    ///< [t][slot]
  std::vector<std::uint64_t> slot_start;    ///< P*T+1 element offsets
  std::vector<std::uint64_t> cursor_start;  ///< [t][slot]
  std::uint64_t total_out = 0;
  // Recv side: T regions (one per dest thread), each ordered by src rank q,
  // within q by src thread — the barrier partition's output order.
  std::vector<std::uint64_t> count_recv;    ///< [q][dt]
  std::vector<std::uint64_t> region_start;  ///< T+1 element offsets
  std::vector<std::uint64_t> block_start;   ///< [q][dt] absolute element offsets
  std::uint64_t total_in = 0;
};

OverlapGeom overlap_geometry(const PassCtx& ctx, int s) {
  const int P = ctx.P, T = ctx.T, p = ctx.p;
  const std::size_t nslots = static_cast<std::size_t>(P) * T;
  OverlapGeom g;
  g.pass_lo = ctx.plan.pass_range(s).begin;
  g.pass_hi = ctx.plan.pass_range(s).end;
  g.slot_bounds.reserve(nslots + 1);
  g.slot_bounds.push_back(ctx.plan.thread_bounds(s, 0).front());
  for (int d = 0; d < P; ++d) {
    const auto& tb = ctx.plan.thread_bounds(s, d);
    for (int t = 1; t <= T; ++t) g.slot_bounds.push_back(tb[static_cast<std::size_t>(t)]);
  }
  g.slot_of_bin = bin_owner_table(g.slot_bounds);

  g.count_send.assign(static_cast<std::size_t>(ctx.T) * nslots, 0);
  for (int t = 0; t < T; ++t) {
    for (std::uint32_t c = ctx.ca.thread_begin(p, t); c < ctx.ca.thread_end(p, t); ++c) {
      accumulate_bounded_counts(
          ctx.index.part.row(c), g.slot_bounds,
          std::span(g.count_send).subspan(static_cast<std::size_t>(t) * nslots, nslots));
    }
  }
  g.slot_start.assign(nslots + 1, 0);
  for (std::size_t slot = 0; slot < nslots; ++slot) {
    std::uint64_t tot = 0;
    for (int t = 0; t < T; ++t) tot += g.count_send[static_cast<std::size_t>(t) * nslots + slot];
    g.slot_start[slot + 1] = g.slot_start[slot] + tot;
  }
  g.cursor_start.assign(static_cast<std::size_t>(T) * nslots, 0);
  for (std::size_t slot = 0; slot < nslots; ++slot) {
    std::uint64_t off = g.slot_start[slot];
    for (int t = 0; t < T; ++t) {
      g.cursor_start[static_cast<std::size_t>(t) * nslots + slot] = off;
      off += g.count_send[static_cast<std::size_t>(t) * nslots + slot];
    }
  }
  g.total_out = g.slot_start[nslots];

  const auto& my_tb = ctx.plan.thread_bounds(s, p);
  g.count_recv.assign(static_cast<std::size_t>(P) * T, 0);
  for (int q = 0; q < P; ++q) {
    for (std::uint32_t c = ctx.ca.rank_begin(q); c < ctx.ca.rank_end(q); ++c) {
      accumulate_bounded_counts(
          ctx.index.part.row(c), my_tb,
          std::span(g.count_recv).subspan(static_cast<std::size_t>(q) * T, T));
    }
  }
  g.region_start.assign(static_cast<std::size_t>(T) + 1, 0);
  for (int dt = 0; dt < T; ++dt) {
    std::uint64_t tot = 0;
    for (int q = 0; q < P; ++q) tot += g.count_recv[static_cast<std::size_t>(q) * T + dt];
    g.region_start[static_cast<std::size_t>(dt) + 1] =
        g.region_start[static_cast<std::size_t>(dt)] + tot;
  }
  g.block_start.assign(static_cast<std::size_t>(P) * T, 0);
  for (int dt = 0; dt < T; ++dt) {
    std::uint64_t off = g.region_start[static_cast<std::size_t>(dt)];
    for (int q = 0; q < P; ++q) {
      g.block_start[static_cast<std::size_t>(q) * T + dt] = off;
      off += g.count_recv[static_cast<std::size_t>(q) * T + dt];
    }
  }
  g.total_in = g.region_start[static_cast<std::size_t>(T)];
  return g;
}

/// Tags for the fine-grained async exchange: unique per (pass, tuple array,
/// dest thread), disjoint from the barrier all-to-all (1000+) and MergeCC
/// (1<<20) ranges.
constexpr int kOverlapTagBase = 2'000'000;
inline int overlap_tag(int s, int arr, int dt, int T) {
  return kOverlapTagBase + (s * 3 + arr) * T + dt;
}

/// Post the pass-s exchange: self sub-blocks copy inline, every remote
/// sub-block is isend'ed now (buffered) and its irecv lands directly at the
/// tuple's final sort position.  Zero-length sub-blocks are not shipped —
/// both sides derive the same sizes from the index tables, so the skip is
/// symmetric.  Returns immediately; the caller owns the pending receives.
void post_overlap_exchange(PassCtx& ctx, int s, const OverlapGeom& g,
                           const TupleBuffer& sendb, TupleBuffer& recvb,
                           std::vector<mpsim::Request>& pending) {
  const int P = ctx.P, T = ctx.T, p = ctx.p;
  auto post_array = [&](int arr, const void* sdata, void* rdata, std::size_t esz) {
    const auto* sb = static_cast<const std::byte*>(sdata);
    auto* rb = static_cast<std::byte*>(rdata);
    for (int dt = 0; dt < T; ++dt) {
      const std::size_t self = static_cast<std::size_t>(p) * T + dt;
      const std::uint64_t len = g.count_recv[self];
      if (len == 0) continue;
      std::memcpy(rb + g.block_start[self] * esz, sb + g.slot_start[self] * esz, len * esz);
    }
    // Staged schedule (§3.3): stage i sends to (p+i)%P, receives from
    // (p-i+P)%P, one message per destination thread.
    for (int stage = 1; stage < P; ++stage) {
      const int d = (p + stage) % P;
      const int q = (p - stage + P) % P;
      for (int dt = 0; dt < T; ++dt) {
        const std::size_t dslot = static_cast<std::size_t>(d) * T + dt;
        const std::uint64_t slen = g.slot_start[dslot + 1] - g.slot_start[dslot];
        if (slen > 0) {
          ctx.comm.isend(d, overlap_tag(s, arr, dt, T), sb + g.slot_start[dslot] * esz,
                         slen * esz);
        }
        const std::size_t qslot = static_cast<std::size_t>(q) * T + dt;
        const std::uint64_t rlen = g.count_recv[qslot];
        if (rlen > 0) {
          pending.push_back(ctx.comm.irecv(q, overlap_tag(s, arr, dt, T),
                                           rb + g.block_start[qslot] * esz, rlen * esz));
        }
      }
    }
  };
  post_array(0, sendb.keys.data(), recvb.keys.data(), 8);
  post_array(1, sendb.vals.data(), recvb.vals.data(), 4);
  if (sendb.wide) post_array(2, sendb.keys_hi.data(), recvb.keys_hi.data(), 8);
}

void run_passes_overlap(PassCtx& ctx) {
  const MetaprepConfig& config = ctx.config;
  const ChunkAssignment& ca = ctx.ca;
  mpsim::Comm& comm = ctx.comm;
  ThreadTeam& team = ctx.team;
  dsu::AtomicDSU& local_cc = ctx.local_cc;
  RankShared& my = ctx.my;
  obs::TraceSession& tr = ctx.tr;
  const int p = ctx.p, P = ctx.P, T = ctx.T, S = ctx.S, k = ctx.k, m = ctx.m;
  const bool wide = ctx.wide;
  const std::size_t nslots = static_cast<std::size_t>(P) * T;
  if (nslots > 0xFFFF)
    throw util::config_error("overlap mode: P*T must fit the 16-bit slot table");

  util::BufferPool& pool =
      config.buffer_pool != nullptr ? *config.buffer_pool : util::BufferPool::global();
  std::uint64_t live_bytes = 0;
  auto tuple_bytes_of = [wide](std::size_t n) { return n * (wide ? 20ull : 12ull); };
  auto acquire_tuples = [&](std::size_t n) {
    const obs::MemScope tuples_scope("tuples");  // tags the pool lease below
    TupleBuffer b;
    b.wide = wide;
    b.keys = pool.acquire_u64(n);
    if (wide) b.keys_hi = pool.acquire_u64(n);
    b.vals = pool.acquire_u32(n);
    live_bytes += tuple_bytes_of(n);
    my.max_buffer_bytes = std::max(my.max_buffer_bytes, live_bytes);
    return b;
  };
  auto release_tuples = [&](TupleBuffer&& b) {
    const obs::MemScope tuples_scope("tuples");
    live_bytes -= tuple_bytes_of(b.size());
    pool.release(std::move(b.keys));
    // keys_hi is only leased for wide keys; releasing the empty vector would
    // (correctly) trip the pool's double-release check.
    if (b.wide) pool.release(std::move(b.keys_hi));
    pool.release(std::move(b.vals));
  };

  for (int s0 = 0; s0 < S; s0 += 2) {
    util::throw_if_cancelled(config.cancel_token, "overlap pass group");
    const int npasses = std::min(2, S - s0);
    std::array<double, 2> pass_t0{span_begin(tr), -1.0};
    std::array<OverlapGeom, 2> geom;
    std::array<TupleBuffer, 2> send_buf;
    std::array<TupleBuffer, 2> recv_buf;
    // Liveness flags + guard: any exception leaving this group (cancel,
    // comm poison, CheckError) releases whatever is still leased.  Flags
    // rather than emptiness tests so a zero-tuple lease is still returned.
    std::array<bool, 2> send_live{false, false};
    std::array<bool, 2> recv_live{false, false};
    ScopeExit lease_guard([&] {
      for (std::size_t i = 0; i < 2; ++i) {
        if (send_live[i]) release_tuples(std::move(send_buf[i]));
        if (recv_live[i]) release_tuples(std::move(recv_buf[i]));
      }
    });
    std::array<std::vector<mpsim::Request>, 2> pending;
    std::array<std::vector<std::uint64_t>, 2> cursor;
    for (int i = 0; i < npasses; ++i) {
      geom[static_cast<std::size_t>(i)] = overlap_geometry(ctx, s0 + i);
      send_buf[static_cast<std::size_t>(i)] =
          acquire_tuples(geom[static_cast<std::size_t>(i)].total_out);
      send_live[static_cast<std::size_t>(i)] = true;
      cursor[static_cast<std::size_t>(i)] = geom[static_cast<std::size_t>(i)].cursor_start;
      my.tuples += geom[static_cast<std::size_t>(i)].total_out;
      ctx.m_tuples.add(geom[static_cast<std::size_t>(i)].total_out);
    }

    // ---- Fused KmerGen: one chunk read + scan fills every pass buffer in
    // the group (pass s0+1's generation overlaps pass s0's comm window). ----
    const bool substitute_components = config.cc_opt && s0 > 0;
    const std::uint32_t lo = geom[0].pass_lo;
    const std::uint32_t mid = geom[0].pass_hi;
    const std::uint32_t hi = geom[static_cast<std::size_t>(npasses) - 1].pass_hi;
    std::vector<double> io_seconds(static_cast<std::size_t>(T), 0.0);
    std::vector<double> gen_seconds(static_cast<std::size_t>(T), 0.0);
    std::vector<std::uint64_t> skip_counts(static_cast<std::size_t>(T), 0);
    progress_phase(ctx, "KmerGen");
    team.run([&](int t) {
      obs::TraceSession::set_thread_identity(p, t);
      std::uint64_t* cur0 = cursor[0].data() + static_cast<std::size_t>(t) * nslots;
      std::uint64_t* cur1 =
          npasses > 1 ? cursor[1].data() + static_cast<std::size_t>(t) * nslots : nullptr;
      TupleBuffer& out0 = send_buf[0];
      TupleBuffer& out1 = send_buf[1];
      auto emit64 = [&](std::uint64_t km, std::uint32_t value) {
        const std::uint32_t bin = kmer::prefix_bin64(km, k, m);
        if (bin < lo || bin >= hi) return;
        if (bin < mid) {
          const std::uint64_t at = cur0[geom[0].slot_of_bin[bin - lo]]++;
          out0.keys[at] = km;
          out0.vals[at] = value;
        } else {
          const std::uint64_t at = cur1[geom[1].slot_of_bin[bin - mid]]++;
          out1.keys[at] = km;
          out1.vals[at] = value;
        }
      };
      auto emit128 = [&](kmer::Kmer128 km, std::uint32_t value) {
        const std::uint32_t bin = kmer::prefix_bin128(km, k, m);
        if (bin < lo || bin >= hi) return;
        if (bin < mid) {
          const std::uint64_t at = cur0[geom[0].slot_of_bin[bin - lo]]++;
          out0.keys[at] = km.lo;
          out0.keys_hi[at] = km.hi;
          out0.vals[at] = value;
        } else {
          const std::uint64_t at = cur1[geom[1].slot_of_bin[bin - mid]]++;
          out1.keys[at] = km.lo;
          out1.keys_hi[at] = km.hi;
          out1.vals[at] = value;
        }
      };
      // §3.5.1 substitution happens inside scan_chunk, one group staler
      // than barrier mode (components as of pass s0-1 for both passes in
      // the group).
      for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
        skip_counts[static_cast<std::size_t>(t)] +=
            scan_chunk(ctx, c, substitute_components,
                       io_seconds[static_cast<std::size_t>(t)],
                       gen_seconds[static_cast<std::size_t>(t)], emit64, emit128);
      }
    });
    my.times.add("KmerGen-I/O", *std::max_element(io_seconds.begin(), io_seconds.end()));
    my.times.add("KmerGen", *std::max_element(gen_seconds.begin(), gen_seconds.end()));
    if (s0 == 0) {
      // First chunk sweep == one visit per record: distinct-skip count.
      for (std::uint64_t sk : skip_counts) my.records_skipped += sk;
    }
    phase_boundary(ctx, "KmerGen");

    // Sentinel fill (lenient-parsing gaps), per pass: same rule as barrier
    // mode, except the key is the slot's first bin (the sub-block must stay
    // inside its dest thread's range; see DESIGN.md).
    for (int i = 0; i < npasses; ++i) {
      const OverlapGeom& g = geom[static_cast<std::size_t>(i)];
      TupleBuffer& buf = send_buf[static_cast<std::size_t>(i)];
      auto& cur = cursor[static_cast<std::size_t>(i)];
      for (int t = 0; t < T; ++t) {
        for (std::size_t slot = 0; slot < nslots; ++slot) {
          const std::size_t ts = static_cast<std::size_t>(t) * nslots + slot;
          const std::uint64_t block_end = g.cursor_start[ts] + g.count_send[ts];
          if (cur[ts] == block_end) continue;
          const auto bin = static_cast<std::uint64_t>(g.slot_bounds[slot]);
          const int shift = 2 * (k - m);
          std::uint64_t s_lo, s_hi;
          if (!wide) {
            s_lo = bin << shift;
            s_hi = 0;
          } else if (shift >= 64) {
            s_hi = bin << (shift - 64);
            s_lo = 0;
          } else {
            s_lo = bin << shift;
            s_hi = bin >> (64 - shift);
          }
          for (std::uint64_t at = cur[ts]; at < block_end; ++at) {
            buf.keys[at] = s_lo;
            if (wide) buf.keys_hi[at] = s_hi;
            buf.vals[at] = kInvalidRead;
          }
          cur[ts] = block_end;
        }
      }
    }

    // ---- Post every pass's exchange; sends are buffered, so the send
    // buffers go back to the pool immediately (the mailbox owns the
    // in-flight copies — DESIGN.md "Buffer-pool ownership"). ----
    progress_phase(ctx, "KmerGen-Comm");
    for (int i = 0; i < npasses; ++i) {
      obs::TraceSpan comm_span("KmerGen-Comm");
      WallTimer comm_timer;
      const std::size_t si = static_cast<std::size_t>(i);
      if (P == 1) {
        // Slot layout == region layout at P == 1: the generation buffer IS
        // the sort buffer; no exchange, no copy.
        recv_buf[si] = std::move(send_buf[si]);
        send_buf[si] = TupleBuffer{};
        recv_live[si] = send_live[si];
        send_live[si] = false;
      } else {
        recv_buf[si] = acquire_tuples(geom[si].total_in);
        recv_live[si] = true;
        post_overlap_exchange(ctx, s0 + i, geom[si], send_buf[si], recv_buf[si], pending[si]);
        release_tuples(std::move(send_buf[si]));
        send_buf[si] = TupleBuffer{};
        send_live[si] = false;
        // Cross-rank tuples = everything outside my own P*T slot block.
        const std::uint64_t cross =
            geom[si].total_out -
            (geom[si].slot_start[(static_cast<std::size_t>(p) + 1) * T] -
             geom[si].slot_start[static_cast<std::size_t>(p) * T]);
        my.exchange_bytes += cross * (wide ? 20u : 12u);
        my.exchange_bytes_raw += cross * (wide ? 20u : 12u);
      }
      my.times.add("KmerGen-Comm", comm_timer.seconds());
    }
    phase_boundary(ctx, "KmerGen-Comm");

    // ---- Drain the group: while pass s0 sorts and unions, pass s0+1's
    // exchange stays in flight (straggler ranks may still be generating
    // it); its wait_all is the pipeline's only synchronization. ----
    const double window_t0 = span_begin(tr);
    for (int i = 0; i < npasses; ++i) {
      util::throw_if_cancelled(config.cancel_token, "overlap drain");
      const std::size_t si = static_cast<std::size_t>(i);
      const OverlapGeom& g = geom[si];
      TupleBuffer& tuples = recv_buf[si];
      if (i == npasses - 1) span_end(tr, "Overlap-Window", window_t0);
      if (pass_t0[si] < 0.0) pass_t0[si] = span_begin(tr);
      if (P > 1) {
        obs::TraceSpan wait_span("KmerGen-Comm");
        WallTimer wait_timer;
        comm.wait_all(pending[si]);
        pending[si].clear();
        my.times.add("KmerGen-Comm", wait_timer.seconds());
      }

      // ---- LocalSort: the fine-grained exchange already delivered every
      // tuple into its dest thread's region, so only the stable radix sort
      // remains (barrier mode's partition copy is structurally gone). ----
      progress_phase(ctx, "LocalSort");
      {
        const double sort_t0 = span_begin(tr);
        WallTimer sort_timer;
        TupleBuffer scratch = acquire_tuples(g.total_in);
        ScopeExit scratch_guard([&] { release_tuples(std::move(scratch)); });
        team.run([&](int t) {
          const std::uint64_t rlo = g.region_start[static_cast<std::size_t>(t)];
          const std::uint64_t rhi = g.region_start[static_cast<std::size_t>(t) + 1];
          const std::size_t n = rhi - rlo;
          if (n == 0) return;
          if (!wide) {
            sort::radix_sort_kv64(std::span(tuples.keys).subspan(rlo, n),
                                  std::span(tuples.vals).subspan(rlo, n),
                                  std::span(scratch.keys).subspan(rlo, n),
                                  std::span(scratch.vals).subspan(rlo, n), 2 * k,
                                  config.sort_digit_bits);
          } else {
            sort::radix_sort_kv128(std::span(tuples.keys_hi).subspan(rlo, n),
                                   std::span(tuples.keys).subspan(rlo, n),
                                   std::span(tuples.vals).subspan(rlo, n),
                                   std::span(scratch.keys_hi).subspan(rlo, n),
                                   std::span(scratch.keys).subspan(rlo, n),
                                   std::span(scratch.vals).subspan(rlo, n), 2 * k,
                                   config.sort_digit_bits);
          }
        });
        scratch_guard.dismiss();
        release_tuples(std::move(scratch));
        my.times.add("LocalSort", sort_timer.seconds());
        span_end(tr, "LocalSort", sort_t0);
        phase_boundary(ctx, "LocalSort");
      }

      // ---- LocalCC: identical to barrier mode, over the sorted regions. ----
      progress_phase(ctx, "LocalCC");
      {
        const double cc_t0 = span_begin(tr);
        WallTimer cc_timer;
        std::vector<int> thread_iters(static_cast<std::size_t>(T), 0);
        team.run([&](int t) {
          const std::uint64_t rlo = g.region_start[static_cast<std::size_t>(t)];
          const std::uint64_t rhi = g.region_start[static_cast<std::size_t>(t) + 1];
          std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
          std::uint64_t i2 = rlo;
          while (i2 < rhi) {
            std::uint64_t j = i2 + 1;
            if (!wide) {
              while (j < rhi && tuples.keys[j] == tuples.keys[i2]) ++j;
            } else {
              while (j < rhi && tuples.keys[j] == tuples.keys[i2] &&
                     tuples.keys_hi[j] == tuples.keys_hi[i2])
                ++j;
            }
            const std::uint64_t freq = j - i2;
            if (config.filter.accepts(freq)) {
              for (std::uint64_t x = i2 + 1; x < j; ++x) {
                const std::uint32_t u = tuples.vals[x - 1];
                const std::uint32_t v = tuples.vals[x];
                if (u == v) continue;
                if (u == kInvalidRead || v == kInvalidRead) continue;
                const std::uint32_t ru = local_cc.find(u);
                const std::uint32_t rv = local_cc.find(v);
                if (ru != rv) {
                  local_cc.unite_once(ru, rv);
                  edges.emplace_back(u, v);
                }
              }
            }
            i2 = j;
          }
          thread_iters[static_cast<std::size_t>(t)] =
              1 + dsu::process_edges_algorithm1(local_cc, edges);
          ctx.m_cc_edges.add(edges.size());
        });
        my.times.add("LocalCC", cc_timer.seconds());
        span_end(tr, "LocalCC", cc_t0);
        phase_boundary(ctx, "LocalCC");
        my.cc_iterations =
            std::max(my.cc_iterations,
                     *std::max_element(thread_iters.begin(), thread_iters.end()));
      }

      release_tuples(std::move(tuples));
      recv_buf[si] = TupleBuffer{};
      recv_live[si] = false;
      ctx.m_rss.set_max(static_cast<double>(util::current_rss_bytes()));
      span_end(tr, "Pass", pass_t0[si]);
    }
  }  // pass groups
}

// ---------------------------------------------------------------------------
// Compressed exchange (--comm-compress): super-k-mer aggregation and/or the
// counting-Bloom singleton prefilter over a variable-size staged exchange.
//
// Routing.  superkmer/both route whole runs by minimizer-hash bin
// (kmer::minimizer_bin): the minimizer is a deterministic function of the
// canonical k-mer, so every occurrence of a k-mer lands on one
// (pass, rank, thread) and frequency counting stays global.  bloom-only
// keeps the prefix-bin routing of the uncompressed schedules.  Payloads are
// variable-size, so the precomputed-offset all-to-all is replaced by exactly
// one isend per (src, dest, pass) — sent even when empty, so the receive
// loop has a deterministic message count and World::finalize_check stays
// clean.
//
// Message layout per (src -> dest, pass): u64 lens[T] header (bytes per
// dest-thread section), then section dt = 0..T-1, each the concatenation of
// the source's T thread streams for slot d*T+dt.  The receiver sizes T sort
// regions (one per dest thread, blocks ordered by src rank — the same order
// the uncompressed schedules produce), expands records at exact offsets,
// then LocalSort/LocalCC run unchanged.  Equivalence arguments: DESIGN.md
// "Exchange compression".
// ---------------------------------------------------------------------------

/// Tag space disjoint from barrier (1000+), overlap (2'000'000+), and
/// MergeCC (1<<20): one tag per pass.
constexpr int kCompressTagBase = 3'000'000;

/// Little-endian byte append/read for the message headers.
inline void append_le(std::vector<std::byte>& out, std::uint64_t v, int nbytes) {
  for (int b = 0; b < nbytes; ++b)
    out.push_back(static_cast<std::byte>((v >> (8 * b)) & 0xFF));
}
inline std::uint64_t read_le(const std::byte* p, int nbytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < nbytes; ++b)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[b])) << (8 * b);
  return v;
}

/// Reusable per-thread scratch for the super-k-mer emit path: the scanner's
/// window state plus the record's canonical k-mers indexed by window start
/// (runs only cover valid windows, so only those slots are read).
struct SuperKmerScratch {
  kmer::SuperKmerScanner scanner;
  std::vector<std::uint64_t> km_lo;
  std::vector<std::uint64_t> km_hi;
};

/// Enumerate a record's super-k-mer runs; fn(start, kmer_count, minimizer).
/// Fills sc.km_lo/km_hi with the canonical k-mer per window first so the
/// caller can hash/encode the run's k-mers by position.
template <typename Fn>
void for_each_run(SuperKmerScratch& sc, const RecordView& rec, int k, int msk,
                  bool wide, Fn&& fn) {
  if (rec.len < static_cast<std::uint32_t>(k)) return;
  const std::uint32_t nwin = rec.len - static_cast<std::uint32_t>(k) + 1;
  sc.km_lo.resize(nwin);
  if (wide) sc.km_hi.resize(nwin);
  if (rec.words != nullptr) {
    if (!wide) {
      kmer::for_each_canonical_kmer64_packed(
          rec.words, rec.len, rec.npos, rec.ncount, k,
          [&](std::uint64_t km, std::size_t pos) { sc.km_lo[pos] = km; });
    } else {
      kmer::for_each_canonical_kmer128_packed(
          rec.words, rec.len, rec.npos, rec.ncount, k, [&](kmer::Kmer128 km, std::size_t pos) {
            sc.km_lo[pos] = km.lo;
            sc.km_hi[pos] = km.hi;
          });
    }
    sc.scanner.scan_packed(rec.words, rec.len, rec.npos, rec.ncount, k, msk,
                           std::forward<Fn>(fn));
  } else {
    const std::string_view seq(rec.text, rec.len);
    if (!wide) {
      kmer::for_each_canonical_kmer64(
          seq, k, [&](std::uint64_t km, std::size_t pos) { sc.km_lo[pos] = km; });
    } else {
      kmer::for_each_canonical_kmer128(seq, k, [&](kmer::Kmer128 km, std::size_t pos) {
        sc.km_lo[pos] = km.lo;
        sc.km_hi[pos] = km.hi;
      });
    }
    sc.scanner.scan(seq, k, msk, std::forward<Fn>(fn));
  }
}

/// One pass's routing geometry for the compressed exchange: the bin range
/// plus a bin -> slot (d*T+dt) table, uniform over minimizer-hash bins in
/// superkmer modes, the PassPlan's prefix-bin geometry in bloom-only mode.
struct CompressPassGeom {
  std::uint32_t lo = 0, hi = 0;
  std::vector<std::uint16_t> slot_of_bin;  ///< bin - lo -> slot d*T+dt
};

struct CompressPlan {
  bool superkmer = false;
  bool bloom = false;
  std::uint32_t nbins = 0;
  std::vector<CompressPassGeom> pass;      ///< S entries
  std::vector<std::uint16_t> rank_of_bin;  ///< global bin -> owner rank
};

CompressPlan make_compress_plan(const PassPlan& plan, int S, int P, int T,
                                std::uint32_t prefix_nbins, bool superkmer,
                                bool bloom) {
  CompressPlan cp;
  cp.superkmer = superkmer;
  cp.bloom = bloom;
  const std::size_t nslots = static_cast<std::size_t>(P) * T;
  cp.pass.resize(static_cast<std::size_t>(S));
  if (superkmer) {
    cp.nbins = kmer::kNumMinimizerBins;
    const auto pass_bounds = util::split_range(cp.nbins, S);
    for (int s = 0; s < S; ++s) {
      CompressPassGeom& pg = cp.pass[static_cast<std::size_t>(s)];
      pg.lo = static_cast<std::uint32_t>(pass_bounds[static_cast<std::size_t>(s)]);
      pg.hi = static_cast<std::uint32_t>(pass_bounds[static_cast<std::size_t>(s) + 1]);
      const auto slot_rel = util::split_range(pg.hi - pg.lo, static_cast<int>(nslots));
      std::vector<std::uint32_t> bounds(nslots + 1);
      for (std::size_t i = 0; i <= nslots; ++i)
        bounds[i] = pg.lo + static_cast<std::uint32_t>(slot_rel[i]);
      pg.slot_of_bin = bin_owner_table(bounds);
    }
  } else {
    cp.nbins = prefix_nbins;
    for (int s = 0; s < S; ++s) {
      CompressPassGeom& pg = cp.pass[static_cast<std::size_t>(s)];
      pg.lo = plan.pass_range(s).begin;
      pg.hi = plan.pass_range(s).end;
      std::vector<std::uint32_t> bounds;
      bounds.reserve(nslots + 1);
      bounds.push_back(plan.thread_bounds(s, 0).front());
      for (int d = 0; d < P; ++d) {
        const auto& tb = plan.thread_bounds(s, d);
        for (int t = 1; t <= T; ++t) bounds.push_back(tb[static_cast<std::size_t>(t)]);
      }
      pg.slot_of_bin = bin_owner_table(bounds);
    }
  }
  cp.rank_of_bin.assign(cp.nbins, 0);
  for (int s = 0; s < S; ++s) {
    const CompressPassGeom& pg = cp.pass[static_cast<std::size_t>(s)];
    for (std::uint32_t b = pg.lo; b < pg.hi; ++b) {
      cp.rank_of_bin[b] =
          static_cast<std::uint16_t>(pg.slot_of_bin[b - pg.lo] / static_cast<unsigned>(T));
    }
  }
  return cp;
}

/// The compressed pass scheduler.  Barrier mode runs one pass per group;
/// overlap mode fuses two passes per chunk sweep (same grouping as
/// run_passes_overlap, same one-group-staler §3.5.1 substitution).
/// @p blooms is non-null in bloom/both modes: P destination-owned counting
/// Blooms, globally counted in a pre-scan below (shared-memory stand-in for
/// an MPI-3 one-sided accumulate window; DESIGN.md).
void run_passes_compressed(PassCtx& ctx, const CompressPlan& cplan,
                           std::vector<kmer::CountingBloom>* blooms) {
  const MetaprepConfig& config = ctx.config;
  const ChunkAssignment& ca = ctx.ca;
  mpsim::Comm& comm = ctx.comm;
  ThreadTeam& team = ctx.team;
  dsu::AtomicDSU& local_cc = ctx.local_cc;
  RankShared& my = ctx.my;
  obs::TraceSession& tr = ctx.tr;
  const int p = ctx.p, P = ctx.P, T = ctx.T, S = ctx.S, k = ctx.k, m = ctx.m;
  const bool wide = ctx.wide;
  const int msk = config.superkmer_minimizer_len;
  const std::uint64_t tuple_bytes = wide ? 20 : 12;
  const std::size_t fixed_rec = wide ? 20 : 12;  ///< bloom-only record size
  const std::uint32_t R = ctx.index.total_reads;
  const std::size_t nslots = static_cast<std::size_t>(P) * T;
  const int group_sz = config.pipeline_mode == PipelineMode::kOverlap ? 2 : 1;

  auto hash_at = [&](const SuperKmerScratch& sc, std::uint32_t pos) {
    return wide ? kmer::kmer_hash128(sc.km_hi[pos], sc.km_lo[pos])
                : kmer::kmer_hash64(sc.km_lo[pos]);
  };

  // ---- BloomCount: one extra scan over this rank's chunks inserting every
  // k-mer occurrence into its destination rank's filter, so counts are
  // global before any drop decision.  The barrier publishes all inserts
  // (count() is read-only afterwards); a k-mer seen once on each of two
  // ranks still counts 2 at its single destination, so only true global
  // singletons can be suppressed. ----
  if (blooms != nullptr) {
    progress_phase(ctx, "BloomCount");
    const double bc_t0 = span_begin(tr);
    WallTimer bc_timer;
    team.run([&](int t) {
      obs::TraceSession::set_thread_identity(p, t);
      double io_s = 0.0, gen_s = 0.0;  // folded into BloomCount's own step wall
      if (cplan.superkmer) {
        SuperKmerScratch sc;
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          scan_chunk_records(
              ctx, c, false, io_s, gen_s, false,
              [&](std::uint32_t, const RecordView& rec) {
                for_each_run(sc, rec, k, msk, wide,
                             [&](std::uint32_t start, std::uint32_t count, std::uint64_t mz) {
                               kmer::CountingBloom& bl =
                                   (*blooms)[cplan.rank_of_bin[kmer::minimizer_bin(mz)]];
                               for (std::uint32_t j = 0; j < count; ++j)
                                 bl.insert(hash_at(sc, start + j));
                             });
              });
        }
      } else {
        auto count64 = [&](std::uint64_t km, std::uint32_t) {
          const std::uint32_t bin = kmer::prefix_bin64(km, k, m);
          (*blooms)[cplan.rank_of_bin[bin]].insert(kmer::kmer_hash64(km));
        };
        auto count128 = [&](kmer::Kmer128 km, std::uint32_t) {
          const std::uint32_t bin = kmer::prefix_bin128(km, k, m);
          (*blooms)[cplan.rank_of_bin[bin]].insert(kmer::kmer_hash128(km.hi, km.lo));
        };
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          scan_chunk(ctx, c, false, io_s, gen_s, count64, count128, false);
        }
      }
    });
    comm.barrier();  // happens-before: all inserts visible to all readers
    my.times.add("BloomCount", bc_timer.seconds());
    span_end(tr, "BloomCount", bc_t0);
    phase_boundary(ctx, "BloomCount");
  }

  TupleBuffer tuples;
  TupleBuffer scratch;
  tuples.wide = wide;
  scratch.wide = wide;

  for (int s0 = 0; s0 < S; s0 += group_sz) {
    util::throw_if_cancelled(ctx.config.cancel_token, "compressed pass group");
    const int npasses = std::min(group_sz, S - s0);
    std::array<double, 2> pass_t0{span_begin(tr), -1.0};
    const std::uint32_t g0lo = cplan.pass[static_cast<std::size_t>(s0)].lo;
    const std::uint32_t g0hi = cplan.pass[static_cast<std::size_t>(s0)].hi;
    const std::uint32_t g1lo =
        npasses > 1 ? cplan.pass[static_cast<std::size_t>(s0) + 1].lo : 0;
    const std::uint32_t g1hi =
        npasses > 1 ? cplan.pass[static_cast<std::size_t>(s0) + 1].hi : 0;

    // Per (pass-in-group, my thread, slot) byte streams; concatenated into
    // one message per (dest, pass) below.
    std::array<std::vector<std::vector<std::vector<std::byte>>>, 2> streams;
    for (int i = 0; i < npasses; ++i) {
      streams[static_cast<std::size_t>(i)].assign(
          static_cast<std::size_t>(T), std::vector<std::vector<std::byte>>(nslots));
    }

    // ---- KmerGen (fused over the group in overlap mode): emit wire
    // records instead of fixed tuples.  Lenient-parse skips simply emit
    // nothing — variable-size messages need no sentinel padding. ----
    const bool substitute_components = config.cc_opt && s0 > 0;
    std::vector<double> io_seconds(static_cast<std::size_t>(T), 0.0);
    std::vector<double> gen_seconds(static_cast<std::size_t>(T), 0.0);
    std::vector<std::uint64_t> skip_counts(static_cast<std::size_t>(T), 0);
    std::vector<std::uint64_t> raw_counts(static_cast<std::size_t>(T), 0);
    std::vector<std::uint64_t> kept_counts(static_cast<std::size_t>(T), 0);
    std::vector<std::uint64_t> rec_counts(static_cast<std::size_t>(T), 0);
    std::vector<std::uint64_t> drop_counts(static_cast<std::size_t>(T), 0);
    progress_phase(ctx, "KmerGen");
    team.run([&](int t) {
      obs::TraceSession::set_thread_identity(p, t);
      const std::size_t ut = static_cast<std::size_t>(t);
      // pass-in-group of a routing bin, or -1 when outside the group.
      auto group_pass_of = [&](std::uint32_t bin) -> int {
        if (bin >= g0lo && bin < g0hi) return 0;
        if (npasses > 1 && bin >= g1lo && bin < g1hi) return 1;
        return -1;
      };
      if (cplan.superkmer) {
        SuperKmerScratch sc;
        auto handle_record = [&](std::uint32_t value, const RecordView& rec) {
          for_each_run(sc, rec, k, msk, wide,
                       [&](std::uint32_t start, std::uint32_t count, std::uint64_t mz) {
            const std::uint32_t bin = kmer::minimizer_bin(mz);
            const int i = group_pass_of(bin);
            if (i < 0) return;
            const CompressPassGeom& pg = cplan.pass[static_cast<std::size_t>(s0 + i)];
            const std::uint16_t slot = pg.slot_of_bin[bin - pg.lo];
            const int d = slot / T;
            std::vector<std::byte>& stream =
                streams[static_cast<std::size_t>(i)][ut][slot];
            if (d != p) raw_counts[ut] += count;
            auto emit_subrun = [&](std::uint32_t a, std::uint32_t cnt) {
              while (cnt > 0) {
                const std::uint32_t take = std::min(cnt, kmer::kMaxSuperKmerRun);
                kmer::append_superkmer_record(
                    stream, value, take, k,
                    [&](std::size_t j) { return rec.code_at(start + a + j); });
                ++rec_counts[ut];
                a += take;
                cnt -= take;
              }
            };
            if (blooms == nullptr) {
              kept_counts[ut] += count;
              emit_subrun(0, count);
            } else {
              // Bloom-surviving maximal sub-runs: every k-mer in a kept
              // sub-run has global count >= 2 at its (single) destination.
              const kmer::CountingBloom& bl = (*blooms)[d];
              std::uint32_t a = 0;
              while (a < count) {
                if (bl.count(hash_at(sc, start + a)) < 2) {
                  ++drop_counts[ut];
                  ++a;
                  continue;
                }
                std::uint32_t b = a + 1;
                while (b < count && bl.count(hash_at(sc, start + b)) >= 2) ++b;
                kept_counts[ut] += b - a;
                emit_subrun(a, b - a);
                a = b;
              }
            }
          });
        };
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          skip_counts[ut] += scan_chunk_records(ctx, c, substitute_components,
                                                io_seconds[ut], gen_seconds[ut],
                                                true, handle_record);
        }
      } else {
        // bloom-only: prefix-bin routing, fixed-size (k-mer, value) records.
        auto route = [&](std::uint32_t bin) -> std::pair<int, std::vector<std::byte>*> {
          const int i = group_pass_of(bin);
          if (i < 0) return {-1, nullptr};
          const CompressPassGeom& pg = cplan.pass[static_cast<std::size_t>(s0 + i)];
          const std::uint16_t slot = pg.slot_of_bin[bin - pg.lo];
          return {slot / T, &streams[static_cast<std::size_t>(i)][ut][slot]};
        };
        auto emit64 = [&](std::uint64_t km, std::uint32_t value) {
          const auto [d, stream] = route(kmer::prefix_bin64(km, k, m));
          if (d < 0) return;
          if (d != p) ++raw_counts[ut];
          if ((*blooms)[d].count(kmer::kmer_hash64(km)) < 2) {
            ++drop_counts[ut];
            return;
          }
          ++kept_counts[ut];
          append_le(*stream, km, 8);
          append_le(*stream, value, 4);
        };
        auto emit128 = [&](kmer::Kmer128 km, std::uint32_t value) {
          const auto [d, stream] = route(kmer::prefix_bin128(km, k, m));
          if (d < 0) return;
          if (d != p) ++raw_counts[ut];
          if ((*blooms)[d].count(kmer::kmer_hash128(km.hi, km.lo)) < 2) {
            ++drop_counts[ut];
            return;
          }
          ++kept_counts[ut];
          append_le(*stream, km.lo, 8);
          append_le(*stream, km.hi, 8);
          append_le(*stream, value, 4);
        };
        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          skip_counts[ut] += scan_chunk(ctx, c, substitute_components, io_seconds[ut],
                                        gen_seconds[ut], emit64, emit128);
        }
      }
    });
    my.times.add("KmerGen-I/O", *std::max_element(io_seconds.begin(), io_seconds.end()));
    my.times.add("KmerGen", *std::max_element(gen_seconds.begin(), gen_seconds.end()));
    if (s0 == 0) {
      for (std::uint64_t sk : skip_counts) my.records_skipped += sk;
    }
    for (int t = 0; t < T; ++t) {
      const std::size_t ut = static_cast<std::size_t>(t);
      my.exchange_bytes_raw += raw_counts[ut] * tuple_bytes;
      my.tuples += kept_counts[ut];
      my.bloom_dropped += drop_counts[ut];
      if (cplan.superkmer) my.superkmer_records += rec_counts[ut];
      ctx.m_tuples.add(kept_counts[ut]);
    }
    phase_boundary(ctx, "KmerGen");

    // ---- KmerGen-Comm: one message per (dest, pass), always sent (the
    // u64 lens[T] header makes even an empty message well-formed and keeps
    // the receive count deterministic). ----
    progress_phase(ctx, "KmerGen-Comm");
    std::array<std::vector<std::byte>, 2> self_msg;
    for (int i = 0; i < npasses; ++i) {
      obs::TraceSpan comm_span("KmerGen-Comm");
      WallTimer comm_timer;
      const std::size_t si = static_cast<std::size_t>(i);
      for (int d = 0; d < P; ++d) {
        std::vector<std::byte> msg;
        std::size_t total = 8u * static_cast<std::size_t>(T);
        for (int dt = 0; dt < T; ++dt) {
          for (int t = 0; t < T; ++t) {
            total += streams[si][static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(d) * T + dt].size();
          }
        }
        msg.reserve(total);
        for (int dt = 0; dt < T; ++dt) {
          std::uint64_t len = 0;
          for (int t = 0; t < T; ++t) {
            len += streams[si][static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(d) * T + dt].size();
          }
          append_le(msg, len, 8);
        }
        for (int dt = 0; dt < T; ++dt) {
          for (int t = 0; t < T; ++t) {
            auto& st = streams[si][static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(d) * T + dt];
            msg.insert(msg.end(), st.begin(), st.end());
            st.clear();
            st.shrink_to_fit();
          }
        }
        if (d == p) {
          self_msg[si] = std::move(msg);
        } else {
          my.exchange_bytes += msg.size();
          comm.isend(d, kCompressTagBase + s0 + i, msg.data(), msg.size());
        }
      }
      my.times.add("KmerGen-Comm", comm_timer.seconds());
    }
    phase_boundary(ctx, "KmerGen-Comm");

    // ---- Drain the group pass by pass: receive, expand, sort, union. ----
    for (int i = 0; i < npasses; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      if (pass_t0[si] < 0.0) pass_t0[si] = span_begin(tr);
      std::vector<std::vector<std::byte>> msgs(static_cast<std::size_t>(P));
      msgs[static_cast<std::size_t>(p)] = std::move(self_msg[si]);
      if (P > 1) {
        obs::TraceSpan wait_span("KmerGen-Comm");
        WallTimer wait_timer;
        for (int stage = 1; stage < P; ++stage) {
          const int q = (p - stage + P) % P;
          msgs[static_cast<std::size_t>(q)] =
              comm.recv_any_size(q, kCompressTagBase + s0 + i);
        }
        my.times.add("KmerGen-Comm", wait_timer.seconds());
      }
      std::uint64_t msg_bytes = 0;
      for (const auto& msg : msgs) msg_bytes += msg.size();
      const obs::MemCharge msgs_mem("comm", msg_bytes);

      // ---- Expand: size the T sort regions from the headers, validate
      // and count every record, then decode at exact offsets in parallel.
      // Region dt holds blocks ordered by src rank q ascending — the same
      // (src rank, src thread, generation order) sequence the uncompressed
      // schedules deliver, so the stable sort sees equivalent input. ----
      progress_phase(ctx, "Expand");
      const double ex_t0 = span_begin(tr);
      WallTimer ex_timer;
      std::vector<std::uint64_t> sec_off(nslots, 0);
      std::vector<std::uint64_t> sec_len(nslots, 0);
      for (int q = 0; q < P; ++q) {
        const auto& msg = msgs[static_cast<std::size_t>(q)];
        if (msg.size() < 8u * static_cast<std::size_t>(T))
          throw util::parse_error("comm-compress: message shorter than its header");
        std::uint64_t off = 8u * static_cast<std::size_t>(T);
        for (int dt = 0; dt < T; ++dt) {
          const std::uint64_t len = read_le(msg.data() + 8 * dt, 8);
          if (len > msg.size() - off)
            throw util::parse_error("comm-compress: section overruns message");
          sec_off[static_cast<std::size_t>(q) * T + dt] = off;
          sec_len[static_cast<std::size_t>(q) * T + dt] = len;
          off += len;
        }
        if (off != msg.size())
          throw util::parse_error("comm-compress: trailing bytes after last section");
      }
      std::vector<std::uint64_t> block_count(nslots, 0);
      team.run([&](int t) {
        for (int q = 0; q < P; ++q) {
          const std::size_t idx = static_cast<std::size_t>(q) * T + t;
          const std::byte* data = msgs[static_cast<std::size_t>(q)].data() + sec_off[idx];
          if (cplan.superkmer) {
            block_count[idx] = kmer::count_superkmer_stream(data, sec_len[idx], k).kmers;
          } else {
            if (sec_len[idx] % fixed_rec != 0)
              throw util::parse_error("comm-compress: truncated tuple record");
            block_count[idx] = sec_len[idx] / fixed_rec;
          }
        }
      });
      std::vector<std::uint64_t> region_start(static_cast<std::size_t>(T) + 1, 0);
      for (int dt = 0; dt < T; ++dt) {
        std::uint64_t tot = 0;
        for (int q = 0; q < P; ++q) tot += block_count[static_cast<std::size_t>(q) * T + dt];
        region_start[static_cast<std::size_t>(dt) + 1] =
            region_start[static_cast<std::size_t>(dt)] + tot;
      }
      std::vector<std::uint64_t> block_off(nslots, 0);
      for (int dt = 0; dt < T; ++dt) {
        std::uint64_t off = region_start[static_cast<std::size_t>(dt)];
        for (int q = 0; q < P; ++q) {
          block_off[static_cast<std::size_t>(q) * T + dt] = off;
          off += block_count[static_cast<std::size_t>(q) * T + dt];
        }
      }
      const std::uint64_t total_in = region_start[static_cast<std::size_t>(T)];
      tuples.resize(total_in);
      tuples.mem_account();
      scratch.resize(total_in);
      scratch.mem_account();
      my.max_buffer_bytes =
          std::max(my.max_buffer_bytes, tuples.bytes() + scratch.bytes() + msg_bytes);
      team.run([&](int t) {
        obs::TraceSession::set_thread_identity(p, t);
        for (int q = 0; q < P; ++q) {
          const std::size_t idx = static_cast<std::size_t>(q) * T + t;
          const std::byte* data = msgs[static_cast<std::size_t>(q)].data() + sec_off[idx];
          std::uint64_t at = block_off[idx];
          if (cplan.superkmer) {
            kmer::SuperKmerReader reader(data, sec_len[idx], k);
            while (!reader.done()) {
              reader.next_header();
              const std::uint32_t value = reader.value();
              if (value >= R)
                throw util::parse_error("comm-compress: record value out of range");
              if (!wide) {
                reader.expand64([&](std::uint64_t km) {
                  tuples.keys[at] = km;
                  tuples.vals[at] = value;
                  ++at;
                });
              } else {
                reader.expand128([&](kmer::Kmer128 km) {
                  tuples.keys[at] = km.lo;
                  tuples.keys_hi[at] = km.hi;
                  tuples.vals[at] = value;
                  ++at;
                });
              }
            }
          } else {
            for (const std::byte* rp = data; rp != data + sec_len[idx]; rp += fixed_rec) {
              const std::uint32_t value =
                  static_cast<std::uint32_t>(read_le(rp + fixed_rec - 4, 4));
              if (value >= R)
                throw util::parse_error("comm-compress: record value out of range");
              tuples.keys[at] = read_le(rp, 8);
              if (wide) tuples.keys_hi[at] = read_le(rp + 8, 8);
              tuples.vals[at] = value;
              ++at;
            }
          }
        }
      });
      my.times.add("Expand", ex_timer.seconds());
      span_end(tr, "Expand", ex_t0);
      phase_boundary(ctx, "Expand");

      // ---- LocalSort: stable radix per dest-thread region. ----
      progress_phase(ctx, "LocalSort");
      {
        const double sort_t0 = span_begin(tr);
        WallTimer sort_timer;
        team.run([&](int t) {
          const std::uint64_t rlo = region_start[static_cast<std::size_t>(t)];
          const std::uint64_t rhi = region_start[static_cast<std::size_t>(t) + 1];
          const std::size_t n = rhi - rlo;
          if (n == 0) return;
          if (!wide) {
            sort::radix_sort_kv64(std::span(tuples.keys).subspan(rlo, n),
                                  std::span(tuples.vals).subspan(rlo, n),
                                  std::span(scratch.keys).subspan(rlo, n),
                                  std::span(scratch.vals).subspan(rlo, n), 2 * k,
                                  config.sort_digit_bits);
          } else {
            sort::radix_sort_kv128(std::span(tuples.keys_hi).subspan(rlo, n),
                                   std::span(tuples.keys).subspan(rlo, n),
                                   std::span(tuples.vals).subspan(rlo, n),
                                   std::span(scratch.keys_hi).subspan(rlo, n),
                                   std::span(scratch.keys).subspan(rlo, n),
                                   std::span(scratch.vals).subspan(rlo, n), 2 * k,
                                   config.sort_digit_bits);
          }
        });
        my.times.add("LocalSort", sort_timer.seconds());
        span_end(tr, "LocalSort", sort_t0);
        phase_boundary(ctx, "LocalSort");
      }

      // ---- LocalCC: identical to the uncompressed schedules.  Decoded
      // values are validated < R above, so no sentinel guard is needed. ----
      progress_phase(ctx, "LocalCC");
      {
        const double cc_t0 = span_begin(tr);
        WallTimer cc_timer;
        std::vector<int> thread_iters(static_cast<std::size_t>(T), 0);
        team.run([&](int t) {
          const std::uint64_t rlo = region_start[static_cast<std::size_t>(t)];
          const std::uint64_t rhi = region_start[static_cast<std::size_t>(t) + 1];
          std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
          std::uint64_t i2 = rlo;
          while (i2 < rhi) {
            std::uint64_t j = i2 + 1;
            if (!wide) {
              while (j < rhi && tuples.keys[j] == tuples.keys[i2]) ++j;
            } else {
              while (j < rhi && tuples.keys[j] == tuples.keys[i2] &&
                     tuples.keys_hi[j] == tuples.keys_hi[i2])
                ++j;
            }
            const std::uint64_t freq = j - i2;
            if (config.filter.accepts(freq)) {
              for (std::uint64_t x = i2 + 1; x < j; ++x) {
                const std::uint32_t u = tuples.vals[x - 1];
                const std::uint32_t v = tuples.vals[x];
                if (u == v) continue;
                const std::uint32_t ru = local_cc.find(u);
                const std::uint32_t rv = local_cc.find(v);
                if (ru != rv) {
                  local_cc.unite_once(ru, rv);
                  edges.emplace_back(u, v);
                }
              }
            }
            i2 = j;
          }
          thread_iters[static_cast<std::size_t>(t)] =
              1 + dsu::process_edges_algorithm1(local_cc, edges);
          ctx.m_cc_edges.add(edges.size());
        });
        my.times.add("LocalCC", cc_timer.seconds());
        span_end(tr, "LocalCC", cc_t0);
        phase_boundary(ctx, "LocalCC");
        my.cc_iterations =
            std::max(my.cc_iterations,
                     *std::max_element(thread_iters.begin(), thread_iters.end()));
      }
      ctx.m_rss.set_max(static_cast<double>(util::current_rss_bytes()));
      span_end(tr, "Pass", pass_t0[si]);
    }
  }  // pass groups
}

/// Dump the per-(src, dst) traffic matrices (--comm-matrix-out) as one JSON
/// object: {"ranks": P, "skew": s, "bytes": [[..]], "msgs": [[..]]}.
void write_comm_matrix(const std::string& path, int ranks,
                       const std::vector<std::uint64_t>& bytes,
                       const std::vector<std::uint64_t>& msgs, double skew) {
  std::string out = "{\n  \"ranks\": " + std::to_string(ranks) + ",\n  \"skew\": ";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", skew);
  out += buf;
  auto emit = [&](const char* name, const std::vector<std::uint64_t>& mat) {
    out += ",\n  \"";
    out += name;
    out += "\": [";
    for (int i = 0; i < ranks; ++i) {
      out += i > 0 ? ",\n    [" : "\n    [";
      for (int j = 0; j < ranks; ++j) {
        if (j > 0) out += ",";
        out += std::to_string(mat[static_cast<std::size_t>(i) * ranks + j]);
      }
      out += "]";
    }
    out += "\n  ]";
  };
  emit("bytes", bytes);
  emit("msgs", msgs);
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw util::io_error("comm matrix: cannot open for writing", path);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const int rc = std::fclose(f);
  if (written != out.size() || rc != 0)
    throw util::io_error("comm matrix: short write", path);
}

}  // namespace

PipelineResult run_metaprep(const DatasetIndex& index, const MetaprepConfig& config) {
  const int k = config.k;
  if (k != index.k)
    throw util::config_error("run_metaprep: config.k differs from the index's k");
  if (k < index.mer_hist.m || k > kmer::kMaxK128)
    throw util::config_error("run_metaprep: k out of range");
  const int P = config.num_ranks;
  const int T = config.threads_per_rank;
  if (P < 1 || T < 1) throw util::config_error("run_metaprep: P and T must be >= 1");
  if (config.output_bins < 0 || config.output_bins > 0xFFFF)
    throw util::config_error("run_metaprep: output_bins must be in [0, 65535]");
  const bool compress = config.comm_compress != CommCompress::kNone;
  const bool cp_superkmer = config.comm_compress == CommCompress::kSuperKmer ||
                            config.comm_compress == CommCompress::kBoth;
  const bool cp_bloom = config.comm_compress == CommCompress::kBloom ||
                        config.comm_compress == CommCompress::kBoth;
  if (compress) {
    if (static_cast<std::size_t>(P) * static_cast<std::size_t>(T) > 0xFFFF)
      throw util::config_error("comm-compress: P*T must fit the 16-bit slot table");
    if (cp_superkmer &&
        (config.superkmer_minimizer_len < 1 ||
         config.superkmer_minimizer_len > std::min(k, 31)))
      throw util::config_error(
          "comm-compress: superkmer_minimizer_len must be in [1, min(k, 31)]");
    if (cp_bloom && (config.bloom_counters_per_key < 1 || config.bloom_hashes < 1 ||
                     config.bloom_hashes > 8))
      throw util::config_error(
          "comm-compress: bloom_counters_per_key must be >= 1 and bloom_hashes in [1, 8]");
  }
  const bool wide = k > kmer::kMaxK64;
  const int tuple_bytes = wide ? 20 : 12;
  const std::uint32_t R = index.total_reads;
  const int m = index.mer_hist.m;

  // Session plumbing: when the config names per-session observability
  // instances, install them as this thread's overrides for the whole run.
  // Everything below resolves sinks through obs::*::current(), and the
  // overrides propagate to ThreadTeam workers and mpsim rank threads, so a
  // null config keeps the historical global-singleton behaviour exactly.
  util::SessionContext session_ctx = util::SessionContext::capture();
  if (config.trace_session != nullptr) session_ctx.trace = config.trace_session;
  if (config.metrics_registry != nullptr) session_ctx.metrics = config.metrics_registry;
  if (config.mem_registry != nullptr) session_ctx.mem = config.mem_registry;
  const util::ScopedSessionContext session_bind(session_ctx);

  // Memory-model input, shared by pass derivation (S == 0) and the
  // attribution report's predicted-vs-actual reconciliation.
  MemoryModelInput mm;
  mm.total_tuples = index.mer_hist.total();
  mm.total_reads = R;
  mm.num_chunks = index.part.num_chunks();
  mm.max_chunk_bytes = index.max_chunk_bytes();
  mm.m = m;
  mm.num_ranks = P;
  mm.threads_per_rank = T;
  mm.tuple_bytes = tuple_bytes;

  int S = config.num_passes;
  if (S == 0) {
    S = min_passes_for_budget(mm, config.memory_budget_bytes);
    if (S == 0)
      throw util::config_error("run_metaprep: memory budget too small for any pass count");
  }
  mm.num_passes = S;

  // Zero-component hardening: an empty dataset short-circuits to a fully
  // formed empty result in either pipeline mode — no passes, no comm, no
  // ghost ".other.fastq" files, no sentinel roots.
  if (R == 0) {
    PipelineResult result;
    result.passes_used = S;
    if (!config.metrics_out.empty()) {
      obs::MetricsRegistry& mreg = obs::metrics();
      const bool were_enabled = mreg.enabled();
      mreg.reset_values();
      mreg.set_enabled(true);
      mreg.gauge("pipeline.passes").set(static_cast<double>(S));
      mreg.gauge("pipeline.components").set(0.0);
      mreg.write_jsonl(config.metrics_out);
      mreg.set_enabled(were_enabled);
    }
    if (!config.trace_out.empty()) {
      obs::TraceSession& trs = obs::TraceSession::current();
      const bool was_enabled = trs.enabled();
      trs.clear();
      trs.write_chrome_json(config.trace_out);
      if (!was_enabled) trs.disable();
    }
    if (!config.attr_out.empty()) {
      obs::AttrReport empty;
      empty.ranks = P;
      empty.threads = T;
      empty.passes = S;
      empty.write_json(config.attr_out);
    }
    if (!config.comm_matrix_out.empty()) {
      write_comm_matrix(config.comm_matrix_out, P,
                        std::vector<std::uint64_t>(static_cast<std::size_t>(P) * P, 0),
                        std::vector<std::uint64_t>(static_cast<std::size_t>(P) * P, 0), 0.0);
    }
    return result;
  }

  const PassPlan plan(index.mer_hist, S, P, T);
  const ChunkAssignment ca(index.part.num_chunks(), P, T);
  const std::size_t nbins = index.mer_hist.counts.size();

  // Exchange-compression routing plan and (bloom modes) the P destination-
  // owned counting filters.  Each filter is sized for its rank's expected
  // share of k-mer occurrences; the bloom bytes are charged to their own
  // memory subsystem and are deliberately NOT wire traffic (a shared-memory
  // stand-in for an MPI-3 one-sided accumulate window; DESIGN.md).
  CompressPlan cplan;
  if (compress) {
    cplan = make_compress_plan(plan, S, P, T, static_cast<std::uint32_t>(nbins),
                               cp_superkmer, cp_bloom);
  }
  std::vector<kmer::CountingBloom> blooms;
  std::uint64_t bloom_bytes = 0;
  if (cp_bloom) {
    const std::uint64_t expected =
        std::max<std::uint64_t>(1, mm.total_tuples / static_cast<std::uint64_t>(P));
    blooms.reserve(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      blooms.emplace_back(expected, config.bloom_counters_per_key, config.bloom_hashes,
                          config.bloom_seed + static_cast<std::uint64_t>(d));
      bloom_bytes += blooms.back().memory_bytes();
    }
    obs::mem_charge("bloom", bloom_bytes);
  }

  // Observability: when the config names output files, this run owns its
  // session's tracer/metrics (cleared + enabled here, exported after the
  // run); with no session installed that is still the process globals.
  // attr_out needs the span data, so it forces tracing like trace_out.
  obs::TraceSession& tr = obs::TraceSession::current();
  const bool trace_was_enabled = tr.enabled();
  const bool want_trace = !config.trace_out.empty() || !config.attr_out.empty();
  if (want_trace) {
    tr.clear();
    tr.enable();
  }
  const bool metrics_were_enabled = obs::metrics().enabled();
  if (!config.metrics_out.empty()) {
    obs::metrics().reset_values();
    obs::metrics().set_enabled(true);
  }
  // Memory attribution rides with tracing: its subsystem high-water marks
  // feed the same report, and its cost discipline is the same one-relaxed-
  // load-when-off, so untraced runs are unaffected.
  obs::MemRegistry& memreg = obs::MemRegistry::current();
  const bool mem_was_enabled = memreg.enabled();
  const bool traced_run = tr.enabled();
  if (traced_run && !mem_was_enabled) {
    memreg.reset();
    memreg.set_enabled(true);
  }
  // --progress: one stderr line driven by the pipeline's phase boundaries.
  // Total ticks = chunk reads per KmerGen sweep (overlap mode reads each
  // chunk once per pass *group*) plus the CC-I/O sweep when output is on.
  obs::Progress& prog = obs::Progress::global();
  if (config.progress) {
    const std::uint64_t nchunks = index.part.num_chunks();
    const std::uint64_t sweeps = config.pipeline_mode == PipelineMode::kOverlap
                                     ? (static_cast<std::uint64_t>(S) + 1) / 2
                                     : static_cast<std::uint64_t>(S);
    prog.set_enabled(true);
    prog.begin_run(nchunks * sweeps + (config.write_output ? nchunks : 0));
  }
  // Hot-path metric handles resolved once (registry lookup takes a mutex).
  obs::Counter& m_tuples = obs::metrics().counter("pipeline.tuples_total");
  obs::Counter& m_cc_edges = obs::metrics().counter("pipeline.cc_edges_total");
  obs::Gauge& m_rss = obs::metrics().gauge("mem.rss_peak");
  obs::Gauge& m_peak = obs::metrics().gauge("proc.peak_rss_bytes");
  // Manual span markers for steps whose lifetime doesn't match a C++ scope.
  auto span_begin = [&tr]() { return tr.enabled() ? tr.now_us() : -1.0; };
  auto span_end = [&tr](const char* name, double t0) {
    if (t0 >= 0.0) tr.record(name, t0, tr.now_us() - t0);
  };

  // Label-slice geometry for the merge tail's scatter: rank q's chunks
  // cover the read-ID interval [sl_off[q], sl_off[q] + sl_len[q]).  Derived
  // from the shared chunk table, so every rank computes identical slices.
  // Paired-end libraries interleave the per-rank intervals (mates share one
  // ID), which is why the slices may overlap and each rank's slice spans
  // roughly 2R/P IDs instead of R/P.
  std::vector<std::uint64_t> slice_off(static_cast<std::size_t>(P), 0);
  std::vector<std::uint64_t> slice_len(static_cast<std::size_t>(P), 0);
  {
    for (int q = 0; q < P; ++q) {
      std::uint64_t lo = R;
      std::uint64_t hi = 0;
      for (std::uint32_t c = ca.rank_begin(q); c < ca.rank_end(q); ++c) {
        const ChunkRecord& chunk = index.part.chunks[c];
        lo = std::min<std::uint64_t>(lo, chunk.first_read_id);
        hi = std::max<std::uint64_t>(hi, chunk.first_read_id + chunk.record_count);
      }
      if (hi > lo) {
        slice_off[static_cast<std::size_t>(q)] = lo;
        slice_len[static_cast<std::size_t>(q)] = hi - lo;
      }
    }
  }

  const bool bin_mode = config.output_bins >= 1;
  mpsim::World world(P, config.cost_model);
  std::vector<RankShared> shared(static_cast<std::size_t>(P));
  std::vector<std::uint32_t> final_labels(R);
  std::uint32_t largest_root_shared = 0;
  std::vector<part::Component> components_shared;  // written by rank 0 only
  part::BinPlan bin_plan_shared;                   // written by rank 0 only

  WallTimer run_timer;  // measured wall for the attribution report

  // ---- PackedIngest (--read-store=packed): the run's single FASTQ parse.
  // Every record lands 2-bit-packed in an arena; the KmerGen scans below
  // walk the arena and the per-pass text re-parse disappears.  A named
  // --packed-store arena is serialized and mmapped back (it outlives the
  // run); an ephemeral arena stays in memory and never touches disk.  The
  // ingest is deliberately inside the measured wall: packed mode must pay
  // for its arena to claim a win over text mode.  The parse itself is
  // sharded over the run's worker budget, capped at the machine's real
  // core count — mpsim ranks oversubscribe cores by design, but for the
  // ingest (pure local CPU work, no simulated communication) extra threads
  // on a small host are pure overhead.  Shards merge deterministically, so
  // the arena bytes never depend on the thread count. ----
  io::PackedStore packed_store;
  io::PackedStoreStats packed_stats{};
  double packed_ingest_s = 0.0;
  const bool packed_is_temp = config.packed_store_path.empty();
  if (config.read_store == ReadStore::kPacked) {
    const int ingest_threads = std::clamp(
        static_cast<int>(std::thread::hardware_concurrency()), 1, P * T);
    WallTimer ingest_timer;
    const double ingest_t0 = span_begin();
    if (packed_is_temp) {
      packed_store = build_packed_store_in_memory(index, config.parse_mode,
                                                  ingest_threads, &packed_stats);
    } else {
      packed_stats = build_packed_store(index, config.packed_store_path,
                                        config.parse_mode, ingest_threads);
      packed_store = io::PackedStore::open(config.packed_store_path);
    }
    span_end("PackedIngest", ingest_t0);
    packed_ingest_s = ingest_timer.seconds();
  }

  world.run([&](mpsim::Comm& comm) {
    const int p = comm.rank();
    obs::TraceSession::set_thread_identity(p, 0);
    RankShared& my = shared[static_cast<std::size_t>(p)];
    ThreadTeam team(T);
    dsu::AtomicDSU local_cc(R);

    PassCtx ctx{index,  config, plan,   ca,
                comm,   team,   local_cc, my,
                tr,     m_tuples, m_cc_edges, m_rss,
                m_peak, packed_store.is_open() ? &packed_store : nullptr,
                p,      P,      T,      S,
                k,      m,      wide};
    if (compress) {
      run_passes_compressed(ctx, cplan, cp_bloom ? &blooms : nullptr);
    } else if (config.pipeline_mode == PipelineMode::kOverlap) {
      run_passes_overlap(ctx);
    } else {
      run_passes_barrier(ctx);
    }

    // ---- MergeCC (§3.6): combine rank-local component arrays. ----
    util::throw_if_cancelled(config.cancel_token, "MergeCC");
    progress_phase(ctx, "MergeCC");
    std::vector<std::uint32_t> parents = local_cc.parents();
    if (config.merge_strategy == MergeStrategy::kPairwiseTree) {
      // The paper's method (Figure 4): pairwise merge over ceil(log P)
      // rounds; rank 0 ends with the global components.
      constexpr int kMergeTag = 1 << 20;
      int round = 0;
      for (int step = 1; step < P; step <<= 1, ++round) {
        if (p % (2 * step) == step) {
          const double send_t0 = span_begin();
          WallTimer send_timer;
          comm.send(p - step, kMergeTag + round, parents.data(),
                    parents.size() * sizeof(std::uint32_t));
          my.times.add("Merge-Comm", send_timer.seconds());
          span_end("Merge-Comm", send_t0);
          my.merge_comm_bytes += parents.size() * sizeof(std::uint32_t);
          break;  // this rank is inactive in later rounds
        }
        if (p % (2 * step) == 0 && p + step < P) {
          const double recv_t0 = span_begin();
          WallTimer recv_timer;
          std::vector<std::uint32_t> incoming(R);
          comm.recv(p + step, kMergeTag + round, incoming.data(),
                    incoming.size() * sizeof(std::uint32_t));
          my.times.add("Merge-Comm", recv_timer.seconds());
          span_end("Merge-Comm", recv_t0);
          const double merge_t0 = span_begin();
          WallTimer merge_timer;
          // Each entry is an edge (i, p'[i]); union into the local forest.
          dsu::SerialDSU merged(std::move(parents));
          for (std::uint32_t i = 0; i < R; ++i) {
            if (incoming[i] != i) merged.unite(i, incoming[i]);
          }
          parents = merged.take_parents();
          my.times.add("MergeCC", merge_timer.seconds());
          span_end("MergeCC", merge_t0);
        }
      }
    } else if (P > 1) {
      // Contraction (§5 future work, after Iverson et al.): ship only the
      // non-trivial (vertex, parent) pairs — the contracted component
      // graph — to rank 0 in a single round.
      constexpr int kContractTag = (1 << 20) + 4096;
      if (p != 0) {
        const double send_t0 = span_begin();
        WallTimer send_timer;
        std::vector<std::uint32_t> edges;
        for (std::uint32_t i = 0; i < R; ++i) {
          if (parents[i] != i) {
            edges.push_back(i);
            edges.push_back(parents[i]);
          }
        }
        comm.send(0, kContractTag, edges.data(), edges.size() * sizeof(std::uint32_t));
        my.times.add("Merge-Comm", send_timer.seconds());
        span_end("Merge-Comm", send_t0);
        my.merge_comm_bytes += edges.size() * sizeof(std::uint32_t);
      } else {
        dsu::SerialDSU merged(std::move(parents));
        for (int q = 1; q < P; ++q) {
          const double recv_t0 = span_begin();
          WallTimer recv_timer;
          const auto payload = comm.recv_any_size(q, kContractTag);
          my.times.add("Merge-Comm", recv_timer.seconds());
          span_end("Merge-Comm", recv_t0);
          const double merge_t0 = span_begin();
          WallTimer merge_timer;
          std::vector<std::uint32_t> edges(payload.size() / sizeof(std::uint32_t));
          std::memcpy(edges.data(), payload.data(), payload.size());
          for (std::size_t i = 0; i + 1 < edges.size(); i += 2) {
            merged.unite(edges[i], edges[i + 1]);
          }
          my.times.add("MergeCC", merge_timer.seconds());
          span_end("MergeCC", merge_t0);
        }
        parents = merged.take_parents();
      }
    }

    // Rank 0 flattens labels and ranks component sizes across the thread
    // team; each rank then receives only the label slice covering its own
    // chunk ranges plus compact component tables — the scaled form of "The
    // global components list in Rank 0 is broadcast to all other tasks"
    // (§3.6) that ships O(R/P + #components) per rank instead of O(R).
    const int top_n = std::max(1, config.output_top_components);
    std::vector<std::uint32_t> labels;  // full array lives on rank 0 only
    std::vector<std::uint32_t> top_roots(static_cast<std::size_t>(top_n), 0xFFFFFFFFu);
    part::RootSlotTable root_table;  // bin mode: root -> output bin
    if (p == 0) {
      const double flatten_t0 = span_begin();
      WallTimer flatten_timer;
      labels.assign(R, 0);
      dsu::AtomicDSU final_dsu{std::span<const std::uint32_t>(parents)};
      std::vector<std::uint32_t> sizes(R, 0);
      const auto id_bounds = util::split_range(R, T);
      // Parallel find with path splitting; per-thread counts land directly
      // in the global size array via atomic increments, and the thread that
      // first touches a root claims it for the (deterministic-set) root
      // list — no O(R) post-scan, no O(R*T) per-thread arrays.
      std::vector<std::vector<std::uint32_t>> thread_roots(static_cast<std::size_t>(T));
      team.run([&](int t) {
        auto& my_roots = thread_roots[static_cast<std::size_t>(t)];
        for (std::size_t i = id_bounds[static_cast<std::size_t>(t)];
             i < id_bounds[static_cast<std::size_t>(t) + 1]; ++i) {
          const std::uint32_t root = final_dsu.find(static_cast<std::uint32_t>(i));
          labels[i] = root;
          const std::uint32_t prev =
              std::atomic_ref<std::uint32_t>(sizes[root])
                  .fetch_add(1, std::memory_order_relaxed);
          if (prev == 0) my_roots.push_back(root);
        }
      });
      std::vector<std::uint32_t> roots;
      for (auto& tr_roots : thread_roots) {
        roots.insert(roots.end(), tr_roots.begin(), tr_roots.end());
      }
      if (check::enabled()) {
        // The merged forest must still be a forest (union-by-index promises
        // acyclicity even under the CAS races of LocalCC), and the per-root
        // size counts must conserve the read count: every read labeled once.
        check::verify_parent_forest(parents, "MergeCC merged forest (rank 0)");
        std::uint64_t labeled = 0;
        for (std::uint32_t root : roots) labeled += sizes[root];
        check::verify_size_conservation(labeled, R, "MergeCC flatten component sizes");
      }
      // Top-N roots by component size (N is small; partial selection).
      const auto take = std::min<std::size_t>(static_cast<std::size_t>(top_n), roots.size());
      std::partial_sort(roots.begin(), roots.begin() + static_cast<std::ptrdiff_t>(take),
                        roots.end(), [&](std::uint32_t a, std::uint32_t b) {
                          return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
                        });
      for (std::size_t i = 0; i < take; ++i) top_roots[i] = roots[i];
      final_labels = labels;
      largest_root_shared = top_roots[0];
      if (bin_mode) {
        // Component weights in estimated bp: reads * mean bases per read
        // (per-read lengths are not in the index; DESIGN.md documents the
        // proxy).  128-bit intermediate so huge datasets cannot overflow.
        components_shared.reserve(roots.size());
        for (std::uint32_t root : roots) {
          part::Component comp;
          comp.root = root;
          comp.reads = sizes[root];
          comp.weight_bp = static_cast<std::uint64_t>(
              static_cast<unsigned __int128>(sizes[root]) * index.total_bases / R);
          components_shared.push_back(comp);
        }
        bin_plan_shared = part::greedy_bin_pack(components_shared, config.output_bins);
        root_table = part::make_root_slot_table(components_shared, bin_plan_shared);
      }
      my.times.add("MergeCC", flatten_timer.seconds());
      span_end("MergeCC", flatten_t0);
    }
    std::vector<std::uint32_t> label_slice(slice_len[static_cast<std::size_t>(p)]);
    {
      obs::TraceSpan bc_span("Merge-Comm");
      WallTimer bc_timer;
      // Label scatter: every rank gets the slice its CC-I/O chunks index,
      // byte geometry shared via the chunk table (see slice_off above).
      std::vector<std::uint64_t> byte_off(static_cast<std::size_t>(P));
      std::vector<std::uint64_t> byte_len(static_cast<std::size_t>(P));
      for (int q = 0; q < P; ++q) {
        byte_off[static_cast<std::size_t>(q)] = slice_off[static_cast<std::size_t>(q)] * 4;
        byte_len[static_cast<std::size_t>(q)] = slice_len[static_cast<std::size_t>(q)] * 4;
      }
      comm.scatterv(labels.data(), byte_off, byte_len, label_slice.data(), 0);
      comm.broadcast(top_roots.data(), top_roots.size() * sizeof(std::uint32_t), 0);
      if (bin_mode && P > 1) {
        // Compact root -> bin table: O(#components), not O(R).
        std::uint64_t ncomp = root_table.roots.size();
        comm.broadcast(&ncomp, sizeof(ncomp), 0);
        if (p != 0) {
          root_table.roots.resize(ncomp);
          root_table.slots.resize(ncomp);
        }
        if (ncomp > 0) {
          comm.broadcast(root_table.roots.data(), ncomp * sizeof(std::uint32_t), 0);
          comm.broadcast(root_table.slots.data(), ncomp * sizeof(std::uint16_t), 0);
        }
      }
      if (p != 0) my.times.add("Merge-Comm", bc_timer.seconds());
    }
    phase_boundary(ctx, "MergeCC");

    // ---- CC-I/O (§3.6): each thread extracts reads from its FASTQ chunks
    // and writes them to per-thread output files.  Labels come from the
    // scattered slice, indexed relative to this rank's slice offset. ----
    if (config.write_output) {
      progress_phase(ctx, "CC-I/O");
      obs::TraceSpan io_span("CC-I/O");
      WallTimer io_timer;
      const std::uint64_t my_slice_off = slice_off[static_cast<std::size_t>(p)];
      std::vector<std::vector<std::string>> thread_files(static_cast<std::size_t>(T));
      std::vector<std::vector<part::BinFile>> thread_bin_files(static_cast<std::size_t>(T));
      std::vector<std::vector<std::uint16_t>> thread_bin_of(static_cast<std::size_t>(T));
      team.run([&](int t) {
        if (ca.thread_begin(p, t) >= ca.thread_end(p, t)) return;
        const std::string base = config.output_dir + "/" + index.name + ".p" +
                                 std::to_string(p) + ".t" + std::to_string(t);
        std::vector<std::string> names;
        std::vector<std::unique_ptr<io::FastqWriter>> writers;
        std::vector<std::uint64_t> writer_records;
        std::vector<std::uint16_t> writer_bin;
        std::size_t other_slot = 0;
        // Bin mode: one lazily-opened writer per output bin this thread
        // actually touches (no ghost files for bins with no local reads).
        // kNoSlot maps bin index -> writer index.
        std::vector<std::size_t> bin_writer;
        if (bin_mode) {
          bin_writer.assign(static_cast<std::size_t>(config.output_bins),
                            static_cast<std::size_t>(-1));
        } else {
          // Legacy split: one writer per top component plus the remainder.
          // N == 1 keeps the paper's ".lc"/".other" naming.
          for (int j = 0; j < top_n; ++j) {
            if (top_roots[static_cast<std::size_t>(j)] == 0xFFFFFFFFu) break;
            names.push_back(base + (top_n == 1 ? ".lc" : ".c" + std::to_string(j)) + ".fastq");
            writers.push_back(std::make_unique<io::FastqWriter>(names.back()));
          }
          names.push_back(base + ".other.fastq");
          writers.push_back(std::make_unique<io::FastqWriter>(names.back()));
          other_slot = writers.size() - 1;
        }

        auto legacy_slot_of = [&](std::uint32_t root) -> std::size_t {
          for (std::size_t j = 0; j < other_slot; ++j) {
            if (top_roots[j] == root) return j;
          }
          return other_slot;
        };
        auto bin_writer_of = [&](std::uint32_t root) -> std::size_t {
          const std::uint16_t bin = root_table.slot_of(root);
          auto& w = bin_writer[bin];
          if (w == static_cast<std::size_t>(-1)) {
            names.push_back(base + ".b" + std::to_string(bin) + ".fastq");
            writers.push_back(std::make_unique<io::FastqWriter>(names.back()));
            writer_records.push_back(0);
            writer_bin.push_back(bin);
            w = writers.size() - 1;
          }
          return w;
        };

        for (std::uint32_t c = ca.thread_begin(p, t); c < ca.thread_end(p, t); ++c) {
          util::throw_if_cancelled(config.cancel_token, "CC-I/O chunk");
          const ChunkRecord& chunk = index.part.chunks[c];
          const auto buffer =
              io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
          const obs::MemCharge io_mem("io", buffer.size());
          std::uint32_t read_id = chunk.first_read_id;
          io::ParseOptions popt{config.parse_mode, index.files[chunk.file], chunk.offset,
                                [&read_id] { ++read_id; }};
          io::for_each_record_in_buffer(
              std::string_view(buffer.data(), buffer.size()),
              [&](std::string_view id, std::string_view seq, std::string_view qual) {
                const std::uint32_t root = label_slice[read_id - my_slice_off];
                if (bin_mode) {
                  const std::size_t w = bin_writer_of(root);
                  writers[w]->write(id, seq, qual);
                  ++writer_records[w];
                } else {
                  writers[legacy_slot_of(root)]->write(id, seq, qual);
                }
                ++read_id;
              },
              popt);
          obs::Progress::global().chunk_done();
        }
        // Explicit close so a failed flush (e.g. ENOSPC) surfaces as a typed
        // Error instead of being swallowed by the destructor.
        for (auto& w : writers) w->close();
        writers.clear();
        if (bin_mode) {
          auto& bf = thread_bin_files[static_cast<std::size_t>(t)];
          for (std::size_t j = 0; j < names.size(); ++j) {
            bf.push_back(part::BinFile{names[j], writer_records[j]});
          }
          thread_bin_of[static_cast<std::size_t>(t)] = std::move(writer_bin);
        }
        thread_files[static_cast<std::size_t>(t)] = std::move(names);
      });
      for (auto& files : thread_files) {
        for (auto& f : files) my.output_files.push_back(std::move(f));
      }
      for (int t = 0; t < T; ++t) {
        auto& bf = thread_bin_files[static_cast<std::size_t>(t)];
        auto& bb = thread_bin_of[static_cast<std::size_t>(t)];
        for (std::size_t j = 0; j < bf.size(); ++j) {
          my.bin_files.push_back(std::move(bf[j]));
          my.bin_file_bins.push_back(bb[j]);
        }
      }
      my.times.add("CC-I/O", io_timer.seconds());
      phase_boundary(ctx, "CC-I/O");
    }
  });
  const double run_wall_s = run_timer.seconds();
  if (config.progress) {
    prog.finish();
    prog.set_enabled(false);
  }
  if (cp_bloom) {
    blooms.clear();
    blooms.shrink_to_fit();
    obs::mem_credit("bloom", bloom_bytes);
  }
  if (packed_store.is_open() && packed_is_temp) {
    // Drop the in-memory arena before assembling the result so its pages
    // are returned (and the packed mem subsystem credited) inside the run.
    packed_store = io::PackedStore();
  }

  // ---- Assemble the result. ----
  PipelineResult result;
  result.num_reads = R;
  result.labels = std::move(final_labels);
  result.passes_used = S;
  result.largest_root = largest_root_shared;
  {
    std::vector<std::uint64_t> sizes(R, 0);
    for (std::uint32_t l : result.labels) ++sizes[l];
    std::vector<std::uint64_t> nonzero;
    for (std::uint64_t v : sizes) {
      if (v > 0) nonzero.push_back(v);
    }
    result.num_components = nonzero.size();
    result.largest_size = R > 0 ? sizes[result.largest_root] : 0;
    result.largest_fraction =
        R > 0 ? static_cast<double>(result.largest_size) / static_cast<double>(R) : 0.0;
    std::sort(nonzero.begin(), nonzero.end(), std::greater<>());
    nonzero.resize(std::min<std::size_t>(nonzero.size(), 10));
    result.top_component_sizes = std::move(nonzero);
  }
  for (auto& rs : shared) {
    result.step_times.merge_max(rs.times);
    result.rank_times.push_back(rs.times);
    result.total_tuples += rs.tuples;
    result.merge_comm_bytes += rs.merge_comm_bytes;
    result.max_tuple_buffer_bytes = std::max(result.max_tuple_buffer_bytes, rs.max_buffer_bytes);
    for (auto& f : rs.output_files) result.output_files.push_back(std::move(f));
    result.cc_iterations_max = std::max(result.cc_iterations_max, rs.cc_iterations);
    result.records_skipped += rs.records_skipped;
    result.exchange_bytes += rs.exchange_bytes;
    result.exchange_bytes_raw += rs.exchange_bytes_raw;
    result.superkmer_records += rs.superkmer_records;
    result.bloom_dropped += rs.bloom_dropped;
  }
  if (result.exchange_bytes_raw > 0) {
    result.superkmer_ratio = static_cast<double>(result.exchange_bytes) /
                             static_cast<double>(result.exchange_bytes_raw);
  }
  if (config.read_store == ReadStore::kPacked) {
    // The arena recorded every skip at ingest; the scans saw none.  Text
    // mode accumulated the same distinct-record count from pass 1.
    result.records_skipped = packed_stats.skipped;
    result.packed_ingest_seconds = packed_ingest_s;
    result.packed_store_bytes = packed_stats.file_bytes;
    result.step_times.add("PackedIngest", packed_ingest_s);
  }
  result.traffic_matrix = world.traffic_matrix();
  result.message_matrix = world.message_matrix();
  result.total_traffic_bytes = world.total_traffic_bytes();
  result.message_count = world.message_count();
  result.sim_comm_seconds = world.max_simulated_comm_seconds();

  // Merge/output tail accounting: what the label scatter actually shipped
  // cross-rank (rank 0 keeps its own slice) and, in bin mode, the compact
  // root->bin table broadcast — O(R/P + #components) per rank versus the
  // old O(R) full-label broadcast.
  for (int q = 1; q < P; ++q) {
    result.label_scatter_bytes += slice_len[static_cast<std::size_t>(q)] * sizeof(std::uint32_t);
  }
  if (bin_mode) {
    if (P > 1) {
      const std::uint64_t table_bytes =
          sizeof(std::uint64_t) +
          components_shared.size() * (sizeof(std::uint32_t) + sizeof(std::uint16_t));
      result.root_table_bytes = static_cast<std::uint64_t>(P - 1) * table_bytes;
    }
    result.bin_reads = bin_plan_shared.bin_reads;
    result.bin_weights_bp = bin_plan_shared.bin_weight_bp;
    result.bin_skew = bin_plan_shared.skew();
    if (config.write_output) {
      std::vector<part::BinFile> all_files;
      std::vector<std::uint16_t> all_bins;
      for (auto& rs : shared) {
        for (std::size_t j = 0; j < rs.bin_files.size(); ++j) {
          all_files.push_back(std::move(rs.bin_files[j]));
          all_bins.push_back(rs.bin_file_bins[j]);
        }
      }
      const part::BinManifest manifest = part::build_bin_manifest(
          index.name, R, components_shared, bin_plan_shared, all_files, all_bins);
      result.bin_manifest_path = config.output_dir + "/" + index.name + ".bins.json";
      part::save_bin_manifest(manifest, result.bin_manifest_path);
    }
  }
  {
    obs::MetricsRegistry& m = obs::metrics();
    m.counter("part.label_scatter_bytes").add(result.label_scatter_bytes);
    m.counter("part.root_table_bytes").add(result.root_table_bytes);
    m.counter("comm.alltoallv_bytes").add(result.exchange_bytes);
    m.counter("comm.alltoallv_bytes_raw").add(result.exchange_bytes_raw);
    m.counter("comm.superkmer_records").add(result.superkmer_records);
    m.counter("comm.bloom_dropped").add(result.bloom_dropped);
    if (result.exchange_bytes_raw > 0)
      m.gauge("comm.superkmer_ratio").set(result.superkmer_ratio);
  }

  // ---- Performance attribution (src/obs/attr): whenever the run was
  // traced, fold the span analysis, the comm matrices, and the measured-vs-
  // modeled memory reconciliation into one AttrReport. ----
  const double comm_skew = obs::comm_matrix_skew(result.traffic_matrix, P);
  if (traced_run) {
    obs::AttrReport ar = obs::PhaseAccountant::analyze(tr.snapshot(), run_wall_s * 1e6);
    ar.ranks = P;
    ar.threads = T;
    ar.passes = S;
    ar.comm_ranks = P;
    ar.comm_bytes = result.traffic_matrix;
    ar.comm_msgs = result.message_matrix;
    ar.comm_skew = comm_skew;
    ar.peak_rss_bytes = util::peak_rss_bytes();
    ar.rss_samples = shared[0].rss_samples;
    // The model predicts bytes per task; the registry measures the whole
    // process hosting all P ranks, so predictions scale by P.  "sort" and
    // "pool" have no model term and report measured-only.
    const MemoryBreakdown pred = estimate_memory(mm);
    const auto up = static_cast<std::uint64_t>(P);
    for (const auto& [name, usage] : memreg.snapshot()) {
      obs::MemSubsystem ms;
      ms.name = name;
      ms.high_water_bytes =
          usage.high_water > 0 ? static_cast<std::uint64_t>(usage.high_water) : 0;
      if (name == "tuples") {
        ms.predicted_bytes = (pred.kmer_out + pred.kmer_in) * up;
      } else if (name == "dsu") {
        ms.predicted_bytes = (pred.p_array + pred.p_prime) * up;
      } else if (name == "io") {
        ms.predicted_bytes = pred.fastq_buffer * up;
      }
      ar.memory.push_back(std::move(ms));
    }
    ar.mem_predicted_total = pred.total * up;
    result.has_attr = true;
    result.attr = std::move(ar);
  }

  // Publish run-level metrics and export the requested artifacts.
  {
    obs::MetricsRegistry& m = obs::metrics();
    m.gauge("pipeline.passes").set(static_cast<double>(result.passes_used));
    m.gauge("pipeline.components").set(static_cast<double>(result.num_components));
    m.gauge("pipeline.largest_fraction").set(result.largest_fraction);
    m.gauge("pipeline.max_tuple_buffer_bytes")
        .set_max(static_cast<double>(result.max_tuple_buffer_bytes));
    m.gauge("pipeline.cc_iterations_max")
        .set_max(static_cast<double>(result.cc_iterations_max));
    m.gauge("mpsim.sim_comm_seconds").set_max(result.sim_comm_seconds);
    m_rss.set_max(static_cast<double>(util::peak_rss_bytes()));
    m_peak.set_max(static_cast<double>(util::peak_rss_bytes()));
    // Comm-matrix export as metrics: the off-diagonal byte cells land in one
    // histogram (the distribution is what skew summarizes) plus the skew
    // gauge, so metrics-only consumers see the exchange shape too.
    if (m.enabled() && P > 1) {
      obs::Histogram& h = m.histogram("mpsim.comm_matrix");
      for (int i = 0; i < P; ++i) {
        for (int j = 0; j < P; ++j) {
          if (i == j) continue;
          const std::uint64_t v = result.traffic_matrix[static_cast<std::size_t>(i) * P + j];
          if (v > 0) h.record(v);
        }
      }
      m.gauge("mpsim.comm_matrix_skew").set_max(comm_skew);
    }
    if (result.has_attr) {
      for (const auto& ms : result.attr.memory) {
        m.gauge("mem." + ms.name + ".high_water")
            .set_max(static_cast<double>(ms.high_water_bytes));
      }
    }
    if (!config.metrics_out.empty()) {
      m.write_jsonl(config.metrics_out);
      m.set_enabled(metrics_were_enabled);
    }
    if (!config.attr_out.empty()) result.attr.write_json(config.attr_out);
    if (!config.comm_matrix_out.empty()) {
      write_comm_matrix(config.comm_matrix_out, P, result.traffic_matrix,
                        result.message_matrix, comm_skew);
    }
    if (!config.trace_out.empty()) tr.write_chrome_json(config.trace_out);
    tr.flush();  // no-op unless the session has an armed flush path
    if (want_trace && !trace_was_enabled) tr.disable();
    if (traced_run && !mem_was_enabled) memreg.set_enabled(false);
  }
  return result;
}

std::vector<std::uint32_t> reference_components(const DatasetIndex& index,
                                                const KmerFreqFilter& filter,
                                                io::ParseMode parse_mode) {
  const int k = index.k;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::uint32_t>> kmer_reads;
  for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
    const ChunkRecord& chunk = index.part.chunks[c];
    const auto buffer = io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
    std::uint32_t read_id = chunk.first_read_id;
    io::ParseOptions popt{parse_mode, index.files[chunk.file], chunk.offset,
                          [&read_id] { ++read_id; }};
    io::for_each_record_in_buffer(
        std::string_view(buffer.data(), buffer.size()),
        [&](std::string_view, std::string_view seq, std::string_view) {
          if (k <= kmer::kMaxK64) {
            kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
              kmer_reads[{0, km}].push_back(read_id);
            });
          } else {
            kmer::for_each_canonical_kmer128(seq, k, [&](kmer::Kmer128 km, std::size_t) {
              kmer_reads[{km.hi, km.lo}].push_back(read_id);
            });
          }
          ++read_id;
        },
        popt);
  }
  dsu::SerialDSU dsu(index.total_reads);
  for (const auto& [km, reads] : kmer_reads) {
    if (!filter.accepts(reads.size())) continue;
    for (std::size_t i = 1; i < reads.size(); ++i) dsu.unite(reads[i - 1], reads[i]);
  }
  return dsu.labels();
}

}  // namespace metaprep::core
