#include "core/packed_ingest.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <exception>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace metaprep::core {
namespace {

/// Read-only mmap of one input FASTQ: the ingest is the only consumer of
/// the text from here on, so parsing straight out of the page cache beats
/// copying the whole file into a buffer first.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      throw util::io_error("cannot open FASTQ for packed ingest", path,
                           util::Error::kNoOffset, errno);
    }
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      throw util::io_error("cannot stat FASTQ for packed ingest", path,
                           util::Error::kNoOffset, err);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ != 0) {
      map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      const int map_errno = errno;
      if (map_ == MAP_FAILED) {
        ::close(fd);
        throw util::io_error("cannot mmap FASTQ for packed ingest", path,
                             util::Error::kNoOffset, map_errno);
      }
    }
    ::close(fd);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (map_ != MAP_FAILED && map_ != nullptr) ::munmap(map_, size_);
  }

  [[nodiscard]] std::string_view view() const noexcept {
    return map_ == MAP_FAILED || map_ == nullptr
               ? std::string_view{}
               : std::string_view(static_cast<const char*>(map_), size_);
  }

 private:
  void* map_ = MAP_FAILED;
  std::size_t size_ = 0;
};

/// Parse chunks [@p begin, @p end) of the index into @p builder, whose
/// chunk table is shard-local (global chunk c is local chunk c - begin).
/// Chunks are laid out file by file, so each FASTQ is mapped at most once
/// per shard and every chunk parses as a zero-copy window into the mapping.
void pack_chunk_range(const DatasetIndex& index, io::ParseMode parse_mode,
                      std::uint32_t begin, std::uint32_t end,
                      io::PackedStoreBuilder& builder) {
  std::optional<MappedFile> mapped;
  std::uint32_t cached_file = 0xFFFFFFFFu;
  std::optional<obs::MemCharge> io_mem;
  for (std::uint32_t c = begin; c < end; ++c) {
    const ChunkRecord& chunk = index.part.chunks[c];
    builder.begin_chunk(c - begin);
    if (chunk.file != cached_file) {
      mapped.emplace(index.files[chunk.file]);
      io_mem.emplace("io", mapped->view().size());
      cached_file = chunk.file;
    }
    std::uint32_t read_id = chunk.first_read_id;
    io::ParseOptions popt{parse_mode, index.files[chunk.file], chunk.offset,
                          [&read_id, &builder] {
                            builder.add_skip(read_id);
                            ++read_id;
                          }};
    io::for_each_record_in_buffer(mapped->view().substr(chunk.offset, chunk.size),
                                  [&](std::string_view, std::string_view seq,
                                      std::string_view) {
                                    builder.add_record(read_id, seq);
                                    ++read_id;
                                  },
                                  popt);
  }
}

/// Full ingest: shard the chunk table into @p threads contiguous ranges
/// balanced by chunk bytes, pack each range in a worker, merge in order.
/// The merged builder is byte-identical to a serial build.
io::PackedStoreBuilder build_arena(const DatasetIndex& index,
                                   io::ParseMode parse_mode, int threads) {
  const std::uint32_t num_chunks = index.part.num_chunks();
  io::PackedStoreBuilder builder(num_chunks,
                                 /*expected_records=*/2ull * index.total_reads,
                                 /*expected_bases=*/index.total_bases);
  const int n =
      std::clamp(threads, 1, num_chunks == 0 ? 1 : static_cast<int>(num_chunks));
  if (n <= 1) {
    pack_chunk_range(index, parse_mode, 0, num_chunks, builder);
    return builder;
  }

  // Shard bounds: split on cumulative chunk bytes so a skewed chunk table
  // still yields balanced parse work.
  std::uint64_t total_bytes = 0;
  for (const ChunkRecord& chunk : index.part.chunks) total_bytes += chunk.size;
  std::vector<std::uint32_t> bounds(static_cast<std::size_t>(n) + 1, 0);
  std::uint64_t acc = 0;
  std::uint32_t c = 0;
  for (int s = 0; s < n; ++s) {
    const std::uint64_t target = total_bytes * static_cast<std::uint64_t>(s + 1) /
                                 static_cast<std::uint64_t>(n);
    while (c < num_chunks && acc < target) {
      acc += index.part.chunks[c].size;
      ++c;
    }
    bounds[static_cast<std::size_t>(s) + 1] = c;
  }
  bounds.back() = num_chunks;

  std::vector<io::PackedStoreBuilder> shards;
  shards.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto si = static_cast<std::size_t>(s);
    shards.emplace_back(bounds[si + 1] - bounds[si],
                        2ull * index.total_reads / static_cast<std::uint64_t>(n) + 1,
                        index.total_bases / static_cast<std::uint64_t>(n) + 32);
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      workers.emplace_back([&, s] {
        const auto si = static_cast<std::size_t>(s);
        try {
          pack_chunk_range(index, parse_mode, bounds[si], bounds[si + 1], shards[si]);
        } catch (...) {
          errors[si] = std::current_exception();
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  builder.merge_all(std::move(shards), n);
  return builder;
}

}  // namespace

io::PackedStoreStats build_packed_store(const DatasetIndex& index,
                                        const std::string& path,
                                        io::ParseMode parse_mode, int threads) {
  return build_arena(index, parse_mode, threads).write(path);
}

io::PackedStore build_packed_store_in_memory(const DatasetIndex& index,
                                             io::ParseMode parse_mode, int threads,
                                             io::PackedStoreStats* stats) {
  return build_arena(index, parse_mode, threads).finish(stats);
}

}  // namespace metaprep::core
