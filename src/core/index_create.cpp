#include "core/index_create.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace metaprep::core {

namespace {

struct FileScan {
  std::vector<ChunkRecord> chunks;  // first_read_id is file-local here
  std::uint32_t record_count = 0;
};

/// Stream one FASTQ file, cutting chunks of ~target_bytes at record
/// boundaries.
FileScan chunk_file(const std::string& path, std::uint32_t file_index,
                    std::uint64_t target_bytes, io::ParseMode parse_mode) {
  FileScan scan;
  io::FastqReader reader(path, io::ParseOptions{parse_mode, path, 0});
  io::FastqRecord rec;
  ChunkRecord current;
  current.file = file_index;
  current.offset = 0;
  current.first_read_id = 0;
  std::uint64_t prev_offset = 0;
  while (reader.next(rec)) {
    ++scan.record_count;
    ++current.record_count;
    const std::uint64_t end = reader.offset();
    if (end - current.offset >= target_bytes) {
      current.size = end - current.offset;
      scan.chunks.push_back(current);
      current = ChunkRecord{};
      current.file = file_index;
      current.offset = end;
      current.first_read_id = scan.record_count;
    }
    prev_offset = end;
  }
  if (current.record_count > 0) {
    current.size = prev_offset - current.offset;
    scan.chunks.push_back(current);
  }
  return scan;
}

}  // namespace

DatasetIndex create_index(const std::string& name, const std::vector<std::string>& files,
                          bool paired, const IndexCreateOptions& options,
                          IndexCreateTiming* timing_out) {
  if (files.empty()) throw std::invalid_argument("create_index: no input files");
  if (paired && files.size() % 2 != 0)
    throw std::invalid_argument("create_index: paired datasets need an even file count");
  obs::TraceSpan index_span("IndexCreate");
  if (options.m < 1 || options.m > 15)
    throw std::invalid_argument("create_index: m must be in [1, 15]");
  if (options.k < options.m || options.k > kmer::kMaxK128)
    throw std::invalid_argument("create_index: k must be in [m, 63]");

  DatasetIndex index;
  index.name = name;
  index.files = files;
  index.paired = paired;
  index.k = options.k;
  index.mer_hist.m = options.m;
  index.mer_hist.k = options.k;
  index.part.m = options.m;

  for (const auto& f : files) index.total_file_bytes += io::file_size_bytes(f);
  const std::uint64_t target_bytes = std::max<std::uint64_t>(
      1, index.total_file_bytes / std::max<std::uint32_t>(1, options.target_chunks));

  // --- Phase 1: chunking (the FASTQPart structure sans histograms). ---
  util::WallTimer chunk_timer;
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (std::uint32_t f = 0; f < files.size(); ++f) {
    scans.push_back(chunk_file(files[f], f, target_bytes, options.parse_mode));
  }

  // Assign global read-ID bases.  Paired: library j = files (2j, 2j+1), and
  // both mates of pair i share ID base_j + i.  Single-end: IDs accumulate
  // across files.
  std::vector<std::uint32_t> id_base(files.size(), 0);
  std::uint32_t total_reads = 0;
  if (paired) {
    for (std::size_t j = 0; j * 2 < files.size(); ++j) {
      if (scans[2 * j].record_count != scans[2 * j + 1].record_count)
        throw util::parse_error("create_index: paired files have different record counts: " +
                                    files[2 * j] + " vs " + files[2 * j + 1],
                                files[2 * j + 1]);
      id_base[2 * j] = total_reads;
      id_base[2 * j + 1] = total_reads;
      total_reads += scans[2 * j].record_count;
    }
  } else {
    for (std::size_t f = 0; f < files.size(); ++f) {
      id_base[f] = total_reads;
      total_reads += scans[f].record_count;
    }
  }
  index.total_reads = total_reads;

  for (std::size_t f = 0; f < files.size(); ++f) {
    for (auto chunk : scans[f].chunks) {
      chunk.first_read_id += id_base[f];
      index.part.chunks.push_back(chunk);
    }
  }
  const double chunking_seconds = chunk_timer.seconds();

  // --- Phase 2: per-chunk m-mer histograms of canonical k-mer prefixes.
  // Chunk rows are independent, so threads take disjoint contiguous chunk
  // ranges (the same static partitioning KmerGen uses); merHist is the
  // column sum, accumulated after the parallel region. ---
  util::WallTimer hist_timer;
  const std::size_t nbins = std::size_t{1} << (2 * options.m);
  index.part.histograms.assign(index.part.chunks.size() * nbins, 0);
  index.mer_hist.counts.assign(nbins, 0);

  const int k = options.k;
  const int m = options.m;
  const int threads = std::max(1, options.threads);
  std::vector<std::uint64_t> bases_per_thread(static_cast<std::size_t>(threads), 0);
  {
    util::ThreadTeam team(threads);
    const auto bounds = util::split_range(index.part.num_chunks(), threads);
    team.run([&](int t) {
      std::uint64_t bases = 0;
      for (std::size_t c = bounds[static_cast<std::size_t>(t)];
           c < bounds[static_cast<std::size_t>(t) + 1]; ++c) {
        const ChunkRecord& chunk = index.part.chunks[c];
        const auto buffer =
            io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
        std::uint32_t* hist = index.part.histograms.data() + c * nbins;
        io::for_each_record_in_buffer(
            std::string_view(buffer.data(), buffer.size()),
            [&](std::string_view, std::string_view seq, std::string_view) {
              bases += seq.size();
              if (k <= kmer::kMaxK64) {
                kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
                  ++hist[kmer::prefix_bin64(km, k, m)];
                });
              } else {
                kmer::for_each_canonical_kmer128(seq, k,
                                                 [&](kmer::Kmer128 km, std::size_t) {
                                                   ++hist[kmer::prefix_bin128(km, k, m)];
                                                 });
              }
            },
            io::ParseOptions{options.parse_mode, index.files[chunk.file], chunk.offset});
      }
      bases_per_thread[static_cast<std::size_t>(t)] = bases;
    });
  }
  for (std::uint64_t b : bases_per_thread) index.total_bases += b;
  for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
    const std::uint32_t* hist = index.part.row(c);
    for (std::size_t b = 0; b < nbins; ++b) index.mer_hist.counts[b] += hist[b];
  }
  const double histogram_seconds = hist_timer.seconds();

  if (timing_out != nullptr) {
    timing_out->chunking_seconds = chunking_seconds;
    timing_out->histogram_seconds = histogram_seconds;
  }
  obs::metrics().counter("index.reads_indexed").add(index.total_reads);
  obs::metrics().counter("index.bases_indexed").add(index.total_bases);
  return index;
}

}  // namespace metaprep::core
