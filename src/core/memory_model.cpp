#include "core/memory_model.hpp"

#include <stdexcept>

namespace metaprep::core {

MemoryBreakdown estimate_memory(const MemoryModelInput& in) {
  if (in.num_ranks < 1 || in.threads_per_rank < 1 || in.num_passes < 1)
    throw std::invalid_argument("estimate_memory: P, T, S must be >= 1");
  MemoryBreakdown b;
  const std::uint64_t bins4 = std::uint64_t{4} << (2 * in.m);  // 4^{m+1}
  b.mer_hist = bins4;
  b.fastq_part = bins4 * in.num_chunks;
  b.fastq_buffer = static_cast<std::uint64_t>(in.threads_per_rank) * in.max_chunk_bytes;
  const std::uint64_t tuples_per_task_pass =
      in.total_tuples / (static_cast<std::uint64_t>(in.num_passes) *
                         static_cast<std::uint64_t>(in.num_ranks));
  b.kmer_out = static_cast<std::uint64_t>(in.tuple_bytes) * tuples_per_task_pass;
  b.kmer_in = b.kmer_out;
  b.p_array = 4 * in.total_reads;
  b.p_prime = 4 * in.total_reads;
  b.total = b.mer_hist + b.fastq_part + b.fastq_buffer + b.kmer_out + b.kmer_in + b.p_array +
            b.p_prime;
  return b;
}

int min_passes_for_budget(MemoryModelInput input, std::uint64_t budget_bytes, int max_passes) {
  for (int s = 1; s <= max_passes; ++s) {
    input.num_passes = s;
    if (estimate_memory(input).total <= budget_bytes) return s;
  }
  return 0;
}

}  // namespace metaprep::core
