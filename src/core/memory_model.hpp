// Analytic per-task memory model (paper §3.7).
//
// "The total memory (in bytes) required per task is given by
//  4^{m+1}(C + 1) + T*s_c + 24M/(SP) + 8R" — the dominant term is the tuple
// buffers, and "we can increase the number of passes to reduce the per-task
// memory footprint."  The model is unit-tested against the paper's worked
// IS example (8 passes, 16 tasks, 24 threads => ~49 GB/task) and drives the
// automatic pass-count selection when MetaprepConfig::num_passes == 0.
#pragma once

#include <cstdint>

namespace metaprep::core {

struct MemoryModelInput {
  std::uint64_t total_tuples = 0;    ///< enumerated canonical k-mers (<= M bp)
  std::uint64_t total_reads = 0;     ///< R (paired-end read count)
  std::uint32_t num_chunks = 0;      ///< C
  std::uint64_t max_chunk_bytes = 0; ///< s_c
  int m = 10;                        ///< merHist prefix length
  int num_ranks = 1;                 ///< P
  int threads_per_rank = 1;          ///< T
  int num_passes = 1;                ///< S
  int tuple_bytes = 12;              ///< 12 for k <= 32, 20 for k <= 63
};

struct MemoryBreakdown {
  std::uint64_t mer_hist = 0;      ///< 4^{m+1}
  std::uint64_t fastq_part = 0;    ///< 4^{m+1} * C
  std::uint64_t fastq_buffer = 0;  ///< T * s_c
  std::uint64_t kmer_out = 0;      ///< tuple_bytes * M / (S*P)
  std::uint64_t kmer_in = 0;       ///< tuple_bytes * M / (S*P)
  std::uint64_t p_array = 0;       ///< 4R
  std::uint64_t p_prime = 0;       ///< 4R
  std::uint64_t total = 0;
};

/// Per-task memory estimate.
MemoryBreakdown estimate_memory(const MemoryModelInput& input);

/// Smallest S such that the per-task estimate fits @p budget_bytes.
/// Returns 0 if no pass count up to @p max_passes fits (fixed-cost terms
/// alone exceed the budget).
int min_passes_for_budget(MemoryModelInput input, std::uint64_t budget_bytes,
                          int max_passes = 64);

}  // namespace metaprep::core
