// Pass / rank / thread partitioning of the k-mer range, and chunk
// assignment (paper §3.1: "The histogram is used to partition the range of
// integers spanned by k-mer values for multipass and parallel execution").
//
// The 4^m merHist bins are split hierarchically by weight (bin count):
// pass s gets a contiguous bin range, within it each rank a contiguous
// sub-range, within that each thread a sub-sub-range.  All partition
// boundaries land on bin edges, so every occurrence of a canonical k-mer —
// whose bin is its m-mer prefix — lands in exactly one (pass, rank, thread)
// cell; that is what makes per-pass/per-rank frequencies global and every
// buffer size precomputable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/indices.hpp"

namespace metaprep::core {

struct BinRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< exclusive
  [[nodiscard]] bool contains(std::uint32_t bin) const noexcept {
    return bin >= begin && bin < end;
  }
};

/// Split bins [begin, end) into @p parts contiguous ranges of approximately
/// equal total weight.  Returns parts+1 boundaries.
std::vector<std::uint32_t> split_bins_weighted(std::span<const std::uint32_t> weights,
                                               std::uint32_t begin, std::uint32_t end,
                                               int parts);

/// Complete hierarchical partitioning for S passes, P ranks, T threads.
class PassPlan {
 public:
  PassPlan(const MerHist& hist, int num_passes, int num_ranks, int threads_per_rank);

  [[nodiscard]] int passes() const noexcept { return S_; }
  [[nodiscard]] int ranks() const noexcept { return P_; }
  [[nodiscard]] int threads() const noexcept { return T_; }

  [[nodiscard]] BinRange pass_range(int s) const;
  [[nodiscard]] BinRange rank_range(int s, int p) const;
  [[nodiscard]] BinRange thread_range(int s, int p, int t) const;

  /// Rank owning @p bin within pass s (bins outside the pass range have no
  /// owner; caller guarantees containment).
  [[nodiscard]] int owner_rank(int s, std::uint32_t bin) const;

  /// Raw boundary vectors (P+1 / T+1 entries) for single-scan range counts.
  [[nodiscard]] const std::vector<std::uint32_t>& rank_bounds(int s) const {
    return rank_bounds_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& thread_bounds(int s, int p) const {
    return thread_bounds_[static_cast<std::size_t>(s) * static_cast<std::size_t>(P_) +
                          static_cast<std::size_t>(p)];
  }

  /// Tuple count in bins [r.begin, r.end) according to the global histogram.
  [[nodiscard]] std::uint64_t range_tuples(const MerHist& hist, BinRange r) const;

 private:
  int S_, P_, T_;
  std::vector<std::uint32_t> pass_bounds_;              // S+1
  std::vector<std::vector<std::uint32_t>> rank_bounds_; // per pass: P+1
  std::vector<std::vector<std::uint32_t>> thread_bounds_;  // per (pass, rank): T+1
};

/// Contiguous assignment of the C chunks to P*T workers; worker (p, t) gets
/// chunks [chunk_begin(p,t), chunk_end(p,t)).
class ChunkAssignment {
 public:
  ChunkAssignment(std::uint32_t num_chunks, int num_ranks, int threads_per_rank);

  [[nodiscard]] std::uint32_t rank_begin(int p) const;
  [[nodiscard]] std::uint32_t rank_end(int p) const;
  [[nodiscard]] std::uint32_t thread_begin(int p, int t) const;
  [[nodiscard]] std::uint32_t thread_end(int p, int t) const;

 private:
  std::vector<std::uint32_t> rank_bounds_;                  // P+1
  std::vector<std::vector<std::uint32_t>> thread_bounds_;   // per rank: T+1
};

}  // namespace metaprep::core
