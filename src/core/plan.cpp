#include "core/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_team.hpp"

namespace metaprep::core {

std::vector<std::uint32_t> split_bins_weighted(std::span<const std::uint32_t> weights,
                                               std::uint32_t begin, std::uint32_t end,
                                               int parts) {
  if (parts < 1) throw std::invalid_argument("split_bins_weighted: parts < 1");
  if (begin > end || end > weights.size())
    throw std::invalid_argument("split_bins_weighted: bad range");

  // Prefix weights of the sub-range.
  std::vector<std::uint64_t> prefix(end - begin + 1, 0);
  for (std::uint32_t b = begin; b < end; ++b) {
    prefix[b - begin + 1] = prefix[b - begin] + weights[b];
  }
  const std::uint64_t total = prefix.back();

  std::vector<std::uint32_t> bounds(static_cast<std::size_t>(parts) + 1);
  bounds[0] = begin;
  for (int i = 1; i < parts; ++i) {
    const std::uint64_t target =
        total * static_cast<std::uint64_t>(i) / static_cast<std::uint64_t>(parts);
    // First boundary whose prefix weight reaches the target.
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    auto cut = begin + static_cast<std::uint32_t>(it - prefix.begin());
    cut = std::max(cut, bounds[static_cast<std::size_t>(i) - 1]);  // keep monotone
    cut = std::min(cut, end);
    bounds[static_cast<std::size_t>(i)] = cut;
  }
  bounds[static_cast<std::size_t>(parts)] = end;
  return bounds;
}

PassPlan::PassPlan(const MerHist& hist, int num_passes, int num_ranks, int threads_per_rank)
    : S_(num_passes), P_(num_ranks), T_(threads_per_rank) {
  if (S_ < 1 || P_ < 1 || T_ < 1) throw std::invalid_argument("PassPlan: S, P, T must be >= 1");
  const auto nbins = static_cast<std::uint32_t>(hist.counts.size());
  pass_bounds_ = split_bins_weighted(hist.counts, 0, nbins, S_);
  rank_bounds_.resize(static_cast<std::size_t>(S_));
  thread_bounds_.resize(static_cast<std::size_t>(S_) * static_cast<std::size_t>(P_));
  for (int s = 0; s < S_; ++s) {
    rank_bounds_[static_cast<std::size_t>(s)] = split_bins_weighted(
        hist.counts, pass_bounds_[static_cast<std::size_t>(s)],
        pass_bounds_[static_cast<std::size_t>(s) + 1], P_);
    for (int p = 0; p < P_; ++p) {
      const auto& rb = rank_bounds_[static_cast<std::size_t>(s)];
      thread_bounds_[static_cast<std::size_t>(s) * static_cast<std::size_t>(P_) +
                     static_cast<std::size_t>(p)] =
          split_bins_weighted(hist.counts, rb[static_cast<std::size_t>(p)],
                              rb[static_cast<std::size_t>(p) + 1], T_);
    }
  }
}

BinRange PassPlan::pass_range(int s) const {
  return {pass_bounds_[static_cast<std::size_t>(s)],
          pass_bounds_[static_cast<std::size_t>(s) + 1]};
}

BinRange PassPlan::rank_range(int s, int p) const {
  const auto& rb = rank_bounds_[static_cast<std::size_t>(s)];
  return {rb[static_cast<std::size_t>(p)], rb[static_cast<std::size_t>(p) + 1]};
}

BinRange PassPlan::thread_range(int s, int p, int t) const {
  const auto& tb = thread_bounds_[static_cast<std::size_t>(s) * static_cast<std::size_t>(P_) +
                                  static_cast<std::size_t>(p)];
  return {tb[static_cast<std::size_t>(t)], tb[static_cast<std::size_t>(t) + 1]};
}

int PassPlan::owner_rank(int s, std::uint32_t bin) const {
  const auto& rb = rank_bounds_[static_cast<std::size_t>(s)];
  // Boundaries are sorted; owner is the last p with rb[p] <= bin.
  const auto it = std::upper_bound(rb.begin(), rb.end(), bin);
  const auto p = static_cast<int>(it - rb.begin()) - 1;
  return std::clamp(p, 0, P_ - 1);
}

std::uint64_t PassPlan::range_tuples(const MerHist& hist, BinRange r) const {
  std::uint64_t t = 0;
  for (std::uint32_t b = r.begin; b < r.end; ++b) t += hist.counts[b];
  return t;
}

ChunkAssignment::ChunkAssignment(std::uint32_t num_chunks, int num_ranks,
                                 int threads_per_rank) {
  const auto rb = util::split_range(num_chunks, num_ranks);
  rank_bounds_.assign(rb.begin(), rb.end());
  thread_bounds_.resize(static_cast<std::size_t>(num_ranks));
  for (int p = 0; p < num_ranks; ++p) {
    const std::uint32_t lo = rank_bounds_[static_cast<std::size_t>(p)];
    const std::uint32_t hi = rank_bounds_[static_cast<std::size_t>(p) + 1];
    const auto tb = util::split_range(hi - lo, threads_per_rank);
    auto& out = thread_bounds_[static_cast<std::size_t>(p)];
    out.reserve(tb.size());
    for (auto b : tb) out.push_back(lo + static_cast<std::uint32_t>(b));
  }
}

std::uint32_t ChunkAssignment::rank_begin(int p) const {
  return rank_bounds_[static_cast<std::size_t>(p)];
}
std::uint32_t ChunkAssignment::rank_end(int p) const {
  return rank_bounds_[static_cast<std::size_t>(p) + 1];
}
std::uint32_t ChunkAssignment::thread_begin(int p, int t) const {
  return thread_bounds_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)];
}
std::uint32_t ChunkAssignment::thread_end(int p, int t) const {
  return thread_bounds_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t) + 1];
}

}  // namespace metaprep::core
