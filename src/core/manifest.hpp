// Partition manifest: a machine-readable description of a METAPREP run's
// output, written next to the partitioned FASTQ files.
//
// Downstream automation (one assembler job per partition, §4.4's parallel
// assembly) needs to know which files belong to which component class and
// how much work each holds.  The manifest is a TSV with one row per output
// file plus a header of run-level metadata, so a job scheduler can consume
// it without re-scanning FASTQ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace metaprep::core {

struct ManifestEntry {
  std::string path;
  std::string partition;        ///< "lc", "c<N>", or "other"
  std::uint64_t records = 0;    ///< FASTQ records in the file
  std::uint64_t bases = 0;
  std::uint64_t skipped = 0;    ///< lenient-verify resync events in the file
};

struct Manifest {
  std::string dataset;
  int k = 0;
  std::uint32_t num_reads = 0;
  std::uint64_t num_components = 0;
  std::uint64_t largest_size = 0;
  std::uint64_t records_skipped = 0;  ///< sum of per-entry skipped counts
  std::vector<ManifestEntry> entries;

  /// Total records across all entries (2 * num_reads for paired data when
  /// the split is lossless).
  [[nodiscard]] std::uint64_t total_records() const;
};

/// Build a manifest by scanning the run's output files with the same
/// ParseMode the pipeline ran under.  A lenient run's outputs must be
/// verifiable leniently too: the old always-strict re-parse threw on any
/// record the pipeline had deliberately carried through (and, worse, on
/// operator-corrupted outputs it mislabeled the failure as a pipeline bug).
/// In lenient mode resync events are counted per entry (skipped column).
Manifest build_manifest(const DatasetIndex& index, const PipelineResult& result,
                        io::ParseMode parse_mode = io::ParseMode::kStrict);

/// Serialize to TSV ("#key\tvalue" metadata lines, then one row per file).
void save_manifest(const Manifest& manifest, const std::string& path);
Manifest load_manifest(const std::string& path);

/// Partition class of an output path ("lc", "c<N>", "other"), derived from
/// the file-name suffix convention the pipeline uses.
std::string partition_class_of(const std::string& path);

}  // namespace metaprep::core
