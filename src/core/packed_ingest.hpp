// PackedIngest: the one remaining FASTQ parse of a --read-store=packed run.
//
// Walks the index's chunk table in order, parses each chunk once with the
// run's ParseMode, and packs every record into an io::PackedStore arena.
// Contiguous chunk ranges are parsed and packed by parallel workers into
// shard builders which merge in chunk order, so the arena is byte-identical
// for any thread count.  Lenient-parse skips are recorded in the arena
// (skipped-ID list) so packed and text pipelines agree on exactly which
// records exist — the sentinel fill after KmerGen pads the same gaps either
// way.
#pragma once

#include <string>

#include "core/indices.hpp"
#include "io/fastq.hpp"
#include "io/packed_store.hpp"

namespace metaprep::core {

/// Parse every chunk of @p index with @p threads workers and write the
/// 2-bit arena to @p path (overwritten).  Throws util::Error on I/O
/// failure, and on parse failure in strict mode.
io::PackedStoreStats build_packed_store(const DatasetIndex& index,
                                        const std::string& path,
                                        io::ParseMode parse_mode, int threads = 1);

/// Same ingest, but the arena never touches disk: the sections stay in
/// memory (PackedStoreBuilder::finish) — the path for ephemeral arenas,
/// which skips the serialize + write + mmap round trip.
io::PackedStore build_packed_store_in_memory(const DatasetIndex& index,
                                             io::ParseMode parse_mode, int threads,
                                             io::PackedStoreStats* stats = nullptr);

}  // namespace metaprep::core
