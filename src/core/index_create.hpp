// IndexCreate (paper §3.1): the sequential, once-per-dataset preprocessing
// step that builds the merHist and FASTQPart tables.
//
// Two phases, timed separately to mirror Table 5:
//  1. chunking — stream each FASTQ file once, cutting logical chunks of
//     approximately equal byte size at record boundaries and recording the
//     global read ID of each chunk's first read ("FASTQPart" column);
//  2. histogram — stream the chunks, enumerate canonical k-mers, and count
//     m-mer prefixes per chunk; merHist is the column-sum of the chunk
//     histograms ("merHist" column).
//
// Paired-end handling: both mates of pair i carry global read ID i ("we use
// a single read identifier for both ends of a paired-end read", §3.2).  We
// chunk R1 and R2 files independently — a chunk never needs to contain both
// mates, because read IDs are assigned per record index within each file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/indices.hpp"
#include "io/fastq.hpp"

namespace metaprep::core {

struct IndexCreateOptions {
  int k = 27;
  int m = 10;
  /// Strict: malformed FASTQ aborts indexing with a typed parse Error.
  /// Lenient: bad records are skipped (counted in io.records_skipped) and
  /// the index covers only the parseable records.
  io::ParseMode parse_mode = io::ParseMode::kStrict;
  /// Target number of chunks across all files (the paper uses 384 for the
  /// small datasets and 1536 for IS).  At least one chunk per file.
  std::uint32_t target_chunks = 64;
  /// Threads for the histogram phase.  The paper keeps IndexCreate
  /// sequential ("not in the critical path") but notes it "can be
  /// parallelized in the same manner" as KmerGen (§4.3); chunk histograms
  /// are independent, so threads process disjoint chunk sets.
  int threads = 1;
};

struct IndexCreateTiming {
  double chunking_seconds = 0;   ///< Table 5 "FASTQPart" column
  double histogram_seconds = 0;  ///< Table 5 "merHist" column
};

/// Build the dataset index.  @p files lists FASTQ paths; when @p paired is
/// true they must come in (R1, R2) pairs with equal record counts.
/// @p timing_out, when non-null, receives the per-phase times.
DatasetIndex create_index(const std::string& name, const std::vector<std::string>& files,
                          bool paired, const IndexCreateOptions& options,
                          IndexCreateTiming* timing_out = nullptr);

}  // namespace metaprep::core
