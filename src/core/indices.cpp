#include "core/indices.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/binary.hpp"
#include "util/error.hpp"

namespace metaprep::core {

namespace {
constexpr std::uint32_t kIndexMagic = 0x4D505249;  // "MPRI"
constexpr std::uint32_t kIndexVersion = 3;
}  // namespace

std::uint64_t MerHist::total() const {
  std::uint64_t t = 0;
  for (std::uint32_t c : counts) t += c;
  return t;
}

std::uint64_t FastqPartTable::range_count(std::uint32_t c, std::uint32_t bin_begin,
                                          std::uint32_t bin_end) const {
  const std::uint32_t* r = row(c);
  std::uint64_t t = 0;
  for (std::uint32_t b = bin_begin; b < bin_end; ++b) t += r[b];
  return t;
}

std::uint64_t DatasetIndex::max_chunk_bytes() const {
  std::uint64_t mx = 0;
  for (const auto& c : part.chunks) mx = std::max(mx, c.size);
  return mx;
}

void save_index(const DatasetIndex& index, const std::string& path) {
  io::BinaryWriter w(path, kIndexMagic, kIndexVersion);
  w.write_string(index.name);
  w.write_u64(index.files.size());
  for (const auto& f : index.files) w.write_string(f);
  w.write_u32(index.paired ? 1 : 0);
  w.write_u32(static_cast<std::uint32_t>(index.k));
  w.write_u32(index.total_reads);
  w.write_u64(index.total_bases);
  w.write_u64(index.total_file_bytes);

  w.write_u32(static_cast<std::uint32_t>(index.mer_hist.m));
  w.write_u32(static_cast<std::uint32_t>(index.mer_hist.k));
  w.write_vector<std::uint32_t>(index.mer_hist.counts);

  w.write_u32(static_cast<std::uint32_t>(index.part.m));
  w.write_u64(index.part.chunks.size());
  for (const auto& c : index.part.chunks) {
    w.write_u32(c.file);
    w.write_u64(c.offset);
    w.write_u64(c.size);
    w.write_u32(c.first_read_id);
    w.write_u32(c.record_count);
  }
  w.write_vector<std::uint32_t>(index.part.histograms);
  w.close();  // surface a failed flush as a typed Error, not a logged one
}

DatasetIndex load_index(const std::string& path) {
  io::BinaryReader r(path, kIndexMagic, kIndexVersion);
  DatasetIndex index;
  index.name = r.read_string();
  const std::uint64_t nfiles = r.read_u64();
  for (std::uint64_t i = 0; i < nfiles; ++i) index.files.push_back(r.read_string());
  index.paired = r.read_u32() != 0;
  index.k = static_cast<int>(r.read_u32());
  index.total_reads = r.read_u32();
  index.total_bases = r.read_u64();
  index.total_file_bytes = r.read_u64();

  index.mer_hist.m = static_cast<int>(r.read_u32());
  index.mer_hist.k = static_cast<int>(r.read_u32());
  index.mer_hist.counts = r.read_vector<std::uint32_t>();

  index.part.m = static_cast<int>(r.read_u32());
  const std::uint64_t nchunks = r.read_u64();
  index.part.chunks.resize(nchunks);
  for (auto& c : index.part.chunks) {
    c.file = r.read_u32();
    c.offset = r.read_u64();
    c.size = r.read_u64();
    c.first_read_id = r.read_u32();
    c.record_count = r.read_u32();
  }
  index.part.histograms = r.read_vector<std::uint32_t>();

  if (index.part.histograms.size() !=
      index.part.chunks.size() * (std::size_t{1} << (2 * index.part.m)))
    throw util::parse_error("load_index: inconsistent FASTQPart histogram size");
  return index;
}

}  // namespace metaprep::core
