#include "core/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace metaprep::core {

namespace {
std::vector<std::uint64_t> component_sizes(std::span<const std::uint32_t> labels) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  counts.reserve(labels.size() / 4 + 1);
  for (std::uint32_t l : labels) ++counts[l];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(counts.size());
  for (const auto& [root, n] : counts) sizes.push_back(n);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}
}  // namespace

ComponentSummary summarize_components(std::span<const std::uint32_t> labels) {
  ComponentSummary s;
  s.num_reads = labels.size();
  s.sizes_desc = component_sizes(labels);
  s.num_components = s.sizes_desc.size();
  if (s.sizes_desc.empty()) return s;
  s.largest = s.sizes_desc.front();
  s.largest_fraction = static_cast<double>(s.largest) / static_cast<double>(s.num_reads);
  for (std::uint64_t size : s.sizes_desc) {
    if (size == 1) ++s.singletons;
    const double p = static_cast<double>(size) / static_cast<double>(s.num_reads);
    s.entropy_bits -= p * std::log2(p);
  }
  return s;
}

std::map<int, std::uint64_t> size_histogram_log2(std::span<const std::uint32_t> labels) {
  std::map<int, std::uint64_t> hist;
  for (std::uint64_t size : component_sizes(labels)) {
    hist[std::bit_width(size) - 1] += 1;
  }
  return hist;
}

std::vector<std::uint64_t> pack_components(std::span<const std::uint32_t> labels, int bins) {
  if (bins < 1) throw std::invalid_argument("pack_components: bins must be >= 1");
  std::vector<std::uint64_t> load(static_cast<std::size_t>(bins), 0);
  // Largest-first onto the least-loaded bin (LPT heuristic).
  for (std::uint64_t size : component_sizes(labels)) {
    auto it = std::min_element(load.begin(), load.end());
    *it += size;
  }
  return load;
}

std::string component_report(const ComponentSummary& s) {
  std::ostringstream os;
  os << s.num_reads << " reads in " << s.num_components << " components; largest "
     << s.largest << " (" << static_cast<int>(s.largest_fraction * 1000) / 10.0
     << "%), " << s.singletons << " singletons, entropy "
     << static_cast<int>(s.entropy_bits * 100) / 100.0 << " bits";
  return os.str();
}

}  // namespace metaprep::core
