// The METAPREP pipeline (paper §3, Figure 1 / Table 1):
//
//   IndexCreate -> [ KmerGen -> KmerGen-Comm -> LocalSort -> LocalCC ] x S
//               -> MergeCC -> partitioned FASTQ output
//
// run_metaprep executes the whole pipeline over P simulated MPI ranks with
// T threads each and S I/O passes.  Each pass processes a disjoint k-mer
// bin range; all per-thread buffer offsets are precomputed from the
// FASTQPart chunk histograms so the hot loops run without synchronization
// (§3.2.2).  Components accumulate in one rank-local Union-Find across
// passes and are merged once at the end over ceil(log P) rounds (§3.6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/indices.hpp"
#include "obs/attr.hpp"
#include "util/timer.hpp"

namespace metaprep::core {

struct PipelineResult {
  std::uint32_t num_reads = 0;           ///< R (paired-end read count)
  std::vector<std::uint32_t> labels;     ///< final component root per read
  std::uint64_t num_components = 0;
  std::uint32_t largest_root = 0;
  std::uint64_t largest_size = 0;        ///< reads in the largest component
  double largest_fraction = 0.0;         ///< largest_size / num_reads

  util::StepTimes step_times;            ///< per step, max over ranks
  std::vector<util::StepTimes> rank_times;  ///< per rank (Figure 8 data)
  int passes_used = 0;

  std::uint64_t total_tuples = 0;        ///< enumerated across all passes
  std::uint64_t max_tuple_buffer_bytes = 0;  ///< peak kmerIn+kmerOut, any rank
  std::uint64_t merge_comm_bytes = 0;    ///< bytes shipped during MergeCC (all ranks)
  std::vector<std::uint64_t> traffic_matrix;  ///< P x P bytes src->dest (whole run)
  std::vector<std::uint64_t> message_matrix;  ///< P x P message counts src->dest
  std::uint64_t total_traffic_bytes = 0;
  std::uint64_t message_count = 0;
  double sim_comm_seconds = 0.0;         ///< modeled interconnect time (max rank)
  int cc_iterations_max = 0;             ///< Algorithm 1 iterations (max thread)

  std::vector<std::string> output_files; ///< partitioned FASTQ paths (if written)
  std::vector<std::uint64_t> top_component_sizes;  ///< up to 10, descending

  // Merge/output tail (label scatter + component binning).
  std::uint64_t label_scatter_bytes = 0;  ///< cross-rank label-slice bytes (O(R/P) per rank)
  std::uint64_t root_table_bytes = 0;     ///< root->bin table broadcast bytes (O(#components))
  std::vector<std::uint64_t> bin_reads;   ///< planned reads per output bin (empty unless binning)
  std::vector<std::uint64_t> bin_weights_bp;  ///< planned weight per output bin
  double bin_skew = 0.0;                  ///< max/mean bin weight (0 unless binning)
  std::string bin_manifest_path;          ///< "<output_dir>/<name>.bins.json" when written

  // Exchange compression (--comm-compress).  exchange_bytes counts the
  // cross-rank KmerGen-Comm payload actually shipped (self-blocks excluded,
  // consistent with the traffic matrix); exchange_bytes_raw is the
  // uncompressed-equivalent volume — expanded tuples, pre-Bloom-drop — of
  // the same traffic, so ratio = bytes/raw isolates the compression from
  // routing differences.  Under kNone the two are equal.
  std::uint64_t exchange_bytes = 0;
  std::uint64_t exchange_bytes_raw = 0;
  std::uint64_t superkmer_records = 0;   ///< wire records emitted (superkmer/both)
  std::uint64_t bloom_dropped = 0;       ///< k-mer occurrences suppressed (bloom/both)
  double superkmer_ratio = 0.0;          ///< exchange_bytes / exchange_bytes_raw (0 if raw 0)

  // Parse accounting + packed read store (--read-store=packed).
  // records_skipped counts *distinct* records lenient parsing dropped (the
  // io.records_skipped metric counts skip events, which text mode re-pays
  // every pass); identical between text and packed runs on the same input.
  std::uint64_t records_skipped = 0;
  double packed_ingest_seconds = 0.0;    ///< PackedIngest step wall (packed mode)
  std::uint64_t packed_store_bytes = 0;  ///< arena file size (packed mode)

  // Performance attribution: filled whenever the run was traced (trace_out,
  // attr_out, or an externally-enabled TraceSession), so benches and tests
  // read the analysis without re-parsing files.
  bool has_attr = false;
  obs::AttrReport attr;
};

/// Run the full preprocessing pipeline.  @p index must have been created
/// with the same k as @p config.k.
PipelineResult run_metaprep(const DatasetIndex& index, const MetaprepConfig& config);

/// Reference implementation for testing: brute-force read-graph connected
/// components computed from an in-memory map of canonical k-mer -> reads.
/// Applies the same frequency filter semantics as the pipeline.  Quadratic
/// memory in dataset size; test-scale only.
std::vector<std::uint32_t> reference_components(
    const DatasetIndex& index, const KmerFreqFilter& filter,
    io::ParseMode parse_mode = io::ParseMode::kStrict);

}  // namespace metaprep::core
