// METAPREP run configuration.
#pragma once

#include <cstdint>
#include <string>

#include "io/fastq.hpp"
#include "mpsim/comm.hpp"

namespace metaprep::obs {
class TraceSession;
class MetricsRegistry;
class MemRegistry;
}  // namespace metaprep::obs

namespace metaprep::util {
class BufferPool;
class CancelToken;
}  // namespace metaprep::util

namespace metaprep::core {

/// k-mer frequency filter (paper §4.4): only read-graph edges whose shared
/// canonical k-mer has a global frequency in [min_freq, max_freq] are used.
/// "High frequency k-mers may occur due to repeated sequences in the
/// metagenome.  Low frequency k-mers may occur due to sequencing errors."
struct KmerFreqFilter {
  std::uint32_t min_freq = 0;                       ///< 0 = no lower bound
  std::uint32_t max_freq = 0xFFFFFFFFu;             ///< UINT32_MAX = no upper bound
  [[nodiscard]] bool enabled() const noexcept {
    return min_freq > 0 || max_freq != 0xFFFFFFFFu;
  }
  [[nodiscard]] bool accepts(std::uint64_t freq) const noexcept {
    return freq >= min_freq && freq <= max_freq;
  }
};

/// How rank-local component arrays are combined (paper §3.6 + §5).
enum class MergeStrategy {
  /// The paper's method (Figure 4): ceil(log P) pairwise rounds; each round
  /// ships a full 4R-byte component array down the tree.
  kPairwiseTree,
  /// The paper's future-work direction ("adopting the component graph
  /// contraction methods described in [16]"): each rank contracts its local
  /// forest to the non-trivial (vertex, root) pairs and ships only those to
  /// rank 0 in one round — bytes proportional to merged vertices, not R.
  kContraction,
};

/// How the S I/O passes are scheduled (§3.2-§3.5 loop).
enum class PipelineMode {
  /// One phase at a time to a barrier, exactly the paper's schedule: each
  /// pass runs KmerGen -> KmerGen-Comm -> LocalSort -> LocalCC to
  /// completion before the next pass starts.  The default; behaviour is
  /// bit-identical to the pre-pipelining implementation.
  kBarrier,
  /// Pipelined schedule: passes are grouped in pairs; one chunk read+scan
  /// generates both passes' tuples (pass s+1's KmerGen overlaps pass s's
  /// KmerGen-Comm window), the exchange is posted with async isend/irecv
  /// and completed lazily, and KmerGen partitions tuples per destination
  /// *thread* so LocalSort's partition copy disappears.  Buffers are leased
  /// from util::BufferPool.  Produces the same component partition as
  /// kBarrier (labels up to renaming; see DESIGN.md "Pipelined passes").
  kOverlap,
};

/// Exchange compression for the KmerGen all-to-all (CLI --comm-compress).
/// All modes produce the same component partition as kNone (differential
/// grid); see DESIGN.md "Exchange compression" for the record formats and
/// the equivalence arguments.
enum class CommCompress {
  /// Fixed-size (k-mer, value) tuples over the precomputed-offset staged
  /// all-to-all — the historical wire format.
  kNone,
  /// Minimizer-routed super-k-mer records: consecutive k-mers sharing a
  /// minimizer ship as one (value, n_kmers, packed bases) payload that the
  /// receiver re-expands before LocalSort.
  kSuperKmer,
  /// Per-destination-rank counting-Bloom prefilter: k-mers whose global
  /// frequency is 1 (overwhelmingly sequencing errors) are suppressed from
  /// the exchange — singletons cannot create read-graph edges.
  kBloom,
  /// Both: Bloom-surviving sub-runs ship as super-k-mer records.
  kBoth,
};

/// Where KmerGen gets its records each pass (CLI --read-store).
enum class ReadStore {
  /// Re-read and re-parse FASTQ text per chunk every pass (the paper's
  /// behaviour; parse cost is paid S times).
  kText,
  /// One lenient/strict ingest pass packs every record into a 2-bit
  /// mmap-able arena (io::PackedStore); every pass scans the arena
  /// word-at-a-time and the per-pass text parse disappears.
  kPacked,
};

struct MetaprepConfig {
  int k = 27;                 ///< k-mer length (<= 63; > 32 uses 128-bit k-mers)
  int num_ranks = 1;          ///< P: simulated MPI tasks
  int threads_per_rank = 1;   ///< T: OpenMP-style threads per task
  int num_passes = 1;         ///< S: I/O passes (0 = derive from memory_budget)
  std::uint64_t memory_budget_bytes = 0;  ///< per-task budget when num_passes == 0

  KmerFreqFilter filter;

  /// FASTQ failure handling.  Strict (default): a malformed record anywhere
  /// in the run throws a typed util::Error naming the file, byte offset,
  /// and category.  Lenient: the parser resynchronizes on the next '@'
  /// header, counts the skip in io.records_skipped, and the run completes
  /// with the parseable reads labeled (degraded but labeled).
  io::ParseMode parse_mode = io::ParseMode::kStrict;

  /// Multipass optimization (paper §3.5.1): from the second pass on,
  /// enumerate (k-mer, component-ID) tuples instead of (k-mer, read-ID).
  bool cc_opt = true;

  /// Radix digit width for LocalSort (§3.4).  The paper uses 8 ("sorting 8
  /// bits per pass is faster than sorting a higher number of bits ... better
  /// temporal locality"); exposed so the trade-off is measurable.
  int sort_digit_bits = 8;

  /// Write partitioned FASTQ output (largest component vs the rest, §3.6).
  /// When false the pipeline stops after component labeling.
  bool write_output = true;
  std::string output_dir = ".";

  /// Number of top components written to individual files.  1 reproduces
  /// the paper's split (".lc" + ".other"); N > 1 writes ".c0".."".cN-1"
  /// plus ".other" (the future-work "alternate component-splitting
  /// strategies").  Ignored when output_bins >= 1.
  int output_top_components = 1;

  /// Load-balanced output partitioning (CLI --output-bins).  0 keeps the
  /// legacy top-N split above; B >= 1 greedily bin-packs *all* components
  /// into B bins by estimated total bp (src/part) and writes per-(rank,
  /// thread, bin) ".b<j>.fastq" files plus a "<dataset>.bins.json" manifest
  /// describing every bin.
  int output_bins = 0;

  MergeStrategy merge_strategy = MergeStrategy::kPairwiseTree;

  /// Pass scheduling (CLI --pipeline-mode=barrier|overlap).
  PipelineMode pipeline_mode = PipelineMode::kBarrier;

  /// Exchange compression (CLI --comm-compress=none|superkmer|bloom|both).
  /// Default off: the wire format and byte accounting of existing runs are
  /// unchanged.
  CommCompress comm_compress = CommCompress::kNone;

  /// Minimizer length for super-k-mer grouping (comm_compress superkmer /
  /// both).  Independent of the index's routing m-mer: compressed runs are
  /// routed by minimizer-hash bins, not prefix bins.  Must be in
  /// [1, min(k, 31)]; longer minimizers shorten runs, shorter ones skew the
  /// run-length distribution.
  int superkmer_minimizer_len = 10;

  /// Counting-Bloom sizing (comm_compress bloom / both): counters per
  /// expected k-mer occurrence and probe count.  8 counters x 2 probes keeps
  /// the false-positive rate (which only *retains* harmless singletons,
  /// never drops a repeated k-mer) under ~2% at full load; see DESIGN.md.
  int bloom_counters_per_key = 8;
  int bloom_hashes = 2;
  std::uint64_t bloom_seed = 0x6d70726570ULL;

  /// Record source for the KmerGen scans (CLI --read-store=text|packed).
  /// Text is the default and bit-identical to the historical behaviour;
  /// packed builds the arena once (PackedIngest step) and produces the same
  /// components and output bins (differential-tested).
  ReadStore read_store = ReadStore::kText;

  /// Packed mode only: where to write the arena file.  Empty (default)
  /// uses a unique file under the system temp directory, deleted when the
  /// run finishes; non-empty paths are kept for reuse/inspection.
  std::string packed_store_path;

  /// Interconnect cost model for the simulated-comm-seconds report.
  mpsim::CostModelParams cost_model;

  /// Observability (src/obs).  When @ref trace_out is non-empty the run is
  /// recorded into the global TraceSession (cleared first) and exported as
  /// Chrome trace_event JSON to that path; when @ref metrics_out is
  /// non-empty the global metrics registry is enabled (values reset first)
  /// and a JSONL snapshot is written there after the run.  Both default off,
  /// leaving only a relaxed-atomic check in the hot paths.
  std::string trace_out;
  std::string metrics_out;

  /// Performance attribution (src/obs/attr).  When @ref attr_out is
  /// non-empty the run is traced (even without @ref trace_out) and the
  /// structured attribution report — phase walls, imbalance factors,
  /// critical path, comm matrix, memory by subsystem — is written there as
  /// JSON (`metaprep-report` ingests it).  @ref comm_matrix_out dumps just
  /// the per-(src,dst) bytes/messages matrices.  Both default off.
  std::string attr_out;
  std::string comm_matrix_out;

  /// One-line stderr progress (phase, % chunks, elapsed; CLI --progress).
  /// Off by default and silent in tests.
  bool progress = false;

  /// Session plumbing (src/serve).  All default null, which preserves the
  /// historical behaviour: observability goes to the process-global
  /// singletons and nothing can cancel the run.  A PipelineSession points
  /// these at per-session instances so concurrent in-process runs keep
  /// disjoint trace/metrics/memory state; run_metaprep installs them as the
  /// calling thread's overrides for the duration of the run (propagated to
  /// ThreadTeam workers and mpsim rank threads).  Non-owning: the pointees
  /// must outlive the run.
  obs::TraceSession* trace_session = nullptr;
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::MemRegistry* mem_registry = nullptr;

  /// Buffer pool the overlap scheduler leases from.  Null = the process
  /// pool.  The daemon passes one shared pool so jobs recycle each other's
  /// tuple buffers.
  util::BufferPool* buffer_pool = nullptr;

  /// Cooperative cancel flag, polled at pass/chunk boundaries.  Null = not
  /// cancellable.  When set mid-run the pipeline unwinds with
  /// util::cancelled_error after returning every BufferPool lease.
  const util::CancelToken* cancel_token = nullptr;
};

}  // namespace metaprep::core
