#include "core/manifest.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "io/fastq.hpp"
#include "util/error.hpp"

namespace metaprep::core {

std::uint64_t Manifest::total_records() const {
  std::uint64_t total = 0;
  for (const auto& e : entries) total += e.records;
  return total;
}

std::string partition_class_of(const std::string& path) {
  if (path.find(".lc.") != std::string::npos) return "lc";
  if (path.find(".other.") != std::string::npos) return "other";
  // ".c<digits>." between rank/thread tags and "fastq".
  for (std::size_t pos = path.find(".c"); pos != std::string::npos;
       pos = path.find(".c", pos + 1)) {
    std::size_t end = pos + 2;
    while (end < path.size() && std::isdigit(static_cast<unsigned char>(path[end]))) ++end;
    if (end > pos + 2 && end < path.size() && path[end] == '.') {
      return path.substr(pos + 1, end - pos - 1);
    }
  }
  return "unknown";
}

Manifest build_manifest(const DatasetIndex& index, const PipelineResult& result,
                        io::ParseMode parse_mode) {
  Manifest m;
  m.dataset = index.name;
  m.k = index.k;
  m.num_reads = result.num_reads;
  m.num_components = result.num_components;
  m.largest_size = result.largest_size;
  for (const auto& path : result.output_files) {
    ManifestEntry e;
    e.path = path;
    e.partition = partition_class_of(path);
    io::ParseOptions popt;
    popt.mode = parse_mode;
    io::FastqReader reader(path, popt);
    io::FastqRecord rec;
    while (reader.next(rec)) {
      ++e.records;
      e.bases += rec.seq.size();
    }
    e.skipped = reader.records_skipped();
    m.records_skipped += e.skipped;
    m.entries.push_back(std::move(e));
  }
  return m;
}

void save_manifest(const Manifest& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw util::io_error("manifest: cannot open for writing", path, util::Error::kNoOffset, errno);
  std::fprintf(f, "#dataset\t%s\n", m.dataset.c_str());
  std::fprintf(f, "#k\t%d\n", m.k);
  std::fprintf(f, "#reads\t%u\n", m.num_reads);
  std::fprintf(f, "#components\t%llu\n",
               static_cast<unsigned long long>(m.num_components));
  std::fprintf(f, "#largest\t%llu\n", static_cast<unsigned long long>(m.largest_size));
  std::fprintf(f, "#skipped\t%llu\n",
               static_cast<unsigned long long>(m.records_skipped));
  std::fprintf(f, "path\tpartition\trecords\tbases\tskipped\n");
  for (const auto& e : m.entries) {
    std::fprintf(f, "%s\t%s\t%llu\t%llu\t%llu\n", e.path.c_str(), e.partition.c_str(),
                 static_cast<unsigned long long>(e.records),
                 static_cast<unsigned long long>(e.bases),
                 static_cast<unsigned long long>(e.skipped));
  }
  std::fclose(f);
}

Manifest load_manifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) throw util::io_error("manifest: cannot open for reading", path, util::Error::kNoOffset, errno);
  Manifest m;
  char line[4096];
  bool header_seen = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    if (s.empty()) continue;
    std::istringstream is(s);
    if (s[0] == '#') {
      std::string key, value;
      std::getline(is, key, '\t');
      std::getline(is, value, '\t');
      if (key == "#dataset") m.dataset = value;
      if (key == "#k") m.k = std::stoi(value);
      if (key == "#reads") m.num_reads = static_cast<std::uint32_t>(std::stoul(value));
      if (key == "#components") m.num_components = std::stoull(value);
      if (key == "#largest") m.largest_size = std::stoull(value);
      if (key == "#skipped") m.records_skipped = std::stoull(value);
      continue;
    }
    if (!header_seen) {  // column header row
      header_seen = true;
      continue;
    }
    ManifestEntry e;
    std::string records, bases, skipped;
    std::getline(is, e.path, '\t');
    std::getline(is, e.partition, '\t');
    std::getline(is, records, '\t');
    std::getline(is, bases, '\t');
    std::getline(is, skipped, '\t');  // absent in pre-skip-column manifests
    e.records = std::stoull(records);
    e.bases = std::stoull(bases);
    e.skipped = skipped.empty() ? 0 : std::stoull(skipped);
    m.entries.push_back(std::move(e));
  }
  std::fclose(f);
  return m;
}

}  // namespace metaprep::core
