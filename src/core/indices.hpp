// The two IndexCreate tables (paper §3.1): merHist and FASTQPart.
//
// merHist: counts of the m-mer prefixes of all canonical k-mers in the
// dataset (4^m bins, 32-bit counts).  It partitions the k-mer value range
// for multipass and parallel execution.
//
// FASTQPart: the input FASTQ files are logically partitioned into C chunks
// of roughly equal size; each record stores the chunk's file, byte offset,
// size, the global read ID of its first read, and a chunk-local m-mer
// histogram.  The chunk histograms are what let METAPREP precompute every
// send/receive buffer size and per-thread write offset (§3.2.2, §3.3, §3.4).
//
// Both tables are written to disk in binary format and reused across runs
// ("These indices can be reused for parallel runs on different compute
// platforms").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metaprep::core {

/// Global m-mer prefix histogram (merHist, §3.1.1).
struct MerHist {
  int m = 10;
  int k = 27;  ///< the k the prefixes were computed for
  std::vector<std::uint32_t> counts;  ///< 4^m bins

  [[nodiscard]] std::uint32_t num_bins() const noexcept {
    return static_cast<std::uint32_t>(counts.size());
  }
  [[nodiscard]] std::uint64_t total() const;
};

/// One logical FASTQ chunk (one row of the FASTQPart table, Figure 2).
struct ChunkRecord {
  std::uint32_t file = 0;          ///< index into DatasetIndex::files
  std::uint64_t offset = 0;        ///< byte offset of the chunk's first record
  std::uint64_t size = 0;          ///< chunk size in bytes
  std::uint32_t first_read_id = 0; ///< global read ID of the first read
  std::uint32_t record_count = 0;  ///< number of records in the chunk
};

/// FASTQPart table (§3.1.2): chunk records plus per-chunk m-mer histograms.
struct FastqPartTable {
  int m = 10;
  std::vector<ChunkRecord> chunks;
  /// Row-major [chunk][bin] counts, chunks.size() * 4^m entries.
  std::vector<std::uint32_t> histograms;

  [[nodiscard]] std::uint32_t num_chunks() const noexcept {
    return static_cast<std::uint32_t>(chunks.size());
  }
  [[nodiscard]] std::uint32_t num_bins() const noexcept {
    return chunks.empty() ? 0
                          : static_cast<std::uint32_t>(histograms.size() / chunks.size());
  }
  /// Histogram row of chunk @p c.
  [[nodiscard]] const std::uint32_t* row(std::uint32_t c) const {
    return histograms.data() + static_cast<std::size_t>(c) * num_bins();
  }
  /// Sum of bins [bin_begin, bin_end) of chunk @p c.
  [[nodiscard]] std::uint64_t range_count(std::uint32_t c, std::uint32_t bin_begin,
                                          std::uint32_t bin_end) const;
};

/// Everything IndexCreate knows about a dataset.
struct DatasetIndex {
  std::string name;
  std::vector<std::string> files;
  bool paired = true;  ///< files come in (R1, R2) pairs sharing read IDs
  int k = 27;
  std::uint32_t total_reads = 0;  ///< R: number of paired-end reads (pairs)
  std::uint64_t total_bases = 0;  ///< cumulative base count (2R * read_len)
  std::uint64_t total_file_bytes = 0;
  MerHist mer_hist;
  FastqPartTable part;

  /// Largest chunk size in bytes (s_c in the §3.7 analysis).
  [[nodiscard]] std::uint64_t max_chunk_bytes() const;
};

/// Serialize / deserialize the index (binary, versioned).
void save_index(const DatasetIndex& index, const std::string& path);
DatasetIndex load_index(const std::string& path);

}  // namespace metaprep::core
