// Component-decomposition statistics.
//
// The evaluation reasons about the component size distribution throughout
// §4.4 ("read-based preprocessing results in a single giant component and
// numerous extremely small components ... We instead desire a balanced
// decomposition").  These helpers turn a label array into the numbers that
// discussion uses: size histogram, giant-component share, and a balance
// measure for candidate splits.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace metaprep::core {

struct ComponentSummary {
  std::uint64_t num_reads = 0;
  std::uint64_t num_components = 0;
  std::uint64_t largest = 0;          ///< reads in the largest component
  double largest_fraction = 0.0;
  std::uint64_t singletons = 0;       ///< components of size 1
  double entropy_bits = 0.0;          ///< Shannon entropy of the size distribution
  std::vector<std::uint64_t> sizes_desc;  ///< all component sizes, descending
};

/// Full summary of a component labeling.
ComponentSummary summarize_components(std::span<const std::uint32_t> labels);

/// Histogram of component sizes bucketed by powers of two:
/// bucket b holds components with size in [2^b, 2^(b+1)).
std::map<int, std::uint64_t> size_histogram_log2(std::span<const std::uint32_t> labels);

/// Greedy bin-packing of components onto @p bins assemblers (largest first);
/// returns the read count per bin.  Models the "assemble partitions in
/// parallel" use and quantifies how (im)balanced a decomposition is: with a
/// giant component one bin gets nearly everything.
std::vector<std::uint64_t> pack_components(std::span<const std::uint32_t> labels, int bins);

/// Render a short human-readable report.
std::string component_report(const ComponentSummary& summary);

}  // namespace metaprep::core
