// Packed mmap-able read arena: the 2-bit read store behind --read-store.
//
// Every pass of the pipeline used to re-read and re-parse FASTQ text per
// chunk.  The packed store moves all parsing to a single ingest pass: bases
// are packed 2 bits each (A=0 C=1 G=2 T=3) into 64-bit words, ambiguous
// bases (N and the other IUPAC codes) are recorded as a sparse per-record
// position list, and per-record offsets plus the chunk-table record ranges
// are serialized alongside so KmerGen can scan any chunk of any pass
// straight out of a read-only mmap of the arena file — word-at-a-time,
// no text in sight (mhm2's packed_reads / shasta's mmap ReadLoader idiom).
//
// Arena file layout (little-endian, 8-byte-aligned sections, offsets are
// all derivable from the header counts — see DESIGN.md "Packed read store"):
//
//   header          fixed 72 bytes: magic 'MPRS', version, counts, checksums
//   chunk_rec_start (num_chunks+1) u64   record-index range per chunk
//   rec_read_id     num_records    u32   global read ID per record
//   rec_len         num_records    u32   bases per record
//   rec_word_off    (num_records+1) u64  word offset into base_words
//   rec_npos_off    (num_records+1) u64  offset into npos
//   skip_read_id    num_skips      u32   lenient-parse skipped read IDs
//   npos            num_npos       u32   per-record ambiguous-base positions
//   base_words      num_base_words u64   2-bit bases, LSB-first per word
//
// Each record's bases start on a word boundary (<= 31 wasted base slots per
// record) so extraction never straddles words: base i of a record lives in
// bits [2*(i%32), 2*(i%32)+1] of word words[i/32].
//
// Records are append-only and the file is immutable once written; open()
// validates magic/version/size and the header checksum with typed
// util::Error on mismatch (truncated or corrupt arenas must never crash a
// scan).  The payload checksum is verified on demand (verify_payload) so
// opening a huge arena stays O(1) and mmap paging stays lazy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace metaprep::io {

class PackedStore;

/// Counts reported by a finished ingest (PackedStoreBuilder::write).
struct PackedStoreStats {
  std::uint64_t records = 0;   ///< records packed into the arena
  std::uint64_t skipped = 0;   ///< lenient-parse records skipped at ingest
  std::uint64_t bases = 0;     ///< total bases packed
  std::uint64_t file_bytes = 0;  ///< size of the written arena file
};

/// Accumulates records chunk by chunk, then serializes the arena file.
/// Chunks must be appended in chunk-table order; records within a chunk in
/// read order.  Skips (lenient parse) are recorded by read ID so packed and
/// text pipelines agree on which records exist.
class PackedStoreBuilder {
 public:
  /// @p expected_records / @p expected_bases are capacity hints (0 = none);
  /// exact values are not required, they only avoid reallocation copies.
  explicit PackedStoreBuilder(std::uint32_t num_chunks,
                              std::uint64_t expected_records = 0,
                              std::uint64_t expected_bases = 0);

  /// Start chunk @p c (0-based; must be called in increasing order for
  /// every chunk, even empty ones).
  void begin_chunk(std::uint32_t c);

  /// Append one read.  Bases outside ACGT (any case) are packed as code 0
  /// and their positions recorded in the N-position list.
  void add_record(std::uint32_t read_id, std::string_view seq);

  /// Record a lenient-parse skip: @p read_id exists in the chunk table but
  /// produced no record.
  void add_skip(std::uint32_t read_id);

  /// Append a shard built over the next shard.num_chunks chunks (parallel
  /// ingest: each worker packs a contiguous chunk range into its own
  /// builder, then shards merge in chunk order — the merged arena is
  /// byte-identical to a serial build).  Throws util::Error (category
  /// config) when the shard overruns this builder's chunk table.
  void merge(PackedStoreBuilder&& shard);

  /// Merge every shard in order — same result as repeated merge(), but the
  /// sections are sized up front and the copies fan out over up to
  /// @p threads workers (the serial copy plus its first-touch page faults
  /// is what makes a serial merge the ingest bottleneck).
  void merge_all(std::vector<PackedStoreBuilder>&& shards, int threads);

  /// Serialize the arena to @p path (overwrites) and return the counts.
  /// Throws util::Error (category io) on write failure.
  PackedStoreStats write(const std::string& path);

  /// Finish without serializing: moves the sections into an in-memory
  /// PackedStore (no file, no mmap — the ephemeral-arena path for runs that
  /// did not ask to keep the store).  The builder is consumed.
  PackedStore finish(PackedStoreStats* stats = nullptr);

 private:
  std::uint32_t num_chunks_;
  std::uint32_t next_chunk_ = 0;
  std::vector<std::uint64_t> chunk_rec_start_;
  std::vector<std::uint32_t> rec_read_id_;
  std::vector<std::uint32_t> rec_len_;
  std::vector<std::uint64_t> rec_word_off_;
  std::vector<std::uint64_t> rec_npos_off_;
  std::vector<std::uint32_t> skip_read_id_;
  std::vector<std::uint32_t> npos_;
  std::vector<std::uint64_t> base_words_;
  std::uint64_t total_bases_ = 0;
};

/// Read-only view of an arena: either an mmap of an arena file (open()) or
/// the builder's sections adopted in memory (PackedStoreBuilder::finish()).
/// Move-only; the mapping / owned sections live as long as the object
/// (records reference that memory directly).
class PackedStore {
 public:
  /// One record's view into the arena.
  struct Record {
    const std::uint64_t* words;  ///< 2-bit bases, LSB-first within each word
    const std::uint32_t* npos;   ///< sorted ambiguous-base positions
    std::uint32_t ncount;        ///< entries in npos
    std::uint32_t len;           ///< bases in the record
    std::uint32_t read_id;       ///< global read ID assigned at indexing
  };

  PackedStore();  // defined out of line: OwnedSections is incomplete here
  PackedStore(PackedStore&& other) noexcept;
  PackedStore& operator=(PackedStore&& other) noexcept;
  PackedStore(const PackedStore&) = delete;
  PackedStore& operator=(const PackedStore&) = delete;
  ~PackedStore();

  /// mmap @p path and validate magic, version, file size, and the header
  /// checksum.  Throws util::Error: category parse for corrupt/mismatched
  /// headers, category io for open/map failures and truncation.
  static PackedStore open(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept {
    return map_ != nullptr || owned_ != nullptr;
  }
  /// Arena file path; empty for in-memory arenas.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t num_records() const noexcept { return num_records_; }
  [[nodiscard]] std::uint32_t num_chunks() const noexcept { return num_chunks_; }
  /// Mapped file size; for an in-memory arena, the size its file would be.
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return map_bytes_; }
  [[nodiscard]] std::uint64_t total_bases() const noexcept { return total_bases_; }

  /// Record-index range [chunk_begin(c), chunk_end(c)) of chunk @p c.
  [[nodiscard]] std::uint64_t chunk_begin(std::uint32_t c) const noexcept {
    return chunk_rec_start_[c];
  }
  [[nodiscard]] std::uint64_t chunk_end(std::uint32_t c) const noexcept {
    return chunk_rec_start_[c + 1];
  }

  /// Record @p r (0 <= r < num_records()); O(1) pointer math into the map.
  [[nodiscard]] Record record(std::uint64_t r) const noexcept {
    return Record{base_words_ + rec_word_off_[r],
                  npos_ + rec_npos_off_[r],
                  static_cast<std::uint32_t>(rec_npos_off_[r + 1] - rec_npos_off_[r]),
                  rec_len_[r], rec_read_id_[r]};
  }

  /// Read IDs skipped by lenient parsing at ingest, in discovery order.
  [[nodiscard]] std::span<const std::uint32_t> skipped_read_ids() const noexcept {
    return {skip_read_id_, num_skips_};
  }

  /// Recompute the payload checksum over the full mapped payload and throw
  /// util::Error (category parse) on mismatch.  O(file size); for tests and
  /// explicit integrity audits, not the open path.  In-memory arenas have no
  /// serialized payload to audit: a no-op.
  void verify_payload() const;

 private:
  friend class PackedStoreBuilder;  // finish() adopts sections directly

  struct OwnedSections;

  void reset() noexcept;

  std::string path_;
  std::unique_ptr<OwnedSections> owned_;  ///< set for in-memory arenas only
  void* map_ = nullptr;          ///< mmap base (header at offset 0)
  std::uint64_t map_bytes_ = 0;  ///< mapped length == file size
  std::uint64_t num_records_ = 0;
  std::uint32_t num_chunks_ = 0;
  std::uint64_t num_skips_ = 0;
  std::uint64_t total_bases_ = 0;
  std::uint64_t payload_checksum_ = 0;
  const std::uint64_t* chunk_rec_start_ = nullptr;
  const std::uint32_t* rec_read_id_ = nullptr;
  const std::uint32_t* rec_len_ = nullptr;
  const std::uint64_t* rec_word_off_ = nullptr;
  const std::uint64_t* rec_npos_off_ = nullptr;
  const std::uint32_t* skip_read_id_ = nullptr;
  const std::uint32_t* npos_ = nullptr;
  const std::uint64_t* base_words_ = nullptr;
};

}  // namespace metaprep::io
