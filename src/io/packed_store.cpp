#include "io/packed_store.hpp"

#include "kmer/codec.hpp"
#include "obs/mem.hpp"
#include "util/error.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

namespace metaprep::io {
namespace {

constexpr std::uint32_t kMagic = 0x5352504Du;  // 'MPRS' little-endian
constexpr std::uint32_t kVersion = 1;

// Fixed arena header.  header_checksum covers every preceding byte; the
// payload checksum covers every byte after the header.
struct ArenaHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t num_records;
  std::uint64_t num_chunks;
  std::uint64_t num_skips;
  std::uint64_t num_npos;
  std::uint64_t num_base_words;
  std::uint64_t total_bases;
  std::uint64_t payload_checksum;
  std::uint64_t header_checksum;
};
static_assert(sizeof(ArenaHeader) == 72, "arena header layout drifted");

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t h = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a folded over 64-bit words: the payload is always a whole number of
/// 8-byte words (every section is 8-byte aligned), and one multiply per word
/// instead of per byte keeps the ingest checksum off the critical path.
std::uint64_t fnv1a_words(const std::uint64_t* words, std::uint64_t count) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t pad8(std::uint64_t bytes) noexcept {
  return (bytes + 7) & ~std::uint64_t{7};
}

// --- SWAR base packing -----------------------------------------------------
// Eight bases per step instead of one table lookup per base: the ingest pack
// loop is the hot half of PackedIngest, and the bench guard holds packed
// ingest+scan to a win over the per-pass text parse it replaces.

constexpr std::uint64_t kSwarOnes = 0x0101010101010101ULL;
constexpr std::uint64_t kSwarHigh = 0x8080808080808080ULL;

/// Per-byte equality: MSB of each byte set iff that byte of @p v equals @p c.
constexpr std::uint64_t eq8(std::uint64_t v, char c) noexcept {
  const std::uint64_t x = v ^ (static_cast<std::uint8_t>(c) * kSwarOnes);
  return (x - kSwarOnes) & ~x & kSwarHigh;
}

/// Packs 8 ACGT/acgt bytes (little-endian in @p chars) into 16 bits of 2-bit
/// codes matching kmer::base_code (A=0 C=1 G=2 T=3).  Caller must have
/// verified all 8 bytes are valid bases.
constexpr std::uint64_t pack8_codes(std::uint64_t chars) noexcept {
  // ASCII bit trick: (c >> 1) & 3 gives A=0 C=1 G=3 T=2 for either case;
  // bit0 ^= bit1 swaps G/T into the codec order.
  std::uint64_t x = (chars >> 1) & 0x0303030303030303ULL;
  x ^= (x >> 1) & kSwarOnes;
  // Fold the per-byte 2-bit fields down to one contiguous 16-bit group.
  x = (x | (x >> 6)) & 0x000F000F000F000FULL;
  x = (x | (x >> 12)) & 0x000000FF000000FFULL;
  return (x | (x >> 24)) & 0xFFFFULL;
}

/// Payload byte size implied by the header counts (sections are 8-byte
/// aligned, so u32 sections round up).
std::uint64_t payload_bytes(const ArenaHeader& h) noexcept {
  return (h.num_chunks + 1) * 8 + pad8(h.num_records * 4) * 2 +
         (h.num_records + 1) * 8 * 2 + pad8(h.num_skips * 4) +
         pad8(h.num_npos * 4) + h.num_base_words * 8;
}

void checked_fwrite(std::FILE* f, const void* data, std::size_t size,
                    const std::string& path) {
  if (size != 0 && std::fwrite(data, 1, size, f) != size) {
    const int err = errno;
    std::fclose(f);
    throw util::io_error("short write to packed read store", path,
                         util::Error::kNoOffset, err);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PackedStoreBuilder

PackedStoreBuilder::PackedStoreBuilder(std::uint32_t num_chunks,
                                       std::uint64_t expected_records,
                                       std::uint64_t expected_bases)
    : num_chunks_(num_chunks) {
  chunk_rec_start_.reserve(num_chunks + 1);
  if (expected_records != 0) {
    rec_read_id_.reserve(expected_records);
    rec_len_.reserve(expected_records);
    rec_word_off_.reserve(expected_records + 1);
    rec_npos_off_.reserve(expected_records + 1);
    // worst case one partial word per record, plus the full words
    base_words_.reserve(expected_bases / 32 + expected_records);
  }
  rec_word_off_.push_back(0);
  rec_npos_off_.push_back(0);
}

void PackedStoreBuilder::begin_chunk(std::uint32_t c) {
  if (c != next_chunk_ || c >= num_chunks_) {
    throw util::config_error("packed store chunks must be appended in order (got " +
                             std::to_string(c) + ", expected " +
                             std::to_string(next_chunk_) + " of " +
                             std::to_string(num_chunks_) + ")");
  }
  chunk_rec_start_.push_back(rec_read_id_.size());
  ++next_chunk_;
}

void PackedStoreBuilder::add_record(std::uint32_t read_id, std::string_view seq) {
  rec_read_id_.push_back(read_id);
  rec_len_.push_back(static_cast<std::uint32_t>(seq.size()));
  const std::uint64_t words = (seq.size() + 31) / 32;
  const std::size_t word_base = base_words_.size();
  base_words_.resize(word_base + words, 0);
  std::uint64_t* out = base_words_.data() + word_base;

  // One base at a time; invalid characters are recorded in npos_ and packed
  // as code 0.
  const auto scalar = [&](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const std::uint8_t code = kmer::base_code(seq[i]);
      if (code == kmer::kInvalidBase) {
        npos_.push_back(static_cast<std::uint32_t>(i));
      } else {
        out[i >> 5] |= static_cast<std::uint64_t>(code) << (2 * (i & 31));
      }
    }
  };

  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // SWAR fast path: pack 8 bases per step.  i stays a multiple of 8, so
    // the 16 emitted bits never straddle a 64-bit word.  Blocks holding any
    // non-ACGT byte fall back to the scalar loop (which records npos).
    for (; i + 8 <= seq.size(); i += 8) {
      std::uint64_t chars;
      std::memcpy(&chars, seq.data() + i, 8);
      const std::uint64_t folded = chars | 0x2020202020202020ULL;  // to lowercase
      const std::uint64_t valid =
          eq8(folded, 'a') | eq8(folded, 'c') | eq8(folded, 'g') | eq8(folded, 't');
      if (valid != kSwarHigh) {
        scalar(i, i + 8);
        continue;
      }
      out[i >> 5] |= pack8_codes(chars) << (2 * (i & 31));
    }
  }
  scalar(i, seq.size());

  rec_word_off_.push_back(rec_word_off_.back() + words);
  rec_npos_off_.push_back(npos_.size());
  total_bases_ += seq.size();
}

void PackedStoreBuilder::add_skip(std::uint32_t read_id) {
  skip_read_id_.push_back(read_id);
}

void PackedStoreBuilder::merge(PackedStoreBuilder&& shard) {
  if (next_chunk_ + shard.num_chunks_ > num_chunks_) {
    throw util::config_error(
        "packed store shard overruns the chunk table (" +
        std::to_string(next_chunk_) + " + " + std::to_string(shard.num_chunks_) +
        " > " + std::to_string(num_chunks_) + ")");
  }
  while (shard.next_chunk_ < shard.num_chunks_) shard.begin_chunk(shard.next_chunk_);

  const std::uint64_t rec_base = rec_read_id_.size();
  const std::uint64_t word_base = rec_word_off_.back();
  const std::uint64_t npos_base = rec_npos_off_.back();
  for (const std::uint64_t s : shard.chunk_rec_start_) {
    chunk_rec_start_.push_back(rec_base + s);
  }
  next_chunk_ += shard.num_chunks_;
  rec_read_id_.insert(rec_read_id_.end(), shard.rec_read_id_.begin(),
                      shard.rec_read_id_.end());
  rec_len_.insert(rec_len_.end(), shard.rec_len_.begin(), shard.rec_len_.end());
  // Skip each shard's leading sentinel 0; rebase the running offsets.
  for (std::size_t i = 1; i < shard.rec_word_off_.size(); ++i) {
    rec_word_off_.push_back(word_base + shard.rec_word_off_[i]);
  }
  for (std::size_t i = 1; i < shard.rec_npos_off_.size(); ++i) {
    rec_npos_off_.push_back(npos_base + shard.rec_npos_off_[i]);
  }
  skip_read_id_.insert(skip_read_id_.end(), shard.skip_read_id_.begin(),
                       shard.skip_read_id_.end());
  npos_.insert(npos_.end(), shard.npos_.begin(), shard.npos_.end());
  base_words_.insert(base_words_.end(), shard.base_words_.begin(),
                     shard.base_words_.end());
  total_bases_ += shard.total_bases_;
}

void PackedStoreBuilder::merge_all(std::vector<PackedStoreBuilder>&& shards,
                                   int threads) {
  std::uint64_t shard_chunks = 0;
  for (const PackedStoreBuilder& s : shards) shard_chunks += s.num_chunks_;
  if (next_chunk_ + shard_chunks > num_chunks_) {
    throw util::config_error(
        "packed store shards overrun the chunk table (" +
        std::to_string(next_chunk_) + " + " + std::to_string(shard_chunks) + " > " +
        std::to_string(num_chunks_) + ")");
  }
  for (PackedStoreBuilder& s : shards) {
    while (s.next_chunk_ < s.num_chunks_) s.begin_chunk(s.next_chunk_);
  }

  // Destination bases per shard: prefix sums over the current section sizes.
  struct Base {
    std::uint64_t chunk, rec, word, npos, skip;
  };
  const std::size_t n = shards.size();
  std::vector<Base> base(n + 1);
  base[0] = {chunk_rec_start_.size(), rec_read_id_.size(), base_words_.size(),
             npos_.size(), skip_read_id_.size()};
  for (std::size_t i = 0; i < n; ++i) {
    const PackedStoreBuilder& s = shards[i];
    base[i + 1] = {base[i].chunk + s.chunk_rec_start_.size(),
                   base[i].rec + s.rec_read_id_.size(),
                   base[i].word + s.base_words_.size(), base[i].npos + s.npos_.size(),
                   base[i].skip + s.skip_read_id_.size()};
  }
  chunk_rec_start_.resize(base[n].chunk);
  rec_read_id_.resize(base[n].rec);
  rec_len_.resize(base[n].rec);
  rec_word_off_.resize(base[n].rec + 1);
  rec_npos_off_.resize(base[n].rec + 1);
  base_words_.resize(base[n].word);
  npos_.resize(base[n].npos);
  skip_read_id_.resize(base[n].skip);

  const auto copy_shard = [&](std::size_t i) {
    const PackedStoreBuilder& s = shards[i];
    const Base& b = base[i];
    for (std::size_t j = 0; j < s.chunk_rec_start_.size(); ++j) {
      chunk_rec_start_[b.chunk + j] = b.rec + s.chunk_rec_start_[j];
    }
    std::copy(s.rec_read_id_.begin(), s.rec_read_id_.end(),
              rec_read_id_.begin() + static_cast<std::ptrdiff_t>(b.rec));
    std::copy(s.rec_len_.begin(), s.rec_len_.end(),
              rec_len_.begin() + static_cast<std::ptrdiff_t>(b.rec));
    // Shard offset arrays carry a leading sentinel 0; entry j belongs to
    // shard record j-1, i.e. global slot b.rec + j, rebased by the words /
    // npos accumulated before this shard.
    for (std::size_t j = 1; j < s.rec_word_off_.size(); ++j) {
      rec_word_off_[b.rec + j] = b.word + s.rec_word_off_[j];
    }
    for (std::size_t j = 1; j < s.rec_npos_off_.size(); ++j) {
      rec_npos_off_[b.rec + j] = b.npos + s.rec_npos_off_[j];
    }
    std::copy(s.base_words_.begin(), s.base_words_.end(),
              base_words_.begin() + static_cast<std::ptrdiff_t>(b.word));
    std::copy(s.npos_.begin(), s.npos_.end(),
              npos_.begin() + static_cast<std::ptrdiff_t>(b.npos));
    std::copy(s.skip_read_id_.begin(), s.skip_read_id_.end(),
              skip_read_id_.begin() + static_cast<std::ptrdiff_t>(b.skip));
  };
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) copy_shard(i);
  } else {
    std::vector<std::thread> workers;
    const std::size_t w =
        std::min<std::size_t>(static_cast<std::size_t>(threads), n);
    workers.reserve(w);
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < w; ++t) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          copy_shard(i);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  next_chunk_ += static_cast<std::uint32_t>(shard_chunks);
  for (const PackedStoreBuilder& s : shards) total_bases_ += s.total_bases_;
}

PackedStoreStats PackedStoreBuilder::write(const std::string& path) {
  while (next_chunk_ < num_chunks_) begin_chunk(next_chunk_);  // trailing empties
  chunk_rec_start_.push_back(rec_read_id_.size());

  ArenaHeader h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.num_records = rec_read_id_.size();
  h.num_chunks = num_chunks_;
  h.num_skips = skip_read_id_.size();
  h.num_npos = npos_.size();
  h.num_base_words = base_words_.size();
  h.total_bases = total_bases_;

  // Assemble the payload contiguously (every section 8-byte aligned, zero
  // padding after the u32 sections), then checksum it word-at-a-time and
  // write it with one fwrite — byte-wise checksums and per-section writes
  // showed up in the PackedIngest wall on the XL-mini bench.
  const std::uint64_t pbytes = payload_bytes(h);
  std::vector<std::uint64_t> payload(pbytes / 8, 0);
  auto* out = reinterpret_cast<unsigned char*>(payload.data());
  std::uint64_t off = 0;
  const auto emit = [&](const void* data, std::uint64_t bytes) {
    if (bytes != 0) std::memcpy(out + off, data, bytes);
    off += pad8(bytes);
  };
  emit(chunk_rec_start_.data(), chunk_rec_start_.size() * 8);
  emit(rec_read_id_.data(), rec_read_id_.size() * 4);
  emit(rec_len_.data(), rec_len_.size() * 4);
  emit(rec_word_off_.data(), rec_word_off_.size() * 8);
  emit(rec_npos_off_.data(), rec_npos_off_.size() * 8);
  emit(skip_read_id_.data(), skip_read_id_.size() * 4);
  emit(npos_.data(), npos_.size() * 4);
  emit(base_words_.data(), base_words_.size() * 8);
  h.payload_checksum = fnv1a_words(payload.data(), payload.size());
  h.header_checksum = fnv1a(&h, sizeof(h) - sizeof(h.header_checksum));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw util::io_error("cannot create packed read store", path,
                         util::Error::kNoOffset, errno);
  }
  checked_fwrite(f, &h, sizeof(h), path);
  checked_fwrite(f, payload.data(), pbytes, path);
  if (std::fclose(f) != 0) {
    throw util::io_error("close failed on packed read store", path,
                         util::Error::kNoOffset, errno);
  }

  return PackedStoreStats{h.num_records, h.num_skips, h.total_bases,
                          sizeof(ArenaHeader) + payload_bytes(h)};
}

// ---------------------------------------------------------------------------
// PackedStore

/// Section storage adopted from a builder by finish(): an in-memory arena
/// keeps the vectors instead of a serialized mapping.
struct PackedStore::OwnedSections {
  std::vector<std::uint64_t> chunk_rec_start;
  std::vector<std::uint32_t> rec_read_id;
  std::vector<std::uint32_t> rec_len;
  std::vector<std::uint64_t> rec_word_off;
  std::vector<std::uint64_t> rec_npos_off;
  std::vector<std::uint32_t> skip_read_id;
  std::vector<std::uint32_t> npos;
  std::vector<std::uint64_t> base_words;
};

PackedStore PackedStoreBuilder::finish(PackedStoreStats* stats) {
  while (next_chunk_ < num_chunks_) begin_chunk(next_chunk_);  // trailing empties
  chunk_rec_start_.push_back(rec_read_id_.size());

  ArenaHeader h{};
  h.num_records = rec_read_id_.size();
  h.num_chunks = num_chunks_;
  h.num_skips = skip_read_id_.size();
  h.num_npos = npos_.size();
  h.num_base_words = base_words_.size();
  const std::uint64_t arena_bytes = sizeof(ArenaHeader) + payload_bytes(h);
  if (stats != nullptr) {
    *stats = PackedStoreStats{h.num_records, h.num_skips, total_bases_, arena_bytes};
  }

  PackedStore ps;
  ps.owned_ = std::make_unique<PackedStore::OwnedSections>(PackedStore::OwnedSections{
      std::move(chunk_rec_start_), std::move(rec_read_id_), std::move(rec_len_),
      std::move(rec_word_off_), std::move(rec_npos_off_), std::move(skip_read_id_),
      std::move(npos_), std::move(base_words_)});
  ps.map_bytes_ = arena_bytes;
  ps.num_records_ = h.num_records;
  ps.num_chunks_ = num_chunks_;
  ps.num_skips_ = h.num_skips;
  ps.total_bases_ = total_bases_;
  ps.chunk_rec_start_ = ps.owned_->chunk_rec_start.data();
  ps.rec_read_id_ = ps.owned_->rec_read_id.data();
  ps.rec_len_ = ps.owned_->rec_len.data();
  ps.rec_word_off_ = ps.owned_->rec_word_off.data();
  ps.rec_npos_off_ = ps.owned_->rec_npos_off.data();
  ps.skip_read_id_ = ps.owned_->skip_read_id.data();
  ps.npos_ = ps.owned_->npos.data();
  ps.base_words_ = ps.owned_->base_words.data();
  obs::mem_charge("packed", arena_bytes);
  return ps;
}

PackedStore::PackedStore() = default;

PackedStore::PackedStore(PackedStore&& other) noexcept
    : path_(std::move(other.path_)),
      owned_(std::move(other.owned_)),
      map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      num_records_(other.num_records_),
      num_chunks_(other.num_chunks_),
      num_skips_(other.num_skips_),
      total_bases_(other.total_bases_),
      payload_checksum_(other.payload_checksum_),
      chunk_rec_start_(other.chunk_rec_start_),
      rec_read_id_(other.rec_read_id_),
      rec_len_(other.rec_len_),
      rec_word_off_(other.rec_word_off_),
      rec_npos_off_(other.rec_npos_off_),
      skip_read_id_(other.skip_read_id_),
      npos_(other.npos_),
      base_words_(other.base_words_) {}

PackedStore& PackedStore::operator=(PackedStore&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    owned_ = std::move(other.owned_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    num_records_ = other.num_records_;
    num_chunks_ = other.num_chunks_;
    num_skips_ = other.num_skips_;
    total_bases_ = other.total_bases_;
    payload_checksum_ = other.payload_checksum_;
    chunk_rec_start_ = other.chunk_rec_start_;
    rec_read_id_ = other.rec_read_id_;
    rec_len_ = other.rec_len_;
    rec_word_off_ = other.rec_word_off_;
    rec_npos_off_ = other.rec_npos_off_;
    skip_read_id_ = other.skip_read_id_;
    npos_ = other.npos_;
    base_words_ = other.base_words_;
  }
  return *this;
}

PackedStore::~PackedStore() { reset(); }

void PackedStore::reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    obs::mem_credit("packed", map_bytes_);
    map_ = nullptr;
  } else if (owned_ != nullptr) {
    obs::mem_credit("packed", map_bytes_);
  }
  owned_.reset();
  map_bytes_ = 0;
}

PackedStore PackedStore::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw util::io_error("cannot open packed read store", path,
                         util::Error::kNoOffset, errno);
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::io_error("cannot stat packed read store", path,
                         util::Error::kNoOffset, err);
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < sizeof(ArenaHeader)) {
    ::close(fd);
    throw util::io_error("packed read store truncated before header (" +
                             std::to_string(file_bytes) + " bytes)",
                         path, file_bytes);
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_errno = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    throw util::io_error("cannot mmap packed read store", path,
                         util::Error::kNoOffset, map_errno);
  }

  ArenaHeader h{};
  std::memcpy(&h, map, sizeof(h));
  const auto fail_parse = [&](const std::string& detail) {
    ::munmap(map, file_bytes);
    throw util::parse_error(detail, path, 0);
  };
  if (h.magic != kMagic) fail_parse("bad packed read store magic");
  if (h.version != kVersion) {
    fail_parse("packed read store version mismatch (file " +
               std::to_string(h.version) + ", expected " + std::to_string(kVersion) +
               ")");
  }
  if (h.header_checksum != fnv1a(&h, sizeof(h) - sizeof(h.header_checksum))) {
    fail_parse("packed read store header checksum mismatch");
  }
  const std::uint64_t want = sizeof(ArenaHeader) + payload_bytes(h);
  if (file_bytes != want) {
    ::munmap(map, file_bytes);
    throw util::io_error("packed read store truncated: " + std::to_string(file_bytes) +
                             " bytes, header implies " + std::to_string(want),
                         path, file_bytes);
  }

  PackedStore ps;
  ps.path_ = path;
  ps.map_ = map;
  ps.map_bytes_ = file_bytes;
  ps.num_records_ = h.num_records;
  ps.num_chunks_ = static_cast<std::uint32_t>(h.num_chunks);
  ps.num_skips_ = h.num_skips;
  ps.total_bases_ = h.total_bases;
  ps.payload_checksum_ = h.payload_checksum;
  const auto* base = static_cast<const unsigned char*>(map);
  std::uint64_t off = sizeof(ArenaHeader);
  const auto section = [&](std::uint64_t bytes) {
    const unsigned char* p = base + off;
    off += pad8(bytes);
    return p;
  };
  ps.chunk_rec_start_ =
      reinterpret_cast<const std::uint64_t*>(section((h.num_chunks + 1) * 8));
  ps.rec_read_id_ = reinterpret_cast<const std::uint32_t*>(section(h.num_records * 4));
  ps.rec_len_ = reinterpret_cast<const std::uint32_t*>(section(h.num_records * 4));
  ps.rec_word_off_ =
      reinterpret_cast<const std::uint64_t*>(section((h.num_records + 1) * 8));
  ps.rec_npos_off_ =
      reinterpret_cast<const std::uint64_t*>(section((h.num_records + 1) * 8));
  ps.skip_read_id_ = reinterpret_cast<const std::uint32_t*>(section(h.num_skips * 4));
  ps.npos_ = reinterpret_cast<const std::uint32_t*>(section(h.num_npos * 4));
  ps.base_words_ = reinterpret_cast<const std::uint64_t*>(section(h.num_base_words * 8));
  obs::mem_charge("packed", file_bytes);
  return ps;
}

void PackedStore::verify_payload() const {
  if (owned_ != nullptr) return;  // never serialized: nothing to audit
  // sizeof(ArenaHeader) is a multiple of 8, so the mapped payload is both
  // 8-byte aligned and a whole number of words.
  const auto* base = static_cast<const unsigned char*>(map_);
  const std::uint64_t sum =
      fnv1a_words(reinterpret_cast<const std::uint64_t*>(base + sizeof(ArenaHeader)),
                  (map_bytes_ - sizeof(ArenaHeader)) / 8);
  if (sum != payload_checksum_) {
    throw util::parse_error("packed read store payload checksum mismatch", path_,
                            sizeof(ArenaHeader));
  }
}

}  // namespace metaprep::io
