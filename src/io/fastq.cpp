#include "io/fastq.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace metaprep::io {

namespace {
constexpr std::size_t kReadBufferSize = 1 << 20;

obs::Counter& bytes_read_counter() {
  static obs::Counter& c = obs::metrics().counter("io.bytes_read");
  return c;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("fastq: " + path + ": " + what);
}
}  // namespace

FastqReader::FastqReader(const std::string& path) : path_(path), buffer_(kReadBufferSize) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) fail(path_, "cannot open for reading");
}

FastqReader::~FastqReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FastqReader::read_line(std::string& line) {
  line.clear();
  for (;;) {
    if (buf_pos_ == buf_len_) {
      buf_len_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
      buf_pos_ = 0;
      bytes_read_counter().add(buf_len_);
      if (buf_len_ == 0) return !line.empty();
    }
    const char* start = buffer_.data() + buf_pos_;
    const char* nl = static_cast<const char*>(std::memchr(start, '\n', buf_len_ - buf_pos_));
    if (nl == nullptr) {
      line.append(start, buf_len_ - buf_pos_);
      buf_pos_ = buf_len_;
      continue;
    }
    line.append(start, static_cast<std::size_t>(nl - start));
    buf_pos_ += static_cast<std::size_t>(nl - start) + 1;
    return true;
  }
}

bool FastqReader::next(FastqRecord& out) {
  std::string line;
  if (!read_line(line)) return false;
  if (line.empty() || line[0] != '@') fail(path_, "expected '@' header line");
  out.id.assign(line, 1, line.size() - 1);
  std::uint64_t consumed = line.size() + 1;

  if (!read_line(out.seq)) fail(path_, "truncated record (missing sequence)");
  consumed += out.seq.size() + 1;

  if (!read_line(line)) fail(path_, "truncated record (missing '+')");
  if (line.empty() || line[0] != '+') fail(path_, "expected '+' separator line");
  consumed += line.size() + 1;

  if (!read_line(out.qual)) fail(path_, "truncated record (missing quality)");
  if (out.qual.size() != out.seq.size()) fail(path_, "quality length != sequence length");
  consumed += out.qual.size() + 1;

  offset_ += consumed;
  return true;
}

FastqWriter::FastqWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail(path_, "cannot open for writing");
}

FastqWriter::~FastqWriter() { close(); }

void FastqWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    static obs::Counter& written = obs::metrics().counter("io.bytes_written");
    written.add(bytes_);
  }
}

void FastqWriter::write(const FastqRecord& record) { write(record.id, record.seq, record.qual); }

void FastqWriter::write(std::string_view id, std::string_view seq, std::string_view qual) {
  if (file_ == nullptr) fail(path_, "write after close");
  if (qual.size() != seq.size()) fail(path_, "quality length != sequence length");
  std::fputc('@', file_);
  std::fwrite(id.data(), 1, id.size(), file_);
  std::fputc('\n', file_);
  std::fwrite(seq.data(), 1, seq.size(), file_);
  std::fwrite("\n+\n", 1, 3, file_);
  std::fwrite(qual.data(), 1, qual.size(), file_);
  std::fputc('\n', file_);
  bytes_ += 1 + id.size() + 1 + seq.size() + 3 + qual.size() + 1;
}

std::vector<char> read_file_range(const std::string& path, std::uint64_t offset,
                                  std::uint64_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  std::vector<char> buf(size);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    fail(path, "seek failed");
  }
  const std::size_t got = std::fread(buf.data(), 1, size, f);
  std::fclose(f);
  if (got != size) fail(path, "short read");
  bytes_read_counter().add(size);
  return buf;
}

void for_each_record_in_buffer(
    std::string_view buffer,
    const std::function<void(std::string_view, std::string_view, std::string_view)>& fn) {
  std::size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= buffer.size()) return false;
    const std::size_t nl = buffer.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? buffer.size() : nl;
    line = buffer.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };
  std::string_view header, seq, plus, qual;
  std::uint64_t records = 0;
  while (next_line(header)) {
    if (header.empty() && pos >= buffer.size()) break;  // trailing newline
    if (header.empty() || header[0] != '@')
      throw std::runtime_error("fastq buffer: expected '@' header");
    if (!next_line(seq) || !next_line(plus) || !next_line(qual))
      throw std::runtime_error("fastq buffer: truncated record");
    if (plus.empty() || plus[0] != '+')
      throw std::runtime_error("fastq buffer: expected '+' separator");
    if (qual.size() != seq.size())
      throw std::runtime_error("fastq buffer: quality length != sequence length");
    fn(header.substr(1), seq, qual);
    ++records;
  }
  static obs::Counter& parsed = obs::metrics().counter("io.records_parsed");
  parsed.add(records);
}

std::uint64_t count_records_in_buffer(std::string_view buffer) {
  std::uint64_t n = 0;
  for_each_record_in_buffer(buffer,
                            [&](std::string_view, std::string_view, std::string_view) { ++n; });
  return n;
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) fail(path, "ftell failed");
  return static_cast<std::uint64_t>(size);
}

}  // namespace metaprep::io
