#include "io/fastq.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/retry.hpp"

namespace metaprep::io {

namespace {
constexpr std::size_t kReadBufferSize = 1 << 20;

obs::Counter& bytes_read_counter() {
  static thread_local obs::CounterHandle c;
  return c.of(obs::metrics(), "io.bytes_read");
}

obs::Counter& retries_counter() {
  static thread_local obs::CounterHandle c;
  return c.of(obs::metrics(), "io.retries");
}

obs::Counter& skipped_counter() {
  static thread_local obs::CounterHandle c;
  return c.of(obs::metrics(), "io.records_skipped");
}

const util::RetryPolicy& io_retry_policy() {
  static const util::RetryPolicy policy{};
  return policy;
}

void count_retry(int /*attempt*/, const util::Error& /*error*/) { retries_counter().add(1); }

/// A line that could be the sequence of a FASTQ record: non-empty, IUPAC
/// nucleotide codes only.  Used by lenient resynchronization to reject '@'
/// quality lines masquerading as headers.
bool plausible_sequence(std::string_view s) {
  static constexpr char kCodes[] = "ACGTUNRYKMSWBDHV";
  if (s.empty()) return false;
  for (char c : s) {
    const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (std::memchr(kCodes, upper, sizeof(kCodes) - 1) == nullptr) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FastqReader

FastqReader::FastqReader(const std::string& path, ParseOptions options)
    : path_(path), options_(std::move(options)), buffer_(kReadBufferSize) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) throw util::io_error("cannot open for reading", path_, 0, errno);
}

FastqReader::~FastqReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void FastqReader::refill() {
  buf_pos_ = 0;
  buf_len_ = util::with_retries(
      io_retry_policy(),
      [&]() -> std::size_t {
        util::FaultPlan& plan = util::FaultPlan::global();
        if (plan.armed() && plan.inject_read_fault(path_, stream_pos_))
          throw util::io_error("injected transient read fault", path_, stream_pos_, EINTR,
                               /*transient=*/true);
        const std::size_t n = std::fread(buffer_.data(), 1, buffer_.size(), file_);
        if (n == 0 && std::ferror(file_) != 0) {
          const int err = errno;
          std::clearerr(file_);
          throw util::io_error("read failed", path_, stream_pos_, err,
                               err == EINTR || err == EAGAIN);
        }
        return n;
      },
      count_retry);
  stream_pos_ += buf_len_;
  bytes_read_counter().add(buf_len_);
}

bool FastqReader::read_line_raw(std::string& line) {
  line.clear();
  std::uint64_t consumed = 0;
  for (;;) {
    if (buf_pos_ == buf_len_) {
      refill();
      if (buf_len_ == 0) {
        if (consumed == 0) return false;  // clean EOF
        break;                            // final line without trailing newline
      }
    }
    const char* start = buffer_.data() + buf_pos_;
    const char* nl = static_cast<const char*>(std::memchr(start, '\n', buf_len_ - buf_pos_));
    if (nl == nullptr) {
      line.append(start, buf_len_ - buf_pos_);
      consumed += buf_len_ - buf_pos_;
      buf_pos_ = buf_len_;
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(nl - start);
    line.append(start, len);
    consumed += len + 1;  // line + newline, counted exactly
    buf_pos_ += len + 1;
    break;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF: '\r' counted, stripped
  offset_ += consumed;
  return true;
}

bool FastqReader::next_line(std::string& line) {
  if (have_pending_) {
    line = std::move(pending_line_);
    have_pending_ = false;
    return true;  // bytes were accounted when the line was first read
  }
  return read_line_raw(line);
}

void FastqReader::malformed(const char* what, std::uint64_t at) {
  if (options_.mode == ParseMode::kStrict) throw util::parse_error(what, path_, at);
  ++skipped_;
  skipped_counter().add(1);
}

// Lenient resynchronization: starting from @p line (the last line read),
// scan for a line that starts with '@' and is followed by a plausible
// nucleotide sequence.  On success @p line holds that header and the
// sequence line is left pending; returns false at EOF.
bool FastqReader::resync(std::string& line) {
  for (;;) {
    if (!line.empty() && line[0] == '@') {
      std::string lookahead;
      if (!read_line_raw(lookahead)) return false;
      if (plausible_sequence(lookahead)) {
        pending_line_ = std::move(lookahead);
        have_pending_ = true;
        return true;
      }
      line = std::move(lookahead);  // re-examine the lookahead itself
      continue;
    }
    if (!read_line_raw(line)) return false;
  }
}

bool FastqReader::next(FastqRecord& out) {
  std::string line;
  std::uint64_t record_start = offset_;
  if (!next_line(line)) return false;
  for (;;) {
    if (line.empty() || line[0] != '@') {
      malformed("expected '@' header line", record_start);
      if (!resync(line)) return false;
    }
    out.id.assign(line, 1, line.size() - 1);
    if (!next_line(out.seq)) {
      malformed("truncated record (missing sequence)", record_start);
      return false;
    }
    if (!next_line(line)) {
      malformed("truncated record (missing '+' separator)", record_start);
      return false;
    }
    if (line.empty() || line[0] != '+') {
      malformed("expected '+' separator line", record_start);
      if (!resync(line)) return false;
      record_start = offset_;
      continue;
    }
    if (!next_line(out.qual)) {
      malformed("truncated record (missing quality)", record_start);
      return false;
    }
    if (out.qual.size() != out.seq.size()) {
      malformed("quality length != sequence length", record_start);
      line = out.qual;  // the quality line may itself open the next record
      if (!resync(line)) return false;
      record_start = offset_;
      continue;
    }
    return true;
  }
}

// ---------------------------------------------------------------------------
// FastqWriter

FastqWriter::FastqWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw util::io_error("cannot open for writing", path_, 0, errno);
}

FastqWriter::~FastqWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    LOG_ERROR("fastq: " << e.what());
  }
}

void FastqWriter::close() {
  if (file_ == nullptr) return;
  std::FILE* f = file_;
  file_ = nullptr;  // the handle is gone even if the flush fails
  static thread_local obs::CounterHandle written;
  written.of(obs::metrics(), "io.bytes_written").add(bytes_);
  if (std::fclose(f) != 0) {
    const int err = errno;
    throw util::io_error("close failed, buffered data may be lost", path_, bytes_, err);
  }
}

void FastqWriter::write(const FastqRecord& record) { write(record.id, record.seq, record.qual); }

void FastqWriter::write(std::string_view id, std::string_view seq, std::string_view qual) {
  if (file_ == nullptr) throw util::io_error("write after close", path_);
  if (qual.size() != seq.size())
    throw util::parse_error("quality length != sequence length", path_, bytes_);
  const auto put = [&](const char* data, std::size_t n) {
    if (std::fwrite(data, 1, n, file_) != n) {
      const int err = errno;
      throw util::io_error("short write", path_, bytes_, err);
    }
    bytes_ += n;
  };
  put("@", 1);
  put(id.data(), id.size());
  put("\n", 1);
  put(seq.data(), seq.size());
  put("\n+\n", 3);
  put(qual.data(), qual.size());
  put("\n", 1);
}

// ---------------------------------------------------------------------------
// Free functions

std::vector<char> read_file_range(const std::string& path, std::uint64_t offset,
                                  std::uint64_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::io_error("cannot open for reading", path, offset, errno);
  std::vector<char> buf(size);
  try {
    util::with_retries(
        io_retry_policy(),
        [&] {
          util::FaultPlan& plan = util::FaultPlan::global();
          if (plan.armed() && plan.inject_read_fault(path, offset))
            throw util::io_error("injected transient read fault", path, offset, EINTR,
                                 /*transient=*/true);
          // fseeko keeps the full 64-bit offset (fseek takes long: chunk
          // offsets past 2 GiB would truncate and read the wrong range).
          if (fseeko(f, static_cast<off_t>(offset), SEEK_SET) != 0)
            throw util::io_error("seek failed", path, offset, errno);
          std::clearerr(f);
          const std::size_t got = std::fread(buf.data(), 1, size, f);
          if (got != size) {
            const int err = std::ferror(f) != 0 ? errno : 0;
            std::clearerr(f);
            throw util::io_error("short read (got " + std::to_string(got) + " of " +
                                     std::to_string(size) + " bytes)",
                                 path, offset, err, err == EINTR || err == EAGAIN);
          }
        },
        count_retry);
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
  bytes_read_counter().add(size);
  util::FaultPlan::global().corrupt_fastq_chunk(path, offset,
                                                std::span<char>(buf.data(), buf.size()));
  return buf;
}

BufferParseStats for_each_record_in_buffer(
    std::string_view buffer,
    const std::function<void(std::string_view, std::string_view, std::string_view)>& fn,
    ParseOptions options) {
  BufferParseStats stats;
  std::size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= buffer.size()) return false;
    const std::size_t nl = buffer.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? buffer.size() : nl;
    line = buffer.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = nl == std::string_view::npos ? buffer.size() : nl + 1;
    return true;
  };
  auto malformed = [&](const char* what, std::uint64_t at) {
    if (options.mode == ParseMode::kStrict)
      throw util::parse_error(std::string("fastq buffer: ") + what, options.path,
                              options.base_offset + at);
    ++stats.skipped;
    skipped_counter().add(1);
    if (options.on_skip) options.on_skip();
  };
  // Lenient resynchronization over the buffer; see FastqReader::resync.
  auto resync_from = [&](std::string_view start_line, std::string_view& header) -> bool {
    std::string_view cur = start_line;
    for (;;) {
      if (!cur.empty() && cur[0] == '@') {
        const std::size_t save = pos;
        std::string_view lookahead;
        if (!next_line(lookahead)) return false;
        if (plausible_sequence(lookahead)) {
          pos = save;  // the sequence line will be re-read by the parser
          header = cur;
          return true;
        }
        cur = lookahead;
        continue;
      }
      if (!next_line(cur)) return false;
    }
  };

  std::string_view line, seq, plus, qual;
  std::uint64_t record_start = 0;
  bool alive = next_line(line);
  while (alive) {
    if (line.empty() && pos >= buffer.size()) break;  // trailing newline
    if (line.empty() || line[0] != '@') {
      malformed("expected '@' header line", record_start);
      if (!resync_from(line, line)) break;
    }
    const std::string_view header = line;
    if (!next_line(seq)) {
      malformed("truncated record (missing sequence)", record_start);
      break;
    }
    if (!next_line(plus)) {
      malformed("truncated record (missing '+' separator)", record_start);
      break;
    }
    if (plus.empty() || plus[0] != '+') {
      malformed("expected '+' separator line", record_start);
      if (!resync_from(plus, line)) break;
      record_start = pos;
      continue;
    }
    if (!next_line(qual)) {
      malformed("truncated record (missing quality)", record_start);
      break;
    }
    if (qual.size() != seq.size()) {
      malformed("quality length != sequence length", record_start);
      if (!resync_from(qual, line)) break;
      record_start = pos;
      continue;
    }
    fn(header.substr(1), seq, qual);
    ++stats.records;
    record_start = pos;
    alive = next_line(line);
  }
  static thread_local obs::CounterHandle parsed;
  parsed.of(obs::metrics(), "io.records_parsed").add(stats.records);
  return stats;
}

std::uint64_t count_records_in_buffer(std::string_view buffer) {
  std::uint64_t n = 0;
  for_each_record_in_buffer(buffer,
                            [&](std::string_view, std::string_view, std::string_view) { ++n; });
  return n;
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::io_error("cannot open for reading", path, 0, errno);
  if (fseeko(f, 0, SEEK_END) != 0) {
    const int err = errno;
    std::fclose(f);
    throw util::io_error("seek to end failed", path, 0, err);
  }
  const off_t size = ftello(f);  // 64-bit, unlike ftell's long
  const int err = errno;
  std::fclose(f);
  if (size < 0) throw util::io_error("ftello failed", path, 0, err);
  return static_cast<std::uint64_t>(size);
}

}  // namespace metaprep::io
