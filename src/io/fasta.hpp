// FASTA reading and writing (assembler output, reference genomes).
//
// Contigs are conventionally exchanged as FASTA; MiniHit's outputs and the
// simulator's reference genomes use these helpers.  Multi-line sequences
// are supported on read; writes wrap at a fixed column width.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metaprep::io {

struct FastaRecord {
  std::string id;   ///< header without the leading '>'
  std::string seq;
};

/// Read all records of a FASTA file.  Throws on open failure or malformed
/// content (text before the first header).
std::vector<FastaRecord> read_fasta(const std::string& path);

/// Write records, wrapping sequence lines at @p line_width columns.
void write_fasta(const std::string& path, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 80);

/// Convenience: write contigs with generated headers "<prefix>_<i> len=N".
void write_contigs_fasta(const std::string& path, const std::vector<std::string>& contigs,
                         const std::string& prefix = "contig");

}  // namespace metaprep::io
