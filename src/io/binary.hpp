// Versioned binary (de)serialization for the index files.
//
// IndexCreate writes the merHist and FASTQPart tables "to disk in binary
// format" for reuse across runs and platforms (paper §3.1).  These helpers
// give every table a magic + version header and length-prefixed fields so a
// stale or truncated index fails loudly instead of corrupting a run.
// Values are little-endian (asserted at build time; the reproduction targets
// x86-64/AArch64 Linux).
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

static_assert(std::endian::native == std::endian::little,
              "metaprep binary indices assume a little-endian host");

namespace metaprep::io {

class BinaryWriter {
 public:
  /// Opens @p path and writes the header.  Throws on failure.
  BinaryWriter(const std::string& path, std::uint32_t magic, std::uint32_t version);
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  ~BinaryWriter();

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_string(const std::string& s);
  void write_bytes(const void* data, std::size_t size);

  template <typename T>
  void write_vector(std::span<const T> v) {
    write_u64(v.size());
    write_bytes(v.data(), v.size_bytes());
  }

  /// Flush and close; throws util::Error (category io) if the flush fails.
  /// The destructor closes too but only logs failures; callers that must
  /// not lose an index should close() explicitly.
  void close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

class BinaryReader {
 public:
  /// Opens @p path and validates magic + version.  Throws on mismatch.
  BinaryReader(const std::string& path, std::uint32_t magic, std::uint32_t version);
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;
  ~BinaryReader();

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::string read_string();
  void read_bytes(void* data, std::size_t size);

  template <typename T>
  std::vector<T> read_vector() {
    const std::uint64_t n = read_u64();
    std::vector<T> v(n);
    read_bytes(v.data(), n * sizeof(T));
    return v;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace metaprep::io
