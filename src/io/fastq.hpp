// FASTQ reading, writing, and in-buffer parsing.
//
// METAPREP's KmerGen step reads *logical chunks* (byte ranges aligned to
// record boundaries) of FASTQ files into per-thread buffers and parses
// records out of the buffer (paper §3.1.2, §3.2).  We support the standard
// 4-line record form (@id / sequence / + / quality), which is what both the
// paper's Illumina datasets and our simulator produce.  CRLF line endings
// are accepted (the '\r' is stripped, never fed to k-mer enumeration), and
// offsets are 64-bit throughout so >2 GiB files work.
//
// Failure handling comes in two modes (ParseMode):
//  - strict (default): malformed input throws util::Error with category
//    parse, naming the file and byte offset of the bad record;
//  - lenient: the parser resynchronizes on the next plausible '@' header,
//    counts the event in the io.records_skipped metric, and continues —
//    the graceful-degradation behaviour a preprocessing service needs on
//    dirty real-world read sets.
// Transient read failures (EINTR, faults injected by util::FaultPlan) are
// retried with backoff and counted in io.retries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace metaprep::io {

struct FastqRecord {
  std::string id;    ///< header without the leading '@'
  std::string seq;   ///< base sequence (ACGTN)
  std::string qual;  ///< per-base quality string, same length as seq
};

enum class ParseMode {
  kStrict,   ///< malformed record -> typed util::Error (category parse)
  kLenient,  ///< malformed record -> resync on next '@' header, count skip
};

struct ParseOptions {
  ParseMode mode = ParseMode::kStrict;
  /// Error-reporting context for buffer parsing: the file the buffer was
  /// read from and the buffer's byte offset within that file.  Ignored by
  /// FastqReader (which knows its own path).
  std::string path;
  std::uint64_t base_offset = 0;
  /// Lenient mode only: invoked once per resynchronization event, i.e. once
  /// per record the parser abandoned.  Callers that derive read IDs from
  /// precomputed chunk tables (which counted the abandoned record) must
  /// advance their cursor here, or every record after the skip inherits its
  /// predecessor's ID.
  std::function<void()> on_skip = {};
};

/// Per-buffer parse outcome.
struct BufferParseStats {
  std::uint64_t records = 0;  ///< records delivered to the callback
  std::uint64_t skipped = 0;  ///< lenient-mode resynchronization events
};

/// Streaming reader over one FASTQ file.  Strict mode throws util::Error on
/// open failure or malformed records; lenient mode skips bad records.
class FastqReader {
 public:
  explicit FastqReader(const std::string& path, ParseOptions options = {});
  FastqReader(const FastqReader&) = delete;
  FastqReader& operator=(const FastqReader&) = delete;
  ~FastqReader();

  /// Read the next record.  Returns false at clean EOF.
  bool next(FastqRecord& out);

  /// Byte offset of the start of the next record (for chunking).  Exact
  /// even when the final line has no trailing newline or lines end in CRLF.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  /// Lenient-mode resynchronization events so far.
  [[nodiscard]] std::uint64_t records_skipped() const noexcept { return skipped_; }

 private:
  void refill();
  bool read_line_raw(std::string& line);
  bool next_line(std::string& line);
  bool resync(std::string& line);
  void malformed(const char* what, std::uint64_t at);

  std::string path_;
  ParseOptions options_;
  std::FILE* file_ = nullptr;
  std::vector<char> buffer_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t offset_ = 0;      ///< bytes consumed from the stream
  std::uint64_t stream_pos_ = 0;  ///< file offset of the next fread
  std::uint64_t skipped_ = 0;
  bool have_pending_ = false;
  std::string pending_line_;
};

/// Buffered FASTQ writer.  Short writes and close failures (e.g. ENOSPC
/// during CC-I/O) surface as typed util::Error instead of silent success.
class FastqWriter {
 public:
  explicit FastqWriter(const std::string& path);
  FastqWriter(const FastqWriter&) = delete;
  FastqWriter& operator=(const FastqWriter&) = delete;
  ~FastqWriter();

  void write(const FastqRecord& record);
  void write(std::string_view id, std::string_view seq, std::string_view qual);

  /// Flush and close; throws util::Error (category io) if the flush fails,
  /// so callers that must not lose data should call this explicitly.  The
  /// destructor closes too but only logs failures (destructors can't throw).
  void close();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// Read the byte range [offset, offset + size) of a file into a buffer.
/// 64-bit clean (uses fseeko); transient failures are retried with backoff.
std::vector<char> read_file_range(const std::string& path, std::uint64_t offset,
                                  std::uint64_t size);

/// Parse whole FASTQ records out of a memory buffer (a logical chunk).
/// Invokes fn(id, seq, qual) per record; string_views alias the buffer.
/// Strict mode throws on malformed input; lenient mode resynchronizes and
/// reports the skip count in the returned stats.
BufferParseStats for_each_record_in_buffer(
    std::string_view buffer,
    const std::function<void(std::string_view, std::string_view, std::string_view)>& fn,
    ParseOptions options = {});

/// Count records in a buffer without invoking a callback (strict parse).
std::uint64_t count_records_in_buffer(std::string_view buffer);

/// Total size of a file in bytes (64-bit clean).
std::uint64_t file_size_bytes(const std::string& path);

}  // namespace metaprep::io
