// FASTQ reading, writing, and in-buffer parsing.
//
// METAPREP's KmerGen step reads *logical chunks* (byte ranges aligned to
// record boundaries) of FASTQ files into per-thread buffers and parses
// records out of the buffer (paper §3.1.2, §3.2).  We support the standard
// 4-line record form (@id / sequence / + / quality), which is what both the
// paper's Illumina datasets and our simulator produce.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace metaprep::io {

struct FastqRecord {
  std::string id;    ///< header without the leading '@'
  std::string seq;   ///< base sequence (ACGTN)
  std::string qual;  ///< per-base quality string, same length as seq
};

/// Streaming reader over one FASTQ file.  Throws std::runtime_error on open
/// failure or malformed records.
class FastqReader {
 public:
  explicit FastqReader(const std::string& path);
  FastqReader(const FastqReader&) = delete;
  FastqReader& operator=(const FastqReader&) = delete;
  ~FastqReader();

  /// Read the next record.  Returns false at clean EOF.
  bool next(FastqRecord& out);

  /// Byte offset of the start of the next record (for chunking).
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  bool read_line(std::string& line);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<char> buffer_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t offset_ = 0;
};

/// Buffered FASTQ writer.
class FastqWriter {
 public:
  explicit FastqWriter(const std::string& path);
  FastqWriter(const FastqWriter&) = delete;
  FastqWriter& operator=(const FastqWriter&) = delete;
  ~FastqWriter();

  void write(const FastqRecord& record);
  void write(std::string_view id, std::string_view seq, std::string_view qual);

  /// Flush and close; subsequent writes are invalid.  Called by the
  /// destructor if not called explicitly.
  void close();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// Read the byte range [offset, offset + size) of a file into a buffer.
std::vector<char> read_file_range(const std::string& path, std::uint64_t offset,
                                  std::uint64_t size);

/// Parse whole FASTQ records out of a memory buffer (a logical chunk).
/// Invokes fn(id, seq, qual) per record; string_views alias the buffer.
/// Throws on malformed input; the buffer must contain complete records.
void for_each_record_in_buffer(
    std::string_view buffer,
    const std::function<void(std::string_view, std::string_view, std::string_view)>& fn);

/// Count records in a buffer without invoking a callback.
std::uint64_t count_records_in_buffer(std::string_view buffer);

/// Total size of a file in bytes.
std::uint64_t file_size_bytes(const std::string& path);

}  // namespace metaprep::io
