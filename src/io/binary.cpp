#include "io/binary.hpp"

#include <cerrno>

#include "util/error.hpp"
#include "util/log.hpp"

namespace metaprep::io {

BinaryWriter::BinaryWriter(const std::string& path, std::uint32_t magic, std::uint32_t version)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    throw util::io_error("binary index: cannot open for writing", path_, 0, errno);
  write_u32(magic);
  write_u32(version);
}

BinaryWriter::~BinaryWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    LOG_ERROR("binary index: " << e.what());
  }
}

void BinaryWriter::close() {
  if (file_ == nullptr) return;
  std::FILE* f = file_;
  file_ = nullptr;  // the handle is gone even if the flush fails
  if (std::fclose(f) != 0) {
    const int err = errno;
    throw util::io_error("binary index: close failed, buffered data may be lost", path_,
                         util::Error::kNoOffset, err);
  }
}

void BinaryWriter::write_bytes(const void* data, std::size_t size) {
  if (file_ == nullptr) throw util::io_error("binary index: write after close", path_);
  if (std::fwrite(data, 1, size, file_) != size) {
    const int err = errno;
    throw util::io_error("binary index: short write", path_, util::Error::kNoOffset, err);
  }
}

void BinaryWriter::write_u32(std::uint32_t v) { write_bytes(&v, sizeof(v)); }
void BinaryWriter::write_u64(std::uint64_t v) { write_bytes(&v, sizeof(v)); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_bytes(s.data(), s.size());
}

BinaryReader::BinaryReader(const std::string& path, std::uint32_t magic, std::uint32_t version)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr)
    throw util::io_error("binary index: cannot open for reading", path_, 0, errno);
  if (read_u32() != magic)
    throw util::parse_error("binary index: bad magic (not a metaprep index?)", path_, 0);
  const std::uint32_t got = read_u32();
  if (got != version)
    throw util::parse_error("binary index: version mismatch (file v" + std::to_string(got) +
                                ", expected v" + std::to_string(version) + ")",
                            path_, sizeof(std::uint32_t));
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::read_bytes(void* data, std::size_t size) {
  if (std::fread(data, 1, size, file_) != size) {
    const int err = std::ferror(file_) != 0 ? errno : 0;
    throw util::io_error("binary index: truncated file", path_, util::Error::kNoOffset, err);
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_bytes(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_bytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  read_bytes(s.data(), n);
  return s;
}

}  // namespace metaprep::io
