#include "io/binary.hpp"

#include <stdexcept>

namespace metaprep::io {

namespace {
[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("binary index: " + path + ": " + what);
}
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, std::uint32_t magic, std::uint32_t version)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail(path_, "cannot open for writing");
  write_u32(magic);
  write_u32(version);
}

BinaryWriter::~BinaryWriter() { close(); }

void BinaryWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void BinaryWriter::write_bytes(const void* data, std::size_t size) {
  if (file_ == nullptr) fail(path_, "write after close");
  if (std::fwrite(data, 1, size, file_) != size) fail(path_, "short write");
}

void BinaryWriter::write_u32(std::uint32_t v) { write_bytes(&v, sizeof(v)); }
void BinaryWriter::write_u64(std::uint64_t v) { write_bytes(&v, sizeof(v)); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_bytes(s.data(), s.size());
}

BinaryReader::BinaryReader(const std::string& path, std::uint32_t magic, std::uint32_t version)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) fail(path_, "cannot open for reading");
  if (read_u32() != magic) fail(path_, "bad magic (not a metaprep index?)");
  const std::uint32_t got = read_u32();
  if (got != version)
    fail(path_, "version mismatch (file v" + std::to_string(got) + ", expected v" +
                    std::to_string(version) + ")");
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::read_bytes(void* data, std::size_t size) {
  if (std::fread(data, 1, size, file_) != size) fail(path_, "truncated file");
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_bytes(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_bytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  read_bytes(s.data(), n);
  return s;
}

}  // namespace metaprep::io
