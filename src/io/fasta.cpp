#include "io/fasta.hpp"

#include <cstdio>
#include <stdexcept>
#include <cerrno>

#include "util/error.hpp"

namespace metaprep::io {

std::vector<FastaRecord> read_fasta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::io_error("cannot open for reading", path, util::Error::kNoOffset, errno);
  std::vector<FastaRecord> records;
  std::string line;
  char buf[1 << 16];
  auto flush_line = [&] {
    if (line.empty()) return;
    if (line[0] == '>') {
      records.push_back({line.substr(1), ""});
    } else {
      if (records.empty()) {
        std::fclose(f);
        throw util::parse_error("sequence before first header", path);
      }
      records.back().seq += line;
    }
    line.clear();
  };
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      if (buf[i] == '\n' || buf[i] == '\r') {
        flush_line();
      } else {
        line.push_back(buf[i]);
      }
    }
  }
  flush_line();
  std::fclose(f);
  return records;
}

void write_fasta(const std::string& path, const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
  if (line_width == 0) throw std::invalid_argument("fasta: line_width must be > 0");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw util::io_error("cannot open for writing", path, util::Error::kNoOffset, errno);
  for (const auto& rec : records) {
    std::fputc('>', f);
    std::fwrite(rec.id.data(), 1, rec.id.size(), f);
    std::fputc('\n', f);
    for (std::size_t pos = 0; pos < rec.seq.size(); pos += line_width) {
      const std::size_t n = std::min(line_width, rec.seq.size() - pos);
      std::fwrite(rec.seq.data() + pos, 1, n, f);
      std::fputc('\n', f);
    }
  }
  std::fclose(f);
}

void write_contigs_fasta(const std::string& path, const std::vector<std::string>& contigs,
                         const std::string& prefix) {
  std::vector<FastaRecord> records;
  records.reserve(contigs.size());
  for (std::size_t i = 0; i < contigs.size(); ++i) {
    records.push_back({prefix + "_" + std::to_string(i) + " len=" +
                           std::to_string(contigs[i].size()),
                       contigs[i]});
  }
  write_fasta(path, records);
}

}  // namespace metaprep::io
