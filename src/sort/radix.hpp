// Out-of-place LSD radix sort for (k-mer, read-ID) tuples.
//
// LocalSort (paper §3.4) sorts each thread's k-mer sub-range with a *serial*
// out-of-place radix sort — parallelism comes from the range partitioning
// step, not from the sort itself.  The paper sorts 8 bits per pass (256
// buckets), having found that the better temporal locality of 256 bucket
// counters beats the fewer passes of 16-bit digits; digit width is a
// parameter here so the ablation bench can reproduce that finding.
//
// Tuples are stored SoA (separate key and payload arrays): same 12 bytes per
// tuple as the paper's packed layout, but radix passes stream each array
// linearly.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace metaprep::sort {

/// Serial LSD radix sort of (key, value) pairs by key.
/// @p keys / @p vals are sorted in place; @p tmp_keys / @p tmp_vals must be
/// the same size and are used as the out-of-place buffer ("We reuse the send
/// buffer of KmerGen-Comm step for storing the sorted tuples").
/// @p key_bits limits the passes to the low key_bits bits (2k for k-mers);
/// @p digit_bits selects the bucket count (8 -> 256 buckets).
void radix_sort_kv64(std::span<std::uint64_t> keys, std::span<std::uint32_t> vals,
                     std::span<std::uint64_t> tmp_keys, std::span<std::uint32_t> tmp_vals,
                     int key_bits = 64, int digit_bits = 8);

/// Convenience wrapper that allocates scratch internally.
void radix_sort_kv64(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& vals,
                     int key_bits = 64, int digit_bits = 8);

/// 128-bit-key variant for 32 < k <= 63 (keys split into hi/lo words; the
/// paper's 63-mer runs use 16 radix passes).  Sorts by (hi, lo) numeric
/// order.
void radix_sort_kv128(std::span<std::uint64_t> keys_hi, std::span<std::uint64_t> keys_lo,
                      std::span<std::uint32_t> vals, std::span<std::uint64_t> tmp_hi,
                      std::span<std::uint64_t> tmp_lo, std::span<std::uint32_t> tmp_vals,
                      int key_bits = 128, int digit_bits = 8);

/// Baseline for the §4.2.2 comparison: LSD radix sort with 64-bit key AND
/// 64-bit payload (the NUMA-aware implementation of Polychroniou & Ross
/// "requires that both the key and payload be 64 bits").
void radix_sort_kv64x64(std::span<std::uint64_t> keys, std::span<std::uint64_t> vals,
                        std::span<std::uint64_t> tmp_keys, std::span<std::uint64_t> tmp_vals,
                        int key_bits = 64, int digit_bits = 8);

/// Check that keys are non-decreasing (test/bench helper).
bool is_sorted_keys(std::span<const std::uint64_t> keys);

}  // namespace metaprep::sort
