#include "sort/radix.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"

namespace metaprep::sort {

namespace {

void count_sort_metrics(std::size_t keys, int passes) {
  static thread_local obs::CounterHandle m_keys;
  static thread_local obs::CounterHandle m_passes;
  obs::MetricsRegistry& reg = obs::metrics();
  m_keys.of(reg, "sort.keys_sorted").add(keys);
  m_passes.of(reg, "sort.radix_passes").add(static_cast<std::uint64_t>(passes));
}

/// One LSD counting pass: stable-scatter (keys, vals) into (out_keys,
/// out_vals) by the digit at bit offset @p shift of digit_key(i).
template <typename Val, typename DigitFn>
void counting_pass(std::span<const std::uint64_t> keys, std::span<const Val> vals,
                   std::span<std::uint64_t> out_keys, std::span<Val> out_vals, int digit_bits,
                   const DigitFn& digit_of) {
  const std::size_t nbuckets = std::size_t{1} << digit_bits;
  std::vector<std::size_t> count(nbuckets, 0);
  const obs::MemCharge count_mem("sort", nbuckets * sizeof(std::size_t));
  for (std::size_t i = 0; i < keys.size(); ++i) ++count[digit_of(i)];
  std::size_t acc = 0;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const std::size_t c = count[b];
    count[b] = acc;
    acc += c;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t dst = count[digit_of(i)]++;
    out_keys[dst] = keys[i];
    out_vals[dst] = vals[i];
  }
}

int pass_count(int key_bits, int digit_bits) {
  if (digit_bits < 1 || digit_bits > 16) throw std::invalid_argument("radix: digit_bits in [1,16]");
  if (key_bits < 1) throw std::invalid_argument("radix: key_bits >= 1");
  return (key_bits + digit_bits - 1) / digit_bits;
}

template <typename Val>
void radix_sort_impl(std::span<std::uint64_t> keys, std::span<Val> vals,
                     std::span<std::uint64_t> tmp_keys, std::span<Val> tmp_vals, int key_bits,
                     int digit_bits) {
  if (keys.size() != vals.size() || tmp_keys.size() < keys.size() ||
      tmp_vals.size() < vals.size())
    throw std::invalid_argument("radix: buffer size mismatch");
  if (keys.size() <= 1) return;
  key_bits = std::min(key_bits, 64);
  const int passes = pass_count(key_bits, digit_bits);
  const std::uint64_t digit_mask = (std::uint64_t{1} << digit_bits) - 1;

  std::span<std::uint64_t> src_k = keys;
  std::span<Val> src_v = vals;
  std::span<std::uint64_t> dst_k = tmp_keys.subspan(0, keys.size());
  std::span<Val> dst_v = tmp_vals.subspan(0, vals.size());

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * digit_bits;
    counting_pass<Val>(src_k, src_v, dst_k, dst_v, digit_bits, [&](std::size_t i) {
      return static_cast<std::size_t>((src_k[i] >> shift) & digit_mask);
    });
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }
  // After an odd number of passes the sorted data lives in the scratch.
  if (passes % 2 == 1) {
    std::memcpy(keys.data(), src_k.data(), keys.size_bytes());
    std::memcpy(vals.data(), src_v.data(), vals.size_bytes());
  }
  count_sort_metrics(keys.size(), passes);
}

}  // namespace

void radix_sort_kv64(std::span<std::uint64_t> keys, std::span<std::uint32_t> vals,
                     std::span<std::uint64_t> tmp_keys, std::span<std::uint32_t> tmp_vals,
                     int key_bits, int digit_bits) {
  radix_sort_impl<std::uint32_t>(keys, vals, tmp_keys, tmp_vals, key_bits, digit_bits);
}

void radix_sort_kv64(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& vals,
                     int key_bits, int digit_bits) {
  std::vector<std::uint64_t> tk(keys.size());
  std::vector<std::uint32_t> tv(vals.size());
  const obs::MemCharge scratch_mem("sort", tk.size() * sizeof(std::uint64_t) +
                                               tv.size() * sizeof(std::uint32_t));
  radix_sort_kv64(keys, vals, tk, tv, key_bits, digit_bits);
}

void radix_sort_kv64x64(std::span<std::uint64_t> keys, std::span<std::uint64_t> vals,
                        std::span<std::uint64_t> tmp_keys, std::span<std::uint64_t> tmp_vals,
                        int key_bits, int digit_bits) {
  radix_sort_impl<std::uint64_t>(keys, vals, tmp_keys, tmp_vals, key_bits, digit_bits);
}

void radix_sort_kv128(std::span<std::uint64_t> keys_hi, std::span<std::uint64_t> keys_lo,
                      std::span<std::uint32_t> vals, std::span<std::uint64_t> tmp_hi,
                      std::span<std::uint64_t> tmp_lo, std::span<std::uint32_t> tmp_vals,
                      int key_bits, int digit_bits) {
  const std::size_t n = keys_hi.size();
  if (keys_lo.size() != n || vals.size() != n || tmp_hi.size() < n || tmp_lo.size() < n ||
      tmp_vals.size() < n)
    throw std::invalid_argument("radix128: buffer size mismatch");
  if (n <= 1) return;

  // LSD across the full 128-bit key: low-word digits first, then high-word
  // digits.  Each pass permutes all three arrays together.
  const int lo_bits = std::min(key_bits, 64);
  const int hi_bits = key_bits > 64 ? key_bits - 64 : 0;
  const std::uint64_t digit_mask = (std::uint64_t{1} << digit_bits) - 1;

  std::span<std::uint64_t> sh = keys_hi, sl = keys_lo;
  std::span<std::uint32_t> sv = vals;
  std::span<std::uint64_t> dh = tmp_hi.subspan(0, n), dl = tmp_lo.subspan(0, n);
  std::span<std::uint32_t> dv = tmp_vals.subspan(0, n);

  int total_passes = 0;
  auto do_passes = [&](bool use_lo, int bits) {
    const int passes = bits == 0 ? 0 : (bits + digit_bits - 1) / digit_bits;
    for (int pass = 0; pass < passes; ++pass) {
      const int shift = pass * digit_bits;
      const std::size_t nbuckets = std::size_t{1} << digit_bits;
      std::vector<std::size_t> count(nbuckets, 0);
      const obs::MemCharge count_mem("sort", nbuckets * sizeof(std::size_t));
      auto digit_of = [&](std::size_t i) {
        const std::uint64_t w = use_lo ? sl[i] : sh[i];
        return static_cast<std::size_t>((w >> shift) & digit_mask);
      };
      for (std::size_t i = 0; i < n; ++i) ++count[digit_of(i)];
      std::size_t acc = 0;
      for (std::size_t b = 0; b < nbuckets; ++b) {
        const std::size_t c = count[b];
        count[b] = acc;
        acc += c;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t dst = count[digit_of(i)]++;
        dh[dst] = sh[i];
        dl[dst] = sl[i];
        dv[dst] = sv[i];
      }
      std::swap(sh, dh);
      std::swap(sl, dl);
      std::swap(sv, dv);
      ++total_passes;
    }
  };
  do_passes(/*use_lo=*/true, lo_bits);
  do_passes(/*use_lo=*/false, hi_bits);

  if (total_passes % 2 == 1) {
    std::memcpy(keys_hi.data(), sh.data(), n * sizeof(std::uint64_t));
    std::memcpy(keys_lo.data(), sl.data(), n * sizeof(std::uint64_t));
    std::memcpy(vals.data(), sv.data(), n * sizeof(std::uint32_t));
  }
  count_sort_metrics(n, total_passes);
}

bool is_sorted_keys(std::span<const std::uint64_t> keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) return false;
  }
  return true;
}

}  // namespace metaprep::sort
