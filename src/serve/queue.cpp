#include "serve/queue.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <utility>

#include "core/manifest.hpp"
#include "core/memory_model.hpp"
#include "util/error.hpp"

namespace metaprep::serve {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

namespace {

[[nodiscard]] bool terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Per-task memory prediction for admission, mirroring run_metaprep's own
/// pass derivation so the admission decision matches what the run would do.
[[nodiscard]] std::uint64_t predict_job_bytes(const core::DatasetIndex& index,
                                              const core::MetaprepConfig& config) {
  core::MemoryModelInput mm;
  mm.total_tuples = index.mer_hist.total();
  mm.total_reads = index.total_reads;
  mm.num_chunks = index.part.num_chunks();
  mm.max_chunk_bytes = index.max_chunk_bytes();
  mm.m = index.mer_hist.m;
  mm.num_ranks = config.num_ranks;
  mm.threads_per_rank = config.threads_per_rank;
  mm.tuple_bytes = config.k <= 32 ? 12 : 20;
  int S = config.num_passes;
  if (S == 0) {
    S = core::min_passes_for_budget(mm, config.memory_budget_bytes);
    if (S == 0)
      throw util::config_error("submit: job's own memory budget fits no pass count");
  }
  mm.num_passes = S;
  return core::estimate_memory(mm).total;
}

}  // namespace

JobQueue::JobQueue(JobQueueOptions options) : options_(std::move(options)) {
  if (options_.job_dir.empty()) options_.job_dir = ".";
  std::filesystem::create_directories(options_.job_dir);
  worker_ = std::thread([this] { worker_loop(); });
}

JobQueue::~JobQueue() { shutdown(); }

std::uint64_t JobQueue::submit(JobSpec spec) {
  // Load outside the lock: index parse is the slow part, and it validates
  // the path before the job can occupy a queue slot.
  auto index = std::make_shared<const core::DatasetIndex>(core::load_index(spec.index_path));
  if (spec.config.k != index->k) spec.config.k = index->k;

  // Thread budget: clamp T so P*T fits the shared allowance.
  if (options_.max_threads > 0) {
    if (spec.config.num_ranks > options_.max_threads) {
      throw util::config_error(
          "submit: num_ranks " + std::to_string(spec.config.num_ranks) +
          " exceeds the daemon thread budget " + std::to_string(options_.max_threads));
    }
    const int max_t = std::max(1, options_.max_threads / spec.config.num_ranks);
    spec.config.threads_per_rank = std::min(spec.config.threads_per_rank, max_t);
  }

  // Memory admission (paper §3.7): predicted per-task bytes vs the budget.
  const std::uint64_t predicted = predict_job_bytes(*index, spec.config);
  if (options_.mem_budget_bytes > 0 && predicted > options_.mem_budget_bytes) {
    std::ostringstream msg;
    msg << "submit: predicted " << predicted << " bytes/task exceeds the daemon budget "
        << options_.mem_budget_bytes << " (increase --passes or lower --ranks/--threads)";
    throw util::config_error(msg.str());
  }

  spec.config.buffer_pool =
      options_.buffer_pool != nullptr ? options_.buffer_pool : &util::BufferPool::global();

  util::MutexLock lock(mutex_);
  if (stop_) throw util::config_error("submit: queue is shut down");
  const std::uint64_t id = next_id_++;
  // Per-job observability artifacts, scoped by job id unless the spec names
  // its own paths.
  if (spec.config.trace_out.empty()) {
    spec.config.trace_out = options_.job_dir + "/job-" + std::to_string(id) + ".trace.json";
  }
  if (spec.config.metrics_out.empty()) {
    spec.config.metrics_out =
        options_.job_dir + "/job-" + std::to_string(id) + ".metrics.jsonl";
  }

  Job job;
  job.info.id = id;
  job.info.state = JobState::kQueued;
  job.info.priority = spec.priority;
  job.info.index_path = spec.index_path;
  job.info.predicted_bytes = predicted;
  job.info.trace_out = spec.config.trace_out;
  job.info.metrics_out = spec.config.metrics_out;
  job.index = std::move(index);
  job.spec = std::move(spec);
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  cv_work_.notify_one();
  return id;
}

JobInfo JobQueue::status(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw util::config_error("status: unknown job " + std::to_string(id));
  return it->second.info;
}

std::vector<JobInfo> JobQueue::list() const {
  util::MutexLock lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job.info);
  return out;
}

bool JobQueue::cancel(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = it->second;
  if (terminal(job.info.state)) return false;
  if (job.info.state == JobState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    job.info.state = JobState::kCancelled;
    job.info.error = "cancelled while queued";
    job.index.reset();
    cv_done_.notify_all();
    return true;
  }
  // Running: flip the session token; the worker marks the terminal state
  // when the pipeline unwinds.
  if (job.session != nullptr) job.session->cancel();
  return true;
}

bool JobQueue::wait(std::uint64_t id, double timeout_seconds) const {
  util::MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw util::config_error("wait: unknown job " + std::to_string(id));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  while (!terminal(jobs_.at(id).info.state)) {
    if (cv_done_.wait_until(mutex_, lock, deadline) == std::cv_status::timeout)
      return terminal(jobs_.at(id).info.state);
  }
  return true;
}

void JobQueue::pause() {
  util::MutexLock lock(mutex_);
  paused_ = true;
}

void JobQueue::resume() {
  {
    util::MutexLock lock(mutex_);
    paused_ = false;
  }
  cv_work_.notify_one();
}

bool JobQueue::paused() const {
  util::MutexLock lock(mutex_);
  return paused_;
}

void JobQueue::shutdown() {
  {
    util::MutexLock lock(mutex_);
    if (stop_) return;
    stop_ = true;
    for (const std::uint64_t id : queue_) {
      Job& job = jobs_.at(id);
      job.info.state = JobState::kCancelled;
      job.info.error = "cancelled at shutdown";
      job.index.reset();
    }
    queue_.clear();
    for (auto& [id, job] : jobs_) {
      if (job.session != nullptr) job.session->cancel();
    }
    cv_done_.notify_all();
  }
  cv_work_.notify_one();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t JobQueue::pick_next_locked() const {
  std::uint64_t best = 0;
  int best_priority = 0;
  for (const std::uint64_t id : queue_) {
    if (best == 0 || jobs_.at(id).info.priority > best_priority) {
      best = id;
      best_priority = jobs_.at(id).info.priority;
    }
  }
  return best;
}

void JobQueue::worker_loop() {
  for (;;) {
    std::uint64_t id = 0;
    std::shared_ptr<const core::DatasetIndex> index;
    core::MetaprepConfig config;
    PipelineSession session;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && (paused_ || queue_.empty())) cv_work_.wait(mutex_, lock);
      if (stop_) return;
      id = pick_next_locked();
      queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
      Job& job = jobs_.at(id);
      job.info.state = JobState::kRunning;
      job.session = &session;
      index = job.index;
      config = job.spec.config;
    }
    JobState final_state = JobState::kDone;
    std::string error;
    core::PipelineResult result;
    try {
      if (config.write_output && !config.output_dir.empty())
        std::filesystem::create_directories(config.output_dir);
      result = session.run(*index, config);
      // Same sidecar a direct `metaprep_cli run` leaves next to the bins.
      if (config.write_output) {
        save_manifest(build_manifest(*index, result, config.parse_mode),
                      config.output_dir + "/manifest.tsv");
      }
    } catch (const util::Error& e) {
      final_state = e.category() == util::ErrorCategory::kCancelled ? JobState::kCancelled
                                                                    : JobState::kFailed;
      error = e.what();
    } catch (const std::exception& e) {
      final_state = JobState::kFailed;
      error = e.what();
    }
    {
      util::MutexLock lock(mutex_);
      Job& job = jobs_.at(id);
      job.session = nullptr;
      job.index.reset();
      job.info.state = final_state;
      job.info.error = std::move(error);
      if (final_state == JobState::kDone) {
        job.info.has_result = true;
        job.info.num_reads = result.num_reads;
        job.info.num_components = result.num_components;
        job.info.largest_size = result.largest_size;
        job.info.largest_fraction = result.largest_fraction;
        job.info.passes_used = result.passes_used;
        job.info.output_files = std::move(result.output_files);
        job.info.bin_manifest_path = std::move(result.bin_manifest_path);
      }
      cv_done_.notify_all();
    }
  }
}

}  // namespace metaprep::serve
