#include "serve/session.hpp"

#include "util/error.hpp"

namespace metaprep::serve {

core::PipelineResult PipelineSession::run(const core::DatasetIndex& index,
                                          core::MetaprepConfig config) {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    throw util::config_error(
        "PipelineSession::run: session already running (one run at a time per session)");
  }
  config.trace_session = &trace_;
  config.metrics_registry = &metrics_;
  config.mem_registry = &mem_;
  config.cancel_token = &cancel_;
  try {
    core::PipelineResult result = core::run_metaprep(index, config);
    running_.store(false, std::memory_order_release);
    return result;
  } catch (...) {
    // Best-effort trace flush on the failure path too, so a cancelled job's
    // partial trace is still on disk for inspection (no-op without an armed
    // flush path; flush() itself never throws out of here).
    try {
      trace_.flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch): unwind must win
    }
    running_.store(false, std::memory_order_release);
    throw;
  }
}

}  // namespace metaprep::serve
