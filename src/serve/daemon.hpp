// metaprepd: the job-queue daemon's accept loop.
//
// One blocking accept loop over a UnixListener; each accepted connection
// carries exactly one request line and gets exactly one response line (see
// serve/proto.hpp).  Requests are short — the actual pipeline work runs on
// the JobQueue's worker thread — so the single-threaded control plane never
// blocks a client behind a running job.  "shutdown" drains the queue
// (cancelling the running job cooperatively), answers, and returns from
// serve(); the listener's destructor unlinks the socket file, which the
// tier-1 smoke leg checks for leaks.
#pragma once

#include <cstdint>
#include <string>

#include "serve/queue.hpp"
#include "util/socket.hpp"

namespace metaprep::serve {

struct DaemonOptions {
  std::string socket_path;            ///< AF_UNIX path to bind
  std::uint64_t mem_budget_bytes = 0; ///< admission budget (0 = unlimited)
  int max_threads = 0;                ///< shared P*T allowance (0 = unlimited)
  std::string job_dir;                ///< per-job artifacts; default: socket's directory
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);

  /// Accept-and-respond until a shutdown request arrives.  Throws
  /// util::io_error if the socket cannot be bound (e.g. a live daemon
  /// already owns the path).
  void serve();

  /// Handle one request line, returning the response line.  Public so unit
  /// tests can exercise the protocol without a socket.
  [[nodiscard]] std::string handle_request(const std::string& line);

  [[nodiscard]] JobQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const std::string& socket_path() const noexcept { return options_.socket_path; }

 private:
  DaemonOptions options_;
  JobQueue queue_;
  bool shutdown_requested_ = false;
};

}  // namespace metaprep::serve
