// Multi-tenant job queue for metaprepd.
//
// Jobs are submitted with a saved index path plus a MetaprepConfig and run
// one at a time on a dedicated worker thread, ordered by priority (higher
// first) then FIFO within a priority.  Every job runs inside its own
// PipelineSession, so its trace/metrics/memory state is disjoint from every
// other job's and lands in per-job files scoped by job id; all jobs lease
// tuple buffers from one shared BufferPool so consecutive jobs recycle each
// other's allocations.
//
// Admission control (paper §3.7): at submit time the per-task memory model
// is evaluated for the job's configuration; when a budget is configured and
// the prediction exceeds it, the job is rejected with a typed config_error
// naming both numbers — the client can resubmit with more passes.  A thread
// budget clamps threads_per_rank so P*T never exceeds the configured core
// allowance shared across jobs.
//
// Cancellation: a queued job is unlinked immediately; a running job's
// session token is flipped and the pipeline unwinds cooperatively at the
// next pass/chunk boundary, returning every pool lease.  The worker thread
// survives cancelled and failed jobs alike.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/indices.hpp"
#include "core/pipeline.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/session.hpp"
#include "util/buffer_pool.hpp"
#include "util/sync.hpp"

namespace metaprep::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
[[nodiscard]] const char* to_string(JobState state) noexcept;

struct JobSpec {
  std::string index_path;       ///< saved core::save_index artifact
  core::MetaprepConfig config;  ///< session fields are overwritten per job
  int priority = 0;             ///< higher runs first; FIFO within a level
};

/// Snapshot of one job's lifecycle, safe to serialize after the lock drops.
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  int priority = 0;
  std::string index_path;
  std::string error;  ///< failure / cancellation detail (terminal states)
  std::uint64_t predicted_bytes = 0;  ///< admission-time per-task estimate
  std::string trace_out;              ///< per-job Chrome trace path
  std::string metrics_out;            ///< per-job metrics JSONL path

  bool has_result = false;  ///< kDone only
  std::uint32_t num_reads = 0;
  std::uint64_t num_components = 0;
  std::uint64_t largest_size = 0;
  double largest_fraction = 0.0;
  int passes_used = 0;
  std::vector<std::string> output_files;
  std::string bin_manifest_path;
};

struct JobQueueOptions {
  /// Per-task memory-model budget for admission (0 = no admission limit).
  std::uint64_t mem_budget_bytes = 0;
  /// Total simulated-core allowance shared by every job: threads_per_rank
  /// is clamped so P*T <= max_threads (0 = no limit).  A job whose rank
  /// count alone exceeds the allowance is rejected.
  int max_threads = 0;
  /// Directory for per-job trace/metrics artifacts (created on demand).
  std::string job_dir = ".";
  /// Pool every job leases from; null = the process-global pool.
  util::BufferPool* buffer_pool = nullptr;
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options);
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;
  ~JobQueue();

  /// Admit and enqueue a job; returns its id.  Throws util::Error when the
  /// index is unreadable, the thread budget cannot fit the rank count, or
  /// the memory-model prediction exceeds the configured budget.
  std::uint64_t submit(JobSpec spec);

  /// Snapshot a job's state.  Throws config_error for an unknown id.
  [[nodiscard]] JobInfo status(std::uint64_t id) const;
  /// Snapshot every job, id-ascending.
  [[nodiscard]] std::vector<JobInfo> list() const;

  /// Cancel a job: queued -> kCancelled immediately; running -> token flip,
  /// state turns kCancelled when the pipeline unwinds.  Returns false if
  /// the job is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state (or timeout).  Returns
  /// true if terminal.  Throws for an unknown id.
  bool wait(std::uint64_t id, double timeout_seconds) const;

  /// Pause/resume dispatch of *queued* jobs (the running job is not
  /// touched).  Lets tests and operators stage deterministic queues.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const;

  /// Cancel the running job, mark every queued job cancelled, and join the
  /// worker.  Idempotent; the destructor calls it.
  void shutdown();

  /// This queue's capability, for lock-order declarations in other layers
  /// (see util/sync.hpp).
  [[nodiscard]] util::Mutex& mu() const RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  struct Job {
    JobSpec spec;
    JobInfo info;
    std::shared_ptr<const core::DatasetIndex> index;
    PipelineSession* session = nullptr;  ///< non-null only while running
  };

  void worker_loop();
  [[nodiscard]] std::uint64_t pick_next_locked() const REQUIRES(mutex_);  ///< 0 = none

  JobQueueOptions options_;
  /// Outermost lock in the declared global order (see util/sync.hpp): while
  /// a job runs, the worker publishes into the session registries and leases
  /// from the shared BufferPool, so those capabilities are only ever taken
  /// after (never around) this one.
  mutable util::Mutex mutex_ ACQUIRED_BEFORE(obs::TraceSession::global().mu(),
                                             obs::MetricsRegistry::global().mu(),
                                             obs::MemRegistry::global().mu(),
                                             util::BufferPool::global().mu());
  util::CondVar cv_work_;          ///< submit/resume/shutdown -> worker
  mutable util::CondVar cv_done_;  ///< job reached terminal state
  std::map<std::uint64_t, Job> jobs_ GUARDED_BY(mutex_);
  /// Submit order; priority applied at pick.
  std::deque<std::uint64_t> queue_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  bool paused_ GUARDED_BY(mutex_) = false;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::thread worker_;
};

}  // namespace metaprep::serve
