#include "serve/daemon.hpp"

#include <filesystem>

#include "serve/proto.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace metaprep::serve {

namespace {

[[nodiscard]] JobQueueOptions queue_options(const DaemonOptions& options) {
  JobQueueOptions qo;
  qo.mem_budget_bytes = options.mem_budget_bytes;
  qo.max_threads = options.max_threads;
  qo.job_dir = options.job_dir;
  if (qo.job_dir.empty()) {
    const std::filesystem::path parent =
        std::filesystem::path(options.socket_path).parent_path();
    qo.job_dir = parent.empty() ? "." : parent.string();
  }
  return qo;
}

[[nodiscard]] std::uint64_t job_id_of(const util::JsonValue& req, const char* cmd) {
  const util::JsonValue* id = req.find("job");
  if (id == nullptr)
    throw util::config_error(std::string(cmd) + ": missing required field 'job'");
  return id->as_uint();
}

[[nodiscard]] std::string ok_response(const std::string& cmd) {
  JsonLineWriter w;
  w.field("ok", true);
  w.field("cmd", cmd);
  return w.finish();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), queue_(queue_options(options_)) {}

std::string Daemon::handle_request(const std::string& line) {
  std::string cmd;
  try {
    const util::JsonValue req = util::parse_json(line);
    const util::JsonValue* cmd_field = req.find("cmd");
    if (cmd_field == nullptr)
      throw util::config_error("request is missing the 'cmd' field");
    cmd = cmd_field->as_string();

    if (cmd == "ping") return ok_response(cmd);
    if (cmd == "submit") {
      const std::uint64_t id = queue_.submit(parse_submit(line));
      return job_to_json(queue_.status(id), /*with_manifest=*/false);
    }
    if (cmd == "status") {
      return job_to_json(queue_.status(job_id_of(req, "status")), /*with_manifest=*/false);
    }
    if (cmd == "fetch") {
      const JobInfo info = queue_.status(job_id_of(req, "fetch"));
      if (info.state != JobState::kDone)
        throw util::config_error("fetch: job " + std::to_string(info.id) + " is " +
                                 to_string(info.state) + ", not done");
      return job_to_json(info, /*with_manifest=*/true);
    }
    if (cmd == "cancel") {
      const std::uint64_t id = job_id_of(req, "cancel");
      JsonLineWriter w;
      w.field("ok", true);
      w.field("cmd", cmd);
      w.field("job", id);
      w.field("cancelled", queue_.cancel(id));
      return w.finish();
    }
    if (cmd == "list") {
      std::string jobs = "[";
      bool first = true;
      for (const JobInfo& info : queue_.list()) {
        if (!first) jobs += ',';
        first = false;
        jobs += job_to_json(info, /*with_manifest=*/false);
      }
      jobs += ']';
      JsonLineWriter w;
      w.field("ok", true);
      w.field("cmd", cmd);
      w.field_raw("jobs", jobs);
      return w.finish();
    }
    if (cmd == "pause") {
      queue_.pause();
      return ok_response(cmd);
    }
    if (cmd == "resume") {
      queue_.resume();
      return ok_response(cmd);
    }
    if (cmd == "shutdown") {
      shutdown_requested_ = true;
      return ok_response(cmd);
    }
    throw util::config_error("unknown cmd '" + cmd + "'");
  } catch (const std::exception& e) {
    return error_response(cmd, e.what());
  }
}

void Daemon::serve() {
  util::UnixListener listener(options_.socket_path);
  LOG_INFO("metaprepd listening on " << options_.socket_path);
  while (!shutdown_requested_) {
    util::SocketConn conn = listener.accept();
    std::string line;
    try {
      if (!conn.recv_line(line)) continue;  // client connected and went away
      conn.send_line(handle_request(line));
    } catch (const util::Error& e) {
      // A broken client connection must not take the daemon down.
      LOG_WARN("metaprepd: client connection error: " << e.what());
    }
  }
  // shutdown() cancels the running job and joins the worker before the
  // listener unlinks the socket, so a post-shutdown path check sees neither
  // a live process artifact nor a stale socket file.
  queue_.shutdown();
}

}  // namespace metaprep::serve
