#include "serve/proto.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/error.hpp"
#include "util/json.hpp"

namespace metaprep::serve {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonLineWriter::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

void JsonLineWriter::field(const std::string& key, const std::string& value) {
  comma();
  out_ += '"' + json_escape(key) + "\":\"" + json_escape(value) + '"';
}

void JsonLineWriter::field_raw(const std::string& key, const std::string& raw) {
  comma();
  out_ += '"' + json_escape(key) + "\":" + raw;
}

void JsonLineWriter::field(const std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  field_raw(key, buf);
}

void JsonLineWriter::field(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  field_raw(key, buf);
}

void JsonLineWriter::field(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  field_raw(key, buf);
}

void JsonLineWriter::field(const std::string& key, bool value) {
  field_raw(key, value ? "true" : "false");
}

void JsonLineWriter::field_strings(const std::string& key,
                                   const std::vector<std::string>& values) {
  std::string arr = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) arr += ',';
    arr += '"' + json_escape(values[i]) + '"';
  }
  arr += ']';
  field_raw(key, arr);
}

std::string JsonLineWriter::finish() {
  out_ += '}';
  return std::move(out_);
}

std::string job_to_json(const JobInfo& info, bool with_manifest) {
  JsonLineWriter w;
  w.field("ok", true);
  w.field("job", info.id);
  w.field("state", std::string(to_string(info.state)));
  w.field("priority", info.priority);
  w.field("index", info.index_path);
  w.field("predicted_bytes", info.predicted_bytes);
  w.field("trace_out", info.trace_out);
  w.field("metrics_out", info.metrics_out);
  if (!info.error.empty()) w.field("error_detail", info.error);
  if (info.has_result) {
    w.field("num_reads", static_cast<std::uint64_t>(info.num_reads));
    w.field("num_components", info.num_components);
    w.field("largest_size", info.largest_size);
    w.field("largest_fraction", info.largest_fraction);
    w.field("passes_used", info.passes_used);
    w.field("num_output_files", static_cast<std::uint64_t>(info.output_files.size()));
    if (!info.bin_manifest_path.empty())
      w.field("bin_manifest", info.bin_manifest_path);
    if (with_manifest) w.field_strings("output_files", info.output_files);
  }
  return w.finish();
}

JobSpec parse_submit(const std::string& request_line) {
  const util::JsonValue req = util::parse_json(request_line);
  JobSpec spec;
  const util::JsonValue* index = req.find("index");
  if (index == nullptr)
    throw util::config_error("submit: missing required field 'index'");
  spec.index_path = index->as_string();

  core::MetaprepConfig& cfg = spec.config;
  if (const auto* v = req.find("ranks")) cfg.num_ranks = static_cast<int>(v->as_int());
  if (const auto* v = req.find("threads"))
    cfg.threads_per_rank = static_cast<int>(v->as_int());
  if (const auto* v = req.find("passes")) cfg.num_passes = static_cast<int>(v->as_int());
  if (const auto* v = req.find("priority")) spec.priority = static_cast<int>(v->as_int());
  if (const auto* v = req.find("out")) cfg.output_dir = v->as_string();
  if (const auto* v = req.find("write_output")) cfg.write_output = v->as_bool();
  if (const auto* v = req.find("output_bins")) cfg.output_bins = static_cast<int>(v->as_int());
  if (const auto* v = req.find("filter_min"))
    cfg.filter.min_freq = static_cast<std::uint32_t>(v->as_uint());
  if (const auto* v = req.find("filter_max"))
    cfg.filter.max_freq = static_cast<std::uint32_t>(v->as_uint());
  if (const auto* v = req.find("pipeline_mode")) {
    const std::string& mode = v->as_string();
    if (mode == "barrier") {
      cfg.pipeline_mode = core::PipelineMode::kBarrier;
    } else if (mode == "overlap") {
      cfg.pipeline_mode = core::PipelineMode::kOverlap;
    } else {
      throw util::config_error("submit: pipeline_mode must be 'barrier' or 'overlap' (got '" +
                               mode + "')");
    }
  }
  return spec;
}

std::string error_response(const std::string& cmd, const std::string& error) {
  JsonLineWriter w;
  w.field("ok", false);
  if (!cmd.empty()) w.field("cmd", cmd);
  w.field("error", error);
  return w.finish();
}

}  // namespace metaprep::serve
