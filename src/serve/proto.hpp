// metaprepd wire protocol: one JSON object per line, each direction.
//
// A client dials the daemon's AF_UNIX socket, sends exactly one request
// line, reads exactly one response line, and closes.  Requests carry a
// "cmd" field; responses always carry "ok" (true/false) and echo "cmd",
// with "error" set when ok is false.  The formats are documented in
// DESIGN.md ("Service layer"); the summary:
//
//   {"cmd":"ping"}
//   {"cmd":"submit","index":PATH, optional: "ranks","threads","passes",
//        "priority","out",  "write_output","output_bins",
//        "pipeline_mode":"barrier"|"overlap", "filter_min","filter_max"}
//       -> {"ok":true,"job":ID,"predicted_bytes":N,...}
//   {"cmd":"status","job":ID}  -> state + result summary when done
//   {"cmd":"cancel","job":ID}
//   {"cmd":"fetch","job":ID}   -> output partition manifest (files, bins)
//   {"cmd":"list"} / {"cmd":"pause"} / {"cmd":"resume"} / {"cmd":"shutdown"}
//
// Parsing reuses util/json.hpp (the same trusted-subset reader the offline
// tools use); serialization is a small escape-correct writer here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/queue.hpp"

namespace metaprep::serve {

/// JSON string escaping for the writer side (quotes, backslash, control
/// bytes; everything else passes through).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Incremental single-line JSON object writer: {"k":v,...}.
class JsonLineWriter {
 public:
  JsonLineWriter() : out_("{") {}
  void field(const std::string& key, const std::string& value);
  void field_raw(const std::string& key, const std::string& raw);  ///< pre-encoded
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, int value) { field(key, static_cast<std::int64_t>(value)); }
  void field(const std::string& key, double value);
  void field(const std::string& key, bool value);
  void field_strings(const std::string& key, const std::vector<std::string>& values);
  [[nodiscard]] std::string finish();

 private:
  void comma();
  std::string out_;
  bool first_ = true;
};

/// Serialize one job snapshot (the "status" response body, also embedded in
/// "submit" and "list" responses).  @p with_manifest additionally includes
/// the output file list (the "fetch" response).
[[nodiscard]] std::string job_to_json(const JobInfo& info, bool with_manifest);

/// Build a JobSpec from a parsed "submit" request object.  Throws
/// util::Error on missing/invalid fields.
[[nodiscard]] JobSpec parse_submit(const std::string& request_line);

/// Uniform error response: {"ok":false,"cmd":...,"error":...}.
[[nodiscard]] std::string error_response(const std::string& cmd, const std::string& error);

}  // namespace metaprep::serve
