// PipelineSession: a re-entrant, cancellable wrapper around run_metaprep.
//
// Before this layer, one run owned the process: the global TraceSession /
// MetricsRegistry / MemRegistry were cleared and enabled by whichever
// run_metaprep got there first, and nothing could stop a run short of
// killing the process.  A PipelineSession owns private instances of all
// three plus a CancelToken, points MetaprepConfig's session fields at them,
// and lets run_metaprep install them as thread-local overrides for the
// duration of the run (propagated to ThreadTeam workers and mpsim rank
// threads by util::SessionContext).  Two sessions running concurrently in
// one process therefore keep fully disjoint observability state and can be
// cancelled independently.
//
// Cancellation is cooperative: cancel() flips the token, the pipeline polls
// it at pass/chunk boundaries, and the run unwinds with a typed
// util::Error (ErrorCategory::kCancelled) after returning every BufferPool
// lease.  cancel() is safe from any thread, including while run() is
// executing on another.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/pipeline.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"

namespace metaprep::serve {

class PipelineSession {
 public:
  PipelineSession() = default;
  PipelineSession(const PipelineSession&) = delete;
  PipelineSession& operator=(const PipelineSession&) = delete;

  /// Run the pipeline with this session's observability instances and
  /// cancel token installed.  The config is taken by value: the session
  /// fields (trace_session, metrics_registry, mem_registry, cancel_token)
  /// are overwritten; everything else — including buffer_pool, which the
  /// daemon points at a shared pool — passes through untouched.  Throws
  /// util::Error (kCancelled) if cancel() was observed mid-run, and
  /// config_error if this session is already running (one run at a time
  /// per session; make another session for a concurrent run).
  core::PipelineResult run(const core::DatasetIndex& index, core::MetaprepConfig config);

  /// Request cooperative cancellation of the current (or next) run.
  void cancel() noexcept { cancel_.cancel(); }
  /// Re-arm after a cancelled run so the session can be reused.
  void reset_cancel() noexcept { cancel_.reset(); }
  [[nodiscard]] bool cancel_requested() const noexcept { return cancel_.cancelled(); }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // The session-owned sinks, readable after (or during) a run.
  [[nodiscard]] obs::TraceSession& trace() noexcept { return trace_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] obs::MemRegistry& mem() noexcept { return mem_; }
  [[nodiscard]] util::CancelToken& cancel_token() noexcept { return cancel_; }

 private:
  obs::TraceSession trace_;
  obs::MetricsRegistry metrics_;
  obs::MemRegistry mem_;
  util::CancelToken cancel_;
  std::atomic<bool> running_{false};
};

}  // namespace metaprep::serve
