#include "assembler/minihit.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "assembler/dbg.hpp"
#include "assembler/kmer_count.hpp"
#include "io/fastq.hpp"
#include "util/timer.hpp"

namespace metaprep::assembler {

namespace {

/// One assembly round at a single k: count reads (+ carried-in contigs),
/// build the solid-k-mer graph, clip tips, extract contigs.
template <typename K>
std::vector<std::string> assemble_round(
    const std::function<void(BasicKmerCountTable<K>&)>& feed_reads,
    const std::vector<std::string>& carried_contigs, int k, const AssemblyOptions& options,
    std::uint64_t* distinct_out, std::uint64_t* solid_out) {
  BasicKmerCountTable<K> counts(k);
  feed_reads(counts);
  // Contigs from the previous round enter with weight = min_kmer_count so
  // the solid filter cannot erase already-assembled sequence.
  for (const auto& c : carried_contigs) {
    counts.add_read_weighted(c, options.min_kmer_count);
  }
  if (distinct_out != nullptr) *distinct_out = counts.distinct();
  BasicDeBruijnGraph<K> graph(counts, options.min_kmer_count);
  if (options.tip_clip_bases > 0) graph.remove_tips(options.tip_clip_bases);
  if (options.bubble_pop_bases > 0) graph.pop_bubbles(options.bubble_pop_bases);
  if (solid_out != nullptr) *solid_out = graph.num_live_vertices();
  return graph.extract_contigs(options.min_contig_len);
}

/// Read feeder abstraction shared by file and in-memory entry points: calls
/// consume(seq) for every read; the template lets one feeder serve both
/// k-mer widths.
using ReadConsumer = std::function<void(std::string_view)>;
using ReadFeeder = std::function<void(const ReadConsumer&)>;

template <typename K>
AssemblyResult assemble_impl(const ReadFeeder& feed, std::uint64_t reads_in,
                             const AssemblyOptions& options, const std::vector<int>& ks) {
  util::WallTimer timer;
  AssemblyResult result;
  result.reads_in = reads_in;

  std::vector<std::string> contigs;
  for (int k : ks) {
    auto feed_counts = [&feed](BasicKmerCountTable<K>& counts) {
      feed([&counts](std::string_view seq) { counts.add_read(seq); });
    };
    contigs = assemble_round<K>(feed_counts, contigs, k, options, &result.distinct_kmers,
                                &result.solid_kmers);
  }
  result.contigs = std::move(contigs);
  result.stats = contig_stats(result.contigs);
  result.seconds = timer.seconds();
  return result;
}

AssemblyResult assemble_dispatch(const ReadFeeder& feed, std::uint64_t reads_in,
                                 const AssemblyOptions& options) {
  std::vector<int> ks = options.k_list;
  if (ks.empty()) ks.push_back(options.k);
  const int max_k = *std::max_element(ks.begin(), ks.end());
  const int min_k = *std::min_element(ks.begin(), ks.end());
  if (min_k < 1 || max_k > kmer::kMaxK128)
    throw std::invalid_argument("assemble: k values must be in [1, 63]");
  // One representation serves the whole k-list: the 128-bit path also
  // handles small k, so any list containing k > 32 runs entirely wide.
  if (max_k <= kmer::kMaxK64) {
    return assemble_impl<std::uint64_t>(feed, reads_in, options, ks);
  }
  return assemble_impl<kmer::Kmer128>(feed, reads_in, options, ks);
}

}  // namespace

AssemblyResult assemble_fastq(const std::vector<std::string>& files,
                              const AssemblyOptions& options) {
  std::uint64_t reads = 0;
  auto feed = [&files, &reads](const ReadConsumer& consume) {
    reads = 0;
    for (const auto& path : files) {
      io::FastqReader reader(path);
      io::FastqRecord rec;
      while (reader.next(rec)) {
        consume(rec.seq);
        ++reads;
      }
    }
  };
  // `reads` is populated by the first feed invocation inside assemble.
  AssemblyResult result = assemble_dispatch(feed, 0, options);
  result.reads_in = reads;
  return result;
}

AssemblyResult assemble_reads(const std::vector<std::string>& reads,
                              const AssemblyOptions& options) {
  auto feed = [&reads](const ReadConsumer& consume) {
    for (const auto& r : reads) consume(r);
  };
  return assemble_dispatch(feed, reads.size(), options);
}

}  // namespace metaprep::assembler
