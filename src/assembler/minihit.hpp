// MiniHit: a from-scratch single-k de Bruijn graph assembler.
//
// Substitute for MEGAHIT in the paper's §4.4 experiments (Tables 8 and 9).
// The properties those experiments rely on are: (a) assembly time grows
// with input size, so partitioning the reads and assembling the largest
// component separately is faster; and (b) output quality (contig count,
// total bp, max contig, N50) is comparable when the partition keeps
// genome-coherent reads together, and degrades when aggressive filtering
// severs them.  Any correct dBG assembler exhibits both; MiniHit is the
// minimal one (count -> solid-kmer graph -> unique-extension contigs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/stats.hpp"

namespace metaprep::assembler {

struct AssemblyOptions {
  int k = 27;
  std::uint32_t min_kmer_count = 2;  ///< solid-k-mer threshold (error filter)
  std::size_t min_contig_len = 100;  ///< drop shorter contigs from output
  /// Tip clipping: remove dangling non-branching paths shorter than this
  /// many bases before contig extraction (0 = disabled).  MEGAHIT clips
  /// tips of up to 2k bases by default; sequencing errors near read ends
  /// are the usual cause.
  std::size_t tip_clip_bases = 0;
  /// Bubble popping: merge two-arm bubbles whose arms are shorter than this
  /// many bases, keeping the higher-coverage arm (0 = disabled).  Mid-read
  /// sequencing errors and strain SNPs are the usual cause.
  std::size_t bubble_pop_bases = 0;
  /// Multi-k iteration, the defining MEGAHIT strategy ("assemblers such as
  /// MEGAHIT use multiple k-mer lengths", paper §2): when non-empty, the
  /// assembly runs one round per k (ascending), feeding each round's contigs
  /// into the next round's graph; `k` is ignored.  Small k recovers
  /// low-coverage genomes, large k resolves repeats.
  std::vector<int> k_list;
};

struct AssemblyResult {
  std::vector<std::string> contigs;
  ContigStats stats;
  double seconds = 0.0;              ///< wall time of the whole assembly
  std::uint64_t reads_in = 0;
  std::uint64_t distinct_kmers = 0;
  std::uint64_t solid_kmers = 0;
};

/// Assemble a set of FASTQ files.
AssemblyResult assemble_fastq(const std::vector<std::string>& files,
                              const AssemblyOptions& options);

/// Assemble in-memory reads (unit tests).
AssemblyResult assemble_reads(const std::vector<std::string>& reads,
                              const AssemblyOptions& options);

}  // namespace metaprep::assembler
