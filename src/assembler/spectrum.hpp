// k-mer frequency spectrum analysis.
//
// The paper chooses its frequency-filter bounds ad hoc ("We chose the
// values 10, 30, and 63 arbitrarily.  An extensive evaluation of filtering
// strategies ... is left for future work", §4.4).  The standard way to pick
// them in practice is the k-mer frequency spectrum: sequencing errors pile
// up at frequency 1-2, true genomic k-mers form a peak near the coverage
// depth, and repeats form a high-frequency tail.  The valley between the
// error spike and the coverage peak gives the lower bound; a multiple of
// the peak gives the upper bound.
#pragma once

#include <cstdint>
#include <map>

#include "assembler/kmer_count.hpp"

namespace metaprep::assembler {

/// frequency -> number of distinct canonical k-mers with that count.
using Spectrum = std::map<std::uint32_t, std::uint64_t>;

template <typename K>
Spectrum frequency_spectrum(const BasicKmerCountTable<K>& counts) {
  Spectrum spectrum;
  for (const auto& [km, c] : counts.map()) {
    (void)km;
    ++spectrum[c];
  }
  return spectrum;
}

struct FilterSuggestion {
  std::uint32_t min_freq = 0;  ///< valley between error spike and peak
  std::uint32_t max_freq = 0;  ///< repeat cutoff (multiple of the peak)
  std::uint32_t peak_freq = 0; ///< coverage peak location
  bool confident = false;      ///< false when no valley/peak is discernible
};

/// Heuristic filter bounds from a spectrum: walk up from frequency 1 to the
/// first local minimum (the valley), then to the following maximum (the
/// coverage peak); max_freq = peak_multiple * peak.
FilterSuggestion suggest_filter(const Spectrum& spectrum, double peak_multiple = 3.0);

}  // namespace metaprep::assembler
