#include "assembler/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace metaprep::assembler {

FilterSuggestion suggest_filter(const Spectrum& spectrum, double peak_multiple) {
  FilterSuggestion s;
  if (spectrum.empty()) return s;

  // Densify into a vector up to the last observed frequency (bounded).
  const std::uint32_t max_freq = std::min<std::uint32_t>(spectrum.rbegin()->first, 100'000);
  std::vector<std::uint64_t> dense(max_freq + 1, 0);
  for (const auto& [f, n] : spectrum) {
    if (f <= max_freq) dense[f] = n;
  }

  // Valley: first frequency (>= 2) where the count stops decreasing.
  std::uint32_t valley = 0;
  for (std::uint32_t f = 2; f < max_freq; ++f) {
    if (dense[f] <= dense[f + 1]) {
      valley = f;
      break;
    }
  }
  if (valley == 0) return s;  // monotone spectrum: no error/coverage split

  // Peak: maximum after the valley.
  std::uint32_t peak = valley;
  for (std::uint32_t f = valley; f <= max_freq; ++f) {
    if (dense[f] > dense[peak]) peak = f;
  }
  if (peak <= valley) return s;

  s.min_freq = valley;
  s.peak_freq = peak;
  s.max_freq = static_cast<std::uint32_t>(std::llround(peak_multiple * peak));
  s.confident = true;
  return s;
}

}  // namespace metaprep::assembler
