// k-mer counting for the MiniHit assembler.
//
// Assemblers filter the de Bruijn graph on k-mer frequency before building
// contigs ("Most de Bruijn graph-based assemblers include such filters in
// the graph construction step", paper §4.4); MiniHit keeps canonical k-mers
// whose count is >= min_count, which drops most sequencing-error k-mers.
//
// Templated over the k-mer representation: 64-bit for k <= 32 and 128-bit
// for k <= 63 (the paper's §4.4 k=63 exploration applies to assembly k-lists
// too — MEGAHIT's default list reaches k=99).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "io/fastq.hpp"
#include "kmer/traits.hpp"

namespace metaprep::assembler {

template <typename K>
class BasicKmerCountTable {
 public:
  using Traits = kmer::KmerTraits<K>;

  explicit BasicKmerCountTable(int k) : k_(k) {
    if (k < 1 || k > Traits::kMaxK)
      throw std::invalid_argument("KmerCountTable: k out of range for this k-mer width");
  }

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Count all canonical k-mers of a read.
  void add_read(std::string_view seq) { add_read_weighted(seq, 1); }

  /// Count all canonical k-mers of a sequence with multiplicity @p weight.
  /// Used to feed previous-round contigs into the next k iteration of a
  /// multi-k assembly so they survive the solid-k-mer filter.
  void add_read_weighted(std::string_view seq, std::uint32_t weight) {
    Traits::for_each_canonical(seq, k_, [&](K km, std::size_t) {
      counts_[km] += weight;
      total_ += weight;
    });
  }

  /// Count all reads of a FASTQ file.
  void add_fastq(const std::string& path) {
    io::FastqReader reader(path);
    io::FastqRecord rec;
    while (reader.next(rec)) add_read(rec.seq);
  }

  [[nodiscard]] std::uint32_t count(K canonical_kmer) const {
    auto it = counts_.find(canonical_kmer);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Canonical k-mers with count >= min_count, sorted ascending (gives the
  /// assembler a deterministic traversal order).
  [[nodiscard]] std::vector<K> solid_kmers(std::uint32_t min_count) const {
    std::vector<K> out;
    out.reserve(counts_.size());
    for (const auto& [km, c] : counts_) {
      if (c >= min_count) out.push_back(km);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] const std::unordered_map<K, std::uint32_t>& map() const { return counts_; }

 private:
  int k_;
  std::unordered_map<K, std::uint32_t> counts_;
  std::uint64_t total_ = 0;
};

/// The k <= 32 table used throughout (12-byte keys).
using KmerCountTable = BasicKmerCountTable<std::uint64_t>;
/// The 32 < k <= 63 table (20-byte keys), for wide assembly k-lists.
using WideKmerCountTable = BasicKmerCountTable<kmer::Kmer128>;

}  // namespace metaprep::assembler
