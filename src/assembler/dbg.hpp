// De Bruijn graph and contig extraction for MiniHit.
//
// The graph is implicit over the set of solid canonical k-mers: vertex = a
// canonical k-mer, and a (k-1)-overlap extension by base b exists when the
// canonical form of (suffix + b) is also solid.  Contigs are built by
// greedy unique-extension walks in both directions from unvisited seeds,
// stopping at branches, tips, and visited vertices — the classic unitig-
// style compaction that every dBG assembler (including MEGAHIT) performs
// before its more sophisticated stages.  Tip clipping (short dangling
// paths, the footprint of errors near read ends) runs before extraction
// when requested.
//
// Templated over the k-mer representation (64-bit k <= 32, 128-bit k <= 63).
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "assembler/kmer_count.hpp"
#include "kmer/traits.hpp"

namespace metaprep::assembler {

template <typename K>
class BasicDeBruijnGraph {
 public:
  using Traits = kmer::KmerTraits<K>;

  /// Build the solid-k-mer vertex set from a count table.
  BasicDeBruijnGraph(const BasicKmerCountTable<K>& counts, std::uint32_t min_count)
      : k_(counts.k()), mask_(Traits::mask(counts.k())) {
    kmers_ = counts.solid_kmers(min_count);
    live_.assign(kmers_.size(), true);
    live_count_ = kmers_.size();
    coverage_.reserve(kmers_.size());
    for (const K& km : kmers_) coverage_.push_back(counts.count(km));
    index_.reserve(kmers_.size());
    for (std::uint32_t i = 0; i < kmers_.size(); ++i) index_[kmers_[i]] = i;
  }

  /// k-mer count of a live vertex (0 for unknown/clipped).
  [[nodiscard]] std::uint32_t coverage(K canonical_kmer) const {
    const auto it = index_.find(canonical_kmer);
    return it != index_.end() && live_[it->second] ? coverage_[it->second] : 0;
  }

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] std::size_t num_vertices() const noexcept { return kmers_.size(); }
  [[nodiscard]] std::size_t num_live_vertices() const noexcept { return live_count_; }

  [[nodiscard]] bool contains(K canonical_kmer) const {
    const auto it = index_.find(canonical_kmer);
    return it != index_.end() && live_[it->second];
  }

  /// Forward extensions of the (oriented, non-canonical) k-mer value: bases
  /// b such that suffix(k-1)+b is a (live) solid vertex.  4-bit mask.
  [[nodiscard]] unsigned forward_extensions(K oriented_kmer) const {
    unsigned mask = 0;
    for (std::uint8_t b = 0; b < 4; ++b) {
      const K next = Traits::shift_in(oriented_kmer, b, mask_);
      if (contains(Traits::canonical(next, k_))) mask |= 1u << b;
    }
    return mask;
  }

  /// Backward extensions of an oriented k-mer (== forward extensions of its
  /// reverse complement).  4-bit mask.
  [[nodiscard]] unsigned backward_extensions(K oriented_kmer) const {
    return forward_extensions(Traits::reverse_complement(oriented_kmer, k_));
  }

  /// Remove *tips*: non-branching paths of total length < @p max_tip_bases
  /// that dangle off the graph (one free end, the other at a branch).
  /// Runs up to @p rounds sweeps; returns the number of vertices removed.
  std::size_t remove_tips(std::size_t max_tip_bases, int rounds = 3) {
    std::size_t removed_total = 0;
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::size_t> to_remove;
      for (std::size_t i = 0; i < kmers_.size(); ++i) {
        if (!live_[i]) continue;
        const K start = kmers_[i];
        const K start_rc = Traits::reverse_complement(start, k_);
        for (const K oriented : {start, start_rc}) {
          if (backward_extensions(oriented) != 0) continue;
          // Walk forward along the unique, unambiguous path.
          std::vector<std::size_t> path{i};
          K cur = oriented;
          bool ends_at_junction = false;
          while (path.size() + static_cast<std::size_t>(k_) - 1 < max_tip_bases) {
            const unsigned fwd = forward_extensions(cur);
            if (fwd == 0) break;  // dangling both ends: isolated path, not a tip
            if (std::popcount(fwd) > 1) {
              ends_at_junction = true;  // we ARE the branch's dead arm
              break;
            }
            const auto b = static_cast<std::uint8_t>(std::countr_zero(fwd));
            const K next = Traits::shift_in(cur, b, mask_);
            const K canon = Traits::canonical(next, k_);
            // If the continuation merges with other paths, the tip ends here.
            if (std::popcount(backward_extensions(next)) > 1) {
              ends_at_junction = true;
              break;
            }
            path.push_back(index_.at(canon));
            cur = next;
          }
          if (ends_at_junction &&
              path.size() + static_cast<std::size_t>(k_) - 1 < max_tip_bases) {
            to_remove.insert(to_remove.end(), path.begin(), path.end());
          }
          if (oriented == start_rc) break;  // palindromic guard
        }
      }
      if (to_remove.empty()) break;
      std::size_t removed_this_round = 0;
      for (std::size_t idx : to_remove) {
        if (live_[idx]) {
          live_[idx] = false;
          ++removed_this_round;
        }
      }
      live_count_ -= removed_this_round;
      removed_total += removed_this_round;
    }
    return removed_total;
  }

  /// Pop simple *bubbles*: a vertex with exactly two forward branches whose
  /// non-branching arms reconverge at the same vertex within
  /// @p max_bubble_bases.  SNP-like sequencing errors in mid-read (and real
  /// strain variants) create these; MEGAHIT merges them, keeping the
  /// higher-coverage arm.  Returns the number of vertices removed.
  std::size_t pop_bubbles(std::size_t max_bubble_bases, int rounds = 3) {
    std::size_t removed_total = 0;
    for (int round = 0; round < rounds; ++round) {
      std::size_t removed_this_round = 0;
      for (std::size_t i = 0; i < kmers_.size(); ++i) {
        if (!live_[i]) continue;
        const K start = kmers_[i];
        const K start_rc = Traits::reverse_complement(start, k_);
        for (const K oriented : {start, start_rc}) {
          const unsigned fwd = forward_extensions(oriented);
          if (std::popcount(fwd) != 2) continue;
          Arm arms[2];
          int n_arms = 0;
          for (std::uint8_t b = 0; b < 4; ++b) {
            if ((fwd & (1u << b)) == 0) continue;
            arms[n_arms] = walk_arm(Traits::shift_in(oriented, b, mask_), max_bubble_bases);
            ++n_arms;
          }
          if (!arms[0].reconverges || !arms[1].reconverges) continue;
          if (!(arms[0].merge_vertex == arms[1].merge_vertex)) continue;
          if (arms[0].vertices.empty() || arms[1].vertices.empty()) continue;
          if (arms_overlap(arms[0], arms[1])) continue;
          // Keep the higher-mean-coverage arm; ties keep arm 0.
          const int victim = mean_coverage(arms[0]) >= mean_coverage(arms[1]) ? 1 : 0;
          for (std::size_t idx : arms[victim].vertices) {
            if (live_[idx]) {
              live_[idx] = false;
              ++removed_this_round;
            }
          }
          if (oriented == start_rc) break;
        }
      }
      if (removed_this_round == 0) break;
      live_count_ -= removed_this_round;
      removed_total += removed_this_round;
    }
    return removed_total;
  }

  /// Extract contigs.  Deterministic: seeds are visited in ascending
  /// canonical k-mer order.  Contigs shorter than @p min_contig_len are
  /// dropped.
  [[nodiscard]] std::vector<std::string> extract_contigs(std::size_t min_contig_len) const {
    std::vector<std::string> contigs;
    std::vector<bool> visited(kmers_.size(), false);

    // Extend an oriented k-mer rightward as long as the extension is unique
    // and unvisited.  Appends bases to `contig`.
    auto extend_right = [&](K oriented, std::string& contig) {
      for (;;) {
        unsigned candidates = 0;
        std::uint8_t chosen = 0;
        K chosen_next{};
        std::size_t chosen_index = 0;
        for (std::uint8_t b = 0; b < 4; ++b) {
          const K next = Traits::shift_in(oriented, b, mask_);
          const K canon = Traits::canonical(next, k_);
          const auto it = index_.find(canon);
          if (it == index_.end() || !live_[it->second] || visited[it->second]) continue;
          ++candidates;
          chosen = b;
          chosen_next = next;
          chosen_index = it->second;
        }
        if (candidates != 1) return;  // branch or dead end
        visited[chosen_index] = true;
        contig.push_back(kmer::base_char(chosen));
        oriented = chosen_next;
      }
    };

    for (std::size_t seed = 0; seed < kmers_.size(); ++seed) {
      if (visited[seed] || !live_[seed]) continue;
      visited[seed] = true;
      const K seed_kmer = kmers_[seed];

      // Start with the seed's forward string, extend right, then extend the
      // reverse complement right (== extend the contig left) and stitch.
      std::string right = Traits::decode(seed_kmer, k_);
      extend_right(seed_kmer, right);

      std::string left;  // bases to prepend, built in reverse-complement space
      extend_right(Traits::reverse_complement(seed_kmer, k_), left);

      std::string contig = kmer::revcomp_string(left);
      contig += right;
      if (contig.size() >= min_contig_len) contigs.push_back(std::move(contig));
    }
    return contigs;
  }

 private:
  /// One branch arm of a potential bubble: the interior vertices of a
  /// non-branching path from (but excluding) the branch vertex up to (but
  /// excluding) a reconvergence vertex.
  struct Arm {
    std::vector<std::size_t> vertices;
    K merge_vertex{};       ///< canonical form of the reconvergence vertex
    bool reconverges = false;
  };

  /// Follow the unique path starting at oriented k-mer @p first until it
  /// merges back into the graph (next vertex has in-degree 2), branches,
  /// dead-ends, or exceeds @p max_bases.
  [[nodiscard]] Arm walk_arm(K first, std::size_t max_bases) const {
    Arm arm;
    K cur = first;
    // The first vertex itself must be a plain interior vertex.
    for (;;) {
      const K canon = Traits::canonical(cur, k_);
      const auto it = index_.find(canon);
      if (it == index_.end() || !live_[it->second]) return arm;
      if (std::popcount(backward_extensions(cur)) > 1) {
        // Reconvergence point reached; arm interior ends before it.
        arm.merge_vertex = canon;
        arm.reconverges = true;
        return arm;
      }
      arm.vertices.push_back(it->second);
      if (arm.vertices.size() + static_cast<std::size_t>(k_) - 1 > max_bases) return arm;
      const unsigned fwd = forward_extensions(cur);
      if (std::popcount(fwd) != 1) return arm;  // dead end or new branch
      const auto b = static_cast<std::uint8_t>(std::countr_zero(fwd));
      cur = Traits::shift_in(cur, b, mask_);
    }
  }

  [[nodiscard]] static bool arms_overlap(const Arm& a, const Arm& b) {
    for (std::size_t x : a.vertices) {
      for (std::size_t y : b.vertices) {
        if (x == y) return true;
      }
    }
    return false;
  }

  [[nodiscard]] double mean_coverage(const Arm& arm) const {
    double total = 0.0;
    for (std::size_t idx : arm.vertices) total += coverage_[idx];
    return arm.vertices.empty() ? 0.0 : total / static_cast<double>(arm.vertices.size());
  }

  int k_;
  K mask_;
  std::vector<K> kmers_;    ///< sorted canonical solid k-mers
  std::vector<bool> live_;  ///< false after tip clipping / bubble popping
  std::vector<std::uint32_t> coverage_;  ///< k-mer counts, aligned with kmers_
  std::size_t live_count_ = 0;
  std::unordered_map<K, std::uint32_t> index_;
};

using DeBruijnGraph = BasicDeBruijnGraph<std::uint64_t>;
using WideDeBruijnGraph = BasicDeBruijnGraph<kmer::Kmer128>;

}  // namespace metaprep::assembler
