// Assembly quality statistics (the Table 9 columns: Contigs, Total (Mbp),
// Max (bp), N50 (bp)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metaprep::assembler {

struct ContigStats {
  std::uint64_t num_contigs = 0;
  std::uint64_t total_bp = 0;
  std::uint64_t max_bp = 0;
  std::uint64_t n50_bp = 0;
};

/// Compute contig statistics.  N50: the largest length L such that contigs
/// of length >= L cover at least half of total_bp.
ContigStats contig_stats(const std::vector<std::string>& contigs);

/// Merge statistics of two contig sets (e.g. LC + Other assemblies): counts
/// and totals add; max is the max; N50 is recomputed from the combined
/// length multiset.
ContigStats combined_stats(const std::vector<std::string>& a, const std::vector<std::string>& b);

}  // namespace metaprep::assembler
