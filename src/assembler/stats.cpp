#include "assembler/stats.hpp"

#include <algorithm>

namespace metaprep::assembler {

namespace {
ContigStats stats_from_lengths(std::vector<std::uint64_t> lengths) {
  ContigStats s;
  s.num_contigs = lengths.size();
  for (std::uint64_t l : lengths) {
    s.total_bp += l;
    s.max_bp = std::max(s.max_bp, l);
  }
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  std::uint64_t acc = 0;
  for (std::uint64_t l : lengths) {
    acc += l;
    if (2 * acc >= s.total_bp) {
      s.n50_bp = l;
      break;
    }
  }
  return s;
}
}  // namespace

ContigStats contig_stats(const std::vector<std::string>& contigs) {
  std::vector<std::uint64_t> lengths;
  lengths.reserve(contigs.size());
  for (const auto& c : contigs) lengths.push_back(c.size());
  return stats_from_lengths(std::move(lengths));
}

ContigStats combined_stats(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  std::vector<std::uint64_t> lengths;
  lengths.reserve(a.size() + b.size());
  for (const auto& c : a) lengths.push_back(c.size());
  for (const auto& c : b) lengths.push_back(c.size());
  return stats_from_lengths(std::move(lengths));
}

}  // namespace metaprep::assembler
