#include "baseline/kmc_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "kmer/superkmer.hpp"
#include "util/timer.hpp"

namespace metaprep::baseline {

namespace {

struct Bins {
  /// Per bin: concatenated super-k-mer substrings, with lengths.
  std::vector<std::vector<std::string>> super;
  std::uint64_t super_count = 0;
  std::uint64_t super_bases = 0;
  /// Shared decomposition core (kmer/superkmer) — the same scanner the
  /// pipeline's --comm-compress emit path runs, streamed to avoid the
  /// per-read run vector the old kmer::super_kmers() call allocated.
  kmer::SuperKmerScanner scanner;
};

void bin_read(std::string_view seq, const KmcLikeOptions& opt, Bins& bins) {
  bins.scanner.scan(
      seq, opt.k, opt.minimizer_len,
      [&](std::uint32_t start, std::uint32_t kmer_count, std::uint64_t minimizer) {
        const std::size_t len =
            static_cast<std::size_t>(kmer_count) + static_cast<std::size_t>(opt.k) - 1;
        const auto bin =
            static_cast<std::size_t>(minimizer % static_cast<std::uint64_t>(opt.num_bins));
        bins.super[bin].emplace_back(seq.substr(start, len));
        ++bins.super_count;
        bins.super_bases += len;
      });
}

KmcLikeResult finish(Bins& bins, const KmcLikeOptions& opt, double stage1_seconds) {
  KmcLikeResult result;
  result.stage1_seconds = stage1_seconds;
  result.super_kmers = bins.super_count;
  result.super_kmer_bases = bins.super_bases;

  util::WallTimer stage2;
  std::vector<std::uint64_t> kmers;
  for (auto& bin : bins.super) {
    kmers.clear();
    for (const auto& sk : bin) {
      kmer::scan_canonical_kmers64(sk, opt.k, kmers);
    }
    std::sort(kmers.begin(), kmers.end());
    result.total_kmers += kmers.size();
    for (std::size_t i = 0; i < kmers.size(); ++i) {
      if (i == 0 || kmers[i] != kmers[i - 1]) ++result.distinct_kmers;
    }
  }
  result.stage2_seconds = stage2.seconds();
  return result;
}

}  // namespace

KmcLikeResult kmc_like_count(const std::vector<std::string>& files,
                             const KmcLikeOptions& options) {
  if (options.minimizer_len > options.k)
    throw std::invalid_argument("kmc_like: minimizer_len must be <= k");
  Bins bins;
  bins.super.resize(static_cast<std::size_t>(options.num_bins));
  util::WallTimer stage1;
  for (const auto& path : files) {
    io::FastqReader reader(path);
    io::FastqRecord rec;
    while (reader.next(rec)) bin_read(rec.seq, options, bins);
  }
  return finish(bins, options, stage1.seconds());
}

KmcLikeResult kmc_like_count_reads(const std::vector<std::string>& reads,
                                   const KmcLikeOptions& options) {
  if (options.minimizer_len > options.k)
    throw std::invalid_argument("kmc_like: minimizer_len must be <= k");
  Bins bins;
  bins.super.resize(static_cast<std::size_t>(options.num_bins));
  util::WallTimer stage1;
  for (const auto& r : reads) bin_read(r, options, bins);
  return finish(bins, options, stage1.seconds());
}

}  // namespace metaprep::baseline
