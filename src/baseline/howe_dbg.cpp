#include "baseline/howe_dbg.hpp"

#include <cassert>
#include <stdexcept>

#include "dsu/dsu.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "util/timer.hpp"

namespace metaprep::baseline {

namespace {

/// Shared implementation: feed_reads invokes fn(seq, read_id) per read.
template <typename FeedFn>
DbgWccResult compute(const FeedFn& feed, std::uint32_t num_reads, int k) {
  if (k > kmer::kMaxK64) throw std::invalid_argument("howe_dbg_wcc: k must be <= 32");
  util::WallTimer timer;
  DbgWccResult result;

  // Pass 1: collect the distinct canonical k-mer set and assign dense IDs.
  std::unordered_map<std::uint64_t, std::uint32_t> ids;
  feed([&](std::string_view seq, std::uint32_t) {
    kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
      ids.try_emplace(km, static_cast<std::uint32_t>(ids.size()));
    });
  });
  result.num_kmers = ids.size();

  // Pass 2: union consecutive k-mers within each read (the dBG edges that
  // reads actually witness — a read's k-mer path).
  dsu::SerialDSU dsu(static_cast<std::uint32_t>(ids.size()));
  result.read_wcc.assign(num_reads, 0xFFFFFFFFu);
  feed([&](std::string_view seq, std::uint32_t read_id) {
    // Consecutive positions share a (k-1)-overlap edge.  A gap (N reset)
    // breaks the k-mer path, and a paired mate is a separate sequence — but
    // the read graph joins everything carried by one read ID through that
    // single vertex, so we thread `prev` across gaps and across mates
    // (seeded from the read's stored first k-mer) to mirror that semantics.
    std::uint32_t prev = result.read_wcc[read_id];
    kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
      const std::uint32_t id = ids.at(km);
      if (prev != 0xFFFFFFFFu) dsu.unite(prev, id);
      prev = id;
      if (result.read_wcc[read_id] == 0xFFFFFFFFu) result.read_wcc[read_id] = id;
    });
  });

  // Pass 3: resolve read labels and renumber WCCs densely.
  std::unordered_map<std::uint32_t, std::uint32_t> root_to_label;
  for (auto& [km, id] : ids) {
    const std::uint32_t root = dsu.find(id);
    const auto [it, inserted] =
        root_to_label.try_emplace(root, static_cast<std::uint32_t>(root_to_label.size()));
    result.kmer_wcc[km] = it->second;
    (void)inserted;
    (void)id;
  }
  result.num_wcc = root_to_label.size();
  for (auto& label : result.read_wcc) {
    if (label != 0xFFFFFFFFu) label = root_to_label.at(dsu.find(label));
  }

  // Hash map node ~= key + value + bucket overhead; count the payload only
  // (lower bound on the paper's "memory for the k-mer set").
  result.kmer_table_bytes =
      result.num_kmers * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

DbgWccResult howe_dbg_wcc(const std::vector<std::string>& reads, int k) {
  auto feed = [&reads](const auto& fn) {
    for (std::uint32_t i = 0; i < reads.size(); ++i) fn(reads[i], i);
  };
  return compute(feed, static_cast<std::uint32_t>(reads.size()), k);
}

DbgWccResult howe_dbg_wcc(const core::DatasetIndex& index) {
  auto feed = [&index](const auto& fn) {
    for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
      const core::ChunkRecord& chunk = index.part.chunks[c];
      const auto buffer =
          io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
      std::uint32_t read_id = chunk.first_read_id;
      io::for_each_record_in_buffer(
          std::string_view(buffer.data(), buffer.size()),
          [&](std::string_view, std::string_view seq, std::string_view) {
            fn(seq, read_id);
            ++read_id;
          });
    }
  };
  return compute(feed, index.total_reads, index.k);
}

}  // namespace metaprep::baseline
