// KMC 2-style two-stage k-mer counter (the Figure 9 comparison baseline).
//
// KMC 2 (Deorowicz et al. 2015) is "a shared-memory parallel approach using
// the idea of minimizers (super k-mers)".  Stage 1 reads FASTQ input,
// decomposes reads into super k-mers and distributes them to bins by
// minimizer; Stage 2 sorts each bin and compacts it into (k-mer, count)
// records.  This reproduction follows the same two-stage structure so the
// bench can report the paper's Stage1/Stage2 split: METAPREP's Stage1
// (KmerGen + KmerGen-Comm) trades the super-k-mer bookkeeping away but must
// later sort one record per k-mer *occurrence*, whereas KMC 2 pays the
// super-k-mer overhead up front and sorts fewer, compacted records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metaprep::baseline {

struct KmcLikeOptions {
  int k = 27;
  int minimizer_len = 7;
  int num_bins = 512;
};

struct KmcLikeResult {
  double stage1_seconds = 0.0;   ///< read + super-k-mer decomposition + binning
  double stage2_seconds = 0.0;   ///< per-bin expansion, sort, compaction
  std::uint64_t total_kmers = 0;     ///< k-mer occurrences
  std::uint64_t distinct_kmers = 0;
  std::uint64_t super_kmers = 0;
  std::uint64_t super_kmer_bases = 0;  ///< bytes stored in bins (compression measure)
};

/// Count canonical k-mers of the given FASTQ files.
KmcLikeResult kmc_like_count(const std::vector<std::string>& files,
                             const KmcLikeOptions& options);

/// In-memory variant for tests; returns the same statistics.
KmcLikeResult kmc_like_count_reads(const std::vector<std::string>& reads,
                                   const KmcLikeOptions& options);

}  // namespace metaprep::baseline
