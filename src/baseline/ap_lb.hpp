// AP_LB-style read-graph partitioner (the Table 4 comparison baseline).
//
// Flick et al. (SC'15) partition metagenomic reads with a distributed
// Shiloach-Vishkin connectivity algorithm whose iterative structure needs
// O(log M) sort-and-propagate rounds (the paper reports 19-21 iterations on
// HG/LL/MM).  This baseline reproduces that algorithmic shape: enumerate
// (k-mer, read) tuples, sort them, materialize explicit read-graph edges,
// and run Shiloach-Vishkin to convergence — versus METAPREP's Union-Find,
// which needs only ceil(log P) merge rounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/indices.hpp"

namespace metaprep::baseline {

struct ApLbResult {
  std::vector<std::uint32_t> labels;  ///< component label per read
  int sv_iterations = 0;              ///< Shiloach-Vishkin rounds
  double enumerate_seconds = 0.0;
  double sort_seconds = 0.0;
  double edges_seconds = 0.0;
  double cc_seconds = 0.0;
  std::uint64_t num_edges = 0;
  [[nodiscard]] double total_seconds() const {
    return enumerate_seconds + sort_seconds + edges_seconds + cc_seconds;
  }
};

/// Partition the reads of an indexed dataset (k <= 32).
ApLbResult ap_lb_partition(const core::DatasetIndex& index);

}  // namespace metaprep::baseline
