// Howe-style de Bruijn graph WCC partitioning (the original method).
//
// Howe et al. partition metagenomes by computing weakly connected components
// of the de Bruijn graph (paper §1-2).  Flick et al. (and METAPREP) replace
// this with read-graph CC, relying on the equivalence the paper sketches:
// "if two k-mers k1 and k2 belong to a WCC of the de Bruijn graph, then the
// reads containing these k-mers also belong to a CC in the read graph", and
// conversely for distinct WCCs.  This module implements the dBG side
// directly — vertices are the canonical k-mers observed in the reads, edges
// the (k-1)-overlaps *observed within reads* — so the equivalence theorem
// can be verified end-to-end, and the memory trade METAPREP makes (never
// materializing the k-mer set) can be quantified.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/indices.hpp"

namespace metaprep::baseline {

struct DbgWccResult {
  /// Canonical k-mer -> WCC label.
  std::unordered_map<std::uint64_t, std::uint32_t> kmer_wcc;
  std::uint64_t num_kmers = 0;
  std::uint64_t num_wcc = 0;
  /// Read -> WCC label of its k-mers (one entry per read; reads whose
  /// k-mers span no valid window get label UINT32_MAX).
  std::vector<std::uint32_t> read_wcc;
  /// Approximate resident bytes of the k-mer structures (the memory METAPREP
  /// avoids by its implicit representation).
  std::uint64_t kmer_table_bytes = 0;
  double seconds = 0.0;
};

/// Compute dBG WCCs over in-memory reads (k <= 32).  Each read must have all
/// its k-mers in one WCC by construction (consecutive k-mers share an edge);
/// this is asserted in debug builds.
DbgWccResult howe_dbg_wcc(const std::vector<std::string>& reads, int k);

/// Compute over an indexed dataset (reads streamed from the chunks).
DbgWccResult howe_dbg_wcc(const core::DatasetIndex& index);

}  // namespace metaprep::baseline
