#include "baseline/ap_lb.hpp"

#include <stdexcept>
#include <utility>

#include "dsu/shiloach_vishkin.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "sort/radix.hpp"
#include "util/timer.hpp"

namespace metaprep::baseline {

ApLbResult ap_lb_partition(const core::DatasetIndex& index) {
  if (index.k > kmer::kMaxK64)
    throw std::invalid_argument("ap_lb_partition: k must be <= 32");
  const int k = index.k;
  ApLbResult result;

  // 1. Enumerate (k-mer, read) tuples from all chunks.
  util::WallTimer enum_timer;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> vals;
  for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
    const core::ChunkRecord& chunk = index.part.chunks[c];
    const auto buffer = io::read_file_range(index.files[chunk.file], chunk.offset, chunk.size);
    std::uint32_t read_id = chunk.first_read_id;
    io::for_each_record_in_buffer(
        std::string_view(buffer.data(), buffer.size()),
        [&](std::string_view, std::string_view seq, std::string_view) {
          kmer::for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) {
            keys.push_back(km);
            vals.push_back(read_id);
          });
          ++read_id;
        });
  }
  result.enumerate_seconds = enum_timer.seconds();

  // 2. Global sort by k-mer.
  util::WallTimer sort_timer;
  sort::radix_sort_kv64(keys, vals, 2 * k, 8);
  result.sort_seconds = sort_timer.seconds();

  // 3. Materialize explicit read-graph edges (AP_LB keeps the graph
  // explicit; METAPREP never does).
  util::WallTimer edges_timer;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::size_t i = 0;
  while (i < keys.size()) {
    std::size_t j = i + 1;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    for (std::size_t x = i + 1; x < j; ++x) {
      if (vals[x - 1] != vals[x]) edges.emplace_back(vals[x - 1], vals[x]);
    }
    i = j;
  }
  result.num_edges = edges.size();
  result.edges_seconds = edges_timer.seconds();

  // 4. Shiloach-Vishkin connectivity.
  util::WallTimer cc_timer;
  auto sv = dsu::shiloach_vishkin(index.total_reads, edges);
  result.cc_seconds = cc_timer.seconds();
  result.labels = std::move(sv.labels);
  result.sv_iterations = sv.iterations;
  return result;
}

}  // namespace metaprep::baseline
