// kmer_spectrum: pick frequency-filter bounds from data instead of "chosen
// arbitrarily" (the paper's own words about its 10/30 settings, §4.4).
//
// Prints the k-mer frequency spectrum of a dataset (simulated preset or
// user FASTQ files), locates the error valley and coverage peak, suggests
// KF filter bounds, and — for the simulated case — runs the partition with
// the suggested bounds next to the paper's 10..30 for comparison.
//
// Usage: kmer_spectrum [--k=27] [--preset=MM] [--scale=1.0]
//        kmer_spectrum [--k=27] R1.fastq R2.fastq ...
#include <cstdio>
#include <filesystem>

#include "assembler/spectrum.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace metaprep;

sim::Preset parse_preset(const std::string& name) {
  if (name == "HG") return sim::Preset::HG;
  if (name == "LL") return sim::Preset::LL;
  if (name == "MM") return sim::Preset::MM;
  if (name == "IS") return sim::Preset::IS;
  throw std::invalid_argument("unknown preset: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 27));
  const std::string out = "kmer_spectrum_out";
  std::filesystem::create_directories(out);

  std::vector<std::string> files = args.positional();
  const bool simulated = files.empty();
  if (simulated) {
    const auto ds = sim::make_preset(parse_preset(args.get("preset", "MM")),
                                     args.get_double("scale", 1.0), out);
    files = ds.files;
  }

  assembler::KmerCountTable counts(k);
  for (const auto& f : files) counts.add_fastq(f);
  const auto spectrum = assembler::frequency_spectrum(counts);

  // Print the low-frequency region exactly, the tail in log2 buckets.
  util::TablePrinter low({"Frequency", "Distinct k-mers"});
  std::uint32_t printed = 0;
  for (const auto& [f, n] : spectrum) {
    if (f > 40) break;
    low.add_row({std::to_string(f), std::to_string(n)});
    ++printed;
  }
  std::printf("k-mer frequency spectrum (k=%d, %zu distinct k-mers):\n", k,
              counts.distinct());
  low.print();
  std::map<int, std::uint64_t> tail;
  for (const auto& [f, n] : spectrum) {
    if (f > 40) tail[32 - std::countl_zero(f)] += n;
  }
  if (!tail.empty()) {
    std::printf("tail:");
    for (const auto& [log2f, n] : tail) {
      std::printf(" [2^%d,2^%d):%llu", log2f, log2f + 1, static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }

  const auto suggestion = assembler::suggest_filter(spectrum);
  if (!suggestion.confident) {
    std::printf("\nNo clear error-valley/coverage-peak structure; filter bounds cannot be\n"
                "suggested from this spectrum.\n");
    return 0;
  }
  std::printf("\nError valley at %u, coverage peak at %u -> suggested filter: "
              "%u <= KF <= %u\n",
              suggestion.min_freq, suggestion.peak_freq, suggestion.min_freq,
              suggestion.max_freq);

  // Show what the suggestion does to the partition vs the paper's 10..30.
  core::IndexCreateOptions iopt;
  iopt.k = k;
  iopt.m = 8;
  iopt.target_chunks = 16;
  iopt.threads = 4;
  const auto index = core::create_index("spectrum", files, files.size() % 2 == 0, iopt);
  util::TablePrinter table({"Filter", "Components", "LC %"});
  for (const auto& [label, filter] :
       std::vector<std::pair<std::string, core::KmerFreqFilter>>{
           {"none", {}},
           {"paper 10<=KF<=30", {10, 30}},
           {"suggested", {suggestion.min_freq, suggestion.max_freq}}}) {
    core::MetaprepConfig cfg;
    cfg.k = k;
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.filter = filter;
    cfg.write_output = false;
    const auto r = core::run_metaprep(index, cfg);
    table.add_row({label, std::to_string(r.num_components),
                   util::TablePrinter::fmt(r.largest_fraction * 100.0, 1)});
  }
  std::printf("\n");
  table.print();
  return 0;
}
