// howe_pipeline: the complete Howe et al. preprocessing stack, end to end.
//
// The paper's introduction frames METAPREP inside this workflow: quality
// control, digital normalization, and read-graph partitioning, each feeding
// the next, so that a big metagenome becomes independently-assemblable
// chunks.  This example runs every stage on a simulated community with
// realistic 3' quality decay and prints what each stage contributes:
//
//   raw reads -> [trim] -> [diginorm] -> [METAPREP partition + KF filter]
//             -> [MiniHit assembly of LC and Other] -> contigs.fasta
//
// Usage: howe_pipeline [--pairs=10000] [--species=6] [--out=DIR]
#include <cstdio>
#include <filesystem>

#include "assembler/minihit.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "core/stats.hpp"
#include "io/fasta.hpp"
#include "norm/diginorm.hpp"
#include "norm/trim.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace metaprep;

std::vector<std::string> pick(const std::vector<std::string>& files, bool lc) {
  std::vector<std::string> out;
  for (const auto& f : files) {
    if ((f.find(".lc.") != std::string::npos) == lc) out.push_back(f);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string out = args.get("out", "howe_pipeline_out");
  std::filesystem::create_directories(out);

  // Stage 0: simulate a deep-coverage community with degraded read tails.
  sim::DatasetConfig cfg;
  cfg.name = "howe";
  cfg.genomes.num_species = static_cast<int>(args.get_int("species", 6));
  cfg.genomes.min_genome_len = 10'000;
  cfg.genomes.max_genome_len = 16'000;
  cfg.genomes.repeat_fraction = 0.06;
  cfg.genomes.shared_fraction = 0.05;
  cfg.num_pairs = static_cast<std::uint64_t>(args.get_int("pairs", 10'000));
  cfg.reads.end_error_boost = 0.05;
  cfg.reads.end_quality_drop = 25;
  const auto dataset = sim::simulate_dataset(cfg, out + "/raw");
  std::printf("Stage 0  simulate : %llu pairs, %.2f Mbp, %d species (3' decay on)\n",
              static_cast<unsigned long long>(dataset.num_pairs),
              static_cast<double>(dataset.total_bases) / 1e6, cfg.genomes.num_species);

  // Stage 1: quality trimming.
  norm::TrimOptions trim_opt;
  trim_opt.min_phred = 20;
  trim_opt.min_length = 50;
  util::WallTimer trim_timer;
  const auto trim_stats =
      norm::trim_fastq_pair(dataset.files[0], dataset.files[1], out + "/trimmed", trim_opt);
  std::printf("Stage 1  trim     : kept %llu/%llu pairs, %.2f -> %.2f Mbp (%.1f ms)\n",
              static_cast<unsigned long long>(trim_stats.pairs_kept),
              static_cast<unsigned long long>(trim_stats.pairs_in),
              static_cast<double>(trim_stats.bases_in) / 1e6,
              static_cast<double>(trim_stats.bases_kept) / 1e6, trim_timer.seconds() * 1e3);

  // Stage 2: digital normalization.
  norm::DiginormOptions dn_opt;
  dn_opt.k = 20;
  dn_opt.cutoff = 20;
  util::WallTimer dn_timer;
  const auto dn_stats = norm::normalize_fastq_pair(out + "/trimmed_1.fastq",
                                                   out + "/trimmed_2.fastq",
                                                   out + "/normalized", dn_opt);
  std::printf("Stage 2  diginorm : kept %llu/%llu pairs (C=%u) (%.1f ms)\n",
              static_cast<unsigned long long>(dn_stats.pairs_kept),
              static_cast<unsigned long long>(dn_stats.pairs_in), dn_opt.cutoff,
              dn_timer.seconds() * 1e3);

  // Stage 3: METAPREP partitioning with the KF filter.
  core::IndexCreateOptions iopt;
  iopt.k = 27;
  iopt.m = 8;
  iopt.target_chunks = 16;
  iopt.threads = 4;
  util::WallTimer index_timer;
  const auto index = core::create_index(
      "howe", {out + "/normalized_1.fastq", out + "/normalized_2.fastq"}, true, iopt);
  core::MetaprepConfig mp;
  mp.k = 27;
  mp.num_ranks = 2;
  mp.threads_per_rank = 2;
  mp.filter = {0, 30};
  mp.write_output = true;
  mp.output_dir = out + "/parts";
  std::filesystem::create_directories(mp.output_dir);
  const auto part = core::run_metaprep(index, mp);
  const auto summary = core::summarize_components(part.labels);
  std::printf("Stage 3  METAPREP : %s (%.1f ms incl. IndexCreate)\n",
              core::component_report(summary).c_str(), index_timer.seconds() * 1e3);

  // Stage 4: assemble LC and Other independently (parallelizable).
  assembler::AssemblyOptions aopt;
  aopt.k_list = {21, 27, 31};
  aopt.min_kmer_count = 2;
  aopt.tip_clip_bases = 2 * 27;
  aopt.bubble_pop_bases = 2 * 27;
  const auto lc = assembler::assemble_fastq(pick(part.output_files, true), aopt);
  const auto other = assembler::assemble_fastq(pick(part.output_files, false), aopt);
  io::write_contigs_fasta(out + "/contigs_lc.fasta", lc.contigs, "lc");
  io::write_contigs_fasta(out + "/contigs_other.fasta", other.contigs, "other");
  const auto combined = assembler::combined_stats(lc.contigs, other.contigs);
  std::printf("Stage 4  assemble : LC %llu contigs / N50 %llu (%.1f ms); Other %llu / %llu "
              "(%.1f ms)\n",
              static_cast<unsigned long long>(lc.stats.num_contigs),
              static_cast<unsigned long long>(lc.stats.n50_bp), lc.seconds * 1e3,
              static_cast<unsigned long long>(other.stats.num_contigs),
              static_cast<unsigned long long>(other.stats.n50_bp), other.seconds * 1e3);

  // Reference: assemble the raw reads directly, no preprocessing at all.
  const auto raw = assembler::assemble_fastq(dataset.files, aopt);
  util::TablePrinter table({"Pipeline", "Contigs", "Total (kbp)", "Max (bp)", "N50 (bp)",
                            "Assembly (ms)"});
  table.add_row({"raw reads, no preprocessing", std::to_string(raw.stats.num_contigs),
                 util::TablePrinter::fmt(static_cast<double>(raw.stats.total_bp) / 1e3, 1),
                 std::to_string(raw.stats.max_bp), std::to_string(raw.stats.n50_bp),
                 util::TablePrinter::fmt(raw.seconds * 1e3, 1)});
  table.add_row({"trim + diginorm + partition", std::to_string(combined.num_contigs),
                 util::TablePrinter::fmt(static_cast<double>(combined.total_bp) / 1e3, 1),
                 std::to_string(combined.max_bp), std::to_string(combined.n50_bp),
                 util::TablePrinter::fmt(std::max(lc.seconds, other.seconds) * 1e3, 1) +
                     " (parallel)"});
  std::printf("\n");
  table.print();
  std::printf("\nContigs written to %s/contigs_{lc,other}.fasta\n", out.c_str());
  return 0;
}
