// metaprep_cli: the command-line front end for real FASTQ data.
//
// Subcommands:
//   index  --out=INDEX.bin [--k=27] [--m=10] [--chunks=384] [--single-end]
//          R1.fastq R2.fastq [R1b.fastq R2b.fastq ...]
//       Build and save the merHist/FASTQPart index for a dataset.
//
//   run    --index=INDEX.bin [--ranks=1] [--threads=4] [--passes=1]
//          [--memory-gb=0] [--filter-min=0] [--filter-max=0] [--out=DIR]
//          [--no-output] [--verify] [--trace-out=T.json] [--metrics-out=M.jsonl]
//       Run the preprocessing pipeline.  --passes=0 with --memory-gb picks
//       the minimum pass count fitting the per-task budget (§3.7).
//       --filter-min/--filter-max enable the k-mer frequency filter (§4.4).
//       --verify recomputes the partition with a brute-force in-memory
//       reference and compares (small datasets only — quadratic memory).
//       --trace-out records per-rank/per-thread step spans as Chrome
//       trace_event JSON (open in chrome://tracing or ui.perfetto.dev);
//       --metrics-out writes a JSONL metrics snapshot.  The METAPREP_TRACE
//       env var ("1", or an output path) enables tracing for any subcommand.
//       --attr-out writes the structured performance-attribution artifact
//       (phase walls, imbalance, critical path, memory high-water) that
//       tools/metaprep-report ingests; --comm-matrix-out dumps the
//       per-(src,dst) bytes/messages matrix; --progress draws a one-line
//       stderr progress indicator.
//
//   sim    --out=DIR [--preset=HG|LL|MM|IS] [--sim-scale=0.05]
//       Generate a synthetic Table 2 dataset (see src/sim/presets.hpp) and
//       print the FASTQ paths — feeds `index` when no real data is at hand.
//
//   info   --index=INDEX.bin
//       Print index statistics and the memory-model table.
//
//   diginorm --out=PREFIX [--k=20] [--cutoff=20] R1.fastq R2.fastq
//       Digital normalization (the companion Howe et al. strategy): stream
//       the pairs, keep those whose estimated median k-mer abundance is
//       below the cutoff, write PREFIX_1.fastq / PREFIX_2.fastq.
//   daemon <verb> --socket=SOCK ...
//       Client for a running metaprepd (tools/metaprepd).  Verbs: ping,
//       submit (--index plus run-style flags), status/cancel/fetch (--job=N;
//       status takes --wait to poll to a terminal state), list, pause,
//       resume, shutdown.  Each invocation sends one JSON request line and
//       prints the daemon's one-line JSON response.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "core/index_create.hpp"
#include "core/manifest.hpp"
#include "core/memory_model.hpp"
#include "core/pipeline.hpp"
#include "norm/diginorm.hpp"
#include "serve/proto.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

namespace {

using namespace metaprep;

int usage() {
  std::fprintf(stderr,
               "usage: metaprep_cli index --out=INDEX.bin [--k --m --chunks --single-end "
               "--parse-mode=strict|lenient] FASTQ...\n"
               "       metaprep_cli run --index=INDEX.bin [--ranks --threads --passes "
               "--memory-gb --filter-min --filter-max --out --no-output --output-bins=B "
               "--parse-mode=strict|lenient --pipeline-mode=barrier|overlap "
               "--read-store=text|packed --packed-store=ARENA.mprs "
               "--comm-compress=none|superkmer|bloom|both --superkmer-minimizer-len=M "
               "--trace-out=T.json --metrics-out=M.jsonl --attr-out=A.json "
               "--comm-matrix-out=C.json --progress "
               "--fault-seed=N --fault-read-rate=P --fault-corrupt-rate=P "
               "--fault-comm-drop-rate=P --fault-comm-delay-rate=P]\n"
               "       metaprep_cli sim --out=DIR [--preset=HG|LL|MM|IS|XL --sim-scale=S]\n"
               "       metaprep_cli info --index=INDEX.bin\n"
               "       metaprep_cli diginorm --out=PREFIX [--k --cutoff] R1.fastq R2.fastq\n"
               "       metaprep_cli daemon ping|submit|status|cancel|fetch|list|pause|resume|"
               "shutdown --socket=SOCK\n"
               "           submit: --index=INDEX.bin [--ranks --threads --passes --priority "
               "--out=DIR --no-output --output-bins=B --pipeline-mode=barrier|overlap "
               "--filter-min --filter-max]\n"
               "           status|cancel|fetch: --job=N  (status: [--wait[=SECONDS]])\n");
  return 2;
}

io::ParseMode parse_mode_arg(const util::Args& args) {
  const std::string mode = args.get("parse-mode", "strict");
  if (mode == "strict") return io::ParseMode::kStrict;
  if (mode == "lenient") return io::ParseMode::kLenient;
  throw util::config_error("--parse-mode must be 'strict' or 'lenient' (got '" + mode + "')");
}

core::ReadStore read_store_arg(const util::Args& args) {
  const std::string store = args.get("read-store", "text");
  if (store == "text") return core::ReadStore::kText;
  if (store == "packed") return core::ReadStore::kPacked;
  throw util::config_error("--read-store must be 'text' or 'packed' (got '" + store + "')");
}

core::CommCompress comm_compress_arg(const util::Args& args) {
  const std::string mode = args.get("comm-compress", "none");
  if (mode == "none") return core::CommCompress::kNone;
  if (mode == "superkmer") return core::CommCompress::kSuperKmer;
  if (mode == "bloom") return core::CommCompress::kBloom;
  if (mode == "both") return core::CommCompress::kBoth;
  throw util::config_error("--comm-compress must be 'none', 'superkmer', 'bloom', or 'both' "
                           "(got '" + mode + "')");
}

core::PipelineMode pipeline_mode_arg(const util::Args& args) {
  const std::string mode = args.get("pipeline-mode", "barrier");
  if (mode == "barrier") return core::PipelineMode::kBarrier;
  if (mode == "overlap") return core::PipelineMode::kOverlap;
  throw util::config_error("--pipeline-mode must be 'barrier' or 'overlap' (got '" + mode +
                           "')");
}

/// Arm the global FaultPlan from --fault-* flags; returns true if any rate
/// is nonzero (the caller reports the injected-fault tally after the run).
bool arm_fault_plan(const util::Args& args) {
  util::FaultPlanConfig fp;
  fp.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  fp.transient_read_rate = args.get_double("fault-read-rate", 0.0);
  fp.corrupt_rate = args.get_double("fault-corrupt-rate", 0.0);
  fp.comm_drop_rate = args.get_double("fault-comm-drop-rate", 0.0);
  fp.comm_delay_rate = args.get_double("fault-comm-delay-rate", 0.0);
  for (double rate : {fp.transient_read_rate, fp.corrupt_rate, fp.comm_drop_rate,
                      fp.comm_delay_rate}) {
    if (rate < 0.0 || rate > 1.0)
      throw util::config_error("--fault-* rates must be in [0, 1]");
  }
  if (fp.transient_read_rate == 0.0 && fp.corrupt_rate == 0.0 && fp.comm_drop_rate == 0.0 &&
      fp.comm_delay_rate == 0.0)
    return false;
  util::FaultPlan::global().arm(fp);
  return true;
}

int cmd_diginorm(const util::Args& args) {
  if (args.positional().size() != 3 || !args.has("out")) return usage();
  norm::DiginormOptions opt;
  opt.k = static_cast<int>(args.get_int("k", 20));
  opt.cutoff = static_cast<std::uint32_t>(args.get_int("cutoff", 20));
  const auto stats = norm::normalize_fastq_pair(args.positional()[1], args.positional()[2],
                                                args.get("out", ""), opt);
  std::printf("diginorm C=%u k=%d: kept %llu / %llu pairs (%.1f%%)\n", opt.cutoff, opt.k,
              static_cast<unsigned long long>(stats.pairs_kept),
              static_cast<unsigned long long>(stats.pairs_in),
              stats.keep_fraction() * 100.0);
  return 0;
}

int cmd_index(const util::Args& args) {
  if (args.positional().size() < 2 || !args.has("out")) return usage();
  const std::vector<std::string> files(args.positional().begin() + 1,
                                       args.positional().end());
  core::IndexCreateOptions opt;
  opt.k = static_cast<int>(args.get_int("k", 27));
  opt.m = static_cast<int>(args.get_int("m", 10));
  opt.target_chunks = static_cast<std::uint32_t>(args.get_int("chunks", 384));
  opt.parse_mode = parse_mode_arg(args);
  const bool paired = !args.has("single-end");
  core::IndexCreateTiming timing;
  const auto index = core::create_index(
      std::filesystem::path(files[0]).stem().string(), files, paired, opt, &timing);
  core::save_index(index, args.get("out", ""));
  std::printf("Indexed %u reads (%0.2f Mbp) into %u chunks; chunking %.2f s, "
              "histograms %.2f s. Saved to %s\n",
              index.total_reads, static_cast<double>(index.total_bases) / 1e6,
              index.part.num_chunks(), timing.chunking_seconds, timing.histogram_seconds,
              args.get("out", "").c_str());
  return 0;
}

int cmd_run(const util::Args& args) {
  if (!args.has("index")) return usage();
  const auto index = core::load_index(args.get("index", ""));
  core::MetaprepConfig cfg;
  cfg.k = index.k;
  cfg.num_ranks = static_cast<int>(args.get_int("ranks", 1));
  cfg.threads_per_rank = static_cast<int>(args.get_int("threads", 4));
  cfg.num_passes = static_cast<int>(args.get_int("passes", 1));
  const double memory_gb = args.get_double("memory-gb", 0.0);
  if (memory_gb > 0.0) {
    cfg.num_passes = 0;
    cfg.memory_budget_bytes = static_cast<std::uint64_t>(memory_gb * 1e9);
  }
  cfg.filter.min_freq = static_cast<std::uint32_t>(args.get_int("filter-min", 0));
  const auto fmax = args.get_int("filter-max", 0);
  if (fmax > 0) cfg.filter.max_freq = static_cast<std::uint32_t>(fmax);
  cfg.write_output = !args.has("no-output");
  cfg.output_dir = args.get("out", ".");
  cfg.output_bins = static_cast<int>(args.get_int("output-bins", 0));
  cfg.parse_mode = parse_mode_arg(args);
  cfg.pipeline_mode = pipeline_mode_arg(args);
  cfg.read_store = read_store_arg(args);
  cfg.comm_compress = comm_compress_arg(args);
  cfg.superkmer_minimizer_len =
      static_cast<int>(args.get_int("superkmer-minimizer-len", 10));
  cfg.packed_store_path = args.get("packed-store", "");
  cfg.trace_out = args.get("trace-out", "");
  cfg.metrics_out = args.get("metrics-out", "");
  cfg.attr_out = args.get("attr-out", "");
  cfg.comm_matrix_out = args.get("comm-matrix-out", "");
  cfg.progress = args.has("progress");
  std::filesystem::create_directories(cfg.output_dir);
  const bool faults_armed = arm_fault_plan(args);

  const auto result = core::run_metaprep(index, cfg);
  if (faults_armed) {
    const auto fc = util::FaultPlan::global().counters();
    std::printf("fault injection: %llu transient read faults, %llu chunks corrupted, "
                "%llu deliveries dropped, %llu delayed\n",
                static_cast<unsigned long long>(fc.read_faults),
                static_cast<unsigned long long>(fc.chunks_corrupted),
                static_cast<unsigned long long>(fc.comm_drops),
                static_cast<unsigned long long>(fc.comm_delays));
    util::FaultPlan::global().disarm();
  }
  std::printf("Partitioned %u reads into %llu components using %d pass(es); largest "
              "component: %llu reads (%.1f%%).\n",
              result.num_reads, static_cast<unsigned long long>(result.num_components),
              result.passes_used, static_cast<unsigned long long>(result.largest_size),
              result.largest_fraction * 100.0);
  if (cfg.comm_compress != core::CommCompress::kNone) {
    std::printf("exchange: %llu bytes shipped (%llu raw, ratio %.3f), "
                "%llu super-k-mer records, %llu singletons dropped\n",
                static_cast<unsigned long long>(result.exchange_bytes),
                static_cast<unsigned long long>(result.exchange_bytes_raw),
                result.superkmer_ratio,
                static_cast<unsigned long long>(result.superkmer_records),
                static_cast<unsigned long long>(result.bloom_dropped));
  }
  util::TablePrinter table({"Step", "ms (max over ranks)"});
  for (const auto& [step, seconds] : result.step_times.map()) {
    table.add_row({step, util::TablePrinter::fmt(seconds * 1e3, 2)});
  }
  table.print();
  if (args.has("verify")) {
    const auto reference = core::reference_components(index, cfg.filter, cfg.parse_mode);
    // Compare as partitions (labels may differ by renaming).
    auto normalize = [](const std::vector<std::uint32_t>& labels) {
      std::vector<std::uint32_t> out(labels.size());
      std::map<std::uint32_t, std::uint32_t> rep;
      for (std::uint32_t i = 0; i < labels.size(); ++i) {
        auto [it, ins] = rep.try_emplace(labels[i], i);
        (void)ins;
        out[i] = it->second;
      }
      return out;
    };
    if (normalize(result.labels) == normalize(reference)) {
      std::printf("verify: OK — partition matches the brute-force reference.\n");
    } else {
      std::printf("verify: MISMATCH against the brute-force reference!\n");
      return 1;
    }
  }
  if (cfg.write_output) {
    const auto manifest = core::build_manifest(index, result, cfg.parse_mode);
    core::save_manifest(manifest, cfg.output_dir + "/manifest.tsv");
    std::printf("%zu output FASTQ files under %s (see manifest.tsv)\n",
                result.output_files.size(), cfg.output_dir.c_str());
    if (!result.bin_manifest_path.empty()) {
      std::printf("binned into %zu partitions (skew %.3f); manifest: %s\n",
                  result.bin_reads.size(), result.bin_skew,
                  result.bin_manifest_path.c_str());
    }
  }
  return 0;
}

int cmd_sim(const util::Args& args) {
  if (!args.has("out")) return usage();
  const std::string preset_str = args.get("preset", "HG");
  sim::Preset preset;
  if (preset_str == "HG") preset = sim::Preset::HG;
  else if (preset_str == "LL") preset = sim::Preset::LL;
  else if (preset_str == "MM") preset = sim::Preset::MM;
  else if (preset_str == "IS") preset = sim::Preset::IS;
  else if (preset_str == "XL") preset = sim::Preset::XL;
  else throw util::config_error("--preset must be HG, LL, MM, IS or XL (got '" + preset_str + "')");
  const double scale = args.get_double("sim-scale", 0.05);
  const std::string dir = args.get("out", ".");
  std::filesystem::create_directories(dir);
  const auto ds = sim::make_preset(preset, scale, dir);
  std::printf("simulated %s at scale %g: %llu pairs, %llu bases\n", ds.name.c_str(), scale,
              static_cast<unsigned long long>(ds.num_pairs),
              static_cast<unsigned long long>(ds.total_bases));
  for (const auto& f : ds.files) std::printf("%s\n", f.c_str());
  return 0;
}

int cmd_info(const util::Args& args) {
  if (!args.has("index")) return usage();
  const auto index = core::load_index(args.get("index", ""));
  std::printf("Dataset %s: %zu files (%s), k=%d, m=%d\n", index.name.c_str(),
              index.files.size(), index.paired ? "paired-end" : "single-end", index.k,
              index.mer_hist.m);
  std::printf("Reads: %u, bases: %llu, canonical k-mers: %llu, chunks: %u (max %llu B)\n",
              index.total_reads, static_cast<unsigned long long>(index.total_bases),
              static_cast<unsigned long long>(index.mer_hist.total()),
              index.part.num_chunks(),
              static_cast<unsigned long long>(index.max_chunk_bytes()));

  core::MemoryModelInput mm;
  mm.total_tuples = index.mer_hist.total();
  mm.total_reads = index.total_reads;
  mm.num_chunks = index.part.num_chunks();
  mm.max_chunk_bytes = index.max_chunk_bytes();
  mm.m = index.mer_hist.m;
  mm.num_ranks = static_cast<int>(args.get_int("ranks", 1));
  mm.threads_per_rank = static_cast<int>(args.get_int("threads", 4));
  mm.tuple_bytes = index.k <= 32 ? 12 : 20;

  util::TablePrinter table({"Passes", "kmerOut+kmerIn (MB)", "Total/task (MB)"});
  for (int s : {1, 2, 4, 8}) {
    mm.num_passes = s;
    const auto b = core::estimate_memory(mm);
    table.add_row({std::to_string(s),
                   util::TablePrinter::fmt(static_cast<double>(b.kmer_out + b.kmer_in) / 1e6, 2),
                   util::TablePrinter::fmt(static_cast<double>(b.total) / 1e6, 2)});
  }
  std::printf("Per-task memory model (P=%d, T=%d):\n", mm.num_ranks, mm.threads_per_rank);
  table.print();
  return 0;
}

/// One request/response exchange with a running metaprepd.
std::string daemon_roundtrip(const std::string& socket_path, const std::string& request) {
  util::SocketConn conn = util::connect_unix(socket_path);
  conn.send_line(request);
  std::string line;
  if (!conn.recv_line(line))
    throw util::io_error("daemon closed the connection without replying", socket_path);
  return line;
}

int cmd_daemon(const util::Args& args) {
  if (args.positional().size() < 2 || !args.has("socket")) return usage();
  const std::string verb = args.positional()[1];
  const std::string socket_path = args.get("socket", "");

  std::string request;
  if (verb == "submit") {
    if (!args.has("index")) return usage();
    serve::JsonLineWriter w;
    w.field("cmd", std::string("submit"));
    w.field("index", args.get("index", ""));
    if (args.has("ranks")) w.field("ranks", static_cast<std::int64_t>(args.get_int("ranks", 1)));
    if (args.has("threads"))
      w.field("threads", static_cast<std::int64_t>(args.get_int("threads", 1)));
    if (args.has("passes"))
      w.field("passes", static_cast<std::int64_t>(args.get_int("passes", 1)));
    if (args.has("priority"))
      w.field("priority", static_cast<std::int64_t>(args.get_int("priority", 0)));
    if (args.has("out")) w.field("out", args.get("out", "."));
    if (args.has("no-output")) w.field("write_output", false);
    if (args.has("output-bins"))
      w.field("output_bins", static_cast<std::int64_t>(args.get_int("output-bins", 0)));
    if (args.has("pipeline-mode")) w.field("pipeline_mode", args.get("pipeline-mode", ""));
    if (args.has("filter-min"))
      w.field("filter_min", static_cast<std::int64_t>(args.get_int("filter-min", 0)));
    if (args.has("filter-max"))
      w.field("filter_max", static_cast<std::int64_t>(args.get_int("filter-max", 0)));
    request = w.finish();
  } else if (verb == "status" || verb == "cancel" || verb == "fetch") {
    if (!args.has("job")) return usage();
    serve::JsonLineWriter w;
    w.field("cmd", verb);
    w.field("job", static_cast<std::int64_t>(args.get_int("job", 0)));
    request = w.finish();
  } else if (verb == "ping" || verb == "list" || verb == "pause" || verb == "resume" ||
             verb == "shutdown") {
    serve::JsonLineWriter w;
    w.field("cmd", verb);
    request = w.finish();
  } else {
    return usage();
  }

  std::string response = daemon_roundtrip(socket_path, request);
  if (verb == "status" && args.has("wait")) {
    // Poll the job to a terminal state (done/failed/cancelled).  A bare
    // --wait flag parses as "1"; treat it as the default timeout.
    const std::string wait_val = args.get("wait", "");
    const double timeout_s = (wait_val.empty() || wait_val == "1") ? 120.0 : std::stod(wait_val);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
    for (;;) {
      const util::JsonValue v = util::parse_json(response);
      const std::string state = v.string_or("state", "");
      if (state != "queued" && state != "running") break;
      if (std::chrono::steady_clock::now() >= deadline)
        throw util::io_error("daemon status --wait: timed out after " +
                             std::to_string(timeout_s) + " s in state '" + state + "'");
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      response = daemon_roundtrip(socket_path, request);
    }
  }
  std::printf("%s\n", response.c_str());
  const util::JsonValue v = util::parse_json(response);
  const util::JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->as_bool() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional()[0];
  try {
    if (cmd == "index") return cmd_index(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sim") return cmd_sim(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "diginorm") return cmd_diginorm(args);
    if (cmd == "daemon") return cmd_daemon(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metaprep_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
