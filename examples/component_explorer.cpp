// component_explorer: study a dataset's read-graph component structure the
// way §4.4 does — size distribution, giant component share, and how well
// the decomposition load-balances across parallel assembler instances,
// under different k values and frequency filters.
//
// Usage: component_explorer [--pairs=6000] [--species=8] [--bins=4]
#include <cstdio>
#include <filesystem>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "core/stats.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  const std::string out = "component_explorer_out";
  std::filesystem::create_directories(out);
  const int bins = static_cast<int>(args.get_int("bins", 4));

  sim::DatasetConfig cfg;
  cfg.name = "explore";
  cfg.genomes.num_species = static_cast<int>(args.get_int("species", 8));
  cfg.genomes.min_genome_len = 8'000;
  cfg.genomes.max_genome_len = 14'000;
  cfg.genomes.repeat_fraction = 0.06;
  cfg.genomes.shared_fraction = 0.04;
  cfg.num_pairs = static_cast<std::uint64_t>(args.get_int("pairs", 6'000));
  const auto dataset = sim::simulate_dataset(cfg, out + "/explore");

  util::TablePrinter table({"k", "Filter", "Components", "LC %", "Singletons",
                            "Entropy (bits)", "Max/min bin load"});
  for (int k : {21, 27, 31}) {
    core::IndexCreateOptions iopt;
    iopt.k = k;
    iopt.m = 8;
    iopt.target_chunks = 16;
    const auto index = core::create_index(cfg.name, dataset.files, true, iopt);
    for (const auto& [label, filter] :
         std::vector<std::pair<std::string, core::KmerFreqFilter>>{
             {"none", {}}, {"KF<=30", {0, 30}}, {"10<=KF<=30", {10, 30}}}) {
      core::MetaprepConfig mp;
      mp.k = k;
      mp.num_ranks = 2;
      mp.threads_per_rank = 2;
      mp.filter = filter;
      mp.write_output = false;
      const auto result = core::run_metaprep(index, mp);
      const auto summary = core::summarize_components(result.labels);
      const auto loads = core::pack_components(result.labels, bins);
      const auto [mn, mx] = std::minmax_element(loads.begin(), loads.end());
      table.add_row({std::to_string(k), label, std::to_string(summary.num_components),
                     util::TablePrinter::fmt(summary.largest_fraction * 100.0, 1),
                     std::to_string(summary.singletons),
                     util::TablePrinter::fmt(summary.entropy_bits, 2),
                     *mn == 0 ? "inf"
                              : util::TablePrinter::fmt(static_cast<double>(*mx) /
                                                            static_cast<double>(*mn),
                                                        2)});
    }
  }
  table.print();
  std::printf(
      "\nSize histogram (log2 buckets) for k=27, no filter vs 10<=KF<=30:\n");
  {
    core::IndexCreateOptions iopt;
    iopt.k = 27;
    iopt.m = 8;
    iopt.target_chunks = 16;
    const auto index = core::create_index(cfg.name, dataset.files, true, iopt);
    for (const auto& [label, filter] :
         std::vector<std::pair<std::string, core::KmerFreqFilter>>{{"none", {}},
                                                                   {"10<=KF<=30", {10, 30}}}) {
      core::MetaprepConfig mp;
      mp.k = 27;
      mp.filter = filter;
      mp.write_output = false;
      const auto result = core::run_metaprep(index, mp);
      std::printf("  %-12s:", label.c_str());
      for (const auto& [log2_size, count] :
           core::size_histogram_log2(result.labels)) {
        std::printf(" 2^%d:%llu", log2_size, static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    }
  }
  std::printf("\nA giant component means one assembler instance gets nearly all the work\n"
              "(max/min bin load -> inf); filtering trades LC size for balance (§4.4).\n");
  return 0;
}
