// multipass_demo: the paper's memory/time trade-off (§3.7 + Table 3), live.
//
// Runs the same dataset through 1, 2, 4, and 8 I/O passes and shows that
//   * the component decomposition is identical regardless of pass count,
//   * peak tuple-buffer memory shrinks proportionally to 1/S,
//   * KmerGen time grows (input re-read each pass) while the exchange
//     shrinks — the trade METAPREP makes to fit big datasets in RAM.
// Also demonstrates automatic pass selection from a memory budget.
//
// Usage: multipass_demo [--pairs=20000] [--budget-mb=0]
#include <cstdio>
#include <filesystem>

#include "core/index_create.hpp"
#include "core/memory_model.hpp"
#include "core/pipeline.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  const std::string out = "multipass_demo_out";
  std::filesystem::create_directories(out);

  sim::DatasetConfig cfg;
  cfg.name = "mp";
  cfg.genomes.num_species = 8;
  cfg.genomes.min_genome_len = 12'000;
  cfg.genomes.max_genome_len = 20'000;
  cfg.num_pairs = static_cast<std::uint64_t>(args.get_int("pairs", 20'000));
  const auto dataset = sim::simulate_dataset(cfg, out + "/mp");

  core::IndexCreateOptions iopt;
  iopt.k = 27;
  iopt.m = 8;
  iopt.target_chunks = 32;
  const auto index = core::create_index(cfg.name, dataset.files, true, iopt);

  util::TablePrinter table({"Passes", "Components", "LC %", "Peak tuple buf (MB)",
                            "KmerGen (ms)", "KmerGen-Comm (ms)", "LocalSort (ms)",
                            "Total (ms)"});
  std::vector<std::uint32_t> first_labels;
  for (int s : {1, 2, 4, 8}) {
    core::MetaprepConfig mp;
    mp.k = 27;
    mp.num_ranks = 2;
    mp.threads_per_rank = 2;
    mp.num_passes = s;
    mp.write_output = false;
    const auto r = core::run_metaprep(index, mp);
    if (first_labels.empty()) {
      first_labels = r.labels;
    } else if (r.labels != first_labels) {
      std::printf("ERROR: pass count changed the decomposition!\n");
      return 1;
    }
    table.add_row({std::to_string(s), std::to_string(r.num_components),
                   util::TablePrinter::fmt(r.largest_fraction * 100.0, 1),
                   util::TablePrinter::fmt(
                       static_cast<double>(r.max_tuple_buffer_bytes) / 1e6, 2),
                   util::TablePrinter::fmt(r.step_times.get("KmerGen") * 1e3, 1),
                   util::TablePrinter::fmt(r.step_times.get("KmerGen-Comm") * 1e3, 1),
                   util::TablePrinter::fmt(r.step_times.get("LocalSort") * 1e3, 1),
                   util::TablePrinter::fmt(r.step_times.total() * 1e3, 1)});
  }
  table.print();
  std::printf("Decomposition identical across all pass counts. \n\n");

  const double budget_mb = args.get_double("budget-mb", 0.0);
  if (budget_mb > 0.0) {
    core::MetaprepConfig mp;
    mp.k = 27;
    mp.num_ranks = 2;
    mp.threads_per_rank = 2;
    mp.num_passes = 0;  // derive from budget
    mp.memory_budget_bytes = static_cast<std::uint64_t>(budget_mb * 1e6);
    mp.write_output = false;
    try {
      const auto r = core::run_metaprep(index, mp);
      std::printf("Budget %.0f MB/task -> %d pass(es), peak tuple buffers %.2f MB\n",
                  budget_mb, r.passes_used,
                  static_cast<double>(r.max_tuple_buffer_bytes) / 1e6);
    } catch (const std::exception& e) {
      // The fixed terms (index tables, FASTQ buffers, component arrays)
      // alone exceed the budget — more passes cannot help (§3.7).
      core::MemoryModelInput mm;
      mm.total_tuples = index.mer_hist.total();
      mm.total_reads = index.total_reads;
      mm.num_chunks = index.part.num_chunks();
      mm.max_chunk_bytes = index.max_chunk_bytes();
      mm.m = index.mer_hist.m;
      mm.num_ranks = mp.num_ranks;
      mm.threads_per_rank = mp.threads_per_rank;
      mm.num_passes = 64;
      const auto floor = core::estimate_memory(mm);
      std::printf("Budget %.0f MB/task is infeasible (%s); the pass-independent terms\n"
                  "alone need %.2f MB/task.\n",
                  budget_mb, e.what(), static_cast<double>(floor.total) / 1e6);
    }
  } else {
    std::printf("Tip: rerun with --budget-mb=N to let the §3.7 memory model pick the\n"
                "minimum number of passes for a per-task budget.\n");
  }
  return 0;
}
