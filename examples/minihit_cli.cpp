// minihit_cli: the bundled assembler as a standalone tool.
//
// Assembles FASTQ reads into contigs with MEGAHIT-style options (multi-k
// iteration, solid-k-mer filtering, tip clipping, bubble popping) and
// writes a FASTA.  Intended for assembling the partitions METAPREP writes:
//
//   metaprep_cli run --index=ds.idx --filter-max=30 --out=parts
//   minihit_cli --out=lc.fasta parts/*.lc.fastq
//
// Usage: minihit_cli --out=CONTIGS.fasta [--k-list=21,27,31 | --k=27]
//                    [--min-count=2] [--min-contig=100]
//                    [--tip-clip=54] [--bubble-pop=54] FASTQ...
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/minihit.hpp"
#include "io/fasta.hpp"
#include "util/cli.hpp"

namespace {

std::vector<int> parse_k_list(const std::string& text) {
  std::vector<int> ks;
  std::istringstream is(text);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) ks.push_back(std::stoi(tok));
  }
  return ks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  if (args.positional().empty() || !args.has("out")) {
    std::fprintf(stderr,
                 "usage: minihit_cli --out=CONTIGS.fasta [--k-list=21,27,31 | --k=27] "
                 "[--min-count=2] [--min-contig=100] [--tip-clip=54] [--bubble-pop=54] "
                 "FASTQ...\n");
    return 2;
  }

  assembler::AssemblyOptions opt;
  opt.k = static_cast<int>(args.get_int("k", 27));
  if (args.has("k-list")) opt.k_list = parse_k_list(args.get("k-list", ""));
  opt.min_kmer_count = static_cast<std::uint32_t>(args.get_int("min-count", 2));
  opt.min_contig_len = static_cast<std::size_t>(args.get_int("min-contig", 100));
  opt.tip_clip_bases = static_cast<std::size_t>(args.get_int("tip-clip", 2 * opt.k));
  opt.bubble_pop_bases = static_cast<std::size_t>(args.get_int("bubble-pop", 2 * opt.k));

  try {
    const auto result = assembler::assemble_fastq(args.positional(), opt);
    io::write_contigs_fasta(args.get("out", ""), result.contigs);
    std::printf("Assembled %llu reads -> %llu contigs, %llu bp total, max %llu, N50 %llu "
                "(%.1f ms; %llu solid k-mers of %llu distinct).\n",
                static_cast<unsigned long long>(result.reads_in),
                static_cast<unsigned long long>(result.stats.num_contigs),
                static_cast<unsigned long long>(result.stats.total_bp),
                static_cast<unsigned long long>(result.stats.max_bp),
                static_cast<unsigned long long>(result.stats.n50_bp), result.seconds * 1e3,
                static_cast<unsigned long long>(result.solid_kmers),
                static_cast<unsigned long long>(result.distinct_kmers));
    std::printf("Contigs written to %s\n", args.get("out", "").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "minihit_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
