// partition_and_assemble: the paper's §4.4 end-to-end workflow.
//
// Simulates a mock-community-style dataset, then compares three ways of
// assembling it with the MiniHit (MEGAHIT stand-in) assembler:
//   A. assemble everything, no preprocessing;
//   B. METAPREP partition (no filter), assemble LC and Other separately;
//   C. METAPREP partition with the KF<=30 frequency filter, same split.
// Prints assembly times, quality (contigs/total/max/N50), and the paper's
// speedup metric (full time vs METAPREP + filtered-LC assembly).
//
// Usage: partition_and_assemble [--pairs=8000] [--species=6] [--out=DIR]
#include <cstdio>
#include <filesystem>

#include "assembler/minihit.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace metaprep;

std::vector<std::string> pick(const std::vector<std::string>& files, bool lc) {
  std::vector<std::string> out;
  for (const auto& f : files) {
    if ((f.find(".lc.") != std::string::npos) == lc) out.push_back(f);
  }
  return out;
}

void add_quality_row(util::TablePrinter& table, const std::string& label,
                     const assembler::AssemblyResult& r) {
  table.add_row({label, util::TablePrinter::fmt(r.seconds * 1e3, 1),
                 std::to_string(r.stats.num_contigs),
                 util::TablePrinter::fmt(static_cast<double>(r.stats.total_bp) / 1e3, 1),
                 std::to_string(r.stats.max_bp), std::to_string(r.stats.n50_bp)});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string out = args.get("out", "partition_demo_out");
  std::filesystem::create_directories(out);

  sim::DatasetConfig cfg;
  cfg.name = "demo";
  cfg.genomes.num_species = static_cast<int>(args.get_int("species", 6));
  cfg.genomes.min_genome_len = 10'000;
  cfg.genomes.max_genome_len = 16'000;
  cfg.genomes.repeat_fraction = 0.08;
  cfg.genomes.shared_fraction = 0.05;
  cfg.num_pairs = static_cast<std::uint64_t>(args.get_int("pairs", 8'000));
  const auto dataset = sim::simulate_dataset(cfg, out + "/demo");

  core::IndexCreateOptions iopt;
  iopt.k = 27;
  iopt.m = 8;
  iopt.target_chunks = 16;
  const auto index = core::create_index(cfg.name, dataset.files, true, iopt);

  assembler::AssemblyOptions aopt;
  aopt.k_list = {21, 27, 31};
  aopt.min_kmer_count = 2;

  util::TablePrinter table({"Assembly", "Time (ms)", "Contigs", "Total (kbp)", "Max (bp)",
                            "N50 (bp)"});

  // A. No preprocessing.
  const auto full = assembler::assemble_fastq(dataset.files, aopt);
  add_quality_row(table, "A: no preprocessing", full);

  double prep_filtered_seconds = 0.0;
  double lc_filtered_seconds = 0.0;
  for (const bool filtered : {false, true}) {
    core::MetaprepConfig mp;
    mp.k = 27;
    mp.num_ranks = 2;
    mp.threads_per_rank = 2;
    if (filtered) mp.filter = {0, 30};
    mp.write_output = true;
    mp.output_dir = out + (filtered ? "/kf30" : "/nofilter");
    std::filesystem::create_directories(mp.output_dir);
    util::WallTimer prep_timer;
    const auto result = core::run_metaprep(index, mp);
    const double prep_seconds = prep_timer.seconds();
    std::printf("%s partition: %llu components, LC %.1f%% of reads, %.1f ms\n",
                filtered ? "KF<=30" : "Unfiltered",
                static_cast<unsigned long long>(result.num_components),
                result.largest_fraction * 100.0, prep_seconds * 1e3);

    const auto lc = assembler::assemble_fastq(pick(result.output_files, true), aopt);
    const auto other = assembler::assemble_fastq(pick(result.output_files, false), aopt);
    const char tag = filtered ? 'C' : 'B';
    add_quality_row(table, std::string(1, tag) + ": LC" + (filtered ? " (KF<=30)" : ""), lc);
    add_quality_row(table, std::string(1, tag) + ": Other" + (filtered ? " (KF<=30)" : ""),
                    other);
    if (filtered) {
      prep_filtered_seconds = prep_seconds;
      lc_filtered_seconds = lc.seconds;
    }
  }
  std::printf("\n");
  table.print();
  std::printf("\nPaper speedup metric: full / (METAPREP + filtered LC) = %.2fx\n",
              full.seconds / (prep_filtered_seconds + lc_filtered_seconds));
  return 0;
}
