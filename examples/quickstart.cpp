// Quickstart: the 60-second METAPREP tour.
//
//   1. simulate a small synthetic metagenome (4 species, paired-end reads),
//   2. build the IndexCreate tables (merHist + FASTQPart),
//   3. run the pipeline (2 ranks x 2 threads, 1 pass),
//   4. print the component decomposition and per-step times.
//
// Usage: quickstart [--pairs=2000] [--species=4] [--k=27] [--out=DIR]
#include <cstdio>
#include <filesystem>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/read_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace metaprep;
  const util::Args args(argc, argv);
  const std::string out = args.get("out", "quickstart_out");
  std::filesystem::create_directories(out);

  // 1. Simulate a small community.
  sim::DatasetConfig cfg;
  cfg.name = "quickstart";
  cfg.genomes.num_species = static_cast<int>(args.get_int("species", 4));
  cfg.genomes.min_genome_len = 4000;
  cfg.genomes.max_genome_len = 8000;
  cfg.genomes.shared_fraction = 0.02;
  cfg.num_pairs = static_cast<std::uint64_t>(args.get_int("pairs", 2000));
  const auto dataset = sim::simulate_dataset(cfg, out + "/quickstart");
  std::printf("Simulated %llu read pairs (%0.2f Mbp) from %d species -> %s, %s\n",
              static_cast<unsigned long long>(dataset.num_pairs),
              static_cast<double>(dataset.total_bases) / 1e6, cfg.genomes.num_species,
              dataset.files[0].c_str(), dataset.files[1].c_str());

  // 2. IndexCreate (sequential, once per dataset).
  core::IndexCreateOptions iopt;
  iopt.k = static_cast<int>(args.get_int("k", 27));
  iopt.m = 8;
  iopt.target_chunks = 16;
  core::IndexCreateTiming timing;
  const auto index = core::create_index(cfg.name, dataset.files, true, iopt, &timing);
  std::printf("IndexCreate: %u chunks, %llu canonical %d-mers "
              "(chunking %.1f ms, histograms %.1f ms)\n",
              index.part.num_chunks(),
              static_cast<unsigned long long>(index.mer_hist.total()), iopt.k,
              timing.chunking_seconds * 1e3, timing.histogram_seconds * 1e3);

  // 3. Run the pipeline.
  core::MetaprepConfig mp;
  mp.k = iopt.k;
  mp.num_ranks = 2;
  mp.threads_per_rank = 2;
  mp.num_passes = 1;
  mp.write_output = true;
  mp.output_dir = out;
  const auto result = core::run_metaprep(index, mp);

  // 4. Report.
  std::printf("\nComponents: %llu total; largest has %llu of %u reads (%.1f%%)\n",
              static_cast<unsigned long long>(result.num_components),
              static_cast<unsigned long long>(result.largest_size), result.num_reads,
              result.largest_fraction * 100.0);
  std::printf("Top component sizes:");
  for (auto s : result.top_component_sizes) {
    std::printf(" %llu", static_cast<unsigned long long>(s));
  }
  std::printf("\n\nPer-step times (max over ranks):\n");
  util::TablePrinter table({"Step", "ms"});
  for (const auto& [step, seconds] : result.step_times.map()) {
    table.add_row({step, util::TablePrinter::fmt(seconds * 1e3, 2)});
  }
  table.print();
  std::printf("\nPartitioned FASTQ written to %s (%zu files: .lc = largest component).\n",
              out.c_str(), result.output_files.size());
  return 0;
}
