// verify_partition: independent validation of a METAPREP output split.
//
// The correctness property downstream users rely on (paper §2, after Flick
// et al.): reads in different partitions share no canonical k-mer that
// passed the filter, so each partition can be assembled independently
// without losing any overlap.  This tool re-derives that property from the
// output FASTQ files alone — it builds a k-mer -> partition map and reports
// any k-mer seen in more than one partition.
//
// Usage: verify_partition --k=27 [--filter-min=N --filter-max=N]
//                         <partition1.fastq> <partition2.fastq> ...
// Files sharing the same suffix class (".lc.", ".cN.", ".other.") are
// treated as one partition; otherwise each file is its own partition.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "util/cli.hpp"

namespace {

using namespace metaprep;

std::string partition_class(const std::string& path) {
  for (const char* tag : {".lc.", ".other."}) {
    if (path.find(tag) != std::string::npos) return tag;
  }
  const auto c = path.find(".c");
  if (c != std::string::npos) {
    auto end = c + 2;
    while (end < path.size() && std::isdigit(static_cast<unsigned char>(path[end]))) ++end;
    if (end > c + 2 && end < path.size() && path[end] == '.') {
      return path.substr(c, end - c + 1);
    }
  }
  return path;  // standalone partition
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: verify_partition --k=27 [--filter-min --filter-max] FASTQ...\n");
    return 2;
  }
  const int k = static_cast<int>(args.get_int("k", 27));
  const std::uint64_t fmin = static_cast<std::uint64_t>(args.get_int("filter-min", 0));
  std::uint64_t fmax = static_cast<std::uint64_t>(args.get_int("filter-max", 0));
  if (fmax == 0) fmax = ~0ull;

  // Partition id per file.
  std::map<std::string, int> class_ids;
  struct KmerInfo {
    std::uint64_t freq = 0;
    int partition = -1;
    bool crosses = false;
  };
  std::unordered_map<std::uint64_t, KmerInfo> kmers;

  std::uint64_t reads = 0;
  for (const auto& path : args.positional()) {
    const auto cls = partition_class(path);
    const auto [it, inserted] = class_ids.try_emplace(cls, static_cast<int>(class_ids.size()));
    const int pid = it->second;
    (void)inserted;
    io::FastqReader reader(path);
    io::FastqRecord rec;
    while (reader.next(rec)) {
      ++reads;
      kmer::for_each_canonical_kmer64(rec.seq, k, [&](std::uint64_t km, std::size_t) {
        auto& info = kmers[km];
        ++info.freq;
        if (info.partition == -1) {
          info.partition = pid;
        } else if (info.partition != pid) {
          info.crosses = true;
        }
      });
    }
  }

  std::uint64_t crossing = 0;
  std::uint64_t crossing_filtered = 0;
  for (const auto& [km, info] : kmers) {
    if (!info.crosses) continue;
    ++crossing;
    if (info.freq >= fmin && info.freq <= fmax) ++crossing_filtered;
  }

  std::printf("%llu reads, %zu partitions, %zu distinct %d-mers\n",
              static_cast<unsigned long long>(reads), class_ids.size(), kmers.size(), k);
  std::printf("k-mers present in more than one partition: %llu total, %llu within the "
              "filter band [%llu, %llu]\n",
              static_cast<unsigned long long>(crossing),
              static_cast<unsigned long long>(crossing_filtered),
              static_cast<unsigned long long>(fmin), static_cast<unsigned long long>(fmax));
  if (crossing_filtered == 0) {
    std::printf("OK: partition is edge-free under the given filter — components are "
                "independent.\n");
    return 0;
  }
  std::printf("FAIL: %llu filtered k-mers cross partitions.\n",
              static_cast<unsigned long long>(crossing_filtered));
  return 1;
}
