// Differential guard for the pipelined (overlap) scheduler.
//
// Every {P, T, S} x {barrier, overlap} combination must produce the same
// read partition on one synthetic dataset, and that partition must match a
// straight-line serial oracle assembled from first principles: the
// sequential FASTQ reader, the scalar canonical-k-mer scanner, and
// SerialDSU — none of which share code with the pipeline's chunked read
// path, vectorized scanner, tuple exchange, or concurrent union-find.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/index_create.hpp"
#include "dsu/dsu.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "obs/metrics.hpp"
#include "part/part.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"

namespace metaprep::core {
namespace {

using test::TempDir;

constexpr int kK = 15;

/// Straight-line oracle: stream every file in order with the sequential
/// reader, collect per-k-mer read lists with the scalar scanner, chain-unite
/// each list in SerialDSU.  Paired-end ID scheme: library j = files
/// (2j, 2j+1), both mates of pair i share one ID (paper §3.2).
std::vector<std::uint32_t> serial_oracle(const std::vector<std::string>& files,
                                         std::uint32_t total_reads) {
  std::map<std::uint64_t, std::vector<std::uint32_t>> kmer_reads;
  std::uint32_t base = 0;
  for (std::size_t j = 0; j * 2 < files.size(); ++j) {
    std::uint32_t pairs = 0;
    for (std::size_t mate = 0; mate < 2; ++mate) {
      io::FastqReader reader(files[2 * j + mate]);
      io::FastqRecord rec;
      std::uint32_t read_id = base;
      while (reader.next(rec)) {
        kmer::for_each_canonical_kmer64(rec.seq, kK, [&](std::uint64_t km, std::size_t) {
          kmer_reads[km].push_back(read_id);
        });
        ++read_id;
      }
      pairs = read_id - base;
    }
    base += pairs;
  }
  EXPECT_EQ(base, total_reads);
  dsu::SerialDSU dsu(total_reads);
  for (const auto& [km, reads] : kmer_reads) {
    for (std::size_t i = 1; i < reads.size(); ++i) dsu.unite(reads[i - 1], reads[i]);
  }
  return dsu.labels();
}

struct Fixture {
  TempDir dir;
  DatasetIndex index;
  std::vector<std::string> files;     ///< simulated FASTQ paths (R1, R2 pairs)
  std::vector<std::uint32_t> oracle;  ///< normalized serial partition

  Fixture() {
    sim::DatasetConfig cfg;
    cfg.name = "diff";
    cfg.genomes.num_species = 5;
    cfg.genomes.min_genome_len = 2500;
    cfg.genomes.max_genome_len = 5000;
    cfg.genomes.shared_fraction = 0.03;
    cfg.num_pairs = 220;
    cfg.reads.seed = 4242;
    const auto dataset = sim::simulate_dataset(cfg, dir.file("diff"));
    files = dataset.files;
    IndexCreateOptions opt;
    opt.k = kK;
    opt.m = 5;
    opt.target_chunks = 9;
    index = create_index("diff", dataset.files, true, opt);
    oracle = test::normalize_partition(serial_oracle(dataset.files, index.total_reads));
  }
};

Fixture& fixture() {
  static Fixture f;  // dataset is immutable; shared across the whole grid
  return f;
}

struct GridCase {
  int P, T, S;
  PipelineMode mode;
  ReadStore store;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const auto& c = info.param;
  return "P" + std::to_string(c.P) + "T" + std::to_string(c.T) + "S" + std::to_string(c.S) +
         (c.mode == PipelineMode::kOverlap ? "overlap" : "barrier") +
         (c.store == ReadStore::kPacked ? "Packed" : "Text");
}

std::vector<GridCase> full_grid() {
  std::vector<GridCase> cases;
  for (int P : {1, 2, 4}) {
    for (int T : {1, 2}) {
      for (int S : {1, 2, 3}) {
        for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
          for (auto store : {ReadStore::kText, ReadStore::kPacked}) {
            cases.push_back({P, T, S, mode, store});
          }
        }
      }
    }
  }
  return cases;
}

class DifferentialGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(DifferentialGridTest, PartitionMatchesSerialOracle) {
  const auto& c = GetParam();
  auto& f = fixture();

  MetaprepConfig cfg;
  cfg.k = kK;
  cfg.num_ranks = c.P;
  cfg.threads_per_rank = c.T;
  cfg.num_passes = c.S;
  cfg.pipeline_mode = c.mode;
  cfg.read_store = c.store;
  cfg.write_output = false;

  const auto result = run_metaprep(f.index, cfg);
  EXPECT_EQ(result.num_reads, f.index.total_reads);
  EXPECT_EQ(result.passes_used, c.S);
  // Identical partition everywhere on the grid: each cell equals the oracle,
  // so all 72 cells ({P} x {T} x {S} x {mode} x {text, packed}) equal each
  // other transitively.
  EXPECT_EQ(test::normalize_partition(result.labels), f.oracle);
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialGridTest, ::testing::ValuesIn(full_grid()),
                         case_name);

// ---------------------------------------------------------------------------
// Output grid: write_output=true with load-balanced binning.  Every surviving
// record must land in exactly one bin file, mates and whole components stay
// together, the achieved per-bin loads match a plan recomputed from the
// oracle, and the manifest describes exactly what was written.

struct OutputGridCase {
  int P;
  PipelineMode mode;
  int bins;
  ReadStore store;
};

std::string output_case_name(const ::testing::TestParamInfo<OutputGridCase>& info) {
  const auto& c = info.param;
  return "P" + std::to_string(c.P) +
         (c.mode == PipelineMode::kOverlap ? "overlap" : "barrier") + "B" +
         std::to_string(c.bins) + (c.store == ReadStore::kPacked ? "Packed" : "Text");
}

std::vector<OutputGridCase> output_grid() {
  std::vector<OutputGridCase> cases;
  for (int P : {2, 4}) {
    for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
      for (int bins : {1, 2, 4}) cases.push_back({P, mode, bins, ReadStore::kText});
    }
  }
  // Packed read store on a representative slice: the bin files themselves
  // (not just the labels) must be byte-identical to the text runs, which the
  // per-file record census below establishes against the same oracle plan.
  for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
    cases.push_back({4, mode, 4, ReadStore::kPacked});
  }
  return cases;
}

/// "diff.<i>/1" -> i (sim headers are unique per record).
std::uint32_t read_id_of_header(const std::string& header) {
  const auto dot = header.find('.');
  const auto slash = header.find('/', dot);
  EXPECT_NE(dot, std::string::npos);
  EXPECT_NE(slash, std::string::npos);
  return static_cast<std::uint32_t>(std::stoul(header.substr(dot + 1, slash - dot - 1)));
}

class OutputGridTest : public ::testing::TestWithParam<OutputGridCase> {};

TEST_P(OutputGridTest, BinnedOutputPartitionsReadSetExactly) {
  const auto& c = GetParam();
  auto& f = fixture();
  TempDir out;

  MetaprepConfig cfg;
  cfg.k = kK;
  cfg.num_ranks = c.P;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.pipeline_mode = c.mode;
  cfg.read_store = c.store;
  cfg.write_output = true;
  cfg.output_dir = out.str();
  cfg.output_bins = c.bins;
  cfg.metrics_out = out.file("metrics.jsonl");

  const auto result = run_metaprep(f.index, cfg);
  const std::uint32_t R = f.index.total_reads;
  EXPECT_EQ(test::normalize_partition(result.labels), f.oracle);

  // Every record lands in exactly one bin file; both mates of a pair and all
  // reads of a component share one bin.
  std::map<std::string, int> header_bin;
  std::vector<std::uint64_t> actual_bin_records(static_cast<std::size_t>(c.bins), 0);
  std::map<std::string, std::uint64_t> file_records;
  for (const auto& path : result.output_files) {
    const auto bpos = path.rfind(".b");
    ASSERT_NE(bpos, std::string::npos) << path;
    const int bin = std::stoi(path.substr(bpos + 2));
    ASSERT_LT(bin, c.bins);
    const auto records = test::read_all_fastq(path);
    file_records[path] = records.size();
    for (const auto& rec : records) {
      const auto [it, inserted] = header_bin.emplace(rec.id, bin);
      EXPECT_TRUE(inserted) << "duplicate record " << rec.id;
      ++actual_bin_records[static_cast<std::size_t>(bin)];
    }
  }
  ASSERT_EQ(header_bin.size(), 2u * R);  // strict parse: nothing dropped
  std::vector<int> bin_of_read(R, -1);
  for (const auto& [header, bin] : header_bin) {
    const std::uint32_t id = read_id_of_header(header);
    ASSERT_LT(id, R);
    if (bin_of_read[id] == -1) {
      bin_of_read[id] = bin;
    } else {
      EXPECT_EQ(bin_of_read[id], bin) << "mates of read " << id << " split across bins";
    }
  }
  std::map<std::uint32_t, int> component_bin;
  for (std::uint32_t id = 0; id < R; ++id) {
    const auto [it, inserted] = component_bin.emplace(f.oracle[id], bin_of_read[id]);
    if (!inserted) {
      EXPECT_EQ(it->second, bin_of_read[id]) << "component of read " << id << " split";
    }
  }

  // Achieved loads match the plan recomputed from oracle component sizes
  // with the pipeline's weight model (estimated bp = reads * mean length).
  std::map<std::uint32_t, std::uint64_t> comp_sizes;
  for (auto l : f.oracle) ++comp_sizes[l];
  std::vector<part::Component> comps;
  for (const auto& [root, size] : comp_sizes) {
    comps.push_back(part::Component{
        root, size,
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(size) *
                                   f.index.total_bases / R)});
  }
  const auto plan = part::greedy_bin_pack(comps, c.bins);
  EXPECT_EQ(result.bin_reads, plan.bin_reads);
  EXPECT_EQ(result.bin_weights_bp, plan.bin_weight_bp);
  EXPECT_DOUBLE_EQ(result.bin_skew, plan.skew());
  for (int b = 0; b < c.bins; ++b) {
    EXPECT_EQ(actual_bin_records[static_cast<std::size_t>(b)],
              2 * plan.bin_reads[static_cast<std::size_t>(b)])
        << "bin " << b;
  }

  // The manifest covers every written file with exact record counts.
  ASSERT_FALSE(result.bin_manifest_path.empty());
  const auto manifest = part::load_bin_manifest(result.bin_manifest_path);
  EXPECT_EQ(manifest.num_bins, c.bins);
  EXPECT_EQ(manifest.total_reads, R);
  EXPECT_EQ(manifest.num_components, comps.size());
  std::uint64_t manifest_records = 0;
  std::size_t manifest_files = 0;
  for (const auto& bin : manifest.bins) {
    for (const auto& file : bin.files) {
      ASSERT_TRUE(file_records.contains(file.path)) << file.path;
      EXPECT_EQ(file.records, file_records[file.path]) << file.path;
      manifest_records += file.records;
      ++manifest_files;
    }
  }
  EXPECT_EQ(manifest_records, 2u * R);
  EXPECT_EQ(manifest_files, result.output_files.size());

  // Merge-tail communication: the label scatter ships strictly less than the
  // old O(R)-per-rank full broadcast, and the root->bin table is
  // O(#components).  The mpsim.scatter_bytes counter must agree with the
  // deterministic slice geometry the result reports.
  const std::uint64_t old_broadcast = static_cast<std::uint64_t>(c.P - 1) * 4ull * R;
  EXPECT_GT(result.label_scatter_bytes, 0u);
  EXPECT_LE(result.label_scatter_bytes, old_broadcast);
  // At P >= 4 most ranks' chunk ranges cover a strict subset of the ID
  // space, so the scatter must ship strictly less than the old broadcast.
  // (At P = 2 the lone non-root rank can straddle the paired-file boundary
  // and legitimately need the whole range.)
  if (c.P >= 4) { EXPECT_LT(result.label_scatter_bytes, old_broadcast); }
  EXPECT_EQ(result.root_table_bytes,
            static_cast<std::uint64_t>(c.P - 1) * (8 + 6 * comps.size()));
  EXPECT_EQ(static_cast<std::uint64_t>(
                obs::metrics().counter("mpsim.scatter_bytes").value()),
            result.label_scatter_bytes);
}

INSTANTIATE_TEST_SUITE_P(OutputGrid, OutputGridTest, ::testing::ValuesIn(output_grid()),
                         output_case_name);

// ---------------------------------------------------------------------------
// Exchange-compression grid: every --comm-compress mode must reproduce the
// oracle partition across both schedulers, both read stores, and both parse
// modes.  The lenient legs run on a deterministically corrupted copy of the
// dataset (mangled record headers), indexed leniently, with the oracle
// recomputed by the brute-force reference under the same parse mode —
// compressed runs emit no sentinel padding, so lenient gaps must be
// invisible in the partition, not just tolerated.

/// Copy @p files, mangling the header '@' of two fixed records per file.
/// The same record indices break in every file, so paired-end files keep
/// equal parseable record counts.
std::vector<std::string> corrupt_copy(const std::vector<std::string>& files,
                                      const TempDir& dir) {
  std::vector<std::string> out;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    std::ifstream in(files[fi]);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    for (const std::size_t rec : {std::size_t{5}, std::size_t{40}}) {
      const std::size_t ln = rec * 4;  // sim output: 4 lines per record
      if (ln < lines.size() && !lines[ln].empty() && lines[ln][0] == '@') lines[ln][0] = '#';
    }
    out.push_back(dir.file("corrupt_" + std::to_string(fi) + ".fastq"));
    std::ofstream os(out.back());
    for (const auto& l : lines) os << l << '\n';
  }
  return out;
}

struct LenientFixture {
  TempDir dir;
  DatasetIndex index;
  std::vector<std::uint32_t> oracle;  ///< normalized lenient reference partition

  LenientFixture() {
    const auto files = corrupt_copy(fixture().files, dir);
    IndexCreateOptions opt;
    opt.k = kK;
    opt.m = 5;
    opt.parse_mode = io::ParseMode::kLenient;
    opt.target_chunks = 9;
    index = create_index("diff", files, true, opt);
    oracle = test::normalize_partition(
        reference_components(index, KmerFreqFilter{}, io::ParseMode::kLenient));
  }
};

LenientFixture& lenient_fixture() {
  static LenientFixture f;
  return f;
}

struct CompressCase {
  CommCompress compress;
  PipelineMode mode;
  ReadStore store;
  io::ParseMode parse;
};

std::string compress_tag(CommCompress c) {
  switch (c) {
    case CommCompress::kNone: return "Cnone";
    case CommCompress::kSuperKmer: return "Csuperkmer";
    case CommCompress::kBloom: return "Cbloom";
    case CommCompress::kBoth: return "Cboth";
  }
  return "C?";
}

std::string compress_case_name(const ::testing::TestParamInfo<CompressCase>& info) {
  const auto& c = info.param;
  return compress_tag(c.compress) +
         (c.mode == PipelineMode::kOverlap ? "overlap" : "barrier") +
         (c.store == ReadStore::kPacked ? "Packed" : "Text") +
         (c.parse == io::ParseMode::kLenient ? "Lenient" : "Strict");
}

std::vector<CompressCase> compress_grid() {
  std::vector<CompressCase> cases;
  for (auto compress : {CommCompress::kNone, CommCompress::kSuperKmer, CommCompress::kBloom,
                        CommCompress::kBoth}) {
    for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
      for (auto store : {ReadStore::kText, ReadStore::kPacked}) {
        for (auto parse : {io::ParseMode::kStrict, io::ParseMode::kLenient}) {
          cases.push_back({compress, mode, store, parse});
        }
      }
    }
  }
  return cases;
}

class CommCompressGridTest : public ::testing::TestWithParam<CompressCase> {};

TEST_P(CommCompressGridTest, PartitionMatchesOracle) {
  const auto& c = GetParam();
  const bool lenient = c.parse == io::ParseMode::kLenient;
  const DatasetIndex& index = lenient ? lenient_fixture().index : fixture().index;
  const auto& oracle = lenient ? lenient_fixture().oracle : fixture().oracle;

  MetaprepConfig cfg;
  cfg.k = kK;
  cfg.num_ranks = 4;  // cross-rank traffic exists, so the byte counters fire
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.pipeline_mode = c.mode;
  cfg.read_store = c.store;
  cfg.parse_mode = c.parse;
  cfg.comm_compress = c.compress;
  cfg.write_output = false;

  const auto result = run_metaprep(index, cfg);
  EXPECT_EQ(result.num_reads, index.total_reads);
  EXPECT_EQ(result.passes_used, 2);
  EXPECT_EQ(test::normalize_partition(result.labels), oracle);

  // Byte accounting invariants.
  if (c.compress == CommCompress::kNone) {
    EXPECT_EQ(result.exchange_bytes, result.exchange_bytes_raw);
    EXPECT_EQ(result.superkmer_records, 0u);
    EXPECT_EQ(result.bloom_dropped, 0u);
  } else {
    EXPECT_GT(result.exchange_bytes_raw, 0u);
    EXPECT_LE(result.exchange_bytes, result.exchange_bytes_raw);
  }
  const bool superkmer =
      c.compress == CommCompress::kSuperKmer || c.compress == CommCompress::kBoth;
  const bool bloom = c.compress == CommCompress::kBloom || c.compress == CommCompress::kBoth;
  if (superkmer) {
    EXPECT_GT(result.superkmer_records, 0u);
    // Aggregation must actually shrink the wire volume on this corpus.
    EXPECT_LT(result.exchange_bytes, result.exchange_bytes_raw);
  }
  if (bloom) { EXPECT_GT(result.bloom_dropped, 0u); }
  if (c.compress == CommCompress::kSuperKmer && !lenient) {
    // Strict super-k-mer-only runs re-expand every k-mer occurrence: the
    // tuple census equals the index's global k-mer histogram exactly.
    EXPECT_EQ(result.total_tuples, index.mer_hist.total());
  }
}

INSTANTIATE_TEST_SUITE_P(CompressGrid, CommCompressGridTest,
                         ::testing::ValuesIn(compress_grid()), compress_case_name);

TEST(Differential, CompressModesAgreeTupleForTuple) {
  // Beyond partition equality: strict super-k-mer runs must enumerate the
  // *same tuple multiset size* as the uncompressed exchange while shipping
  // strictly fewer bytes, and `both` must ship no more than `superkmer`.
  auto& f = fixture();
  for (int S : {1, 2}) {
    MetaprepConfig cfg;
    cfg.k = kK;
    cfg.num_ranks = 4;
    cfg.threads_per_rank = 2;
    cfg.num_passes = S;
    cfg.write_output = false;
    const auto none = run_metaprep(f.index, cfg);
    cfg.comm_compress = CommCompress::kSuperKmer;
    const auto sk = run_metaprep(f.index, cfg);
    cfg.comm_compress = CommCompress::kBoth;
    const auto both = run_metaprep(f.index, cfg);

    EXPECT_EQ(none.exchange_bytes, none.exchange_bytes_raw) << "S=" << S;
    EXPECT_EQ(sk.total_tuples, none.total_tuples) << "S=" << S;
    EXPECT_LT(sk.exchange_bytes, none.exchange_bytes) << "S=" << S;
    EXPECT_LE(both.exchange_bytes, sk.exchange_bytes) << "S=" << S;
    EXPECT_EQ(test::normalize_partition(sk.labels), f.oracle) << "S=" << S;
    EXPECT_EQ(test::normalize_partition(both.labels), f.oracle) << "S=" << S;
  }
}

TEST(Differential, ModesAgreeTupleForTuple) {
  // Beyond the partition: both modes must enumerate the same number of
  // tuples and agree on the component census.
  auto& f = fixture();
  for (int S : {1, 2}) {
    MetaprepConfig cfg;
    cfg.k = kK;
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.num_passes = S;
    cfg.write_output = false;
    const auto barrier = run_metaprep(f.index, cfg);
    cfg.pipeline_mode = PipelineMode::kOverlap;
    const auto overlap = run_metaprep(f.index, cfg);
    EXPECT_EQ(overlap.total_tuples, barrier.total_tuples) << "S=" << S;
    EXPECT_EQ(overlap.num_components, barrier.num_components) << "S=" << S;
    EXPECT_EQ(test::normalize_partition(overlap.labels),
              test::normalize_partition(barrier.labels))
        << "S=" << S;
  }
}

}  // namespace
}  // namespace metaprep::core
