// Differential guard for the pipelined (overlap) scheduler.
//
// Every {P, T, S} x {barrier, overlap} combination must produce the same
// read partition on one synthetic dataset, and that partition must match a
// straight-line serial oracle assembled from first principles: the
// sequential FASTQ reader, the scalar canonical-k-mer scanner, and
// SerialDSU — none of which share code with the pipeline's chunked read
// path, vectorized scanner, tuple exchange, or concurrent union-find.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/index_create.hpp"
#include "dsu/dsu.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"

namespace metaprep::core {
namespace {

using test::TempDir;

constexpr int kK = 15;

/// Straight-line oracle: stream every file in order with the sequential
/// reader, collect per-k-mer read lists with the scalar scanner, chain-unite
/// each list in SerialDSU.  Paired-end ID scheme: library j = files
/// (2j, 2j+1), both mates of pair i share one ID (paper §3.2).
std::vector<std::uint32_t> serial_oracle(const std::vector<std::string>& files,
                                         std::uint32_t total_reads) {
  std::map<std::uint64_t, std::vector<std::uint32_t>> kmer_reads;
  std::uint32_t base = 0;
  for (std::size_t j = 0; j * 2 < files.size(); ++j) {
    std::uint32_t pairs = 0;
    for (std::size_t mate = 0; mate < 2; ++mate) {
      io::FastqReader reader(files[2 * j + mate]);
      io::FastqRecord rec;
      std::uint32_t read_id = base;
      while (reader.next(rec)) {
        kmer::for_each_canonical_kmer64(rec.seq, kK, [&](std::uint64_t km, std::size_t) {
          kmer_reads[km].push_back(read_id);
        });
        ++read_id;
      }
      pairs = read_id - base;
    }
    base += pairs;
  }
  EXPECT_EQ(base, total_reads);
  dsu::SerialDSU dsu(total_reads);
  for (const auto& [km, reads] : kmer_reads) {
    for (std::size_t i = 1; i < reads.size(); ++i) dsu.unite(reads[i - 1], reads[i]);
  }
  return dsu.labels();
}

struct Fixture {
  TempDir dir;
  DatasetIndex index;
  std::vector<std::uint32_t> oracle;  ///< normalized serial partition

  Fixture() {
    sim::DatasetConfig cfg;
    cfg.name = "diff";
    cfg.genomes.num_species = 5;
    cfg.genomes.min_genome_len = 2500;
    cfg.genomes.max_genome_len = 5000;
    cfg.genomes.shared_fraction = 0.03;
    cfg.num_pairs = 220;
    cfg.reads.seed = 4242;
    const auto dataset = sim::simulate_dataset(cfg, dir.file("diff"));
    IndexCreateOptions opt;
    opt.k = kK;
    opt.m = 5;
    opt.target_chunks = 9;
    index = create_index("diff", dataset.files, true, opt);
    oracle = test::normalize_partition(serial_oracle(dataset.files, index.total_reads));
  }
};

Fixture& fixture() {
  static Fixture f;  // dataset is immutable; shared across the whole grid
  return f;
}

struct GridCase {
  int P, T, S;
  PipelineMode mode;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const auto& c = info.param;
  return "P" + std::to_string(c.P) + "T" + std::to_string(c.T) + "S" + std::to_string(c.S) +
         (c.mode == PipelineMode::kOverlap ? "overlap" : "barrier");
}

std::vector<GridCase> full_grid() {
  std::vector<GridCase> cases;
  for (int P : {1, 2, 4}) {
    for (int T : {1, 2}) {
      for (int S : {1, 2, 3}) {
        for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
          cases.push_back({P, T, S, mode});
        }
      }
    }
  }
  return cases;
}

class DifferentialGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(DifferentialGridTest, PartitionMatchesSerialOracle) {
  const auto& c = GetParam();
  auto& f = fixture();

  MetaprepConfig cfg;
  cfg.k = kK;
  cfg.num_ranks = c.P;
  cfg.threads_per_rank = c.T;
  cfg.num_passes = c.S;
  cfg.pipeline_mode = c.mode;
  cfg.write_output = false;

  const auto result = run_metaprep(f.index, cfg);
  EXPECT_EQ(result.num_reads, f.index.total_reads);
  EXPECT_EQ(result.passes_used, c.S);
  // Identical partition everywhere on the grid: each cell equals the oracle,
  // so all 36 cells equal each other transitively.
  EXPECT_EQ(test::normalize_partition(result.labels), f.oracle);
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialGridTest, ::testing::ValuesIn(full_grid()),
                         case_name);

TEST(Differential, ModesAgreeTupleForTuple) {
  // Beyond the partition: both modes must enumerate the same number of
  // tuples and agree on the component census.
  auto& f = fixture();
  for (int S : {1, 2}) {
    MetaprepConfig cfg;
    cfg.k = kK;
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.num_passes = S;
    cfg.write_output = false;
    const auto barrier = run_metaprep(f.index, cfg);
    cfg.pipeline_mode = PipelineMode::kOverlap;
    const auto overlap = run_metaprep(f.index, cfg);
    EXPECT_EQ(overlap.total_tuples, barrier.total_tuples) << "S=" << S;
    EXPECT_EQ(overlap.num_components, barrier.num_components) << "S=" << S;
    EXPECT_EQ(test::normalize_partition(overlap.labels),
              test::normalize_partition(barrier.labels))
        << "S=" << S;
  }
}

}  // namespace
}  // namespace metaprep::core
