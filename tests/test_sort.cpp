// Tests for the LSD radix sorts (64-bit, 128-bit, 64x64 baseline).
#include "sort/radix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace metaprep::sort {
namespace {

struct KV {
  std::uint64_t k;
  std::uint32_t v;
};

void make_random(std::size_t n, int key_bits, std::vector<std::uint64_t>& keys,
                 std::vector<std::uint32_t>& vals, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  keys.resize(n);
  vals.resize(n);
  const std::uint64_t mask = key_bits >= 64 ? ~0ULL : (1ULL << key_bits) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next() & mask;
    vals[i] = static_cast<std::uint32_t>(rng.next());
  }
}

/// Reference: stable sort of (key, original index) pairs.
void reference_sort(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& vals) {
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::vector<std::uint64_t> k2(keys.size());
  std::vector<std::uint32_t> v2(vals.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    k2[i] = keys[order[i]];
    v2[i] = vals[order[i]];
  }
  keys.swap(k2);
  vals.swap(v2);
}

TEST(RadixSort64, EmptyAndSingle) {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> vals;
  radix_sort_kv64(keys, vals);
  EXPECT_TRUE(keys.empty());
  keys = {42};
  vals = {7};
  radix_sort_kv64(keys, vals);
  EXPECT_EQ(keys[0], 42u);
  EXPECT_EQ(vals[0], 7u);
}

TEST(RadixSort64, AlreadySortedAndReversed) {
  std::vector<std::uint64_t> keys{1, 2, 3, 4, 5};
  std::vector<std::uint32_t> vals{10, 20, 30, 40, 50};
  radix_sort_kv64(keys, vals);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(vals, (std::vector<std::uint32_t>{10, 20, 30, 40, 50}));

  keys = {5, 4, 3, 2, 1};
  vals = {50, 40, 30, 20, 10};
  radix_sort_kv64(keys, vals);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(vals, (std::vector<std::uint32_t>{10, 20, 30, 40, 50}));
}

TEST(RadixSort64, StableForEqualKeys) {
  std::vector<std::uint64_t> keys{7, 7, 7, 3, 3};
  std::vector<std::uint32_t> vals{1, 2, 3, 4, 5};
  radix_sort_kv64(keys, vals);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{3, 3, 7, 7, 7}));
  EXPECT_EQ(vals, (std::vector<std::uint32_t>{4, 5, 1, 2, 3}));
}

struct SortParams {
  std::size_t n;
  int key_bits;
  int digit_bits;
};

class RadixSortPropertyTest : public ::testing::TestWithParam<SortParams> {};

TEST_P(RadixSortPropertyTest, MatchesStableReference) {
  const auto [n, key_bits, digit_bits] = GetParam();
  std::vector<std::uint64_t> keys, ref_keys;
  std::vector<std::uint32_t> vals, ref_vals;
  make_random(n, key_bits, keys, vals, 1234 + n + static_cast<std::uint64_t>(key_bits));
  ref_keys = keys;
  ref_vals = vals;
  reference_sort(ref_keys, ref_vals);

  std::vector<std::uint64_t> tk(n);
  std::vector<std::uint32_t> tv(n);
  radix_sort_kv64(keys, vals, tk, tv, key_bits, digit_bits);
  EXPECT_EQ(keys, ref_keys);
  EXPECT_EQ(vals, ref_vals);
  EXPECT_TRUE(is_sorted_keys(keys));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortPropertyTest,
    ::testing::Values(SortParams{100, 64, 8}, SortParams{1000, 64, 8},
                      SortParams{1000, 54, 8},   // 2k bits for k=27
                      SortParams{1000, 64, 11},  // wider digits
                      SortParams{1000, 64, 16},  // the paper's rejected 16-bit variant
                      SortParams{1000, 16, 8},   // short keys
                      SortParams{777, 64, 7},    // odd digit width, odd pass count
                      SortParams{2048, 32, 4}));

TEST(RadixSort64, OddPassCountEndsInInputBuffer) {
  // 54 key bits at 9 bits/digit = 6 passes (even); at 11 = 5 passes (odd).
  std::vector<std::uint64_t> keys, ref;
  std::vector<std::uint32_t> vals;
  make_random(500, 54, keys, vals, 777);
  ref = keys;
  std::sort(ref.begin(), ref.end());
  radix_sort_kv64(keys, vals, 54, 11);
  EXPECT_EQ(keys, ref);
}

TEST(RadixSort64, ThrowsOnBufferMismatch) {
  std::vector<std::uint64_t> keys(10);
  std::vector<std::uint32_t> vals(9);
  std::vector<std::uint64_t> tk(10);
  std::vector<std::uint32_t> tv(10);
  EXPECT_THROW(radix_sort_kv64(keys, vals, tk, tv), std::invalid_argument);
}

TEST(RadixSort64, ThrowsOnBadDigitBits) {
  std::vector<std::uint64_t> keys(4);
  std::vector<std::uint32_t> vals(4);
  std::vector<std::uint64_t> tk(4);
  std::vector<std::uint32_t> tv(4);
  EXPECT_THROW(radix_sort_kv64(keys, vals, tk, tv, 64, 0), std::invalid_argument);
  EXPECT_THROW(radix_sort_kv64(keys, vals, tk, tv, 64, 17), std::invalid_argument);
}

TEST(RadixSort64x64, MatchesReference) {
  util::Xoshiro256 rng(555);
  const std::size_t n = 2000;
  std::vector<std::uint64_t> keys(n), vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next();
    vals[i] = rng.next();
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = {keys[i], vals[i]};
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::uint64_t> tk(n), tv(n);
  radix_sort_kv64x64(keys, vals, tk, tv);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys[i], ref[i].first);
    EXPECT_EQ(vals[i], ref[i].second);
  }
}

class RadixSort128Test : public ::testing::TestWithParam<int> {};

TEST_P(RadixSort128Test, MatchesReferenceFor128BitKeys) {
  const int key_bits = GetParam();
  util::Xoshiro256 rng(600 + static_cast<std::uint64_t>(key_bits));
  const std::size_t n = 1500;
  std::vector<std::uint64_t> hi(n), lo(n);
  std::vector<std::uint32_t> vals(n);
  const int hi_bits = key_bits > 64 ? key_bits - 64 : 0;
  const std::uint64_t hi_mask = hi_bits == 0 ? 0 : (hi_bits >= 64 ? ~0ULL : (1ULL << hi_bits) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = rng.next() & hi_mask;
    lo[i] = rng.next();
    vals[i] = static_cast<std::uint32_t>(rng.next());
  }
  struct Rec {
    std::uint64_t hi, lo;
    std::uint32_t v;
  };
  std::vector<Rec> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = {hi[i], lo[i], vals[i]};
  std::stable_sort(ref.begin(), ref.end(), [](const Rec& a, const Rec& b) {
    return std::tie(a.hi, a.lo) < std::tie(b.hi, b.lo);
  });

  std::vector<std::uint64_t> th(n), tl(n);
  std::vector<std::uint32_t> tv(n);
  radix_sort_kv128(hi, lo, vals, th, tl, tv, key_bits, 8);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hi[i], ref[i].hi);
    EXPECT_EQ(lo[i], ref[i].lo);
    EXPECT_EQ(vals[i], ref[i].v);
  }
}

// 2k bits for k = 63 is 126; also test boundary and small widths.
INSTANTIATE_TEST_SUITE_P(KeyWidths, RadixSort128Test, ::testing::Values(126, 128, 66, 70, 64));

}  // namespace
}  // namespace metaprep::sort
