// Tests for timers, box stats, prefix sums, CLI parsing, and table output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <filesystem>
#include <fstream>

#include "util/cli.hpp"
#include "util/memusage.hpp"
#include "util/prefix_sum.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace metaprep::util {
namespace {

TEST(StepTimes, AccumulatesAndMerges) {
  StepTimes a;
  a.add("KmerGen", 1.0);
  a.add("KmerGen", 0.5);
  EXPECT_DOUBLE_EQ(a.get("KmerGen"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);

  StepTimes b;
  b.add("KmerGen", 2.0);
  b.add("LocalSort", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("KmerGen"), 3.5);
  EXPECT_DOUBLE_EQ(a.get("LocalSort"), 3.0);
  EXPECT_DOUBLE_EQ(a.total(), 6.5);
}

TEST(StepTimes, MergeMaxTakesPerKeyMaximum) {
  StepTimes a;
  a.add("x", 1.0);
  a.add("y", 5.0);
  StepTimes b;
  b.add("x", 3.0);
  b.add("z", 2.0);
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
  EXPECT_DOUBLE_EQ(a.get("z"), 2.0);
}

TEST(StepTimes, MergeMaxDisjointKeysIsUnion) {
  StepTimes a;
  a.add("KmerGen", 1.0);
  a.add("LocalSort", 2.0);
  StepTimes b;
  b.add("LocalCC", 3.0);
  b.add("MergeCC", 4.0);
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.get("KmerGen"), 1.0);
  EXPECT_DOUBLE_EQ(a.get("LocalSort"), 2.0);
  EXPECT_DOUBLE_EQ(a.get("LocalCC"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("MergeCC"), 4.0);
  EXPECT_EQ(a.map().size(), 4U);
}

TEST(StepTimes, MergeMaxIntoEmptyCopies) {
  StepTimes a;
  StepTimes b;
  b.add("x", 7.0);
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 7.0);
  // Merging an empty StepTimes changes nothing.
  a.merge_max(StepTimes{});
  EXPECT_DOUBLE_EQ(a.get("x"), 7.0);
  EXPECT_EQ(a.map().size(), 1U);
}

TEST(WallTimer, MeasuresNonNegativeMonotonicTime) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.seconds(), b + 1.0);
}

TEST(BoxStats, EmptyAndSingle) {
  const BoxStats e = box_stats({});
  EXPECT_DOUBLE_EQ(e.min, 0.0);
  EXPECT_DOUBLE_EQ(e.q1, 0.0);
  EXPECT_DOUBLE_EQ(e.median, 0.0);
  EXPECT_DOUBLE_EQ(e.q3, 0.0);
  EXPECT_DOUBLE_EQ(e.max, 0.0);
  const BoxStats s = box_stats({4.0});
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.q1, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(BoxStats, TwoElementsAndDuplicates) {
  const BoxStats two = box_stats({1.0, 3.0});
  EXPECT_DOUBLE_EQ(two.min, 1.0);
  EXPECT_DOUBLE_EQ(two.median, 2.0);
  EXPECT_DOUBLE_EQ(two.max, 3.0);
  const BoxStats same = box_stats({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(same.min, 5.0);
  EXPECT_DOUBLE_EQ(same.q1, 5.0);
  EXPECT_DOUBLE_EQ(same.median, 5.0);
  EXPECT_DOUBLE_EQ(same.q3, 5.0);
  EXPECT_DOUBLE_EQ(same.max, 5.0);
}

TEST(BoxStats, KnownQuartiles) {
  const BoxStats b = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
}

TEST(BoxStats, UnsortedInputHandled) {
  const BoxStats b = box_stats({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(b.median, 3.0);
}

TEST(PrefixSum, ExclusiveBasic) {
  const std::vector<std::uint32_t> in{3, 1, 4, 1, 5};
  const auto out = exclusive_prefix_sum(std::span<const std::uint32_t>(in));
  const std::vector<std::uint64_t> expected{0, 3, 4, 8, 9, 14};
  EXPECT_EQ(out, expected);
}

TEST(PrefixSum, EmptyInput) {
  const std::vector<std::uint32_t> in;
  const auto out = exclusive_prefix_sum(std::span<const std::uint32_t>(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(PrefixSum, InplaceReturnsTotal) {
  std::vector<std::uint64_t> v{2, 2, 2};
  const auto total = exclusive_prefix_sum_inplace(std::span<std::uint64_t>(v));
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(PrefixSum, SumU64HandlesOverflowOf32BitCounts) {
  const std::vector<std::uint32_t> in(3, 0xFFFFFFFFu);
  EXPECT_EQ(sum_u64(std::span<const std::uint32_t>(in)), 3ull * 0xFFFFFFFFull);
}

TEST(Args, ParsesNamedAndPositional) {
  const char* argv[] = {"prog", "--k=27", "--verbose", "input.fastq", "--scale=1.5"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("k", 0), 27);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 1.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.fastq");
}

TEST(Args, FallbacksUsedWhenMissing) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", -3), -3);
}

TEST(EnvDouble, ParsesAndFallsBack) {
  ::setenv("METAPREP_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("METAPREP_TEST_ENV_D", 1.0), 2.5);
  ::setenv("METAPREP_TEST_ENV_D", "junk", 1);
  EXPECT_DOUBLE_EQ(env_double("METAPREP_TEST_ENV_D", 1.0), 1.0);
  ::unsetenv("METAPREP_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(env_double("METAPREP_TEST_ENV_D", 7.0), 7.0);
}

TEST(TablePrinter, AlignsColumnsAndFormats) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", TablePrinter::fmt(1.2345, 2)});
  t.add_row({"longer-name", "9"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TablePrinter, CsvEscapesSpecialFields) {
  TablePrinter t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, CsvExportViaEnvironment) {
  const std::string dir = ::testing::TempDir() + "/csv_export";
  std::filesystem::create_directories(dir);
  ::setenv("METAPREP_TABLE_CSV_DIR", dir.c_str(), 1);
  TablePrinter t({"x"});
  t.add_row({"1"});
  t.print();
  ::unsetenv("METAPREP_TABLE_CSV_DIR");
  // Exactly one CSV file appeared, containing the header.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    std::ifstream in(entry.path());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x");
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.str());
}

TEST(MemUsage, ReportsPlausibleRss) {
  const auto rss = current_rss_bytes();
  const auto peak = peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20);   // > 1 MB
  EXPECT_GE(peak, rss / 2);   // peak is at least in the same ballpark
}

}  // namespace
}  // namespace metaprep::util
