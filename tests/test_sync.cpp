// util/sync.hpp: behavioral tests for the capability-annotated wrappers.
// The annotations themselves are checked by the clang -Wthread-safety leg in
// scripts/analyze.sh; here we prove the wrappers behave like the std
// primitives they shim (locking, try-lock, relock, shared access, waits).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace {

using namespace std::chrono_literals;
namespace util = metaprep::util;

TEST(Sync, MutexTryLockReflectsContention) {
  util::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A second holder must fail while we hold it (probe from another thread;
  // same-thread relock of a std::mutex would be UB).
  std::atomic<int> result{-1};
  std::thread probe([&] { result = mu.try_lock() ? 1 : 0; });
  probe.join();
  EXPECT_EQ(result.load(), 0);
  mu.unlock();
  std::thread probe2([&] {
    if (mu.try_lock()) {
      result = 2;
      mu.unlock();
    }
  });
  probe2.join();
  EXPECT_EQ(result.load(), 2);
}

TEST(Sync, MutexLockExcludesOtherThreads) {
  util::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80'000);
}

TEST(Sync, MutexLockDeferThenLock) {
  util::Mutex mu;
  util::MutexLock lock(mu, util::defer_lock);
  EXPECT_FALSE(lock.owns_lock());
  lock.Lock();
  EXPECT_TRUE(lock.owns_lock());
  lock.Unlock();
  EXPECT_FALSE(lock.owns_lock());
  // Destructor must not unlock again (would be UB on an unheld std::mutex);
  // reacquire to prove the mutex is still healthy.
  EXPECT_TRUE(lock.TryLock());
}

TEST(Sync, MutexLockTryToLock) {
  util::Mutex mu;
  {
    util::MutexLock held(mu);
    std::atomic<bool> acquired{true};
    std::thread probe([&] {
      util::MutexLock probe_lock(mu, util::try_to_lock);
      acquired = probe_lock.owns_lock();
    });
    probe.join();
    EXPECT_FALSE(acquired.load());
  }
  util::MutexLock now(mu, util::try_to_lock);
  EXPECT_TRUE(now.owns_lock());
}

TEST(Sync, SharedMutexAllowsConcurrentReaders) {
  util::SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      util::ReaderLock lock(mu);
      const int now = ++readers_inside;
      int prev = max_inside.load();
      while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(20ms);
      --readers_inside;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(max_inside.load(), 2) << "readers never overlapped";
}

TEST(Sync, WriterLockExcludesReaders) {
  util::SharedMutex mu;
  int value = 0;
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5'000; ++i) {
        util::WriterLock lock(mu);
        ++value;
      }
    });
  }
  std::atomic<bool> torn{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2'000; ++i) {
        util::ReaderLock lock(mu);
        if (value < 0 || value > 10'000) torn = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(value, 10'000);
  EXPECT_FALSE(torn.load());
}

TEST(Sync, CondVarWakesWaiter) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  std::atomic<bool> observed{false};
  std::thread waiter([&] {
    util::MutexLock lock(mu);
    while (!ready) cv.wait(mu, lock);
    observed = true;
  });
  {
    util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed.load());
}

TEST(Sync, CondVarWaitForTimesOut) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  EXPECT_EQ(cv.wait_for(mu, lock, 5ms), std::cv_status::timeout);
  // The lock is reacquired after the timed-out wait: a contending thread
  // must see the mutex held.
  std::atomic<int> result{-1};
  std::thread probe([&] { result = mu.try_lock() ? 1 : 0; });
  probe.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(Sync, CondVarWaitUntilHonorsDeadline) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  const auto deadline = std::chrono::steady_clock::now() + 5ms;
  EXPECT_EQ(cv.wait_until(mu, lock, deadline), std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

}  // namespace
